// 48-bit Ethernet MAC address value type.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"

namespace dfi {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  // Construct from the low 48 bits of an integer (deterministic synthetic
  // address generation for the testbed).
  static constexpr MacAddress from_u64(std::uint64_t value) {
    return MacAddress({static_cast<std::uint8_t>(value >> 40),
                       static_cast<std::uint8_t>(value >> 32),
                       static_cast<std::uint8_t>(value >> 24),
                       static_cast<std::uint8_t>(value >> 16),
                       static_cast<std::uint8_t>(value >> 8),
                       static_cast<std::uint8_t>(value)});
  }

  // Parse "aa:bb:cc:dd:ee:ff".
  static Result<MacAddress> parse(const std::string& text);

  static constexpr MacAddress broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  constexpr const std::array<std::uint8_t, 6>& octets() const { return octets_; }

  constexpr std::uint64_t to_u64() const {
    std::uint64_t value = 0;
    for (auto octet : octets_) value = (value << 8) | octet;
    return value;
  }

  constexpr bool is_broadcast() const { return *this == broadcast(); }
  constexpr bool is_multicast() const { return (octets_[0] & 0x01) != 0; }

  std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

inline std::string to_string(const MacAddress& mac) { return mac.to_string(); }

}  // namespace dfi

namespace std {
template <>
struct hash<dfi::MacAddress> {
  size_t operator()(const dfi::MacAddress& mac) const noexcept {
    return hash<uint64_t>{}(mac.to_u64());
  }
};
}  // namespace std
