// Byte-stream IO abstraction for the socket datapath (DESIGN.md §9).
//
// Connection's read/write machinery — vectored reads into FrameDecoder tail
// spans, coalesced writev egress, watermark backpressure — is written
// against this interface so the exact same code runs over real nonblocking
// TCP sockets in production and over the seeded in-memory FaultSocket
// (src/fault/fault_socket.h) the invariant fuzzer replays deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "openflow/wire.h"  // MutableByteSpan

namespace dfi::net {

struct ConstByteSpan {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

enum class IoStatus : std::uint8_t {
  kOk,          // `bytes` were transferred (> 0)
  kWouldBlock,  // no progress possible now; wait for readiness
  kEof,         // orderly shutdown from the peer (reads only)
  kReset,       // connection reset / broken pipe
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

class SocketOps {
 public:
  virtual ~SocketOps() = default;

  // Scatter-read into up to `count` writable spans, in order.
  virtual IoResult read_vec(const MutableByteSpan* spans, std::size_t count) = 0;
  // Gather-write from up to `count` spans, in order. Partial writes are
  // normal; the caller retries the unwritten suffix on the next readiness.
  virtual IoResult write_vec(const ConstByteSpan* spans, std::size_t count) = 0;
  virtual void close() = 0;
  // Underlying descriptor for event-loop registration; -1 for in-memory
  // implementations (which are pumped manually instead).
  virtual int fd() const = 0;
};

// Real nonblocking TCP socket: readv/writev syscalls with errno mapped onto
// IoStatus. Takes ownership of an already-nonblocking descriptor.
class RealSocket final : public SocketOps {
 public:
  explicit RealSocket(int fd) : fd_(fd) {}
  ~RealSocket() override { close(); }

  RealSocket(const RealSocket&) = delete;
  RealSocket& operator=(const RealSocket&) = delete;

  IoResult read_vec(const MutableByteSpan* spans, std::size_t count) override;
  IoResult write_vec(const ConstByteSpan* spans, std::size_t count) override;
  void close() override;
  int fd() const override { return fd_; }

 private:
  int fd_ = -1;
};

// Set O_NONBLOCK (and TCP_NODELAY for TCP sockets — the proxy does its own
// coalescing, Nagle only adds latency). Returns false on fcntl failure.
bool make_nonblocking(int fd);

}  // namespace dfi::net
