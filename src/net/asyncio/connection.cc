#include "net/asyncio/connection.h"

#include <algorithm>

#include "common/logging.h"

namespace dfi::net {

Connection::Connection(EventLoop* loop, std::unique_ptr<SocketOps> socket,
                       Config config)
    : loop_(loop), socket_(std::move(socket)), config_(config) {}

Connection::~Connection() {
  *alive_ = false;
  closed_fn_ = nullptr;  // destruction is not a peer event
  close("destroyed");
}

bool Connection::start() {
  if (!loop_ || !socket_ || socket_->fd() < 0) return true;  // manual mode
  registered_ = loop_->add_fd(
      socket_->fd(), /*want_read=*/!reads_paused_, /*want_write=*/false,
      [this, alive = alive_](bool readable, bool writable, bool error) {
        if (*alive) handle_io(readable, writable, error);
      });
  return registered_;
}

void Connection::handle_io(bool readable, bool writable, bool error) {
  auto alive = alive_;
  if (writable && open_) flush();
  if (!*alive || !open_) return;
  if (readable || error) handle_readable();
  if (!*alive || !open_) return;
  // Errors are drained through the read path: reads report EOF/reset with
  // whatever bytes the kernel still buffered delivered first. But a paused
  // peer does not read (whether paused on entry or paused mid-batch by
  // backpressure), and edge-triggered epoll will not report the event
  // again — close now, or a connection whose peer died during backpressure
  // lingers until a resume that may never come.
  if (error && reads_paused_) close("peer error while paused");
}

void Connection::handle_readable() {
  if (!open_ || reads_paused_) return;
  auto alive = alive_;
  bool delivered = false;
  const char* fatal = nullptr;
  std::size_t consumed = 0;
  while (open_ && !reads_paused_) {
    MutableByteSpan spans[2];
    std::size_t span_count = 2;
    if (raw_fn_) {
      // Raw-byte mode: no decoder; read into the scratch buffer and hand
      // the chunk to the owner verbatim.
      if (raw_buf_.size() < config_.readv_min_bytes) {
        raw_buf_.resize(config_.readv_min_bytes);
      }
      spans[0] = {raw_buf_.data(), raw_buf_.size()};
      span_count = 1;
    } else {
      decoder_.writable_spans(config_.readv_min_bytes, spans);
    }
    const IoResult r = socket_->read_vec(spans, span_count);
    if (r.status == IoStatus::kWouldBlock) {
      ++stats_.would_block_reads;
      break;
    }
    if (r.status == IoStatus::kEof) {
      fatal = "peer closed";
      break;
    }
    if (r.status == IoStatus::kReset) {
      fatal = "connection reset";
      break;
    }
    if (r.bytes == 0) break;
    ++stats_.reads;
    stats_.read_bytes += r.bytes;
    if (raw_fn_) {
      delivered = true;
      raw_fn_(raw_buf_.data(), r.bytes);
      if (!*alive) return;
      if (!open_) break;
      consumed += r.bytes;
      if (consumed >= config_.read_budget_bytes) {
        if (loop_) {
          loop_->post([this, a = alive_] {
            if (*a) handle_readable();
          });
        }
        break;
      }
      continue;
    }
    decoder_.commit(r.bytes);
    FrameView view;
    bool stream_dead = false;
    for (;;) {
      const FrameStatus status = decoder_.next_frame(view);
      if (status == FrameStatus::kAwait) break;
      if (status == FrameStatus::kCorrupt) {
        if (corrupt_fn_) corrupt_fn_();
        if (!*alive) return;
        fatal = "corrupt framing";
        stream_dead = true;
        break;
      }
      ++stats_.frames_in;
      delivered = true;
      if (frame_fn_) frame_fn_(view);
      if (!*alive) return;
      if (!open_) break;
    }
    if (stream_dead || !open_) break;
    consumed += r.bytes;
    if (consumed >= config_.read_budget_bytes) {
      // Yield to other connections; edge-triggered readiness will not fire
      // again for bytes already pending, so resume via a posted
      // continuation.
      if (loop_) {
        loop_->post([this, a = alive_] {
          if (*a) handle_readable();
        });
      }
      break;
    }
  }
  if (!*alive) return;
  if (delivered && open_ && batch_end_fn_) batch_end_fn_();
  if (!*alive) return;
  if (fatal && open_) close(fatal);
}

bool Connection::send(std::vector<std::uint8_t> frame) {
  if (!open_ || frame.empty()) {
    const bool accepted = open_;
    release_frame(std::move(frame));
    return accepted;
  }
  if (egress_.size() >= config_.max_egress_frames) {
    ++stats_.send_rejected;
    release_frame(std::move(frame));
    return false;
  }
  egress_bytes_ += frame.size();
  egress_.push_back(std::move(frame));
  if (!backed_up_ && egress_bytes_ >= config_.egress_high_watermark) {
    set_backed_up(true);
    flush();  // try to relieve the queue immediately
  }
  return true;
}

void Connection::flush() {
  if (!open_ || in_flush_) return;
  in_flush_ = true;
  auto alive = alive_;
  ConstByteSpan spans[64];
  const std::size_t max_iovecs =
      std::min<std::size_t>(config_.writev_max_iovecs, 64);
  while (!egress_.empty()) {
    std::size_t n = 0;
    for (const auto& frame : egress_) {
      if (n >= max_iovecs) break;
      const std::size_t offset = (n == 0) ? egress_front_offset_ : 0;
      spans[n] = ConstByteSpan{frame.data() + offset, frame.size() - offset};
      ++n;
    }
    const IoResult r = socket_->write_vec(spans, n);
    if (r.status == IoStatus::kWouldBlock) {
      ++stats_.would_block_writes;
      if (!want_write_) {
        want_write_ = true;
        update_interest();
      }
      in_flush_ = false;
      return;
    }
    if (r.status != IoStatus::kOk) {
      in_flush_ = false;
      close("write reset");
      return;
    }
    if (r.bytes == 0) break;
    ++stats_.writes;
    stats_.write_bytes += r.bytes;
    std::size_t left = r.bytes;
    while (left > 0) {
      auto& front = egress_.front();
      const std::size_t remaining = front.size() - egress_front_offset_;
      if (left >= remaining) {
        left -= remaining;
        egress_bytes_ -= front.size();
        egress_front_offset_ = 0;
        ++stats_.frames_out;
        release_frame(std::move(front));
        egress_.pop_front();
      } else {
        egress_front_offset_ += left;
        left = 0;
      }
    }
  }
  if (want_write_ && egress_.empty()) {
    want_write_ = false;
    update_interest();
  }
  if (backed_up_ && egress_bytes_ <= config_.egress_low_watermark) {
    set_backed_up(false);
    if (!*alive) return;
  }
  in_flush_ = false;
}

void Connection::pause_reads() {
  if (reads_paused_) return;
  reads_paused_ = true;
  update_interest();
}

void Connection::resume_reads() {
  if (!reads_paused_) return;
  reads_paused_ = false;
  update_interest();
  // Bytes may have landed while interest was off; edge-triggered epoll will
  // not re-report them, so pump once. Manual-mode owners pump themselves.
  if (loop_ && open_) {
    loop_->post([this, a = alive_] {
      if (*a) handle_readable();
    });
  }
}

void Connection::close(const char* reason) {
  if (!open_) return;
  open_ = false;
  if (registered_ && loop_ && socket_) loop_->remove_fd(socket_->fd());
  registered_ = false;
  if (socket_) socket_->close();
  while (!egress_.empty()) {
    release_frame(std::move(egress_.front()));
    egress_.pop_front();
  }
  egress_bytes_ = 0;
  egress_front_offset_ = 0;
  if (close_observer_) {
    auto observer = std::move(close_observer_);
    observer();
  }
  if (closed_fn_) {
    auto fn = std::move(closed_fn_);
    fn(reason);
  }
}

void Connection::update_interest() {
  if (loop_ && registered_ && socket_) {
    loop_->set_interest(socket_->fd(), open_ && !reads_paused_, want_write_);
  }
}

void Connection::release_frame(std::vector<std::uint8_t> frame) {
  if (pool_ != nullptr) pool_->release(std::move(frame));
}

void Connection::set_backed_up(bool backed_up) {
  backed_up_ = backed_up;
  if (backed_up) {
    ++stats_.backpressure_pauses;
  } else {
    ++stats_.backpressure_resumes;
  }
  if (backpressure_fn_) backpressure_fn_(backed_up);
}

}  // namespace dfi::net
