// TCP accept/connect lifecycle for the socket datapath (DESIGN.md §9).
//
// The manager owns listeners and dial attempts; accepted/dialed sockets are
// wrapped into Connections and handed to the owner. Inbound accepts are
// gated by a total-connection cap and a per-IP limit (both counted; over-
// limit peers are closed on the spot). dial_supervised mirrors
// HealthMonitor::supervise_reconnect on the event-loop timer wheel: each
// failed connect re-arms at the monitor's capped jittered exponential
// backoff_delay(attempt), the component is held degraded (fail-secure)
// while the link is down, and the attempt ledger lands in HealthStats so
// the wall-clock transport and the in-process transport account reconnects
// identically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/result.h"
#include "core/health_monitor.h"
#include "net/asyncio/connection.h"
#include "net/asyncio/event_loop.h"

namespace dfi::net {

struct ConmanConfig {
  std::size_t max_connections = 1024;
  std::size_t per_ip_limit = 256;
  std::uint64_t connect_timeout_ms = 10 * 1000;
  // Re-arm delay after a transient accept() resource failure (EMFILE etc.):
  // the queued backlog will not re-edge an edge-triggered listener.
  std::uint64_t accept_retry_ms = 10;
  Connection::Config connection;
};

struct ConmanStats {
  std::uint64_t accepted = 0;
  std::uint64_t accept_retries = 0;  // transient accept failures re-armed
  std::uint64_t rejected_per_ip = 0;
  std::uint64_t rejected_capacity = 0;
  std::uint64_t dialed = 0;
  std::uint64_t dial_failures = 0;
  std::uint64_t closed = 0;
  std::uint64_t reconnect_attempts = 0;
  std::uint64_t reconnects_abandoned = 0;
};

class ConnectionManager {
 public:
  using AcceptFn =
      std::function<void(std::unique_ptr<Connection>, const std::string& peer_ip)>;
  // Receives the established connection, or nullptr when the dial failed
  // (or a supervised dial was abandoned after max_reconnect_attempts).
  using DialFn = std::function<void(std::unique_ptr<Connection>)>;

  ConnectionManager(EventLoop& loop, ConmanConfig config,
                    HealthMonitor* health = nullptr);
  ~ConnectionManager();

  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  // Bind + listen; port 0 picks an ephemeral port. Returns the bound port.
  Result<std::uint16_t> listen(const std::string& ip, std::uint16_t port,
                               AcceptFn on_accept);
  void close_listeners();

  // One nonblocking connect; on_result fires on the loop thread.
  void dial(const std::string& ip, std::uint16_t port, DialFn on_result);
  // Connect with supervised capped-exponential backoff (see file comment).
  void dial_supervised(const std::string& component, const std::string& ip,
                       std::uint16_t port, DialFn on_result);

  std::size_t connection_count() const { return live_connections_; }
  std::size_t per_ip_count(const std::string& ip) const;
  const ConmanStats& stats() const { return stats_; }

 private:
  struct SupervisedDial {
    std::string component;
    std::string ip;
    std::uint16_t port = 0;
    DialFn on_result;
    int attempt = 0;
    bool degraded_held = false;
  };

  void handle_accept(int listen_fd);
  // Wrap an established nonblocking socket; `peer_ip` empty for outbound.
  std::unique_ptr<Connection> adopt(int fd, const std::string& peer_ip);
  void try_supervised(std::shared_ptr<SupervisedDial> state);

  EventLoop& loop_;
  ConmanConfig config_;
  HealthMonitor* health_ = nullptr;

  std::unordered_map<int, AcceptFn> listeners_;
  // Nonblocking connects still in flight: reclaimed in the destructor so a
  // teardown mid-dial neither leaks the fd nor leaves its loop registration
  // dangling.
  std::unordered_set<int> pending_dial_fds_;
  std::unordered_map<std::string, std::size_t> per_ip_;
  std::size_t live_connections_ = 0;
  ConmanStats stats_;

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace dfi::net
