#include "net/asyncio/conman.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace dfi::net {

namespace {

int new_tcp_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0) make_nonblocking(fd);
  return fd;
}

bool fill_addr(const std::string& ip, std::uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return inet_pton(AF_INET, ip.c_str(), &addr->sin_addr) == 1;
}

std::string peer_ip_of(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return buf;
}

}  // namespace

ConnectionManager::ConnectionManager(EventLoop& loop, ConmanConfig config,
                                     HealthMonitor* health)
    : loop_(loop), config_(config), health_(health) {}

ConnectionManager::~ConnectionManager() {
  *alive_ = false;
  close_listeners();
  // Dials still in flight: their completion closures see !*alive_ and
  // return, so the fds must be reclaimed here — otherwise each one leaks
  // with a dangling event-loop registration.
  for (const int fd : pending_dial_fds_) {
    loop_.remove_fd(fd);
    ::close(fd);
  }
  pending_dial_fds_.clear();
}

Result<std::uint16_t> ConnectionManager::listen(const std::string& ip,
                                                std::uint16_t port,
                                                AcceptFn on_accept) {
  const int fd = new_tcp_socket();
  if (fd < 0) {
    return Result<std::uint16_t>::Fail(ErrorCode::kInternal, "socket() failed");
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  if (!fill_addr(ip, port, &addr)) {
    ::close(fd);
    return Result<std::uint16_t>::Fail(ErrorCode::kInvalidArgument,
                                       "bad listen address: " + ip);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Result<std::uint16_t>::Fail(ErrorCode::kInternal,
                                       "bind/listen failed: " + why);
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t bound = ntohs(addr.sin_port);
  if (!loop_.add_fd(fd, /*want_read=*/true, /*want_write=*/false,
                    [this, fd, alive = alive_](bool, bool, bool) {
                      if (*alive) handle_accept(fd);
                    })) {
    ::close(fd);
    return Result<std::uint16_t>::Fail(ErrorCode::kInternal,
                                       "event loop registration failed");
  }
  listeners_.emplace(fd, std::move(on_accept));
  return bound;
}

void ConnectionManager::close_listeners() {
  for (auto& [fd, fn] : listeners_) {
    loop_.remove_fd(fd);
    ::close(fd);
  }
  listeners_.clear();
}

void ConnectionManager::handle_accept(int listen_fd) {
  auto it = listeners_.find(listen_fd);
  if (it == listeners_.end()) return;
  // Edge-triggered: accept until EAGAIN so a burst of SYNs is fully drained.
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int fd = ::accept(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // backlog drained
      // Transient resource failure (EMFILE/ENFILE/ENOBUFS/ENOMEM): the
      // connections already queued in the backlog will not re-edge the
      // edge-triggered listener, so re-arm on a short timer instead of
      // stalling until a fresh SYN arrives.
      ++stats_.accept_retries;
      loop_.schedule_after_ms(config_.accept_retry_ms,
                              [this, alive = alive_, listen_fd] {
                                if (*alive) handle_accept(listen_fd);
                              });
      return;
    }
    const std::string ip = peer_ip_of(addr);
    if (live_connections_ >= config_.max_connections) {
      ++stats_.rejected_capacity;
      ::close(fd);
      continue;
    }
    auto per_ip = per_ip_.find(ip);
    if (per_ip != per_ip_.end() && per_ip->second >= config_.per_ip_limit) {
      ++stats_.rejected_per_ip;
      DFI_DEBUG << "conman: rejecting " << ip << ": per-IP limit "
                << config_.per_ip_limit << " reached";
      ::close(fd);
      continue;
    }
    make_nonblocking(fd);
    ++stats_.accepted;
    ++per_ip_[ip];
    auto conn = adopt(fd, ip);
    it->second(std::move(conn), ip);
    // The accept callback may have torn the listener down.
    it = listeners_.find(listen_fd);
    if (it == listeners_.end()) return;
  }
}

std::unique_ptr<Connection> ConnectionManager::adopt(int fd,
                                                     const std::string& peer_ip) {
  ++live_connections_;
  auto conn = std::make_unique<Connection>(&loop_, std::make_unique<RealSocket>(fd),
                                           config_.connection);
  conn->set_close_observer([this, alive = alive_, peer_ip] {
    if (!*alive) return;
    --live_connections_;
    ++stats_.closed;
    if (!peer_ip.empty()) {
      auto it = per_ip_.find(peer_ip);
      if (it != per_ip_.end() && --it->second == 0) per_ip_.erase(it);
    }
  });
  conn->start();
  return conn;
}

void ConnectionManager::dial(const std::string& ip, std::uint16_t port,
                             DialFn on_result) {
  ++stats_.dialed;
  const int fd = new_tcp_socket();
  sockaddr_in addr{};
  if (fd < 0 || !fill_addr(ip, port, &addr)) {
    if (fd >= 0) ::close(fd);
    ++stats_.dial_failures;
    on_result(nullptr);
    return;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) {
    on_result(adopt(fd, /*peer_ip=*/""));
    return;
  }
  if (errno != EINPROGRESS) {
    ::close(fd);
    ++stats_.dial_failures;
    on_result(nullptr);
    return;
  }
  // In flight: completion surfaces as writability (or an error event).
  struct Pending {
    DialFn on_result;
    EventLoop::TimerId timer = 0;
    bool done = false;
  };
  auto pending = std::make_shared<Pending>();
  pending->on_result = std::move(on_result);
  auto finish = [this, alive = alive_, fd, pending](bool ok) {
    // When the manager died mid-dial its destructor reclaimed the fd; the
    // late-firing closure must not touch it.
    if (!*alive || pending->done) return;
    pending->done = true;
    loop_.cancel_timer(pending->timer);
    loop_.remove_fd(fd);
    pending_dial_fds_.erase(fd);
    if (ok) {
      pending->on_result(adopt(fd, /*peer_ip=*/""));
    } else {
      ::close(fd);
      ++stats_.dial_failures;
      pending->on_result(nullptr);
    }
  };
  if (!loop_.add_fd(fd, /*want_read=*/false, /*want_write=*/true,
                    [fd, finish](bool, bool, bool error) {
                      int so_error = 0;
                      socklen_t len = sizeof(so_error);
                      getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
                      finish(!error && so_error == 0);
                    })) {
    ::close(fd);
    ++stats_.dial_failures;
    pending->on_result(nullptr);
    return;
  }
  pending_dial_fds_.insert(fd);
  pending->timer = loop_.schedule_after_ms(config_.connect_timeout_ms,
                                           [finish] { finish(false); });
}

void ConnectionManager::dial_supervised(const std::string& component,
                                        const std::string& ip, std::uint16_t port,
                                        DialFn on_result) {
  auto state = std::make_shared<SupervisedDial>();
  state->component = component;
  state->ip = ip;
  state->port = port;
  state->on_result = std::move(on_result);
  try_supervised(std::move(state));
}

void ConnectionManager::try_supervised(std::shared_ptr<SupervisedDial> state) {
  dial(state->ip, state->port,
       [this, alive = alive_, state](std::unique_ptr<Connection> conn) {
         if (!*alive) return;
         const std::string window = "reconnect:" + state->component;
         if (conn != nullptr) {
           if (state->degraded_held && health_ != nullptr) {
             health_->exit_degraded(window);
           }
           state->on_result(std::move(conn));
           return;
         }
         // First failure opens a degraded window (fail-secure: whatever this
         // link fed is not flowing) that stays open until the reconnect
         // lands or is abandoned — the same protocol as
         // HealthMonitor::supervise_reconnect.
         if (!state->degraded_held) {
           state->degraded_held = true;
           if (health_ != nullptr) health_->enter_degraded(window);
         }
         const int max_attempts =
             health_ != nullptr ? health_->config().max_reconnect_attempts : 8;
         if (max_attempts > 0 && state->attempt >= max_attempts) {
           ++stats_.reconnects_abandoned;
           if (health_ != nullptr) {
             health_->count_reconnect_abandoned();
             health_->exit_degraded(window);
           }
           DFI_WARN << "conman: reconnect of " << state->component
                    << " abandoned after " << state->attempt << " attempts";
           state->on_result(nullptr);
           return;
         }
         std::uint64_t delay_ms = 100;
         if (health_ != nullptr) {
           const double ms = health_->backoff_delay(state->attempt).to_ms();
           delay_ms = ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms);
         }
         ++state->attempt;
         loop_.schedule_after_ms(delay_ms, [this, alive, state] {
           if (!*alive) return;
           ++stats_.reconnect_attempts;
           if (health_ != nullptr) health_->count_backoff_retry();
           try_supervised(state);
         });
       });
}

std::size_t ConnectionManager::per_ip_count(const std::string& ip) const {
  auto it = per_ip_.find(ip);
  return it == per_ip_.end() ? 0 : it->second;
}

}  // namespace dfi::net
