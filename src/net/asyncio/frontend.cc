#include "net/asyncio/frontend.h"

#include "common/logging.h"

namespace dfi::net {

SocketFrontend::SocketFrontend(EventLoop& loop, DfiSystem& system,
                               FrontendConfig config)
    : loop_(loop),
      system_(system),
      config_(std::move(config)),
      conman_(loop, config_.conman, &system.health()) {}

SocketFrontend::~SocketFrontend() {
  *alive_ = false;
  for (auto& [id, peer] : peers_) {
    if (peer->session != nullptr) {
      system_.proxy().destroy_session(*peer->session);
      peer->session = nullptr;
    }
  }
  peers_.clear();
}

Result<std::uint16_t> SocketFrontend::start() {
  auto port = conman_.listen(
      config_.listen_ip, config_.listen_port,
      [this, alive = alive_](std::unique_ptr<Connection> conn,
                             const std::string& peer_ip) {
        if (*alive) on_switch_accepted(std::move(conn), peer_ip);
      });
  if (port.ok()) arm_tick();
  return port;
}

void SocketFrontend::on_switch_accepted(std::unique_ptr<Connection> conn,
                                        const std::string& peer_ip) {
  const std::uint64_t id = next_peer_id_++;
  auto peer = std::make_unique<Peer>();
  peer->id = id;
  peer->switch_conn = std::move(conn);
  peer->switch_conn->set_frame_pool(&system_.proxy().buffer_pool());
  // No session yet: hold the switch's bytes in the kernel until the
  // controller link is up (fail-secure — nothing flows unproxied).
  peer->switch_conn->pause_reads();
  peer->switch_conn->on_closed([this, alive = alive_, id](const char* reason) {
    if (*alive) sever_peer(id, reason);
  });
  peers_.emplace(id, std::move(peer));
  DFI_DEBUG << "frontend: switch connection from " << peer_ip << " as peer " << id;
  conman_.dial_supervised(
      "controller-link:" + std::to_string(id), config_.controller_ip,
      config_.controller_port,
      [this, alive = alive_, id](std::unique_ptr<Connection> link) {
        if (*alive) on_controller_link(id, std::move(link));
      });
}

void SocketFrontend::on_controller_link(std::uint64_t peer_id,
                                        std::unique_ptr<Connection> conn) {
  auto it = peers_.find(peer_id);
  if (it == peers_.end() || it->second->closing) return;  // severed meanwhile
  if (conn == nullptr) {
    ++stats_.controller_dials_failed;
    sever_peer(peer_id, "controller unreachable");
    return;
  }
  it->second->controller_conn = std::move(conn);
  it->second->controller_conn->set_frame_pool(&system_.proxy().buffer_pool());
  bind_session(*it->second);
}

void SocketFrontend::bind_session(Peer& peer) {
  Peer* p = &peer;
  const std::uint64_t id = peer.id;
  auto& proxy = system_.proxy();
  auto& pool = proxy.buffer_pool();

  // SendFns run only while the session is alive, which sever_peer ends
  // before the Peer goes away — so capturing the Peer raw is safe, and the
  // closing flag guards the sever window itself.
  auto deliver = [this, id, &pool](Peer* target, const bool to_switch,
                                   const std::vector<std::uint8_t>& bytes) {
    if (target->closing) return;
    Connection* out =
        to_switch ? target->switch_conn.get() : target->controller_conn.get();
    if (out == nullptr ||
        !out->send(pool.acquire_copy(bytes.data(), bytes.size()))) {
      // We are on the session's own SendFn stack here: sever_peer only
      // marks the peer closing and defers the session destruction, so the
      // std::function currently executing is never freed under itself.
      sever_peer(id, "egress overflow");
      return;
    }
    dirty_peers_.insert(id);
  };
  peer.session = &proxy.create_session(
      [deliver, p](const std::vector<std::uint8_t>& bytes) {
        deliver(p, /*to_switch=*/true, bytes);
      },
      [deliver, p](const std::vector<std::uint8_t>& bytes) {
        deliver(p, /*to_switch=*/false, bytes);
      });
  ++stats_.sessions_opened;

  auto batch_end = [this, p](const bool from_switch) {
    if (p->closing || p->session == nullptr) return;
    if (from_switch) {
      p->session->switch_batch_end();
    } else {
      p->session->controller_batch_end();
    }
    // Deliver everything the batch deferred (possibly into *other* peers'
    // egress queues — the simulator is shared), then push exactly the peers
    // that received egress to the wire.
    system_.pump();
    flush_dirty();
  };

  Connection& sw = *peer.switch_conn;
  sw.on_frame([p](const FrameView& view) {
    if (!p->closing && p->session != nullptr) p->session->switch_frame(view);
  });
  sw.on_batch_end([batch_end] { batch_end(true); });
  sw.on_corrupt([p] {
    if (!p->closing && p->session != nullptr) p->session->switch_stream_corrupt();
  });
  sw.on_backpressure([this, p](bool backed_up) {
    // Switch egress backing up: throttle its producer, the controller read.
    if (p->closing || p->controller_conn == nullptr) return;
    if (backed_up) {
      ++stats_.peer_pauses;
      p->controller_conn->pause_reads();
    } else {
      p->controller_conn->resume_reads();
    }
  });

  Connection& ct = *peer.controller_conn;
  ct.on_frame([p](const FrameView& view) {
    if (!p->closing && p->session != nullptr) p->session->controller_frame(view);
  });
  ct.on_batch_end([batch_end] { batch_end(false); });
  ct.on_corrupt([p] {
    if (!p->closing && p->session != nullptr) {
      p->session->controller_stream_corrupt();
    }
  });
  ct.on_closed([this, alive = alive_, id](const char* reason) {
    if (*alive) sever_peer(id, reason);
  });
  ct.on_backpressure([this, p](bool backed_up) {
    if (p->closing || p->switch_conn == nullptr) return;
    if (backed_up) {
      ++stats_.peer_pauses;
      p->switch_conn->pause_reads();
    } else {
      p->switch_conn->resume_reads();
    }
  });

  // Session bound: let the switch's handshake flow.
  peer.switch_conn->resume_reads();
}

void SocketFrontend::sever_peer(std::uint64_t peer_id, const char* reason) {
  auto it = peers_.find(peer_id);
  if (it == peers_.end()) return;
  Peer* p = it->second.get();
  if (p->closing) return;
  // Mark first: every further delivery, frame callback and backpressure
  // callback on this peer no-ops from here on. The teardown itself is
  // deferred one loop turn because this may be running inside the session's
  // own SendFn (egress overflow) or a Connection's handle_io — destroying
  // the session here would free the std::function currently executing, and
  // destroying the Connection would free the object whose method is on the
  // stack.
  p->closing = true;
  DFI_DEBUG << "frontend: severing peer " << peer_id << " (" << reason << ")";
  loop_.post([this, alive = alive_, peer_id, reason] {
    if (*alive) finish_sever(peer_id, reason);
  });
}

void SocketFrontend::finish_sever(std::uint64_t peer_id, const char* reason) {
  auto it = peers_.find(peer_id);
  if (it == peers_.end()) return;
  Peer* p = it->second.get();
  if (p->session != nullptr) {
    // Session-first teardown: the liveness token turns every outstanding
    // deferred delivery and in-flight decision callback into a no-op.
    system_.proxy().destroy_session(*p->session);
    p->session = nullptr;
    ++stats_.sessions_closed;
  }
  if (p->switch_conn) p->switch_conn->close(reason);
  if (p->controller_conn) p->controller_conn->close(reason);
  // Posted context: no SendFn or Connection frame is on the stack (close()
  // above re-enters sever_peer via closed_fn, which no-ops on the closing
  // flag), so the Peer and its Connections can be freed right here.
  peers_.erase(it);
}

void SocketFrontend::flush_dirty() {
  if (dirty_peers_.empty()) return;
  // deliver() may dirty peers again while a flush runs; swap the set out so
  // the iteration stays stable.
  auto dirty = std::move(dirty_peers_);
  dirty_peers_.clear();
  for (const std::uint64_t id : dirty) {
    auto it = peers_.find(id);
    if (it == peers_.end()) continue;
    if (it->second->switch_conn) it->second->switch_conn->flush();
    if (it->second->controller_conn) it->second->controller_conn->flush();
  }
}

void SocketFrontend::arm_tick() {
  if (config_.tick_ms == 0) return;
  loop_.schedule_after_ms(config_.tick_ms, [this, alive = alive_] {
    if (!*alive) return;
    system_.pump();
    system_.health().poll();
    flush_dirty();
    arm_tick();
  });
}

}  // namespace dfi::net
