#include "net/asyncio/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include "common/logging.h"

namespace dfi::net {

namespace {

std::uint64_t monotonic_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000;
}

bool set_nonblocking_fd(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

EventLoop::EventLoop(EventLoopConfig config) : config_(config) {
#if defined(__linux__)
  if (config_.backend == EventLoopConfig::Backend::kEpoll) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ >= 0) {
      use_epoll_ = true;
      wake_read_fd_ = wake_write_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = wake_read_fd_;
      epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev);
    } else {
      DFI_WARN << "event_loop: epoll_create1 failed (" << std::strerror(errno)
               << "), falling back to poll()";
    }
  }
#endif
  if (!use_epoll_) {
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) == 0) {
      set_nonblocking_fd(pipe_fds[0]);
      set_nonblocking_fd(pipe_fds[1]);
      wake_read_fd_ = pipe_fds[0];
      wake_write_fd_ = pipe_fds[1];
    }
  }
}

EventLoop::~EventLoop() {
  if (use_epoll_) {
    if (wake_read_fd_ >= 0) ::close(wake_read_fd_);  // eventfd: one descriptor
  } else {
    if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
    if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::uint64_t EventLoop::now_ms() const { return monotonic_ms(); }

bool EventLoop::backend_add(int fd, bool want_read, bool want_write) {
#if defined(__linux__)
  if (use_epoll_) {
    epoll_event ev{};
    ev.events = EPOLLET | (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
#endif
  (void)fd;
  (void)want_read;
  (void)want_write;
  return true;  // poll(): interest lives in fds_, rebuilt every poll
}

bool EventLoop::backend_mod(int fd, bool want_read, bool want_write) {
#if defined(__linux__)
  if (use_epoll_) {
    epoll_event ev{};
    ev.events = EPOLLET | (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    // EPOLL_CTL_MOD re-arms edge-triggered readiness: still-pending input
    // is reported again, which is what resume-after-backpressure relies on.
    return epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }
#endif
  (void)fd;
  (void)want_read;
  (void)want_write;
  return true;
}

void EventLoop::backend_del(int fd) {
#if defined(__linux__)
  if (use_epoll_) epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  (void)fd;
}

bool EventLoop::add_fd(int fd, bool want_read, bool want_write, FdHandler handler) {
  if (fd < 0 || fds_.count(fd) != 0) return false;
  if (!backend_add(fd, want_read, want_write)) return false;
  auto entry = std::make_shared<FdEntry>();
  entry->handler = std::move(handler);
  entry->want_read = want_read;
  entry->want_write = want_write;
  entry->generation = next_generation_++;
  fds_.emplace(fd, std::move(entry));
  return true;
}

bool EventLoop::set_interest(int fd, bool want_read, bool want_write) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return false;
  if (it->second->want_read == want_read && it->second->want_write == want_write) {
    return true;
  }
  if (!backend_mod(fd, want_read, want_write)) return false;
  it->second->want_read = want_read;
  it->second->want_write = want_write;
  return true;
}

void EventLoop::remove_fd(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  backend_del(fd);
  // Safe even from inside this fd's own handler: the dispatch loop holds a
  // shared_ptr to the entry, so the executing closure outlives the erase.
  fds_.erase(it);
}

EventLoop::TimerId EventLoop::schedule_after_ms(std::uint64_t delay_ms,
                                                std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  const std::uint64_t deadline = now_ms() + delay_ms;
  const std::size_t slot = deadline % kWheelSlots;
  wheel_[slot].push_back(TimerEntry{id, deadline, std::move(fn)});
  timer_slot_of_.emplace(id, slot);
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  auto it = timer_slot_of_.find(id);
  if (it == timer_slot_of_.end()) return;
  auto& slot = wheel_[it->second];
  for (std::size_t i = 0; i < slot.size(); ++i) {
    if (slot[i].id == id) {
      slot[i] = std::move(slot.back());
      slot.pop_back();
      break;
    }
  }
  timer_slot_of_.erase(it);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::wake() {
  if (wake_write_fd_ < 0) return;
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t n = ::write(wake_write_fd_, &one, use_epoll_ ? 8 : 1);
    if (n >= 0 || errno != EINTR) break;  // EAGAIN: already pending, fine
  }
}

void EventLoop::drain_wake_fd() {
  std::uint8_t buf[64];
  while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
  ++stats_.wakeups;
}

void EventLoop::run_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) {
    ++stats_.tasks_posted;
    fn();
  }
}

void EventLoop::fire_due_timers() {
  if (timer_slot_of_.empty()) return;
  const std::uint64_t now = now_ms();
  std::vector<std::function<void()>> due;
  for (auto& slot : wheel_) {
    for (std::size_t i = 0; i < slot.size();) {
      if (slot[i].deadline_ms <= now) {
        timer_slot_of_.erase(slot[i].id);
        due.push_back(std::move(slot[i].fn));
        slot[i] = std::move(slot.back());
        slot.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (auto& fn : due) {
    ++stats_.timers_fired;
    fn();
  }
}

int EventLoop::next_timer_timeout() const {
  if (timer_slot_of_.empty()) return -1;
  std::uint64_t soonest = UINT64_MAX;
  for (const auto& slot : wheel_) {
    for (const auto& entry : slot) soonest = std::min(soonest, entry.deadline_ms);
  }
  const std::uint64_t now = monotonic_ms();
  if (soonest <= now) return 0;
  return static_cast<int>(std::min<std::uint64_t>(soonest - now, 60 * 1000));
}

int EventLoop::poll_backend(int timeout_ms) {
  dispatch_scratch_.clear();
#if defined(__linux__)
  if (use_epoll_) {
    epoll_events_buf_.resize(config_.max_events_per_poll * sizeof(epoll_event));
    auto* events = reinterpret_cast<epoll_event*>(epoll_events_buf_.data());
    int n;
    do {
      n = epoll_wait(epoll_fd_, events, static_cast<int>(config_.max_events_per_poll),
                     timeout_ms);
    } while (n < 0 && errno == EINTR);
    ++stats_.polls;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_read_fd_) {
        drain_wake_fd();
        continue;
      }
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;
      dispatch_scratch_.push_back(PendingDispatch{
          fd, it->second->generation, (events[i].events & EPOLLIN) != 0,
          (events[i].events & EPOLLOUT) != 0,
          (events[i].events & (EPOLLERR | EPOLLHUP)) != 0});
    }
    return n < 0 ? 0 : n;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size() + 1);
  pfds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
  for (const auto& [fd, entry] : fds_) {
    short events = 0;
    if (entry->want_read) events |= POLLIN;
    if (entry->want_write) events |= POLLOUT;
    pfds.push_back(pollfd{fd, events, 0});
  }
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  ++stats_.polls;
  if (n <= 0) return 0;
  if ((pfds[0].revents & POLLIN) != 0) drain_wake_fd();
  for (std::size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    auto it = fds_.find(pfds[i].fd);
    if (it == fds_.end()) continue;
    dispatch_scratch_.push_back(PendingDispatch{
        pfds[i].fd, it->second->generation, (pfds[i].revents & POLLIN) != 0,
        (pfds[i].revents & POLLOUT) != 0,
        (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0});
  }
  return n;
}

int EventLoop::run_once(int timeout_ms) {
  int timeout = timeout_ms;
  const int timer_timeout = next_timer_timeout();
  if (timer_timeout >= 0 && (timeout < 0 || timer_timeout < timeout)) {
    timeout = timer_timeout;
  }
  {
    // Posted work must not wait for fd traffic.
    std::lock_guard<std::mutex> lock(posted_mutex_);
    if (!posted_.empty()) timeout = 0;
  }
  poll_backend(timeout);
  run_posted();
  fire_due_timers();
  int dispatched = 0;
  for (const auto& pending : dispatch_scratch_) {
    auto it = fds_.find(pending.fd);
    // A handler earlier in the batch may have removed (or removed and
    // re-registered) this descriptor; the generation check drops stale
    // readiness aimed at the old registration.
    if (it == fds_.end() || it->second->generation != pending.generation) continue;
    ++stats_.fd_dispatches;
    ++dispatched;
    // Hold the entry across the call: the handler may remove its own fd.
    const std::shared_ptr<FdEntry> entry = it->second;
    entry->handler(pending.readable, pending.writable, pending.error);
  }
  dispatch_scratch_.clear();
  return dispatched;
}

void EventLoop::run() {
  stop_requested_ = false;
  while (!stop_requested_) run_once(-1);
}

void EventLoop::stop() {
  post([this] { stop_requested_ = true; });
}

}  // namespace dfi::net
