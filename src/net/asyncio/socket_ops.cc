#include "net/asyncio/socket_ops.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>

namespace dfi::net {

namespace {

constexpr std::size_t kMaxIovecs = 64;

IoResult map_errno() {
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    return IoResult{IoStatus::kWouldBlock, 0};
  }
  return IoResult{IoStatus::kReset, 0};
}

}  // namespace

IoResult RealSocket::read_vec(const MutableByteSpan* spans, std::size_t count) {
  iovec iov[kMaxIovecs];
  std::size_t n = 0;
  for (std::size_t i = 0; i < count && n < kMaxIovecs; ++i) {
    if (spans[i].size == 0) continue;
    iov[n].iov_base = spans[i].data;
    iov[n].iov_len = spans[i].size;
    ++n;
  }
  if (n == 0) return IoResult{IoStatus::kOk, 0};
  ssize_t got;
  do {
    got = ::readv(fd_, iov, static_cast<int>(n));
  } while (got < 0 && errno == EINTR);
  if (got < 0) return map_errno();
  if (got == 0) return IoResult{IoStatus::kEof, 0};
  return IoResult{IoStatus::kOk, static_cast<std::size_t>(got)};
}

IoResult RealSocket::write_vec(const ConstByteSpan* spans, std::size_t count) {
  iovec iov[kMaxIovecs];
  std::size_t n = 0;
  for (std::size_t i = 0; i < count && n < kMaxIovecs; ++i) {
    if (spans[i].size == 0) continue;
    iov[n].iov_base = const_cast<std::uint8_t*>(spans[i].data);
    iov[n].iov_len = spans[i].size;
    ++n;
  }
  if (n == 0) return IoResult{IoStatus::kOk, 0};
  // sendmsg + MSG_NOSIGNAL instead of writev: a peer that RSTs mid-stream
  // must surface as kReset on this connection, not SIGPIPE the process.
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = n;
  ssize_t put;
  do {
    put = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
  } while (put < 0 && errno == EINTR);
  if (put < 0) return map_errno();
  return IoResult{IoStatus::kOk, static_cast<std::size_t>(put)};
}

void RealSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool make_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) return false;
  const int one = 1;
  // Best-effort: fails harmlessly on non-TCP descriptors.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

}  // namespace dfi::net
