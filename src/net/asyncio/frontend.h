// Socket front end for the DFI proxy (DESIGN.md §9).
//
// One SocketFrontend turns the in-process DfiSystem into a network service:
// it listens for switch connections, dials the real controller for each
// accepted switch (supervised capped-exponential backoff, degraded while
// down), and binds the pair to a DfiProxy::Session — the Connection is just
// another byte-stream endpoint behind the session's liveness token.
//
// Data flow per peer pair:
//   switch readv  -> FrameDecoder spans -> Session::switch_frame (zero-copy
//                    FrameView into classify()) ... batch end -> flush the
//                    Packet-in run, pump the system, writev both egresses
//   session SendFn -> pooled acquire_copy -> Connection::send -> coalesced
//                    writev; the frame returns to the proxy's pool after
//                    the write (or at close) — zero steady-state allocation
//
// Backpressure: when a peer's egress crosses its high watermark, the
// frontend pauses reads on the *opposite* connection of the pair (the one
// producing the bytes) and resumes them at the low watermark.
//
// Teardown is session-first and fail-secure: any close — switch side,
// controller side, send overflow — marks the peer closing on the spot
// (every further delivery and frame callback no-ops) and finishes one loop
// turn later: destroy the proxy session (outstanding deferred deliveries
// no-op via the liveness token) and close both sockets. The deferral is
// load-bearing — a sever can be requested from inside the session's own
// SendFn (egress overflow) or a Connection's handle_io, and destroying
// either from its own stack is use-after-free. The switch is expected to
// reconnect, which replays the handshake and re-registers with the PCP
// (Table-0 resync on recovery).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/result.h"
#include "core/dfi_system.h"
#include "net/asyncio/conman.h"
#include "net/asyncio/connection.h"
#include "net/asyncio/event_loop.h"

namespace dfi::net {

struct FrontendConfig {
  std::string listen_ip = "127.0.0.1";
  std::uint16_t listen_port = 0;  // 0: ephemeral (start() returns it)
  std::string controller_ip = "127.0.0.1";
  std::uint16_t controller_port = 6653;
  ConmanConfig conman;
  // Periodic DfiSystem::pump() + HealthMonitor::poll() tick on the timer
  // wheel: drains threaded-backend completions that finish between read
  // batches and keeps heartbeat deadlines evaluated. 0 disables.
  std::uint64_t tick_ms = 1;
};

struct FrontendStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t controller_dials_failed = 0;  // supervised dial abandoned
  std::uint64_t peer_pauses = 0;              // backpressure read pauses
};

class SocketFrontend {
 public:
  SocketFrontend(EventLoop& loop, DfiSystem& system, FrontendConfig config);
  ~SocketFrontend();

  SocketFrontend(const SocketFrontend&) = delete;
  SocketFrontend& operator=(const SocketFrontend&) = delete;

  // Bind the switch-side listener. Returns the bound port.
  Result<std::uint16_t> start();

  std::size_t peer_count() const { return peers_.size(); }
  ConnectionManager& conman() { return conman_; }
  const FrontendStats& stats() const { return stats_; }

 private:
  struct Peer {
    std::uint64_t id = 0;
    std::unique_ptr<Connection> switch_conn;
    std::unique_ptr<Connection> controller_conn;
    DfiProxy::Session* session = nullptr;
    bool closing = false;
  };

  void on_switch_accepted(std::unique_ptr<Connection> conn,
                          const std::string& peer_ip);
  void on_controller_link(std::uint64_t peer_id, std::unique_ptr<Connection> conn);
  void bind_session(Peer& peer);
  // Marks the peer closing immediately; the actual teardown runs on a
  // posted continuation (see finish_sever) because a sever can be requested
  // from deep inside the peer's own callback stack.
  void sever_peer(std::uint64_t peer_id, const char* reason);
  void finish_sever(std::uint64_t peer_id, const char* reason);
  // Flush egress of exactly the peers deliver() touched since the last call.
  void flush_dirty();
  void arm_tick();

  EventLoop& loop_;
  DfiSystem& system_;
  FrontendConfig config_;
  ConnectionManager conman_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Peer>> peers_;
  // Peers whose egress queues deliver() fed since the last flush_dirty():
  // batch-end flushing walks only these, not every live peer.
  std::unordered_set<std::uint64_t> dirty_peers_;
  std::uint64_t next_peer_id_ = 1;
  FrontendStats stats_;

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace dfi::net
