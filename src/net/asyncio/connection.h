// One framed byte-stream peer on the socket datapath (DESIGN.md §9).
//
// Read path: readv() straight into the owned FrameDecoder's writable tail
// spans (no intermediate chunk copy), then pop complete frames and hand
// each FrameView to the owner — the same zero-copy classify() fast path the
// in-process transport feeds. Write path: a bounded egress queue of pooled
// frames flushed as one writev() of up to 64 coalesced iovecs; partially
// written frames retry from their offset on the next writability.
//
// Backpressure: when queued egress crosses the high watermark the
// connection reports backed_up=true (and the owner pauses the peer feeding
// it); dropping below the low watermark reports backed_up=false. A full
// bounded queue (max_egress_frames) fails send() — the owner severs, it
// never blocks.
//
// Threading: a Connection lives on its event loop's thread. With a null
// loop it runs in "manual mode" — the owner calls handle_io()/flush()
// directly — which is how the single-threaded invariant fuzzer drives the
// exact production read/write machinery over seeded FaultSockets.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/frame_buffer_pool.h"
#include "net/asyncio/event_loop.h"
#include "net/asyncio/socket_ops.h"
#include "openflow/wire.h"

namespace dfi::net {

class Connection {
 public:
  struct Config {
    std::size_t egress_high_watermark = 256 * 1024;
    std::size_t egress_low_watermark = 64 * 1024;
    std::size_t max_egress_frames = 8192;
    // Per-handle_readable byte budget: a firehose peer yields the loop to
    // other connections and resumes via a posted continuation.
    std::size_t read_budget_bytes = 256 * 1024;
    // Floor for the decoder tail span handed to each readv.
    std::size_t readv_min_bytes = 16 * 1024;
    std::size_t writev_max_iovecs = 64;
  };

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t read_bytes = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t writes = 0;
    std::uint64_t write_bytes = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t would_block_reads = 0;
    std::uint64_t would_block_writes = 0;
    std::uint64_t backpressure_pauses = 0;
    std::uint64_t backpressure_resumes = 0;
    std::uint64_t send_rejected = 0;  // bounded queue full
  };

  using FrameFn = std::function<void(const FrameView&)>;
  using RawFn = std::function<void(const std::uint8_t* data, std::size_t size)>;
  using BatchEndFn = std::function<void()>;
  using CorruptFn = std::function<void()>;
  using ClosedFn = std::function<void(const char* reason)>;
  using BackpressureFn = std::function<void(bool backed_up)>;

  // loop may be null (manual mode). The socket must already be nonblocking.
  Connection(EventLoop* loop, std::unique_ptr<SocketOps> socket, Config config);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Wire the owner in, then call start() to register with the loop.
  void on_frame(FrameFn fn) { frame_fn_ = std::move(fn); }
  // Raw-byte mode: the stream is NOT OpenFlow (e.g. the replication
  // journal stream) — bypass the FrameDecoder entirely and hand every read
  // chunk to `fn` as-is. The owner does its own framing. Mutually
  // exclusive with on_frame; set before start().
  void set_raw_mode(RawFn fn) { raw_fn_ = std::move(fn); }
  bool raw_mode() const { return static_cast<bool>(raw_fn_); }
  void on_batch_end(BatchEndFn fn) { batch_end_fn_ = std::move(fn); }
  void on_corrupt(CorruptFn fn) { corrupt_fn_ = std::move(fn); }
  // closed_fn must not destroy the Connection synchronously — defer the
  // deletion (loop->post) instead; it may still be mid-handle_io.
  void on_closed(ClosedFn fn) { closed_fn_ = std::move(fn); }
  void on_backpressure(BackpressureFn fn) { backpressure_fn_ = std::move(fn); }
  // conman's per-IP accounting hook, kept separate from the owner's
  // on_closed so neither overwrites the other.
  void set_close_observer(std::function<void()> fn) {
    close_observer_ = std::move(fn);
  }
  // Frames passed to send() return to this pool once written (or dropped at
  // close). Null: they are simply destroyed.
  void set_frame_pool(FrameBufferPool* pool) { pool_ = pool; }

  bool start();  // registers with the loop; no-op in manual mode

  // Queue one frame (or coalesced multi-frame buffer) for egress. False
  // when the connection is closed or the bounded queue is full — the caller
  // treats that as a sever. Does not write; call flush() at batch
  // boundaries (crossing the high watermark flushes eagerly).
  bool send(std::vector<std::uint8_t> frame);
  void flush();

  void pause_reads();
  void resume_reads();

  void close(const char* reason);

  // Loop callback; also the manual-mode pump.
  void handle_io(bool readable, bool writable, bool error = false);

  bool open() const { return open_; }
  bool reads_paused() const { return reads_paused_; }
  bool backed_up() const { return backed_up_; }
  std::size_t pending_egress_bytes() const { return egress_bytes_; }
  std::size_t pending_egress_frames() const { return egress_.size(); }
  int fd() const { return socket_ ? socket_->fd() : -1; }
  const Stats& stats() const { return stats_; }

 private:
  void handle_readable();
  void update_interest();
  void release_frame(std::vector<std::uint8_t> frame);
  void set_backed_up(bool backed_up);

  EventLoop* loop_ = nullptr;
  std::unique_ptr<SocketOps> socket_;
  Config config_;
  FrameDecoder decoder_;

  FrameFn frame_fn_;
  RawFn raw_fn_;
  std::vector<std::uint8_t> raw_buf_;  // raw-mode read scratch
  BatchEndFn batch_end_fn_;
  CorruptFn corrupt_fn_;
  ClosedFn closed_fn_;
  BackpressureFn backpressure_fn_;
  std::function<void()> close_observer_;
  FrameBufferPool* pool_ = nullptr;

  std::deque<std::vector<std::uint8_t>> egress_;
  std::size_t egress_front_offset_ = 0;  // bytes of egress_.front() written
  std::size_t egress_bytes_ = 0;
  bool want_write_ = false;
  bool backed_up_ = false;
  bool reads_paused_ = false;
  bool open_ = true;
  bool registered_ = false;
  bool in_flush_ = false;

  // Posted read continuations and deferred closures capture this instead of
  // trusting `this` — the same liveness-token discipline as proxy sessions.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  Stats stats_;
};

}  // namespace dfi::net
