// Nonblocking reactor for the socket datapath (DESIGN.md §9).
//
// Edge-triggered epoll on Linux, with a level-triggered poll() fallback
// selectable at construction (used on platforms without epoll and by tests
// that pin the fallback — connection code loops to EAGAIN, so it is correct
// under either trigger mode). One loop is single-threaded: fd handlers,
// timers and posted closures all run on the thread inside run()/run_once().
// The only cross-thread entry point is post(), which enqueues a closure
// under a mutex and kicks the loop awake through an eventfd (a self-pipe
// under the poll fallback) — this is how the shard-pool control thread
// injects egress without touching connection state from the wrong thread.
//
// Timers live on a 256-slot hashed wheel keyed by absolute monotonic
// milliseconds: insert and cancel are O(1), expiry scans only the slots
// (bounded, cheap at our scale). The wheel is what drives HealthMonitor
// heartbeat deadlines and conman's capped-exponential reconnect backoff.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dfi::net {

struct EventLoopConfig {
  enum class Backend : std::uint8_t { kEpoll, kPoll };
#if defined(__linux__)
  Backend backend = Backend::kEpoll;
#else
  Backend backend = Backend::kPoll;
#endif
  std::size_t max_events_per_poll = 256;
};

struct EventLoopStats {
  std::uint64_t polls = 0;
  std::uint64_t fd_dispatches = 0;
  std::uint64_t timers_fired = 0;
  std::uint64_t tasks_posted = 0;
  std::uint64_t wakeups = 0;  // cross-thread kicks observed
};

class EventLoop {
 public:
  // (readable, writable, error) — error covers EPOLLERR/EPOLLHUP; handlers
  // should read to EOF and close.
  using FdHandler = std::function<void(bool, bool, bool)>;
  using TimerId = std::uint64_t;

  explicit EventLoop(EventLoopConfig config = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Register a descriptor. The handler stays owned by the loop until
  // remove_fd. Returns false if registration with the backend failed.
  bool add_fd(int fd, bool want_read, bool want_write, FdHandler handler);
  bool set_interest(int fd, bool want_read, bool want_write);
  void remove_fd(int fd);

  // One-shot timer on the wheel; fires on the loop thread. cancel_timer on
  // an already-fired id is a no-op.
  TimerId schedule_after_ms(std::uint64_t delay_ms, std::function<void()> fn);
  void cancel_timer(TimerId id);

  // Thread-safe: enqueue a closure to run on the loop thread and wake it.
  void post(std::function<void()> fn);

  // Poll once (timeout_ms < 0 blocks until the next timer/posted task/fd
  // event) and dispatch. Returns the number of fd events dispatched.
  int run_once(int timeout_ms = -1);
  // run_once until stop(). stop() is thread-safe.
  void run();
  void stop();

  std::uint64_t now_ms() const;
  std::size_t fd_count() const { return fds_.size(); }
  std::size_t timer_count() const { return timer_slot_of_.size(); }
  const EventLoopStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kWheelSlots = 256;

  struct FdEntry {
    FdHandler handler;
    bool want_read = false;
    bool want_write = false;
    std::uint64_t generation = 0;
  };
  struct TimerEntry {
    TimerId id = 0;
    std::uint64_t deadline_ms = 0;
    std::function<void()> fn;
  };

  bool backend_add(int fd, bool want_read, bool want_write);
  bool backend_mod(int fd, bool want_read, bool want_write);
  void backend_del(int fd);
  void wake();
  void drain_wake_fd();
  void run_posted();
  void fire_due_timers();
  // Milliseconds until the nearest timer deadline, or -1 if none.
  int next_timer_timeout() const;
  int poll_backend(int timeout_ms);  // returns dispatched fd events

  EventLoopConfig config_;
  bool use_epoll_ = false;
  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;   // eventfd (both ends equal) or pipe read end
  int wake_write_fd_ = -1;  // eventfd or pipe write end
  bool stop_requested_ = false;

  // Entries are shared_ptr so a handler that removes its own fd mid-call
  // (a connection closing itself, a dial completing) does not destroy the
  // closure currently executing — the dispatch loop holds a reference for
  // the duration of the call.
  std::unordered_map<int, std::shared_ptr<FdEntry>> fds_;
  std::uint64_t next_generation_ = 1;

  std::vector<TimerEntry> wheel_[kWheelSlots];
  std::unordered_map<TimerId, std::size_t> timer_slot_of_;
  TimerId next_timer_id_ = 1;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;

  // Scratch reused across polls.
  std::vector<std::uint8_t> epoll_events_buf_;
  struct PendingDispatch {
    int fd;
    std::uint64_t generation;
    bool readable, writable, error;
  };
  std::vector<PendingDispatch> dispatch_scratch_;

  EventLoopStats stats_;
};

}  // namespace dfi::net
