#include "net/packet.h"

#include <cstdio>

namespace dfi {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_mac(std::vector<std::uint8_t>& out, const MacAddress& mac) {
  for (auto octet : mac.octets()) out.push_back(octet);
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool has(std::size_t n) const { return pos_ + n <= bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  std::uint8_t u8() { return bytes_[pos_++]; }
  std::uint16_t u16() {
    const std::uint16_t value =
        static_cast<std::uint16_t>((bytes_[pos_] << 8) | bytes_[pos_ + 1]);
    pos_ += 2;
    return value;
  }
  std::uint32_t u32() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) value = (value << 8) | bytes_[pos_ + i];
    pos_ += 4;
    return value;
  }
  MacAddress mac() {
    std::array<std::uint8_t, 6> octets{};
    for (auto& octet : octets) octet = bytes_[pos_++];
    return MacAddress(octets);
  }
  void skip(std::size_t n) { pos_ += n; }
  std::vector<std::uint8_t> rest() {
    return {bytes_.begin() + static_cast<std::ptrdiff_t>(pos_), bytes_.end()};
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_string(EtherType type) {
  switch (type) {
    case EtherType::kIpv4: return "IPv4";
    case EtherType::kArp: return "ARP";
    case EtherType::kVlan: return "VLAN";
    case EtherType::kIpv6: return "IPv6";
    case EtherType::kExperimental: return "EXP";
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%04x", static_cast<unsigned>(type));
  return buf;
}

std::string to_string(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp: return "ICMP";
    case IpProto::kTcp: return "TCP";
    case IpProto::kUdp: return "UDP";
  }
  return "proto=" + std::to_string(static_cast<unsigned>(proto));
}

std::vector<std::uint8_t> Packet::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(64 + payload.size());

  put_mac(out, eth.dst);
  put_mac(out, eth.src);
  put_u16(out, eth.ether_type);

  if (arp.has_value()) {
    // Standard ARP for Ethernet/IPv4: htype=1, ptype=0x0800, hlen=6, plen=4.
    put_u16(out, 1);
    put_u16(out, 0x0800);
    out.push_back(6);
    out.push_back(4);
    put_u16(out, static_cast<std::uint16_t>(arp->op));
    put_mac(out, arp->sender_mac);
    put_u32(out, arp->sender_ip.value());
    put_mac(out, arp->target_mac);
    put_u32(out, arp->target_ip.value());
  } else if (ipv4.has_value()) {
    std::size_t l4_len = payload.size();
    if (tcp.has_value()) l4_len += 20;
    if (udp.has_value()) l4_len += 8;
    const auto total_len = static_cast<std::uint16_t>(20 + l4_len);

    out.push_back(0x45);  // version 4, IHL 5
    out.push_back(0);     // DSCP/ECN
    put_u16(out, total_len);
    put_u16(out, 0);  // identification
    put_u16(out, 0);  // flags/fragment offset
    out.push_back(ipv4->ttl);
    out.push_back(ipv4->protocol);
    put_u16(out, 0);  // checksum (not modeled)
    put_u32(out, ipv4->src.value());
    put_u32(out, ipv4->dst.value());

    if (tcp.has_value()) {
      put_u16(out, tcp->src_port);
      put_u16(out, tcp->dst_port);
      put_u32(out, tcp->seq);
      put_u32(out, tcp->ack);
      out.push_back(0x50);  // data offset 5 words
      out.push_back(tcp->flags);
      put_u16(out, 0xffff);  // window
      put_u16(out, 0);       // checksum
      put_u16(out, 0);       // urgent pointer
    } else if (udp.has_value()) {
      put_u16(out, udp->src_port);
      put_u16(out, udp->dst_port);
      put_u16(out, static_cast<std::uint16_t>(8 + payload.size()));
      put_u16(out, 0);  // checksum
    }
    out.insert(out.end(), payload.begin(), payload.end());
  } else {
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

Result<Packet> Packet::parse(const std::vector<std::uint8_t>& bytes) {
  Reader reader(bytes);
  if (!reader.has(14)) {
    return Result<Packet>::Fail(ErrorCode::kMalformed, "truncated Ethernet header");
  }
  Packet packet;
  packet.eth.dst = reader.mac();
  packet.eth.src = reader.mac();
  packet.eth.ether_type = reader.u16();

  if (packet.eth.ether_type == static_cast<std::uint16_t>(EtherType::kArp)) {
    if (!reader.has(28)) {
      return Result<Packet>::Fail(ErrorCode::kMalformed, "truncated ARP header");
    }
    reader.skip(6);  // htype, ptype, hlen, plen
    ArpHeader arp;
    arp.op = static_cast<ArpOp>(reader.u16());
    arp.sender_mac = reader.mac();
    arp.sender_ip = Ipv4Address(reader.u32());
    arp.target_mac = reader.mac();
    arp.target_ip = Ipv4Address(reader.u32());
    packet.arp = arp;
    return packet;
  }

  if (packet.eth.ether_type == static_cast<std::uint16_t>(EtherType::kIpv4)) {
    if (!reader.has(20)) {
      return Result<Packet>::Fail(ErrorCode::kMalformed, "truncated IPv4 header");
    }
    const std::uint8_t version_ihl = reader.u8();
    const std::size_t ihl_bytes = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
    if ((version_ihl >> 4) != 4 || ihl_bytes < 20) {
      return Result<Packet>::Fail(ErrorCode::kMalformed, "bad IPv4 version/IHL");
    }
    reader.skip(1);  // DSCP/ECN
    reader.skip(2);  // total length (we trust framing)
    reader.skip(4);  // id, flags/frag
    Ipv4Header ip;
    ip.ttl = reader.u8();
    ip.protocol = reader.u8();
    reader.skip(2);  // checksum
    ip.src = Ipv4Address(reader.u32());
    ip.dst = Ipv4Address(reader.u32());
    if (ihl_bytes > 20) {
      if (!reader.has(ihl_bytes - 20)) {
        return Result<Packet>::Fail(ErrorCode::kMalformed, "truncated IPv4 options");
      }
      reader.skip(ihl_bytes - 20);
    }
    packet.ipv4 = ip;

    if (ip.protocol == static_cast<std::uint8_t>(IpProto::kTcp)) {
      if (!reader.has(20)) {
        return Result<Packet>::Fail(ErrorCode::kMalformed, "truncated TCP header");
      }
      TcpHeader tcp;
      tcp.src_port = reader.u16();
      tcp.dst_port = reader.u16();
      tcp.seq = reader.u32();
      tcp.ack = reader.u32();
      const std::uint8_t offset = reader.u8();
      tcp.flags = reader.u8();
      reader.skip(4);  // window, checksum
      reader.skip(2);  // urgent
      const std::size_t header_bytes = static_cast<std::size_t>(offset >> 4) * 4;
      if (header_bytes < 20) {
        return Result<Packet>::Fail(ErrorCode::kMalformed, "bad TCP data offset");
      }
      if (header_bytes > 20) {
        if (!reader.has(header_bytes - 20)) {
          return Result<Packet>::Fail(ErrorCode::kMalformed, "truncated TCP options");
        }
        reader.skip(header_bytes - 20);
      }
      packet.tcp = tcp;
    } else if (ip.protocol == static_cast<std::uint8_t>(IpProto::kUdp)) {
      if (!reader.has(8)) {
        return Result<Packet>::Fail(ErrorCode::kMalformed, "truncated UDP header");
      }
      UdpHeader udp;
      udp.src_port = reader.u16();
      udp.dst_port = reader.u16();
      reader.skip(4);  // length, checksum
      packet.udp = udp;
    }
  }

  packet.payload = reader.rest();
  return packet;
}

std::string Packet::summary() const {
  std::string text = eth.src.to_string() + " -> " + eth.dst.to_string();
  if (arp.has_value()) {
    text += " ARP " + arp->sender_ip.to_string() + " asks " + arp->target_ip.to_string();
  } else if (ipv4.has_value()) {
    text += " " + ipv4->src.to_string() + " -> " + ipv4->dst.to_string();
    if (tcp.has_value()) {
      text += " TCP " + std::to_string(tcp->src_port) + ":" + std::to_string(tcp->dst_port);
    } else if (udp.has_value()) {
      text += " UDP " + std::to_string(udp->src_port) + ":" + std::to_string(udp->dst_port);
    }
  }
  return text;
}

Packet make_tcp_packet(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                       Ipv4Address dst_ip, std::uint16_t src_port,
                       std::uint16_t dst_port, std::uint8_t flags) {
  Packet packet;
  packet.eth = {dst_mac, src_mac, static_cast<std::uint16_t>(EtherType::kIpv4)};
  packet.ipv4 = Ipv4Header{64, static_cast<std::uint8_t>(IpProto::kTcp), src_ip, dst_ip};
  packet.tcp = TcpHeader{src_port, dst_port, 0, 0, flags};
  return packet;
}

Packet make_udp_packet(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                       Ipv4Address dst_ip, std::uint16_t src_port,
                       std::uint16_t dst_port) {
  Packet packet;
  packet.eth = {dst_mac, src_mac, static_cast<std::uint16_t>(EtherType::kIpv4)};
  packet.ipv4 = Ipv4Header{64, static_cast<std::uint8_t>(IpProto::kUdp), src_ip, dst_ip};
  packet.udp = UdpHeader{src_port, dst_port};
  return packet;
}

Packet make_arp_request(MacAddress src_mac, Ipv4Address src_ip, Ipv4Address target_ip) {
  Packet packet;
  packet.eth = {MacAddress::broadcast(), src_mac,
                static_cast<std::uint16_t>(EtherType::kArp)};
  packet.arp = ArpHeader{ArpOp::kRequest, src_mac, src_ip, MacAddress{}, target_ip};
  return packet;
}

Packet make_arp_reply(MacAddress src_mac, Ipv4Address src_ip, MacAddress dst_mac,
                      Ipv4Address dst_ip) {
  Packet packet;
  packet.eth = {dst_mac, src_mac, static_cast<std::uint16_t>(EtherType::kArp)};
  packet.arp = ArpHeader{ArpOp::kReply, src_mac, src_ip, dst_mac, dst_ip};
  return packet;
}

}  // namespace dfi
