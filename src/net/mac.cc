#include "net/mac.h"

#include <cstdio>

namespace dfi {

Result<MacAddress> MacAddress::parse(const std::string& text) {
  std::array<unsigned, 6> parts{};
  char trailing = 0;
  const int matched =
      std::sscanf(text.c_str(), "%2x:%2x:%2x:%2x:%2x:%2x%c", &parts[0],
                  &parts[1], &parts[2], &parts[3], &parts[4], &parts[5],
                  &trailing);
  if (matched != 6) {
    return Result<MacAddress>::Fail(ErrorCode::kInvalidArgument,
                                    "bad MAC address: " + text);
  }
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    octets[i] = static_cast<std::uint8_t>(parts[i]);
  }
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

}  // namespace dfi
