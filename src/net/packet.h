// Packet model: Ethernet / ARP / IPv4 / TCP / UDP headers plus serialization.
//
// The OpenFlow substrate carries real byte buffers in Packet-in/Packet-out
// messages, so packets must round-trip through a wire encoding. The header
// layouts follow the on-the-wire formats (big-endian fields) closely enough
// that match extraction, the DFI PCP's identifier collection, and the wire
// codec all operate on the same bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/ipv4.h"
#include "net/mac.h"

namespace dfi {

// EtherType values used by the reproduction.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kIpv6 = 0x86dd,
  kExperimental = 0x88b5,  // randomized background traffic (Fig. 4 workload)
};

// IP protocol numbers used by the reproduction.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

std::string to_string(EtherType type);
std::string to_string(IpProto proto);

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;
};

enum class ArpOp : std::uint16_t { kRequest = 1, kReply = 2 };

struct ArpHeader {
  ArpOp op = ArpOp::kRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;
};

struct Ipv4Header {
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  Ipv4Address src;
  Ipv4Address dst;
};

// TCP flag bits (subset).
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
};

// A parsed packet. `eth` is always present; exactly one of `arp`/`ipv4` may
// be present, and for IPv4 at most one of `tcp`/`udp`.
struct Packet {
  EthernetHeader eth;
  std::optional<ArpHeader> arp;
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::vector<std::uint8_t> payload;

  bool is_ipv4() const { return ipv4.has_value(); }
  bool is_arp() const { return arp.has_value(); }

  // Serialize to wire bytes (Ethernet II framing).
  std::vector<std::uint8_t> serialize() const;

  // Parse from wire bytes. Unknown EtherTypes/IP protocols keep the raw
  // remainder as payload rather than failing: DFI must make access-control
  // decisions even for traffic it cannot fully parse.
  static Result<Packet> parse(const std::vector<std::uint8_t>& bytes);

  std::string summary() const;
};

// Convenience constructors for the traffic the experiments generate.
Packet make_tcp_packet(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                       Ipv4Address dst_ip, std::uint16_t src_port,
                       std::uint16_t dst_port, std::uint8_t flags = kTcpSyn);
Packet make_udp_packet(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                       Ipv4Address dst_ip, std::uint16_t src_port,
                       std::uint16_t dst_port);
Packet make_arp_request(MacAddress src_mac, Ipv4Address src_ip, Ipv4Address target_ip);
Packet make_arp_reply(MacAddress src_mac, Ipv4Address src_ip, MacAddress dst_mac,
                      Ipv4Address dst_ip);

}  // namespace dfi
