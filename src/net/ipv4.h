// IPv4 address value type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"

namespace dfi {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  // Parse dotted-quad "10.1.2.3".
  static Result<Ipv4Address> parse(const std::string& text);

  static constexpr Ipv4Address broadcast() { return Ipv4Address(0xffffffffu); }
  static constexpr Ipv4Address any() { return Ipv4Address(0); }

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_broadcast() const { return value_ == 0xffffffffu; }

  // True if this address is inside `network`/`prefix_len`.
  constexpr bool in_subnet(Ipv4Address network, int prefix_len) const {
    if (prefix_len <= 0) return true;
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
    return (value_ & mask) == (network.value_ & mask);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

inline std::string to_string(const Ipv4Address& ip) { return ip.to_string(); }

}  // namespace dfi

namespace std {
template <>
struct hash<dfi::Ipv4Address> {
  size_t operator()(const dfi::Ipv4Address& ip) const noexcept {
    return hash<uint32_t>{}(ip.value());
  }
};
}  // namespace std
