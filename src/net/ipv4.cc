#include "net/ipv4.h"

#include <cstdio>

namespace dfi {

Result<Ipv4Address> Ipv4Address::parse(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = 0;
  const int matched =
      std::sscanf(text.c_str(), "%3u.%3u.%3u.%3u%c", &a, &b, &c, &d, &trailing);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    return Result<Ipv4Address>::Fail(ErrorCode::kInvalidArgument,
                                     "bad IPv4 address: " + text);
  }
  return Ipv4Address(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace dfi
