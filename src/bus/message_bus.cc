#include "bus/message_bus.h"

#include <algorithm>

namespace dfi {

Subscription::Subscription(Subscription&& other) noexcept
    : bus_(other.bus_), topic_(std::move(other.topic_)), id_(other.id_) {
  other.bus_ = nullptr;
}

Subscription& Subscription::operator=(Subscription&& other) noexcept {
  if (this != &other) {
    reset();
    bus_ = other.bus_;
    topic_ = std::move(other.topic_);
    id_ = other.id_;
    other.bus_ = nullptr;
  }
  return *this;
}

Subscription::~Subscription() { reset(); }

void Subscription::reset() {
  if (bus_ != nullptr) {
    bus_->unsubscribe(topic_, id_);
    bus_ = nullptr;
  }
}

MessageBus::~MessageBus() = default;

Subscription MessageBus::subscribe_raw(const std::string& topic, RawHandler handler) {
  const std::uint64_t id = next_id_++;
  topics_[topic].push_back(Entry{id, std::move(handler)});
  return Subscription(this, topic, id);
}

void MessageBus::publish_raw(const std::string& topic, const std::any& payload) {
  ++published_count_;
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  // Copy the entry list so handlers may subscribe/unsubscribe re-entrantly.
  const std::vector<Entry> entries = it->second;
  for (const auto& entry : entries) entry.handler(payload);
}

void MessageBus::unsubscribe(const std::string& topic, std::uint64_t id) {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  auto& entries = it->second;
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [id](const Entry& entry) { return entry.id == id; }),
                entries.end());
  if (entries.empty()) topics_.erase(it);
}

std::size_t MessageBus::subscriber_count(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.size();
}

}  // namespace dfi
