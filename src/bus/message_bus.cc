#include "bus/message_bus.h"

#include <algorithm>

namespace dfi {

Subscription::Subscription(Subscription&& other) noexcept
    : bus_(other.bus_), topic_(std::move(other.topic_)), id_(other.id_) {
  other.bus_ = nullptr;
}

Subscription& Subscription::operator=(Subscription&& other) noexcept {
  if (this != &other) {
    reset();
    bus_ = other.bus_;
    topic_ = std::move(other.topic_);
    id_ = other.id_;
    other.bus_ = nullptr;
  }
  return *this;
}

Subscription::~Subscription() { reset(); }

void Subscription::reset() {
  if (bus_ != nullptr) {
    bus_->unsubscribe(topic_, id_);
    bus_ = nullptr;
  }
}

MessageBus::~MessageBus() = default;

Subscription MessageBus::subscribe_raw(const std::string& topic, RawHandler handler) {
  const std::uint64_t id = next_id_++;
  topics_[topic].push_back(Entry{id, std::move(handler)});
  return Subscription(this, topic, id);
}

void MessageBus::publish_raw(const std::string& topic, const std::any& payload) {
  ++published_count_;
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  // Dispatch from the live list, bounded by the pre-dispatch size: handlers
  // subscribed during this publish are not delivered this message, and a
  // handler unsubscribed mid-dispatch — by itself or by an earlier handler —
  // is marked dead and skipped. (Dispatching from a snapshot copy instead
  // would still invoke the unsubscribed handler, whose captured state the
  // unsubscribe typically just destroyed.)
  const std::size_t bound = it->second.size();
  ++dispatch_depth_;
  for (std::size_t i = 0; i < bound; ++i) {
    // Re-index each round — a re-entrant subscribe may reallocate the
    // vector — and invoke through a copy so the handler survives that
    // reallocation mid-call.
    if (!it->second[i].alive) continue;
    const RawHandler handler = it->second[i].handler;
    handler(payload);
  }
  if (--dispatch_depth_ == 0 && needs_compaction_) compact();
}

void MessageBus::unsubscribe(const std::string& topic, std::uint64_t id) {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  auto& entries = it->second;
  const auto entry =
      std::find_if(entries.begin(), entries.end(),
                   [id](const Entry& e) { return e.id == id; });
  if (entry == entries.end()) return;
  if (dispatch_depth_ > 0) {
    // A publish is walking this (or some) entry vector by index; erasing
    // now would shift entries under it. Mark dead — dispatch skips dead
    // entries — and compact after the outermost publish returns.
    entry->alive = false;
    needs_compaction_ = true;
    return;
  }
  entries.erase(entry);
  if (entries.empty()) topics_.erase(it);
}

void MessageBus::compact() {
  needs_compaction_ = false;
  for (auto it = topics_.begin(); it != topics_.end();) {
    auto& entries = it->second;
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [](const Entry& entry) { return !entry.alive; }),
                  entries.end());
    it = entries.empty() ? topics_.erase(it) : std::next(it);
  }
}

std::size_t MessageBus::subscriber_count(const std::string& topic) const {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return 0;
  std::size_t count = 0;
  for (const auto& entry : it->second) count += entry.alive ? 1 : 0;
  return count;
}

}  // namespace dfi
