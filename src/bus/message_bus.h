// In-process topic-based publish/subscribe bus.
//
// The paper's implementation connects DFI's components (PDPs, Policy
// Manager, Entity Resolution Manager, PCP) and the identifier-binding
// sensors over RabbitMQ with protobuf messages. This bus reproduces that
// messaging topology in-process: named topics, any number of subscribers,
// typed payloads checked at runtime. Dispatch is synchronous and in
// subscription order, which keeps the discrete-event simulation
// deterministic; delivery latency is modeled by the simulator, not the bus.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <typeindex>
#include <vector>

namespace dfi {

class MessageBus;

// RAII subscription handle; unsubscribes on destruction.
class Subscription {
 public:
  Subscription() = default;
  Subscription(Subscription&& other) noexcept;
  Subscription& operator=(Subscription&& other) noexcept;
  ~Subscription();

  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  void reset();
  bool active() const { return bus_ != nullptr; }

 private:
  friend class MessageBus;
  Subscription(MessageBus* bus, std::string topic, std::uint64_t id)
      : bus_(bus), topic_(std::move(topic)), id_(id) {}

  MessageBus* bus_ = nullptr;
  std::string topic_;
  std::uint64_t id_ = 0;
};

class MessageBus {
 public:
  MessageBus() = default;
  ~MessageBus();

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  // Subscribe `handler` to typed messages on `topic`. Messages published
  // with a different payload type on the same topic are not delivered to
  // this handler (mirrors protobuf message-type separation per queue).
  template <typename T>
  [[nodiscard]] Subscription subscribe(const std::string& topic,
                                       std::function<void(const T&)> handler) {
    auto wrapper = [handler = std::move(handler)](const std::any& payload) {
      if (const T* typed = std::any_cast<T>(&payload)) handler(*typed);
    };
    return subscribe_raw(topic, std::move(wrapper));
  }

  // Publish a typed message to all current subscribers of `topic`.
  template <typename T>
  void publish(const std::string& topic, const T& message) {
    publish_raw(topic, std::any(message));
  }

  std::size_t subscriber_count(const std::string& topic) const;
  std::uint64_t published_count() const { return published_count_; }

 private:
  friend class Subscription;
  using RawHandler = std::function<void(const std::any&)>;

  [[nodiscard]] Subscription subscribe_raw(const std::string& topic, RawHandler handler);
  void publish_raw(const std::string& topic, const std::any& payload);
  void unsubscribe(const std::string& topic, std::uint64_t id);

  struct Entry {
    std::uint64_t id;
    RawHandler handler;
    // Cleared instead of erased while a dispatch is walking the list; dead
    // entries are skipped and compacted away after the outermost publish.
    bool alive = true;
  };

  // Erase entries marked dead during dispatch (and now-empty topics).
  void compact();

  std::map<std::string, std::vector<Entry>> topics_;
  std::uint64_t next_id_ = 1;
  std::uint64_t published_count_ = 0;
  // Nesting depth of publish_raw: non-zero means entry vectors and topic
  // map nodes must not be erased (deferred to compact()).
  int dispatch_depth_ = 0;
  bool needs_compaction_ = false;
};

}  // namespace dfi
