// Streaming statistics helpers for experiment harnesses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace dfi {

// Welford's online mean/variance plus retained samples for percentiles.
class SampleStats {
 public:
  void add(double value);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Percentile in [0, 100]; sorts lazily.
  double percentile(double pct) const;

  std::string summary() const;  // "mean=... sd=... n=..."

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// (time, value) series for figure reproduction (infection curves, TTFB).
struct TimeSeries {
  struct Point {
    double t;
    double value;
  };
  std::vector<Point> points;

  void add(double t, double value) { points.push_back({t, value}); }
  // Value of the step function at time t (last point with point.t <= t).
  double value_at(double t) const;
};

}  // namespace dfi
