#include "sim/service_station.h"

#include <cassert>
#include <utility>

namespace dfi {

ServiceStation::ServiceStation(Simulator& sim, std::size_t workers,
                               std::size_t queue_capacity)
    : sim_(sim), workers_(workers), queue_capacity_(queue_capacity) {
  assert(workers_ > 0);
}

bool ServiceStation::submit(ServiceTimeFn service_time, DoneFn on_done, DropFn on_drop) {
  if (busy_workers_ >= workers_ && queue_.size() >= queue_capacity_) {
    ++stats_.dropped;
    if (on_drop) on_drop(sim_.now());
    return false;
  }
  ++stats_.accepted;
  queue_.push_back(Job{sim_.now(), std::move(service_time), std::move(on_done)});
  stats_.max_queue_depth = std::max<std::uint64_t>(stats_.max_queue_depth, queue_.size());
  try_dispatch();
  return true;
}

void ServiceStation::try_dispatch() {
  while (busy_workers_ < workers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_workers_;
    const SimDuration duration = job.service_time ? job.service_time() : SimDuration{};
    sim_.schedule_after(duration, [this, job = std::move(job)]() mutable {
      finish(std::move(job));
    });
  }
}

void ServiceStation::finish(Job job) {
  assert(busy_workers_ > 0);
  --busy_workers_;
  ++stats_.completed;
  if (job.on_done) job.on_done(job.enqueued, sim_.now());
  try_dispatch();
}

}  // namespace dfi
