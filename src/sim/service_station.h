// Bounded-queue, multi-worker service station.
//
// Models the capacity of the DFI control plane (paper Section V-A): flow
// requests are served by a pool of workers (concurrent query pipelines in
// the Java implementation); when all workers are busy, requests wait in a
// bounded FIFO queue; arrivals that find the queue full are *dropped* — the
// paper observes that dropped flows re-enter on TCP retransmission, which
// produces the ~200 ms TTFB plateau past saturation in Fig. 4.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/sim_time.h"
#include "sim/simulator.h"

namespace dfi {

struct ServiceStationStats {
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t completed = 0;
  std::uint64_t max_queue_depth = 0;
};

class ServiceStation {
 public:
  // `service_time` is sampled per job; `on_done(start, end)` runs at
  // completion; `on_drop` runs immediately when the queue rejects a job.
  using ServiceTimeFn = std::function<SimDuration()>;
  using DoneFn = std::function<void(SimTime enqueued, SimTime completed)>;
  using DropFn = std::function<void(SimTime at)>;

  ServiceStation(Simulator& sim, std::size_t workers, std::size_t queue_capacity);

  // Submit a job. Returns false (and calls on_drop) if the queue is full.
  bool submit(ServiceTimeFn service_time, DoneFn on_done, DropFn on_drop = nullptr);

  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t busy_workers() const { return busy_workers_; }
  const ServiceStationStats& stats() const { return stats_; }

 private:
  struct Job {
    SimTime enqueued;
    ServiceTimeFn service_time;
    DoneFn on_done;
  };

  void try_dispatch();
  void finish(Job job);

  Simulator& sim_;
  std::size_t workers_;
  std::size_t queue_capacity_;
  std::size_t busy_workers_ = 0;
  std::deque<Job> queue_;
  ServiceStationStats stats_;
};

}  // namespace dfi
