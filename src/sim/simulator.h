// Deterministic discrete-event simulator.
//
// The paper evaluates DFI on a VMware testbed in real time; we reproduce the
// experiments on a discrete-event engine so runs are deterministic and take
// seconds instead of business days. Events fire in (time, insertion-order)
// order; handlers may schedule further events. All component latencies
// (queries, proxy processing, link delays) are modeled as scheduled delays.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace dfi {

class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedule `handler` to run at absolute time `at` (clamped to now).
  void schedule_at(SimTime at, Handler handler);

  // Schedule `handler` to run `delay` after the current time.
  void schedule_after(SimDuration delay, Handler handler);

  // Run until the event queue is empty or the given horizon is reached.
  // Returns the number of events executed.
  std::uint64_t run();
  std::uint64_t run_until(SimTime horizon);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tiebreaker: FIFO among simultaneous events
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dfi
