#include "sim/stats.h"

#include <cmath>
#include <cstdio>

namespace dfi {

void SampleStats::add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  samples_.push_back(value);
  sorted_ = false;
}

double SampleStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SampleStats::stddev() const { return std::sqrt(variance()); }

double SampleStats::percentile(double pct) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = pct / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string SampleStats::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "mean=%.3f sd=%.3f n=%llu", mean(), stddev(),
                static_cast<unsigned long long>(count_));
  return buf;
}

double TimeSeries::value_at(double t) const {
  double value = 0.0;
  for (const auto& point : points) {
    if (point.t > t) break;
    value = point.value;
  }
  return value;
}

}  // namespace dfi
