#include "sim/simulator.h"

#include <limits>
#include <utility>

namespace dfi {

void Simulator::schedule_at(SimTime at, Handler handler) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(handler)});
}

void Simulator::schedule_after(SimDuration delay, Handler handler) {
  if (delay.us < 0) delay.us = 0;
  schedule_at(now_ + delay, std::move(handler));
}

std::uint64_t Simulator::run() {
  return run_until(SimTime{std::numeric_limits<std::int64_t>::max()});
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the handler must be moved out, so
    // copy the event envelope and pop before running (handlers may schedule).
    const Event& top = queue_.top();
    if (top.at > horizon) break;
    Event event{top.at, top.seq, std::move(const_cast<Event&>(top).handler)};
    queue_.pop();
    now_ = event.at;
    event.handler();
    ++executed_;
    ++count;
  }
  if (queue_.empty() || queue_.top().at > horizon) {
    if (horizon.us != std::numeric_limits<std::int64_t>::max() && now_ < horizon) {
      now_ = horizon;
    }
  }
  return count;
}

}  // namespace dfi
