#include "replication/replica.h"

#include <algorithm>

#include "common/logging.h"

namespace dfi {

using repl::FrameType;
using repl::ReplFrame;

Replica::Replica(ReplicaConfig config, Journal& journal, PolicyManager& manager,
                 EntityResolutionManager& erm, HealthMonitor* health)
    : config_(config),
      journal_(journal),
      manager_(manager),
      erm_(erm),
      health_(health),
      rng_(config.seed) {}

Replica::~Replica() { journal_.set_append_observer(nullptr); }

void Replica::set_send(std::function<void(const std::string& bytes)> send) {
  send_ = std::move(send);
}

// --------------------------------------------------------------------- role

void Replica::open_session() {
  session_nonce_ = rng_.next_u64();
  if (session_nonce_ == 0) session_nonce_ = 1;  // 0 = "never followed anyone"
  last_seq_ = 0;
  acked_seq_ = 0;
  retransmit_.clear();
  batch_.clear();
  standby_synced_ = false;
}

void Replica::become_primary() {
  primary_ = true;
  open_session();
  journal_.set_append_observer(
      [this](const std::string& payload) { on_local_append(payload); });
}

void Replica::become_standby() {
  primary_ = false;
  standby_synced_ = false;
  journal_.set_append_observer(nullptr);
  decoder_.reset();
  batch_.clear();
  retransmit_.clear();
  send_hello();
}

void Replica::promote() {
  // Durable fence bump past everything observed: records the deposed
  // primary might still try to ship are now provably stale, and our own
  // journal can never be fenced by anything already seen.
  const Status status = journal_.set_fence_epoch(journal_.observed_fence() + 1);
  if (!status.ok()) {
    DFI_WARN << "replica: fence bump failed on promotion: " << status.to_string();
  }
  become_primary();
  DFI_WARN << "replica: promoted to primary, fence epoch "
           << journal_.fence_epoch() << ", session " << session_nonce_;
}

void Replica::stand_down(std::uint64_t observed_fence) {
  journal_.observe_fence(observed_fence);
  if (!primary_) return;
  primary_ = false;
  standby_synced_ = false;
  retransmit_.clear();
  batch_.clear();
  journal_.set_append_observer(nullptr);
  if (health_ != nullptr) health_->set_role(ReplicaRole::kStandby);
  DFI_WARN << "replica: deposed by fence epoch " << observed_fence
           << " (own " << journal_.fence_epoch() << "), standing down";
  // The peer that fenced us IS the live primary, and the link that carried
  // the reject is up: resubscribe immediately. Our dirty plane will refuse
  // the snapshot and raise needs_restart — the supervisor rebuilds fresh.
  send_hello();
}

// --------------------------------------------------------------------- link

void Replica::on_bytes(const std::uint8_t* data, std::size_t size) {
  decoder_.feed(data, size);
  ReplFrame frame;
  bool applied = false;
  // CrashException may fly out of handle_record/handle_snapshot (standby
  // store death). Frames already decoded but not yet applied die with the
  // process — the restart re-hellos and the primary re-ships.
  while (decoder_.next(frame)) {
    const std::uint64_t before = stats_.records_applied + stats_.records_duplicate;
    on_frame(frame);
    applied |= (stats_.records_applied + stats_.records_duplicate) != before;
  }
  if (applied) {
    // One cumulative ack per ingress batch, not per record.
    send_control(FrameType::kAck, next_seq_ - 1);
    ++stats_.acks_sent;
  }
  if (decoder_.poisoned()) {
    ++stats_.decode_errors;
    DFI_WARN << "replica: replication stream poisoned, dropping link";
    on_link_down();
  }
}

void Replica::on_link_down() {
  decoder_.reset();
  batch_.clear();
  if (primary_) standby_synced_ = false;
  // A standby does nothing here: the failover deadline in HealthMonitor
  // decides whether the silence means a dead primary.
}

// ------------------------------------------------------------------- frames

void Replica::on_frame(const ReplFrame& frame) {
  switch (frame.type) {
    case FrameType::kHello: handle_hello(frame); break;
    case FrameType::kSnapshot: handle_snapshot(frame); break;
    case FrameType::kRecord: handle_record(frame); break;
    case FrameType::kAck: handle_ack(frame); break;
    case FrameType::kHeartbeat: handle_heartbeat(frame); break;
    case FrameType::kFenceReject: handle_fence_reject(frame); break;
  }
}

void Replica::handle_hello(const ReplFrame& frame) {
  ++stats_.hellos_received;
  if (frame.fence > journal_.fence_epoch()) {
    // The hello sender has seen a higher fence than ours: if we think we
    // are primary, we were deposed while partitioned.
    stand_down(frame.fence);
    return;
  }
  if (!primary_) return;
  const bool same_session = session_nonce_ != 0 && frame.nonce == session_nonce_;
  const std::uint64_t tail_floor =
      retransmit_.empty() ? last_seq_ + 1 : retransmit_.front().first;
  if (same_session && frame.seq >= tail_floor && frame.seq <= last_seq_ + 1) {
    // The buffer still covers everything the standby is missing: catch it
    // up in-session instead of re-seeding.
    if (frame.seq > 0) handle_ack({FrameType::kAck, frame.fence, frame.seq - 1, frame.nonce, {}});
    send_tail_from(frame.seq);
    standby_synced_ = true;
    return;
  }
  send_snapshot();
}

void Replica::handle_snapshot(const ReplFrame& frame) {
  if (frame.fence < journal_.fence_epoch()) {
    send_control(FrameType::kFenceReject, frame.seq);
    ++stats_.fence_rejects_sent;
    return;
  }
  if (primary_) {
    // A snapshot with a fence at least as high as ours while we believe we
    // are primary: same-fence means protocol confusion (drop it), higher
    // fence means we were deposed — stand down and fall through as the
    // standby we now are.
    if (frame.fence == journal_.fence_epoch()) return;
    stand_down(frame.fence);
  }
  if (health_ != nullptr) health_->peer_heartbeat();
  if (manager_.size() != 0 || erm_.binding_count() != 0) {
    // No in-place re-seed: a snapshot only installs into a fresh plane
    // (header comment). The supervisor rebuilds us empty and re-hellos.
    needs_restart_ = true;
    ++stats_.restarts_required;
    DFI_WARN << "replica: snapshot refused (dirty plane), restart required";
    return;
  }
  const Status status =
      journal_.install_snapshot(frame.payload, frame.fence, manager_, erm_);
  if (!status.ok()) {
    ++stats_.decode_errors;
    DFI_WARN << "replica: snapshot install failed: " << status.to_string();
    return;
  }
  session_nonce_ = frame.nonce;
  next_seq_ = frame.seq + 1;
  ++stats_.snapshots_installed;
  send_control(FrameType::kAck, frame.seq);
  ++stats_.acks_sent;
}

void Replica::handle_record(const ReplFrame& frame) {
  if (frame.fence < journal_.fence_epoch()) {
    // Stale sender (a deposed primary that has not yet heard): fence it.
    send_control(FrameType::kFenceReject, frame.seq);
    ++stats_.fence_rejects_sent;
    return;
  }
  if (primary_) {
    if (frame.fence > journal_.fence_epoch()) stand_down(frame.fence);
    return;  // equal-fence record at a primary: protocol confusion, drop
  }
  if (health_ != nullptr) health_->peer_heartbeat();
  if (frame.nonce != session_nonce_) {
    ++stats_.resyncs_requested;
    send_hello();
    return;
  }
  if (frame.seq < next_seq_) {
    ++stats_.records_duplicate;  // retransmit overlap; cumulative ack covers it
    return;
  }
  if (frame.seq > next_seq_) {
    ++stats_.resyncs_requested;
    send_hello();
    return;
  }
  if (frame.fence > journal_.fence_epoch()) {
    // Adopt the primary's fence verbatim (durable f| record) before the
    // record that carried it.
    const Status status = journal_.set_fence_epoch(frame.fence);
    if (!status.ok()) {
      DFI_WARN << "replica: fence adopt failed: " << status.to_string();
      return;
    }
  }
  // WAL ordering on the standby too: durable local append, then apply.
  // CrashException from the store flies through — process boundary.
  const Status status = journal_.ingest_replicated(frame.payload, manager_, erm_);
  if (!status.ok()) {
    ++stats_.decode_errors;
    DFI_WARN << "replica: record apply failed: " << status.to_string();
    return;
  }
  ++stats_.records_applied;
  next_seq_ = frame.seq + 1;
}

void Replica::handle_ack(const ReplFrame& frame) {
  ++stats_.acks_received;
  if (!primary_) return;
  if (frame.seq > acked_seq_) acked_seq_ = frame.seq;
  while (!retransmit_.empty() && retransmit_.front().first <= acked_seq_) {
    retransmit_.pop_front();
  }
}

void Replica::handle_heartbeat(const ReplFrame& frame) {
  ++stats_.heartbeats_received;
  if (frame.fence < journal_.fence_epoch()) {
    send_control(FrameType::kFenceReject, frame.seq);
    ++stats_.fence_rejects_sent;
    return;
  }
  if (primary_) {
    if (frame.fence > journal_.fence_epoch()) stand_down(frame.fence);
    return;
  }
  if (health_ != nullptr) health_->peer_heartbeat();
  if (frame.nonce != session_nonce_ || frame.seq >= next_seq_) {
    // New session, or the primary's high-water mark is past what we have:
    // records were lost on a dropped link. Resubscribe from where we are.
    ++stats_.resyncs_requested;
    send_hello();
  }
}

void Replica::handle_fence_reject(const ReplFrame& frame) {
  ++stats_.fence_rejects_received;
  // frame.fence here is the REJECTING side's epoch (send_control stamps the
  // sender's own fence): strictly higher than ours or it would not have
  // rejected.
  stand_down(frame.fence);
}

// ------------------------------------------------------------------ sending

void Replica::on_local_append(const std::string& payload) {
  ++last_seq_;
  retransmit_.emplace_back(last_seq_, payload);
  if (retransmit_.size() > config_.retransmit_cap) {
    // Standby too far behind to catch up in-session; stop buffering and
    // force its next hello down the snapshot path.
    retransmit_.clear();
    standby_synced_ = false;
  }
  if (!standby_synced_) return;
  ReplFrame frame{FrameType::kRecord, journal_.fence_epoch(), last_seq_,
                  session_nonce_, payload};
  batch_ += repl::encode_frame(frame);
  ++stats_.records_shipped;
  if (config_.flush_threshold == 0 || batch_.size() >= config_.flush_threshold) {
    flush();
  }
}

void Replica::send_snapshot() {
  flush();
  ReplFrame frame{FrameType::kSnapshot, journal_.fence_epoch(), last_seq_,
                  session_nonce_, Journal::snapshot_payload(manager_, erm_)};
  send_now(repl::encode_frame(frame));
  ++stats_.snapshots_sent;
  // The snapshot reflects every append up to last_seq_; nothing before it
  // can ever need retransmission.
  acked_seq_ = std::max(acked_seq_, last_seq_);
  retransmit_.clear();
  standby_synced_ = true;
}

void Replica::send_tail_from(std::uint64_t seq) {
  flush();
  for (const auto& [buffered_seq, payload] : retransmit_) {
    if (buffered_seq < seq) continue;
    ReplFrame frame{FrameType::kRecord, journal_.fence_epoch(), buffered_seq,
                    session_nonce_, payload};
    batch_ += repl::encode_frame(frame);
    ++stats_.records_shipped;
    ++stats_.retransmits;
  }
  flush();
}

void Replica::send_hello() {
  ++stats_.hellos_sent;
  send_control(FrameType::kHello, next_seq_);
}

void Replica::send_control(FrameType type, std::uint64_t seq, std::string payload) {
  flush();  // control frames must not overtake batched records
  ReplFrame frame{type, journal_.fence_epoch(), seq, session_nonce_,
                  std::move(payload)};
  send_now(repl::encode_frame(frame));
}

void Replica::send_now(const std::string& bytes) {
  if (!send_) return;
  stats_.bytes_shipped += bytes.size();
  send_(bytes);
}

void Replica::flush() {
  if (batch_.empty()) return;
  std::string out;
  out.swap(batch_);
  ++stats_.batches_flushed;
  send_now(out);
}

void Replica::tick_heartbeat() {
  if (!primary_) return;
  ReplFrame frame{FrameType::kHeartbeat, journal_.fence_epoch(), last_seq_,
                  session_nonce_, {}};
  flush();
  send_now(repl::encode_frame(frame));
  ++stats_.heartbeats_sent;
}

}  // namespace dfi
