// Wire framing for the warm-standby replication stream (DESIGN.md §6.3).
//
// The stream is NOT OpenFlow: it rides a dedicated raw-byte connection
// between the replica pair. Every frame carries the three fields the
// protocol's safety argument rests on:
//
//   fence   the sender's fencing epoch. A receiver with a higher epoch
//           answers kFenceReject and applies nothing — this is how a
//           deposed primary that comes back learns it was deposed.
//   seq     per-session sequence number for kRecord (cumulative-ack space);
//           for kSnapshot the sequence point the snapshot reflects; for
//           kAck the highest contiguously applied sequence; for kHello the
//           next sequence the standby expects.
//   nonce   the primary's session identity, drawn fresh per primary
//           lifetime. A nonce mismatch means the seq space is meaningless
//           (the primary restarted or a new primary was promoted) and the
//           standby must re-bootstrap from a snapshot.
//
// Layout (all integers little-endian, matching the journal's framing):
//
//   [magic u8][type u8][fence u64][seq u64][nonce u64][len u32][crc32 u32]
//   [payload: len bytes]
//
// The CRC covers the payload only; header corruption is caught by the
// magic/type/length checks. Any framing violation poisons the decoder —
// a desynced byte stream cannot be re-framed, the link must be torn down
// and re-dialed (exactly what a real TCP connection would do).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "common/crc32.h"

namespace dfi::repl {

enum class FrameType : std::uint8_t {
  kHello = 1,        // standby -> primary: subscribe / request catch-up
  kSnapshot = 2,     // primary -> standby: full-state bootstrap
  kRecord = 3,       // primary -> standby: one journal record payload
  kAck = 4,          // standby -> primary: cumulative apply acknowledgement
  kHeartbeat = 5,    // primary -> standby: liveness + high-water seq
  kFenceReject = 6,  // either -> stale peer: your fence epoch is behind
};

inline const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kSnapshot: return "snapshot";
    case FrameType::kRecord: return "record";
    case FrameType::kAck: return "ack";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kFenceReject: return "fence-reject";
  }
  return "?";
}

inline constexpr std::uint8_t kReplMagic = 0xD5;
inline constexpr std::size_t kReplHeaderSize = 1 + 1 + 8 + 8 + 8 + 4 + 4;
// A snapshot of a million-binding ERM is large but bounded; anything past
// this is framing corruption, not a real payload.
inline constexpr std::uint32_t kMaxReplPayload = 256u * 1024u * 1024u;

struct ReplFrame {
  FrameType type = FrameType::kHeartbeat;
  std::uint64_t fence = 0;
  std::uint64_t seq = 0;
  std::uint64_t nonce = 0;
  std::string payload;
};

namespace detail {
inline void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}
inline void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
}  // namespace detail

inline std::string encode_frame(const ReplFrame& frame) {
  std::string out;
  out.reserve(kReplHeaderSize + frame.payload.size());
  out.push_back(static_cast<char>(kReplMagic));
  out.push_back(static_cast<char>(frame.type));
  detail::put_u64(out, frame.fence);
  detail::put_u64(out, frame.seq);
  detail::put_u64(out, frame.nonce);
  detail::put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  detail::put_u32(out,
                  crc32(reinterpret_cast<const std::uint8_t*>(frame.payload.data()),
                        frame.payload.size()));
  out.append(frame.payload);
  return out;
}

// Streaming decoder: feed arbitrary byte chunks, pop complete frames.
// Poisoned forever on the first framing violation (bad magic, unknown
// type, oversized length, CRC mismatch) — the caller must drop the link.
class ReplFrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size) {
    if (poisoned_) return;
    buffer_.insert(buffer_.end(), data, data + size);
    for (;;) {
      if (buffer_.size() - pos_ < kReplHeaderSize) break;
      const std::uint8_t* head = buffer_.data() + pos_;
      if (head[0] != kReplMagic || head[1] < 1 || head[1] > 6) {
        poisoned_ = true;
        break;
      }
      const std::uint32_t len = detail::get_u32(head + 26);
      if (len > kMaxReplPayload) {
        poisoned_ = true;
        break;
      }
      if (buffer_.size() - pos_ < kReplHeaderSize + len) break;
      const std::uint32_t stored_crc = detail::get_u32(head + 30);
      const std::uint8_t* body = head + kReplHeaderSize;
      if (crc32(body, len) != stored_crc) {
        poisoned_ = true;
        break;
      }
      ReplFrame frame;
      frame.type = static_cast<FrameType>(head[1]);
      frame.fence = detail::get_u64(head + 2);
      frame.seq = detail::get_u64(head + 10);
      frame.nonce = detail::get_u64(head + 18);
      frame.payload.assign(reinterpret_cast<const char*>(body), len);
      frames_.push_back(std::move(frame));
      pos_ += kReplHeaderSize + len;
      compact();
    }
  }

  bool next(ReplFrame& out) {
    if (frames_.empty()) return false;
    out = std::move(frames_.front());
    frames_.pop_front();
    return true;
  }

  bool poisoned() const { return poisoned_; }
  void reset() {
    buffer_.clear();
    pos_ = 0;
    frames_.clear();
    poisoned_ = false;
  }

 private:
  void compact() {
    if (pos_ == buffer_.size()) {
      buffer_.clear();
      pos_ = 0;
    } else if (pos_ >= 64 * 1024) {
      buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
  }

  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
  std::deque<ReplFrame> frames_;
  bool poisoned_ = false;
};

}  // namespace dfi::repl
