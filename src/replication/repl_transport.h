// Binds a Replica to the real socket datapath (DESIGN.md §6.3 / §9).
//
// The replication stream is not OpenFlow, so the Connection runs in
// raw-byte mode: every read chunk goes straight to Replica::on_bytes, and
// Replica's egress goes out through the Connection's coalescing writev
// queue. The primary listens; the standby dials with conman's supervised
// capped-exponential backoff (the link being down holds the component
// degraded through HealthMonitor, and the redial schedule lands in
// HealthStats — same ledger as every other supervised reconnect).
//
// Heartbeats ride the event-loop timer wheel: a repeating timer calls
// Replica::tick_heartbeat (no-op on a standby), which keeps the standby's
// failover clock fed through idle stretches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/asyncio/conman.h"
#include "net/asyncio/connection.h"
#include "net/asyncio/event_loop.h"
#include "replication/replica.h"

namespace dfi {

class ReplTransport {
 public:
  ReplTransport(net::EventLoop& loop, net::ConnectionManager& conman,
                Replica& replica, std::uint64_t heartbeat_ms = 500)
      : loop_(loop), conman_(conman), replica_(replica),
        heartbeat_ms_(heartbeat_ms) {}

  ~ReplTransport() {
    *alive_ = false;
    if (heartbeat_timer_ != 0) loop_.cancel_timer(heartbeat_timer_);
    detach();
    replica_.set_send(nullptr);
  }

  ReplTransport(const ReplTransport&) = delete;
  ReplTransport& operator=(const ReplTransport&) = delete;

  // Primary side: accept the standby's dial. Returns the bound port.
  Result<std::uint16_t> listen(const std::string& ip, std::uint16_t port) {
    return conman_.listen(ip, port, [this](std::unique_ptr<net::Connection> conn,
                                           const std::string&) {
      adopt(std::move(conn));
    });
  }

  // Standby side: dial the primary under supervised backoff; on success the
  // Replica re-hellos (tail catch-up or snapshot bootstrap).
  void dial(const std::string& ip, std::uint16_t port) {
    conman_.dial_supervised("replication", ip, port,
                            [this](std::unique_ptr<net::Connection> conn) {
                              if (!conn) return;  // abandoned
                              adopt(std::move(conn));
                              replica_.become_standby();
                            });
  }

  void start_heartbeats() {
    if (heartbeat_timer_ != 0) return;
    schedule_heartbeat();
  }

  bool linked() const { return conn_ != nullptr && conn_->open(); }
  net::Connection* connection() { return conn_.get(); }

 private:
  void adopt(std::unique_ptr<net::Connection> conn) {
    detach();
    conn_ = std::move(conn);
    conn_->set_raw_mode([this](const std::uint8_t* data, std::size_t size) {
      replica_.on_bytes(data, size);
    });
    conn_->on_closed([this, a = alive_](const char*) {
      if (!*a) return;
      replica_.on_link_down();
      // Deferred reap: the Connection is mid-handle_io here.
      loop_.post([this, a] {
        if (*a && conn_ && !conn_->open()) conn_.reset();
      });
    });
    replica_.set_send([this](const std::string& bytes) {
      if (!conn_ || !conn_->open()) return;
      conn_->send(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
      conn_->flush();
    });
    conn_->start();
  }

  void detach() {
    if (!conn_) return;
    conn_->close("replication transport detached");
    conn_.reset();
  }

  void schedule_heartbeat() {
    heartbeat_timer_ = loop_.schedule_after_ms(heartbeat_ms_, [this, a = alive_] {
      if (!*a) return;
      heartbeat_timer_ = 0;
      replica_.tick_heartbeat();
      schedule_heartbeat();
    });
  }

  net::EventLoop& loop_;
  net::ConnectionManager& conman_;
  Replica& replica_;
  std::uint64_t heartbeat_ms_;
  std::unique_ptr<net::Connection> conn_;
  std::uint64_t heartbeat_timer_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace dfi
