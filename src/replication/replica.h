// Warm-standby replication endpoint (DESIGN.md §6.3).
//
// One Replica object plays either side of the pair — the roles swap at
// failover, so the machinery for both lives in one class:
//
//   primary   observes every durable journal append (Journal::
//             set_append_observer), stamps it with (fence, seq, nonce) and
//             ships it as a kRecord frame; answers standby kHellos with
//             either a retransmit tail (same session, records still
//             buffered) or a full snapshot (Journal::snapshot_payload);
//             trims its retransmit buffer on cumulative kAcks; emits
//             kHeartbeats so the standby's failover clock stays fed.
//   standby   durably appends every received record to its OWN journal
//             before applying it (Journal::ingest_replicated — WAL
//             ordering holds on both nodes), acks cumulatively, and feeds
//             HealthMonitor::peer_heartbeat from every received frame.
//
// Fencing: every shipped frame carries the sender's fence epoch. A
// receiver whose own epoch is higher answers kFenceReject and applies
// nothing; the rejected sender observes the higher epoch, its journal
// fences out (every further local append throws FencedException), and it
// stands down to standby. Promotion (HealthMonitor's on_promote hook calls
// promote()) durably bumps the fence to observed+1 and starts a fresh
// session: new nonce, new seq space.
//
// Bootstrap discipline: a snapshot installs only into a FRESH state plane
// (PolicyManager/ERM have no reset — and a real re-seed discards local
// state anyway). When a snapshot arrives at a dirty standby the Replica
// raises needs_restart() instead of applying; the supervisor tears the
// plane down, rebuilds it empty, and re-hellos. The fuzzer models this as
// a standby process restart.
//
// The link is abstracted to bytes: set_send() is the egress, on_bytes()
// the ingress. Tests pump FaultSocket pairs through it; the asyncio
// transport (src/replication/repl_transport.h) binds a raw-mode Connection
// to the same two calls. Standby ingest may throw CrashException out of
// on_bytes() — that is the standby's process boundary, exactly as a store
// crash is for recovery.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/rng.h"
#include "core/entity_resolution.h"
#include "core/health_monitor.h"
#include "core/journal.h"
#include "core/policy_manager.h"
#include "replication/repl_frame.h"

namespace dfi {

struct ReplicaConfig {
  std::uint64_t seed = 1;  // session-nonce stream (deterministic in tests)
  // Outgoing kRecord frames accumulate until the batch reaches this many
  // bytes, then flush as one send (pipelining: the primary never waits for
  // acks). 0 = flush after every record. Control frames always flush.
  std::size_t flush_threshold = 0;
  // Unacked records buffered for retransmission. A standby further behind
  // than this re-bootstraps from a snapshot instead.
  std::size_t retransmit_cap = 65536;
};

struct ReplicaStats {
  std::uint64_t records_shipped = 0;
  std::uint64_t records_applied = 0;
  std::uint64_t records_duplicate = 0;
  std::uint64_t snapshots_sent = 0;
  std::uint64_t snapshots_installed = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t hellos_sent = 0;
  std::uint64_t hellos_received = 0;
  std::uint64_t fence_rejects_sent = 0;
  std::uint64_t fence_rejects_received = 0;
  std::uint64_t resyncs_requested = 0;   // standby-detected gap/nonce mismatch
  std::uint64_t retransmits = 0;         // records re-shipped from the buffer
  std::uint64_t batches_flushed = 0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t decode_errors = 0;       // poisoned streams (link torn down)
  std::uint64_t restarts_required = 0;   // snapshot refused: dirty plane
};

class Replica {
 public:
  Replica(ReplicaConfig config, Journal& journal, PolicyManager& manager,
          EntityResolutionManager& erm, HealthMonitor* health);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // ------------------------------------------------------------------ link
  void set_send(std::function<void(const std::string& bytes)> send);
  // Peer bytes, any chunking. Standby ingest may throw CrashException.
  void on_bytes(const std::uint8_t* data, std::size_t size);
  // The link died (RST/EOF/poisoned stream). A primary stops shipping until
  // the standby re-hellos; a standby clears its decoder and waits for the
  // supervisor to re-dial (or for the failover deadline to promote it).
  void on_link_down();

  // ------------------------------------------------------------------ role
  // Start as the authoritative side: wires the journal append observer and
  // opens a fresh session (nonce, seq space).
  void become_primary();
  // Start as the follower: detaches the observer and sends a kHello
  // subscribing from the next expected sequence.
  void become_standby();
  // The handover (run from HealthMonitor's on_promote, inside the
  // promotion's degraded window): durably bump the fence epoch past
  // everything observed, then take over as primary with a new session.
  void promote();

  bool is_primary() const { return primary_; }

  // --------------------------------------------------------------- pumping
  // Flush any batched records to the link.
  void flush();
  // Primary liveness beat (and high-water seq, so a silent standby can
  // detect missed records). Call on a timer; no-op on a standby.
  void tick_heartbeat();

  // Snapshot refused because this plane already holds state: the
  // supervisor must rebuild the plane fresh and re-hello. Sticky until
  // acknowledged via clear_needs_restart().
  bool needs_restart() const { return needs_restart_; }
  void clear_needs_restart() { needs_restart_ = false; }

  std::uint64_t last_seq() const { return last_seq_; }
  std::uint64_t next_expected_seq() const { return next_seq_; }
  std::uint64_t session_nonce() const { return session_nonce_; }
  std::size_t retransmit_buffered() const { return retransmit_.size(); }
  bool standby_synced() const { return standby_synced_; }
  const ReplicaStats& stats() const { return stats_; }

 private:
  void on_frame(const repl::ReplFrame& frame);
  void handle_hello(const repl::ReplFrame& frame);
  void handle_snapshot(const repl::ReplFrame& frame);
  void handle_record(const repl::ReplFrame& frame);
  void handle_ack(const repl::ReplFrame& frame);
  void handle_heartbeat(const repl::ReplFrame& frame);
  void handle_fence_reject(const repl::ReplFrame& frame);

  void on_local_append(const std::string& payload);
  void send_control(repl::FrameType type, std::uint64_t seq, std::string payload = {});
  void send_snapshot();
  void send_tail_from(std::uint64_t seq);
  void send_hello();
  void send_now(const std::string& bytes);
  void stand_down(std::uint64_t observed_fence);
  void open_session();

  ReplicaConfig config_;
  Journal& journal_;
  PolicyManager& manager_;
  EntityResolutionManager& erm_;
  HealthMonitor* health_;  // optional: peer beats + role ledger
  Rng rng_;

  std::function<void(const std::string&)> send_;
  repl::ReplFrameDecoder decoder_;
  std::string batch_;

  bool primary_ = false;
  bool standby_synced_ = false;  // primary: the standby is caught up / streaming
  bool needs_restart_ = false;
  std::uint64_t session_nonce_ = 0;
  std::uint64_t last_seq_ = 0;   // primary: highest seq shipped (or buffered)
  std::uint64_t acked_seq_ = 0;  // primary: highest cumulative ack
  std::uint64_t next_seq_ = 1;   // standby: next expected sequence
  // Unacked records for same-session tail retransmission: front().first is
  // the oldest buffered seq; contiguous.
  std::deque<std::pair<std::uint64_t, std::string>> retransmit_;

  ReplicaStats stats_;
};

}  // namespace dfi
