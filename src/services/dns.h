// DNS server surrogate: authoritative source of hostname<->IP bindings.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bus/message_bus.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "net/ipv4.h"
#include "services/events.h"

namespace dfi {

class DnsServer {
 public:
  using ClockFn = std::function<SimTime()>;

  DnsServer(MessageBus& bus, ClockFn clock);

  // Add/replace an A record (dynamic DNS update on DHCP lease). A host may
  // hold several addresses (multiple NICs — paper Section III-B).
  void register_record(const Hostname& host, Ipv4Address ip);
  void remove_record(const Hostname& host, Ipv4Address ip);
  void remove_host(const Hostname& host);

  std::vector<Ipv4Address> resolve(const Hostname& host) const;
  std::optional<Hostname> reverse(Ipv4Address ip) const;
  std::size_t record_count() const;

 private:
  MessageBus& bus_;
  ClockFn clock_;
  std::map<Hostname, std::set<Ipv4Address>> forward_;
  std::map<Ipv4Address, Hostname> reverse_;
};

}  // namespace dfi
