#include "services/dns.h"

#include <cassert>

namespace dfi {

DnsServer::DnsServer(MessageBus& bus, ClockFn clock)
    : bus_(bus), clock_(std::move(clock)) {
  assert(clock_);
}

void DnsServer::register_record(const Hostname& host, Ipv4Address ip) {
  // An address maps to one hostname; steal it if re-registered (DHCP churn).
  if (const auto prev = reverse_.find(ip); prev != reverse_.end() && prev->second != host) {
    remove_record(prev->second, ip);
  }
  const bool inserted = forward_[host].insert(ip).second;
  reverse_[ip] = host;
  if (inserted) {
    bus_.publish(topics::kDnsEvents, DnsRecordEvent{host, ip, false, clock_()});
  }
}

void DnsServer::remove_record(const Hostname& host, Ipv4Address ip) {
  const auto it = forward_.find(host);
  if (it == forward_.end() || it->second.erase(ip) == 0) return;
  if (it->second.empty()) forward_.erase(it);
  reverse_.erase(ip);
  bus_.publish(topics::kDnsEvents, DnsRecordEvent{host, ip, true, clock_()});
}

void DnsServer::remove_host(const Hostname& host) {
  const auto it = forward_.find(host);
  if (it == forward_.end()) return;
  const std::set<Ipv4Address> ips = it->second;
  for (Ipv4Address ip : ips) remove_record(host, ip);
}

std::vector<Ipv4Address> DnsServer::resolve(const Hostname& host) const {
  const auto it = forward_.find(host);
  if (it == forward_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::optional<Hostname> DnsServer::reverse(Ipv4Address ip) const {
  const auto it = reverse_.find(ip);
  if (it == reverse_.end()) return std::nullopt;
  return it->second;
}

std::size_t DnsServer::record_count() const {
  std::size_t count = 0;
  for (const auto& [host, ips] : forward_) count += ips.size();
  return count;
}

}  // namespace dfi
