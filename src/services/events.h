// Event and binding types exchanged over the message bus.
//
// Figure 3 of the paper maps each identifier binding to its authoritative
// source: DHCP for IP<->MAC, DNS for hostname<->IP, system event logs (via
// the SIEM) for username<->hostname, and Packet-in events for MAC<->switch
// port. Services publish raw service events on `service.*` topics; the
// identifier-binding sensors translate them to BindingEvents on
// `erm.bindings`, which the Entity Resolution Manager consumes. PDPs that
// react to authentication subscribe to `siem.sessions`.
#pragma once

#include <string>

#include "common/sim_time.h"
#include "common/types.h"
#include "net/ipv4.h"
#include "net/mac.h"

namespace dfi {

// ------------------------------------------------------------- bus topics

namespace topics {
inline const std::string kDhcpEvents = "service.dhcp";
inline const std::string kDnsEvents = "service.dns";
inline const std::string kSiemSessions = "siem.sessions";
inline const std::string kErmBindings = "erm.bindings";
inline const std::string kPolicyCommands = "policy.commands";
inline const std::string kRuleFlush = "pcp.flush";
inline const std::string kHealthHeartbeats = "health.heartbeats";
}  // namespace topics

// --------------------------------------------------------- service events

// DHCP lease granted/renewed or released (authoritative IP<->MAC source).
struct DhcpLeaseEvent {
  MacAddress mac;
  Ipv4Address ip;
  bool released = false;
  SimTime at{};
};

// DNS A record added or removed (authoritative hostname<->IP source).
struct DnsRecordEvent {
  Hostname host;
  Ipv4Address ip;
  bool removed = false;
  SimTime at{};
};

// User session established or ended on a host, as determined by the SIEM's
// process-count aggregation (paper Section IV-A).
struct SessionEvent {
  Username user;
  Hostname host;
  bool logged_on = false;
  SimTime at{};
};

// One liveness beat from a supervised component (a sensor feed, a PDP, a
// shard worker watchdog). The HealthMonitor (core/health_monitor.h) tracks
// the latest beat per component name; a component whose beat is older than
// the configured deadline degrades the control plane.
struct HeartbeatEvent {
  std::string component;
  SimTime at{};
};

// ----------------------------------------------------------- ERM bindings

enum class BindingKind {
  kUserHost,     // username <-> hostname   (SIEM)
  kHostIp,       // hostname <-> IP         (DNS)
  kIpMac,        // IP <-> MAC              (DHCP)
  kMacLocation,  // MAC <-> (switch, port)  (Packet-in, via the PCP)
};

std::string to_string(BindingKind kind);

// One binding asserted or retracted by a sensor. Only the fields relevant
// to `kind` are meaningful.
struct BindingEvent {
  BindingKind kind = BindingKind::kUserHost;
  bool retracted = false;
  Username user;
  Hostname host;
  Ipv4Address ip;
  MacAddress mac;
  Dpid dpid;
  PortNo port;
  SimTime at{};
};

}  // namespace dfi
