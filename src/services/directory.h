// Directory service surrogate (Active Directory).
//
// Holds the organizational model the worm experiment needs (paper Section
// V-B): users with a primary host, enclave (department) groups whose members
// hold Local Administrator on each other's hosts, and the credential-cache
// behaviour NotPetya exploits — a user's credential is cached on every host
// they have logged onto and stays there until explicitly cleared, so an
// attacker with system privileges can replay it even after log-off.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace dfi {

struct UserRecord {
  Username name;
  std::string enclave;               // department / group
  std::optional<Hostname> primary_host;
};

struct HostRecord {
  Hostname name;
  std::string enclave;
  bool is_server = false;
};

class DirectoryService {
 public:
  Status add_user(UserRecord user);
  Status add_host(HostRecord host);

  const UserRecord* find_user(const Username& user) const;
  const HostRecord* find_host(const Hostname& host) const;

  std::vector<Username> users_in_enclave(const std::string& enclave) const;
  std::vector<Hostname> hosts_in_enclave(const std::string& enclave) const;
  std::vector<std::string> enclaves() const;
  std::vector<Hostname> all_hosts() const;
  std::vector<Username> all_users() const;

  // Local Administrator check: a user is local admin on a host iff the host
  // is an end host in the user's enclave (paper: "other users in the same
  // enclave group have Local Administrator privileges on the host").
  // Servers grant no one local admin.
  bool is_local_admin(const Username& user, const Hostname& host) const;

  // ------------------------------------------------------ credential cache
  // Record that `user` authenticated on `host`: their credential is now
  // cached there. Servers are configured not to cache (paper: "servers ...
  // are otherwise defended against credential theft by configuration").
  void record_logon(const Username& user, const Hostname& host);

  // Credentials an attacker with system privileges can dump from `host`.
  std::vector<Username> cached_credentials(const Hostname& host) const;

  // Clear the cache (not used by the scenario; for completeness/tests).
  void clear_credentials(const Hostname& host);

 private:
  std::map<Username, UserRecord> users_;
  std::map<Hostname, HostRecord> hosts_;
  std::map<Hostname, std::set<Username>> credential_cache_;
};

}  // namespace dfi
