// SIEM surrogate (Splunk): derives log-on/log-off from endpoint process events.
//
// The paper's sensor (Section IV-A) does not trust any single Windows
// authentication event type; instead it counts running processes per
// (user, host) from endpoint process-creation/termination logs. A user is
// logged on while their process count is positive. The 0->1 transition
// publishes a logged-on SessionEvent; 1->0 publishes logged-off.
#pragma once

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "bus/message_bus.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "services/events.h"

namespace dfi {

class SiemService {
 public:
  using ClockFn = std::function<SimTime()>;

  SiemService(MessageBus& bus, ClockFn clock);

  // Endpoint collectors forward process lifecycle events here.
  void process_created(const Username& user, const Hostname& host);
  void process_terminated(const Username& user, const Hostname& host);

  bool is_logged_on(const Username& user, const Hostname& host) const;
  int process_count(const Username& user, const Hostname& host) const;

  // All hosts `user` currently has sessions on.
  std::vector<Hostname> sessions_of(const Username& user) const;
  // All users with a session on `host`.
  std::vector<Username> users_on(const Hostname& host) const;

 private:
  using Key = std::pair<Username, Hostname>;

  MessageBus& bus_;
  ClockFn clock_;
  std::map<Key, int> process_counts_;
};

}  // namespace dfi
