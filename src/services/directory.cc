#include "services/directory.h"

namespace dfi {

Status DirectoryService::add_user(UserRecord user) {
  const auto [it, inserted] = users_.emplace(user.name, user);
  (void)it;
  if (!inserted) {
    return Status::Fail(ErrorCode::kAlreadyExists, "user exists: " + user.name.value);
  }
  return Status::Ok();
}

Status DirectoryService::add_host(HostRecord host) {
  const auto [it, inserted] = hosts_.emplace(host.name, host);
  (void)it;
  if (!inserted) {
    return Status::Fail(ErrorCode::kAlreadyExists, "host exists: " + host.name.value);
  }
  return Status::Ok();
}

const UserRecord* DirectoryService::find_user(const Username& user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? nullptr : &it->second;
}

const HostRecord* DirectoryService::find_host(const Hostname& host) const {
  const auto it = hosts_.find(host);
  return it == hosts_.end() ? nullptr : &it->second;
}

std::vector<Username> DirectoryService::users_in_enclave(const std::string& enclave) const {
  std::vector<Username> out;
  for (const auto& [name, record] : users_) {
    if (record.enclave == enclave) out.push_back(name);
  }
  return out;
}

std::vector<Hostname> DirectoryService::hosts_in_enclave(const std::string& enclave) const {
  std::vector<Hostname> out;
  for (const auto& [name, record] : hosts_) {
    if (record.enclave == enclave) out.push_back(name);
  }
  return out;
}

std::vector<std::string> DirectoryService::enclaves() const {
  std::set<std::string> seen;
  for (const auto& [name, record] : hosts_) seen.insert(record.enclave);
  return {seen.begin(), seen.end()};
}

std::vector<Hostname> DirectoryService::all_hosts() const {
  std::vector<Hostname> out;
  out.reserve(hosts_.size());
  for (const auto& [name, record] : hosts_) out.push_back(name);
  return out;
}

std::vector<Username> DirectoryService::all_users() const {
  std::vector<Username> out;
  out.reserve(users_.size());
  for (const auto& [name, record] : users_) out.push_back(name);
  return out;
}

bool DirectoryService::is_local_admin(const Username& user, const Hostname& host) const {
  const UserRecord* user_record = find_user(user);
  const HostRecord* host_record = find_host(host);
  if (user_record == nullptr || host_record == nullptr) return false;
  if (host_record->is_server) return false;
  return user_record->enclave == host_record->enclave;
}

void DirectoryService::record_logon(const Username& user, const Hostname& host) {
  const HostRecord* host_record = find_host(host);
  if (host_record == nullptr || host_record->is_server) return;
  credential_cache_[host].insert(user);
}

std::vector<Username> DirectoryService::cached_credentials(const Hostname& host) const {
  const auto it = credential_cache_.find(host);
  if (it == credential_cache_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void DirectoryService::clear_credentials(const Hostname& host) {
  credential_cache_.erase(host);
}

}  // namespace dfi
