#include "services/dhcp.h"

#include <cassert>

namespace dfi {

DhcpServer::DhcpServer(MessageBus& bus, ClockFn clock, Ipv4Address pool_base,
                       std::uint32_t pool_size)
    : bus_(bus), clock_(std::move(clock)), pool_base_(pool_base), pool_size_(pool_size) {
  assert(clock_);
  assert(pool_size_ > 0);
}

Result<Ipv4Address> DhcpServer::lease(MacAddress mac,
                                      std::optional<Ipv4Address> requested) {
  if (const auto existing = by_mac_.find(mac); existing != by_mac_.end()) {
    if (!requested.has_value() || *requested == existing->second) {
      publish(mac, existing->second, /*released=*/false);  // renewal
      return existing->second;
    }
    // Client requests a different address: release the old lease first.
    release(mac);
  }

  Ipv4Address chosen;
  if (requested.has_value()) {
    const std::uint32_t offset = requested->value() - pool_base_.value();
    if (offset >= pool_size_) {
      return Result<Ipv4Address>::Fail(ErrorCode::kOutOfRange,
                                       "requested address outside pool");
    }
    if (by_ip_.count(*requested) != 0) {
      return Result<Ipv4Address>::Fail(ErrorCode::kAlreadyExists,
                                       "requested address already leased");
    }
    chosen = *requested;
  } else {
    bool found = false;
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      const Ipv4Address candidate(pool_base_.value() + i);
      if (by_ip_.count(candidate) == 0) {
        chosen = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      return Result<Ipv4Address>::Fail(ErrorCode::kOutOfRange, "DHCP pool exhausted");
    }
  }

  by_mac_[mac] = chosen;
  by_ip_[chosen] = mac;
  publish(mac, chosen, /*released=*/false);
  return chosen;
}

void DhcpServer::release(MacAddress mac) {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return;
  const Ipv4Address ip = it->second;
  by_ip_.erase(ip);
  by_mac_.erase(it);
  publish(mac, ip, /*released=*/true);
}

std::optional<Ipv4Address> DhcpServer::lookup(MacAddress mac) const {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return std::nullopt;
  return it->second;
}

std::optional<MacAddress> DhcpServer::reverse_lookup(Ipv4Address ip) const {
  const auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  return it->second;
}

void DhcpServer::publish(MacAddress mac, Ipv4Address ip, bool released) {
  bus_.publish(topics::kDhcpEvents, DhcpLeaseEvent{mac, ip, released, clock_()});
}

}  // namespace dfi
