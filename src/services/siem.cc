#include "services/siem.h"

#include <cassert>

#include "common/logging.h"

namespace dfi {

SiemService::SiemService(MessageBus& bus, ClockFn clock)
    : bus_(bus), clock_(std::move(clock)) {
  assert(clock_);
}

void SiemService::process_created(const Username& user, const Hostname& host) {
  int& count = process_counts_[{user, host}];
  ++count;
  if (count == 1) {
    bus_.publish(topics::kSiemSessions, SessionEvent{user, host, true, clock_()});
  }
}

void SiemService::process_terminated(const Username& user, const Hostname& host) {
  const auto it = process_counts_.find({user, host});
  if (it == process_counts_.end() || it->second == 0) {
    DFI_WARN << "SIEM: termination without matching creation for " << user.value
             << "@" << host.value;
    return;
  }
  --it->second;
  if (it->second == 0) {
    process_counts_.erase(it);
    bus_.publish(topics::kSiemSessions, SessionEvent{user, host, false, clock_()});
  }
}

bool SiemService::is_logged_on(const Username& user, const Hostname& host) const {
  return process_count(user, host) > 0;
}

int SiemService::process_count(const Username& user, const Hostname& host) const {
  const auto it = process_counts_.find({user, host});
  return it == process_counts_.end() ? 0 : it->second;
}

std::vector<Hostname> SiemService::sessions_of(const Username& user) const {
  std::vector<Hostname> out;
  for (const auto& [key, count] : process_counts_) {
    if (key.first == user && count > 0) out.push_back(key.second);
  }
  return out;
}

std::vector<Username> SiemService::users_on(const Hostname& host) const {
  std::vector<Username> out;
  for (const auto& [key, count] : process_counts_) {
    if (key.second == host && count > 0) out.push_back(key.first);
  }
  return out;
}

}  // namespace dfi
