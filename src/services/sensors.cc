#include "services/sensors.h"

namespace dfi {

namespace {

// One liveness beat per translated source event: the HealthMonitor's view
// of "this feed is alive" tracks the feed actually delivering data.
void maybe_beat(MessageBus& bus, const std::string& component, SimTime at) {
  if (component.empty()) return;
  bus.publish(topics::kHealthHeartbeats, HeartbeatEvent{component, at});
}

}  // namespace

std::string to_string(BindingKind kind) {
  switch (kind) {
    case BindingKind::kUserHost: return "user-host";
    case BindingKind::kHostIp: return "host-ip";
    case BindingKind::kIpMac: return "ip-mac";
    case BindingKind::kMacLocation: return "mac-location";
  }
  return "?";
}

IpMacSensor::IpMacSensor(MessageBus& bus)
    : bus_(bus),
      subscription_(bus.subscribe<DhcpLeaseEvent>(
          topics::kDhcpEvents, [this](const DhcpLeaseEvent& event) {
            maybe_beat(bus_, heartbeat_component_, event.at);
            BindingEvent binding;
            binding.kind = BindingKind::kIpMac;
            binding.retracted = event.released;
            binding.ip = event.ip;
            binding.mac = event.mac;
            binding.at = event.at;
            bus_.publish(topics::kErmBindings, binding);
          })) {}

HostIpSensor::HostIpSensor(MessageBus& bus)
    : bus_(bus),
      subscription_(bus.subscribe<DnsRecordEvent>(
          topics::kDnsEvents, [this](const DnsRecordEvent& event) {
            maybe_beat(bus_, heartbeat_component_, event.at);
            BindingEvent binding;
            binding.kind = BindingKind::kHostIp;
            binding.retracted = event.removed;
            binding.host = event.host;
            binding.ip = event.ip;
            binding.at = event.at;
            bus_.publish(topics::kErmBindings, binding);
          })) {}

UserHostSensor::UserHostSensor(MessageBus& bus)
    : bus_(bus),
      subscription_(bus.subscribe<SessionEvent>(
          topics::kSiemSessions, [this](const SessionEvent& event) {
            maybe_beat(bus_, heartbeat_component_, event.at);
            BindingEvent binding;
            binding.kind = BindingKind::kUserHost;
            binding.retracted = !event.logged_on;
            binding.user = event.user;
            binding.host = event.host;
            binding.at = event.at;
            bus_.publish(topics::kErmBindings, binding);
          })) {}

}  // namespace dfi
