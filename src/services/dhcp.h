// DHCP server surrogate: authoritative source of IP<->MAC bindings.
//
// Assigns addresses from a configured pool, tracks leases, and publishes a
// DhcpLeaseEvent on every grant/renew/release so the IP-MAC binding sensor
// can feed the Entity Resolution Manager (paper Figure 3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "bus/message_bus.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "net/ipv4.h"
#include "net/mac.h"
#include "services/events.h"

namespace dfi {

class DhcpServer {
 public:
  using ClockFn = std::function<SimTime()>;

  // Pool is [base, base + pool_size) within one subnet.
  DhcpServer(MessageBus& bus, ClockFn clock, Ipv4Address pool_base,
             std::uint32_t pool_size);

  // Grant (or renew) a lease for `mac`. A renewing client keeps its address;
  // a new client gets the lowest free one. Optionally a specific address can
  // be requested (static reservations for servers).
  Result<Ipv4Address> lease(MacAddress mac,
                            std::optional<Ipv4Address> requested = std::nullopt);

  // Release the lease held by `mac` (no-op if none).
  void release(MacAddress mac);

  std::optional<Ipv4Address> lookup(MacAddress mac) const;
  std::optional<MacAddress> reverse_lookup(Ipv4Address ip) const;
  std::size_t active_leases() const { return by_mac_.size(); }

 private:
  void publish(MacAddress mac, Ipv4Address ip, bool released);

  MessageBus& bus_;
  ClockFn clock_;
  Ipv4Address pool_base_;
  std::uint32_t pool_size_;
  std::map<MacAddress, Ipv4Address> by_mac_;
  std::map<Ipv4Address, MacAddress> by_ip_;
};

}  // namespace dfi
