// Identifier-binding sensors (paper Figure 3 and Section IV-A).
//
// Each sensor subscribes to its authoritative source's event topic and
// republishes normalized BindingEvents on `erm.bindings` for the Entity
// Resolution Manager. Collecting bindings only from authoritative sources
// is what prevents endpoint attackers from poisoning DFI's view: a host
// cannot claim an IP the DHCP server never leased to it.
//
// The fourth binding (MAC <-> switch port) has no data-plane authoritative
// service; it is observed from Packet-in events inside the PCP, which
// publishes the same BindingEvent type (see core/pcp.h).
#pragma once

#include "bus/message_bus.h"
#include "services/events.h"

namespace dfi {

// DHCP -> IP<->MAC bindings.
class IpMacSensor {
 public:
  explicit IpMacSensor(MessageBus& bus);

 private:
  MessageBus& bus_;
  Subscription subscription_;
};

// DNS -> hostname<->IP bindings.
class HostIpSensor {
 public:
  explicit HostIpSensor(MessageBus& bus);

 private:
  MessageBus& bus_;
  Subscription subscription_;
};

// SIEM sessions -> username<->hostname bindings.
class UserHostSensor {
 public:
  explicit UserHostSensor(MessageBus& bus);

 private:
  MessageBus& bus_;
  Subscription subscription_;
};

// Convenience bundle: all three data-plane sensors.
struct SensorSuite {
  explicit SensorSuite(MessageBus& bus)
      : ip_mac(bus), host_ip(bus), user_host(bus) {}

  IpMacSensor ip_mac;
  HostIpSensor host_ip;
  UserHostSensor user_host;
};

}  // namespace dfi
