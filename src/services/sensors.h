// Identifier-binding sensors (paper Figure 3 and Section IV-A).
//
// Each sensor subscribes to its authoritative source's event topic and
// republishes normalized BindingEvents on `erm.bindings` for the Entity
// Resolution Manager. Collecting bindings only from authoritative sources
// is what prevents endpoint attackers from poisoning DFI's view: a host
// cannot claim an IP the DHCP server never leased to it.
//
// The fourth binding (MAC <-> switch port) has no data-plane authoritative
// service; it is observed from Packet-in events inside the PCP, which
// publishes the same BindingEvent type (see core/pcp.h).
//
// Liveness (DESIGN.md §6): a sensor with heartbeats enabled publishes a
// HeartbeatEvent on `health.heartbeats` for every source event it
// translates, so the HealthMonitor can detect a feed going quiet. Off by
// default — existing experiments see no extra bus traffic.
#pragma once

#include <string>

#include "bus/message_bus.h"
#include "services/events.h"

namespace dfi {

// DHCP -> IP<->MAC bindings.
class IpMacSensor {
 public:
  explicit IpMacSensor(MessageBus& bus);

  void enable_heartbeats(std::string component) {
    heartbeat_component_ = std::move(component);
  }

 private:
  MessageBus& bus_;
  std::string heartbeat_component_;  // empty = heartbeats off
  Subscription subscription_;
};

// DNS -> hostname<->IP bindings.
class HostIpSensor {
 public:
  explicit HostIpSensor(MessageBus& bus);

  void enable_heartbeats(std::string component) {
    heartbeat_component_ = std::move(component);
  }

 private:
  MessageBus& bus_;
  std::string heartbeat_component_;
  Subscription subscription_;
};

// SIEM sessions -> username<->hostname bindings.
class UserHostSensor {
 public:
  explicit UserHostSensor(MessageBus& bus);

  void enable_heartbeats(std::string component) {
    heartbeat_component_ = std::move(component);
  }

 private:
  MessageBus& bus_;
  std::string heartbeat_component_;
  Subscription subscription_;
};

// Convenience bundle: all three data-plane sensors.
struct SensorSuite {
  explicit SensorSuite(MessageBus& bus)
      : ip_mac(bus), host_ip(bus), user_host(bus) {}

  // Turn on liveness beats for all three feeds under canonical names
  // (sensor.dhcp / sensor.dns / sensor.siem). Pair with
  // HealthMonitor::watch() on the same names to enforce deadlines.
  void enable_heartbeats() {
    ip_mac.enable_heartbeats("sensor.dhcp");
    host_ip.enable_heartbeats("sensor.dns");
    user_host.enable_heartbeats("sensor.siem");
  }

  IpMacSensor ip_mac;
  HostIpSensor host_ip;
  UserHostSensor user_host;
};

}  // namespace dfi
