// Software OpenFlow switch (Open vSwitch surrogate).
//
// Owns a multi-table pipeline and a control channel speaking the OF 1.3
// wire format. Data-plane packets that miss in the tables are raised as
// Packet-in messages; Flow-Mod/Packet-Out/Multipart requests from the
// control plane are applied exactly as OVS would. Port egress and control
// egress are callbacks so the testbed can wire switches into a topology and
// the proxy can interpose on the control channel.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/frame_buffer_pool.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "openflow/messages.h"
#include "openflow/pipeline.h"
#include "openflow/secure_channel.h"
#include "openflow/wire.h"

namespace dfi {

struct SwitchConfig {
  Dpid dpid{};
  std::uint8_t num_tables = 4;
  std::size_t table_capacity = 8192;
};

struct SwitchCounters {
  std::uint64_t packets_in = 0;       // data-plane packets received
  std::uint64_t packets_forwarded = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packet_in_events = 0;  // sent to control plane
  std::uint64_t flow_mods = 0;
  std::uint64_t packet_outs = 0;
};

class SwitchDevice {
 public:
  using PortOutputFn = std::function<void(PortNo, const std::vector<std::uint8_t>&)>;
  using ControlOutputFn = std::function<void(const std::vector<std::uint8_t>&)>;
  using ClockFn = std::function<SimTime()>;

  SwitchDevice(SwitchConfig config, ClockFn clock);

  Dpid dpid() const { return config_.dpid; }
  Pipeline& pipeline() { return pipeline_; }
  const Pipeline& pipeline() const { return pipeline_; }
  const SwitchCounters& counters() const { return counters_; }

  // Register a data-plane port. `output` delivers bytes out of that port.
  void add_port(PortNo port, PortOutputFn output, const std::string& name = "");
  std::vector<PortNo> ports() const;

  // Administratively take a link down / bring it back up. Egress on a down
  // port is dropped, ingress ignored, and a PORT_STATUS message is raised
  // to the control plane.
  void set_port_down(PortNo port, bool down);
  bool port_down(PortNo port) const;

  // Per-port counters (also served via OFPMP_PORT_STATS).
  PortStatsEntry port_stats(PortNo port) const;

  // Attach the control channel (to the proxy or directly to a controller)
  // and emit the initial HELLO.
  void connect_control(ControlOutputFn output);

  // Front the control channel with a TLS surrogate (both directions; the
  // channel must outlive this object, nullptr detaches). Egress reuses the
  // pooled seal_into path — encode into one pooled buffer, seal in place
  // into a second — so a secured link leaving via a real socket still
  // allocates nothing per frame at steady state. Ingress expects one
  // sealed record per receive_control() delivery (the record format has no
  // outer framing); records that fail to open are dropped and counted by
  // the channel.
  void secure_control(SecureChannel* channel) { secure_ = channel; }

  // A data-plane packet arrives on `in_port`.
  void receive_packet(PortNo in_port, const std::vector<std::uint8_t>& bytes);

  // Control-channel bytes arrive from the controller side.
  void receive_control(const std::vector<std::uint8_t>& chunk);

  // Run idle/hard timeout expiry across all tables (the testbed calls this
  // periodically when timeouts are in use; DFI itself installs none).
  void expire_flows();

  // Control-egress frame buffer reuse (Packet-in floods are the hot case).
  const FrameBufferPool& control_buffer_pool() const { return control_pool_; }

 private:
  void handle_message(const OfMessage& message);
  void apply_flow_mod(const FlowModMsg& mod);
  void execute_actions(const std::vector<Action>& actions, PortNo in_port,
                       const std::vector<std::uint8_t>& bytes);
  void send_to_control(const OfMessage& message);
  void send_packet_in(PortNo in_port, std::uint8_t table_id,
                      const std::vector<std::uint8_t>& bytes);
  void send_flow_removed(const FlowRule& rule, FlowRemovedReason reason);
  void flood(PortNo in_port, const std::vector<std::uint8_t>& bytes);

  struct Port {
    PortOutputFn output;
    std::string name;
    bool down = false;
    std::uint64_t rx_packets = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_dropped = 0;
    std::uint64_t tx_dropped = 0;
    SimTime since{};
  };

  void transmit(PortNo port, Port& state, const std::vector<std::uint8_t>& bytes);
  PortDesc describe(PortNo port, const Port& state) const;

  SwitchConfig config_;
  ClockFn clock_;
  Pipeline pipeline_;
  std::map<PortNo, Port> ports_;
  ControlOutputFn control_output_;
  SecureChannel* secure_ = nullptr;
  FrameDecoder control_decoder_;
  // Control egress is synchronous (callback returns before the buffer is
  // released), so one small pool serves every outbound message.
  FrameBufferPool control_pool_;
  SwitchCounters counters_;
  std::uint32_t next_xid_ = 1;
};

}  // namespace dfi
