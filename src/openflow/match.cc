#include "openflow/match.h"

#include <sstream>

namespace dfi {
namespace {

// Field-wise cover check: wildcard covers anything; concrete only equality.
template <typename T>
bool field_covers(const std::optional<T>& wider, const std::optional<T>& narrower) {
  if (!wider.has_value()) return true;
  return narrower.has_value() && *wider == *narrower;
}

}  // namespace

bool Match::matches(const Packet& packet, PortNo port) const {
  if (in_port.has_value() && *in_port != port) return false;
  if (eth_src.has_value() && *eth_src != packet.eth.src) return false;
  if (eth_dst.has_value() && *eth_dst != packet.eth.dst) return false;
  if (eth_type.has_value() && *eth_type != packet.eth.ether_type) return false;

  if (ip_proto.has_value() || ipv4_src.has_value() || ipv4_dst.has_value()) {
    if (!packet.ipv4.has_value()) return false;
    if (ip_proto.has_value() && *ip_proto != packet.ipv4->protocol) return false;
    if (ipv4_src.has_value() && *ipv4_src != packet.ipv4->src) return false;
    if (ipv4_dst.has_value() && *ipv4_dst != packet.ipv4->dst) return false;
  }

  if (tcp_src.has_value() || tcp_dst.has_value()) {
    if (!packet.tcp.has_value()) return false;
    if (tcp_src.has_value() && *tcp_src != packet.tcp->src_port) return false;
    if (tcp_dst.has_value() && *tcp_dst != packet.tcp->dst_port) return false;
  }

  if (udp_src.has_value() || udp_dst.has_value()) {
    if (!packet.udp.has_value()) return false;
    if (udp_src.has_value() && *udp_src != packet.udp->src_port) return false;
    if (udp_dst.has_value() && *udp_dst != packet.udp->dst_port) return false;
  }
  return true;
}

bool Match::covers(const Match& other) const {
  return field_covers(in_port, other.in_port) &&
         field_covers(eth_src, other.eth_src) &&
         field_covers(eth_dst, other.eth_dst) &&
         field_covers(eth_type, other.eth_type) &&
         field_covers(ip_proto, other.ip_proto) &&
         field_covers(ipv4_src, other.ipv4_src) &&
         field_covers(ipv4_dst, other.ipv4_dst) &&
         field_covers(tcp_src, other.tcp_src) &&
         field_covers(tcp_dst, other.tcp_dst) &&
         field_covers(udp_src, other.udp_src) &&
         field_covers(udp_dst, other.udp_dst);
}

int Match::specified_fields() const {
  int count = 0;
  count += in_port.has_value();
  count += eth_src.has_value();
  count += eth_dst.has_value();
  count += eth_type.has_value();
  count += ip_proto.has_value();
  count += ipv4_src.has_value();
  count += ipv4_dst.has_value();
  count += tcp_src.has_value();
  count += tcp_dst.has_value();
  count += udp_src.has_value();
  count += udp_dst.has_value();
  return count;
}

std::string Match::to_string() const {
  std::ostringstream out;
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    if (!first) out << ",";
    first = false;
    return out;
  };
  if (in_port) sep() << "in_port=" << in_port->value;
  if (eth_src) sep() << "eth_src=" << eth_src->to_string();
  if (eth_dst) sep() << "eth_dst=" << eth_dst->to_string();
  if (eth_type) sep() << "eth_type=0x" << std::hex << *eth_type << std::dec;
  if (ip_proto) sep() << "ip_proto=" << static_cast<int>(*ip_proto);
  if (ipv4_src) sep() << "ipv4_src=" << ipv4_src->to_string();
  if (ipv4_dst) sep() << "ipv4_dst=" << ipv4_dst->to_string();
  if (tcp_src) sep() << "tcp_src=" << *tcp_src;
  if (tcp_dst) sep() << "tcp_dst=" << *tcp_dst;
  if (udp_src) sep() << "udp_src=" << *udp_src;
  if (udp_dst) sep() << "udp_dst=" << *udp_dst;
  if (first) out << "*";
  return out.str();
}

Match Match::exact_from_packet(const Packet& packet, PortNo port) {
  Match match;
  match.in_port = port;
  match.eth_src = packet.eth.src;
  match.eth_dst = packet.eth.dst;
  match.eth_type = packet.eth.ether_type;
  if (packet.ipv4.has_value()) {
    match.ip_proto = packet.ipv4->protocol;
    match.ipv4_src = packet.ipv4->src;
    match.ipv4_dst = packet.ipv4->dst;
    if (packet.tcp.has_value()) {
      match.tcp_src = packet.tcp->src_port;
      match.tcp_dst = packet.tcp->dst_port;
    } else if (packet.udp.has_value()) {
      match.udp_src = packet.udp->src_port;
      match.udp_dst = packet.udp->dst_port;
    }
  }
  return match;
}

}  // namespace dfi
