// A single flow table: priority-ordered rule storage with OpenFlow
// add/modify/delete semantics and capacity accounting.
//
// Hardware switches store 512–8192 rules (paper Section III-A); the table
// enforces a configurable capacity so experiments can observe eviction
// pressure from DFI's exact-match rules.
//
// Lookup fast path: DFI fills Table 0 with exact-match rules (one per
// flow), so the table keeps a hash index over fully-specified matches —
// the shape Match::exact_from_packet produces. Rules with any wildcard
// stay on a small linear list. A lookup consults both and resolves by the
// same (priority desc, specificity desc, install-time asc) order the
// naive scan would use, so behaviour is identical while a miss over N
// exact rules costs O(1 + wildcard rules) instead of O(N).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "openflow/flow_rule.h"

namespace dfi {

struct FlowTableStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t exact_index_hits = 0;
};

class FlowTable {
 public:
  explicit FlowTable(std::uint8_t table_id, std::size_t capacity = 8192)
      : table_id_(table_id), capacity_(capacity) {}

  std::uint8_t table_id() const { return table_id_; }
  std::size_t size() const { return rules_.size(); }
  std::size_t capacity() const { return capacity_; }
  const FlowTableStats& stats() const { return stats_; }

  // OFPFC_ADD: replaces a rule with identical match and priority (the OF
  // overlap case we need); otherwise inserts. Fails when the table is full.
  Status add(FlowRule rule, SimTime now);

  // OFPFC_MODIFY (non-strict): update instructions of every rule whose
  // match is covered by `match` and whose cookie passes the mask filter.
  // Returns the number of rules modified.
  std::size_t modify(const Match& match, Cookie cookie, Cookie cookie_mask,
                     const Instructions& instructions);

  // OFPFC_DELETE (non-strict): remove every rule covered by `match` that
  // passes the cookie filter. Returns removed rules (for Flow-Removed).
  std::vector<FlowRule> remove(const Match& match, Cookie cookie, Cookie cookie_mask);

  // OFPFC_DELETE_STRICT: remove the single rule with identical match and
  // priority (cookie filter still applies).
  std::vector<FlowRule> remove_strict(const Match& match, std::uint16_t priority,
                                      Cookie cookie, Cookie cookie_mask);

  // Highest-priority rule matching the packet; updates counters on hit.
  // Ties are broken by most-specific match then earliest install, making
  // lookups deterministic (the OF spec leaves overlapping same-priority
  // behaviour undefined; OVS picks an arbitrary one).
  FlowRule* lookup(const Packet& packet, PortNo in_port, std::size_t packet_bytes,
                   SimTime now);

  // Expire rules whose idle/hard timeout has elapsed; returns expired rules.
  std::vector<FlowRule> expire(SimTime now);

  // Rules in lookup order (priority desc, specificity desc, install asc).
  std::vector<const FlowRule*> rules() const;

  void for_each(const std::function<void(const FlowRule&)>& fn) const;

 private:
  struct MatchHasher {
    std::size_t operator()(const Match& match) const;
  };

  static bool cookie_selected(const FlowRule& rule, Cookie cookie, Cookie mask);
  // True if `match` has the exact shape Match::exact_from_packet produces
  // (and therefore can be found via the hash index).
  static bool is_indexable_exact(const Match& match);

  void index_rule(FlowRule* rule);
  void deindex_rule(const FlowRule* rule);
  void sort_rules();

  std::uint8_t table_id_;
  std::size_t capacity_;
  // Stable storage; ordering maintained separately by sort_rules().
  std::vector<std::unique_ptr<FlowRule>> rules_;
  // Exact-match fast path (match -> rule). Only indexable rules appear.
  std::unordered_map<Match, FlowRule*, MatchHasher> exact_index_;
  // Rules not in the index; scanned linearly (kept in lookup order).
  std::vector<FlowRule*> wildcard_rules_;
  FlowTableStats stats_;
};

}  // namespace dfi
