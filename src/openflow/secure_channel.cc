#include "openflow/secure_channel.h"

namespace dfi {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void keystream_xor(std::uint64_t key, std::uint64_t record, std::uint8_t* data,
                   std::size_t size) {
  std::uint64_t block = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (i % 8 == 0) block = mix(key ^ mix(record ^ (i / 8)));
    data[i] ^= static_cast<std::uint8_t>(block >> ((i % 8) * 8));
  }
}

// Keyed 128-bit tag over (record number, ciphertext).
void compute_tag(std::uint64_t key, std::uint64_t record, const std::uint8_t* ciphertext,
                 std::size_t size, std::uint8_t out[16]) {
  std::uint64_t a = mix(key ^ 0x7461675f61ull) ^ record;  // "tag_a"
  std::uint64_t b = mix(key ^ 0x7461675f62ull) ^ (record << 1);
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint8_t byte = ciphertext[i];
    a = mix(a ^ byte);
    b = mix(b + byte + 1);
  }
  a = mix(a ^ size);
  b = mix(b ^ (size << 8));
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(a >> (i * 8));
    out[8 + i] = static_cast<std::uint8_t>(b >> (i * 8));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

std::uint64_t get_u64(const std::uint8_t* data) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value = (value << 8) | data[i];
  return value;
}

}  // namespace

std::vector<std::uint8_t> SecureChannel::seal(const std::vector<std::uint8_t>& plaintext) {
  std::vector<std::uint8_t> out;
  seal_into(plaintext.data(), plaintext.size(), out);
  return out;
}

void SecureChannel::seal_into(const std::uint8_t* plaintext, std::size_t size,
                              std::vector<std::uint8_t>& out) {
  const std::uint64_t record = ++send_counter_;
  out.clear();
  out.reserve(size + 24);
  put_u64(out, record);
  // Encrypt in place inside the record: copy the plaintext, then xor the
  // keystream over it. No ciphertext temporary.
  out.insert(out.end(), plaintext, plaintext + size);
  keystream_xor(key_, record, out.data() + 8, size);
  std::uint8_t tag[16];
  compute_tag(key_, record, out.data() + 8, size, tag);
  out.insert(out.end(), tag, tag + 16);
}

Result<std::vector<std::uint8_t>> SecureChannel::open(
    const std::vector<std::uint8_t>& record) {
  std::vector<std::uint8_t> plaintext;
  auto opened = open_into(record.data(), record.size(), plaintext);
  if (!opened.ok()) {
    return Result<std::vector<std::uint8_t>>::Fail(opened.error().code,
                                                   opened.error().message);
  }
  return plaintext;
}

Result<std::size_t> SecureChannel::open_into(const std::uint8_t* record,
                                             std::size_t size,
                                             std::vector<std::uint8_t>& out) {
  if (size < 24) {
    ++rejected_;
    return Result<std::size_t>::Fail(ErrorCode::kMalformed, "truncated secure record");
  }
  const std::uint64_t number = get_u64(record);
  const std::uint8_t* ciphertext = record + 8;
  const std::size_t ciphertext_len = size - 24;
  std::uint8_t expected[16];
  compute_tag(key_, number, ciphertext, ciphertext_len, expected);
  // Constant-time-style comparison (the spirit, if not the timing model).
  std::uint8_t diff = 0;
  for (int i = 0; i < 16; ++i) {
    diff |= static_cast<std::uint8_t>(
        expected[i] ^ record[size - 16 + static_cast<std::size_t>(i)]);
  }
  if (diff != 0) {
    ++rejected_;
    return Result<std::size_t>::Fail(
        ErrorCode::kPermissionDenied, "authentication tag mismatch (tamper or wrong key)");
  }
  if (number <= highest_received_) {
    ++rejected_;
    return Result<std::size_t>::Fail(ErrorCode::kPermissionDenied,
                                     "replayed or reordered record");
  }
  highest_received_ = number;
  out.clear();
  out.insert(out.end(), ciphertext, ciphertext + ciphertext_len);
  keystream_xor(key_, number, out.data(), ciphertext_len);
  return ciphertext_len;
}

}  // namespace dfi
