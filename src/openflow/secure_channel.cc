#include "openflow/secure_channel.h"

namespace dfi {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void keystream_xor(std::uint64_t key, std::uint64_t record, std::vector<std::uint8_t>& data) {
  std::uint64_t block = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 8 == 0) block = mix(key ^ mix(record ^ (i / 8)));
    data[i] ^= static_cast<std::uint8_t>(block >> ((i % 8) * 8));
  }
}

// Keyed 128-bit tag over (record number, ciphertext).
void compute_tag(std::uint64_t key, std::uint64_t record,
                 const std::vector<std::uint8_t>& ciphertext, std::uint8_t out[16]) {
  std::uint64_t a = mix(key ^ 0x7461675f61ull) ^ record;  // "tag_a"
  std::uint64_t b = mix(key ^ 0x7461675f62ull) ^ (record << 1);
  for (const std::uint8_t byte : ciphertext) {
    a = mix(a ^ byte);
    b = mix(b + byte + 1);
  }
  a = mix(a ^ ciphertext.size());
  b = mix(b ^ (ciphertext.size() << 8));
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(a >> (i * 8));
    out[8 + i] = static_cast<std::uint8_t>(b >> (i * 8));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

std::uint64_t get_u64(const std::uint8_t* data) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value = (value << 8) | data[i];
  return value;
}

}  // namespace

std::vector<std::uint8_t> SecureChannel::seal(const std::vector<std::uint8_t>& plaintext) {
  const std::uint64_t record = ++send_counter_;
  std::vector<std::uint8_t> out;
  out.reserve(plaintext.size() + 24);
  put_u64(out, record);
  std::vector<std::uint8_t> ciphertext = plaintext;
  keystream_xor(key_, record, ciphertext);
  out.insert(out.end(), ciphertext.begin(), ciphertext.end());
  std::uint8_t tag[16];
  compute_tag(key_, record, ciphertext, tag);
  out.insert(out.end(), tag, tag + 16);
  return out;
}

Result<std::vector<std::uint8_t>> SecureChannel::open(
    const std::vector<std::uint8_t>& record) {
  if (record.size() < 24) {
    ++rejected_;
    return Result<std::vector<std::uint8_t>>::Fail(ErrorCode::kMalformed,
                                                   "truncated secure record");
  }
  const std::uint64_t number = get_u64(record.data());
  std::vector<std::uint8_t> ciphertext(record.begin() + 8, record.end() - 16);
  std::uint8_t expected[16];
  compute_tag(key_, number, ciphertext, expected);
  // Constant-time-style comparison (the spirit, if not the timing model).
  std::uint8_t diff = 0;
  for (int i = 0; i < 16; ++i) {
    diff |= static_cast<std::uint8_t>(expected[i] ^ record[record.size() - 16 +
                                                           static_cast<std::size_t>(i)]);
  }
  if (diff != 0) {
    ++rejected_;
    return Result<std::vector<std::uint8_t>>::Fail(
        ErrorCode::kPermissionDenied, "authentication tag mismatch (tamper or wrong key)");
  }
  if (number <= highest_received_) {
    ++rejected_;
    return Result<std::vector<std::uint8_t>>::Fail(ErrorCode::kPermissionDenied,
                                                   "replayed or reordered record");
  }
  highest_received_ = number;
  keystream_xor(key_, number, ciphertext);
  return ciphertext;
}

}  // namespace dfi
