#include "openflow/flow_table.h"

#include <algorithm>

namespace dfi {
namespace {

bool ordered_before(const FlowRule& a, const FlowRule& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  const int sa = a.match.specified_fields();
  const int sb = b.match.specified_fields();
  if (sa != sb) return sa > sb;
  return a.installed_at < b.installed_at;
}

void hash_combine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

template <typename T>
void hash_field(std::size_t& seed, const std::optional<T>& field) {
  if (!field.has_value()) {
    hash_combine(seed, 0x517cc1b727220a95ull);
    return;
  }
  if constexpr (std::is_same_v<T, PortNo>) {
    hash_combine(seed, field->value);
  } else if constexpr (std::is_same_v<T, MacAddress>) {
    hash_combine(seed, static_cast<std::size_t>(field->to_u64()));
  } else if constexpr (std::is_same_v<T, Ipv4Address>) {
    hash_combine(seed, field->value());
  } else {
    hash_combine(seed, static_cast<std::size_t>(*field));
  }
}

}  // namespace

std::size_t FlowTable::MatchHasher::operator()(const Match& match) const {
  std::size_t seed = 0;
  hash_field(seed, match.in_port);
  hash_field(seed, match.eth_src);
  hash_field(seed, match.eth_dst);
  hash_field(seed, match.eth_type);
  hash_field(seed, match.ip_proto);
  hash_field(seed, match.ipv4_src);
  hash_field(seed, match.ipv4_dst);
  hash_field(seed, match.tcp_src);
  hash_field(seed, match.tcp_dst);
  hash_field(seed, match.udp_src);
  hash_field(seed, match.udp_dst);
  return seed;
}

bool FlowTable::cookie_selected(const FlowRule& rule, Cookie cookie, Cookie mask) {
  return (rule.cookie.value & mask.value) == (cookie.value & mask.value);
}

bool FlowTable::is_indexable_exact(const Match& match) {
  // The exact_from_packet shape: L2 fields always concrete...
  if (!match.in_port || !match.eth_src || !match.eth_dst || !match.eth_type) {
    return false;
  }
  const bool is_ipv4 =
      *match.eth_type == static_cast<std::uint16_t>(EtherType::kIpv4);
  if (!is_ipv4) {
    // ...non-IP: no L3/L4 fields may be set (they'd be unreachable anyway).
    return !match.ip_proto && !match.ipv4_src && !match.ipv4_dst &&
           !match.tcp_src && !match.tcp_dst && !match.udp_src && !match.udp_dst;
  }
  if (!match.ip_proto || !match.ipv4_src || !match.ipv4_dst) return false;
  if (*match.ip_proto == static_cast<std::uint8_t>(IpProto::kTcp)) {
    return match.tcp_src && match.tcp_dst && !match.udp_src && !match.udp_dst;
  }
  if (*match.ip_proto == static_cast<std::uint8_t>(IpProto::kUdp)) {
    return match.udp_src && match.udp_dst && !match.tcp_src && !match.tcp_dst;
  }
  return !match.tcp_src && !match.tcp_dst && !match.udp_src && !match.udp_dst;
}

void FlowTable::index_rule(FlowRule* rule) {
  if (is_indexable_exact(rule->match)) {
    const auto [it, inserted] = exact_index_.emplace(rule->match, rule);
    if (!inserted) {
      // Same match at a different priority: the index keeps the one that
      // wins lookups (higher priority; equal priority favors existing,
      // which installed earlier).
      if (rule->priority > it->second->priority) {
        wildcard_rules_.push_back(it->second);
        it->second = rule;
        return;
      }
      wildcard_rules_.push_back(rule);
    }
    return;
  }
  wildcard_rules_.push_back(rule);
}

void FlowTable::deindex_rule(const FlowRule* rule) {
  const auto it = exact_index_.find(rule->match);
  if (it != exact_index_.end() && it->second == rule) {
    exact_index_.erase(it);
    // Promote a displaced same-match rule from the wildcard list, if any.
    for (auto wit = wildcard_rules_.begin(); wit != wildcard_rules_.end(); ++wit) {
      if ((*wit)->match == rule->match && is_indexable_exact((*wit)->match)) {
        exact_index_.emplace((*wit)->match, *wit);
        wildcard_rules_.erase(wit);
        break;
      }
    }
    return;
  }
  wildcard_rules_.erase(
      std::remove(wildcard_rules_.begin(), wildcard_rules_.end(), rule),
      wildcard_rules_.end());
}

void FlowTable::sort_rules() {
  std::sort(wildcard_rules_.begin(), wildcard_rules_.end(),
            [](const FlowRule* a, const FlowRule* b) { return ordered_before(*a, *b); });
}

Status FlowTable::add(FlowRule rule, SimTime now) {
  rule.table_id = table_id_;
  rule.installed_at = now;
  rule.last_matched_at = now;

  // Identical match+priority replaces in place, preserving counters. The
  // duplicate, if any, is either in the exact index or on the (small)
  // wildcard list — never an unindexed exact rule — so this stays O(1 + W).
  FlowRule* duplicate = nullptr;
  if (is_indexable_exact(rule.match)) {
    const auto it = exact_index_.find(rule.match);
    if (it != exact_index_.end() && it->second->priority == rule.priority) {
      duplicate = it->second;
    }
  }
  if (duplicate == nullptr) {
    for (FlowRule* candidate : wildcard_rules_) {
      if (candidate->priority == rule.priority && candidate->match == rule.match) {
        duplicate = candidate;
        break;
      }
    }
  }
  if (duplicate != nullptr) {
    rule.counters = duplicate->counters;  // OF add w/o RESET_COUNTS keeps them
    rule.installed_at = duplicate->installed_at;
    *duplicate = std::move(rule);
    ++stats_.inserts;
    return Status::Ok();
  }

  if (rules_.size() >= capacity_) {
    ++stats_.rejected_full;
    return Status::Fail(ErrorCode::kOutOfRange,
                        "flow table " + std::to_string(table_id_) + " full (" +
                            std::to_string(capacity_) + " rules)");
  }

  rules_.push_back(std::make_unique<FlowRule>(std::move(rule)));
  index_rule(rules_.back().get());
  sort_rules();
  ++stats_.inserts;
  return Status::Ok();
}

std::size_t FlowTable::modify(const Match& match, Cookie cookie, Cookie cookie_mask,
                              const Instructions& instructions) {
  std::size_t modified = 0;
  for (auto& rule : rules_) {
    if (!cookie_selected(*rule, cookie, cookie_mask)) continue;
    if (!match.covers(rule->match)) continue;
    rule->instructions = instructions;
    ++modified;
  }
  return modified;
}

std::vector<FlowRule> FlowTable::remove(const Match& match, Cookie cookie,
                                        Cookie cookie_mask) {
  std::vector<FlowRule> removed;
  auto keep = rules_.begin();
  for (auto& rule : rules_) {
    if (cookie_selected(*rule, cookie, cookie_mask) && match.covers(rule->match)) {
      deindex_rule(rule.get());
      removed.push_back(std::move(*rule));
    } else {
      *keep++ = std::move(rule);
    }
  }
  rules_.erase(keep, rules_.end());
  stats_.deletes += removed.size();
  return removed;
}

std::vector<FlowRule> FlowTable::remove_strict(const Match& match,
                                               std::uint16_t priority, Cookie cookie,
                                               Cookie cookie_mask) {
  std::vector<FlowRule> removed;
  const auto it = std::find_if(rules_.begin(), rules_.end(),
                               [&](const std::unique_ptr<FlowRule>& rule) {
                                 return rule->priority == priority &&
                                        rule->match == match &&
                                        cookie_selected(*rule, cookie, cookie_mask);
                               });
  if (it != rules_.end()) {
    deindex_rule(it->get());
    removed.push_back(std::move(**it));
    rules_.erase(it);
    ++stats_.deletes;
  }
  return removed;
}

FlowRule* FlowTable::lookup(const Packet& packet, PortNo in_port,
                            std::size_t packet_bytes, SimTime now) {
  ++stats_.lookups;

  // Fast path: the fully-specified match this packet would hash to.
  FlowRule* exact_hit = nullptr;
  if (!exact_index_.empty()) {
    const Match key = Match::exact_from_packet(packet, in_port);
    const auto it = exact_index_.find(key);
    if (it != exact_index_.end()) {
      exact_hit = it->second;
      ++stats_.exact_index_hits;
    }
  }

  // Wildcard rules are few; first match in lookup order wins among them.
  FlowRule* wildcard_hit = nullptr;
  for (FlowRule* rule : wildcard_rules_) {
    if (rule->match.matches(packet, in_port)) {
      wildcard_hit = rule;
      break;
    }
  }

  FlowRule* best = exact_hit;
  if (wildcard_hit != nullptr &&
      (best == nullptr || ordered_before(*wildcard_hit, *best))) {
    best = wildcard_hit;
  }
  if (best == nullptr) return nullptr;

  ++stats_.hits;
  ++best->counters.packets;
  best->counters.bytes += packet_bytes;
  best->last_matched_at = now;
  return best;
}

std::vector<FlowRule> FlowTable::expire(SimTime now) {
  std::vector<FlowRule> expired;
  auto keep = rules_.begin();
  for (auto& rule : rules_) {
    bool is_expired = false;
    if (rule->hard_timeout_sec > 0 &&
        now - rule->installed_at >= seconds(rule->hard_timeout_sec)) {
      is_expired = true;
    }
    if (rule->idle_timeout_sec > 0 &&
        now - rule->last_matched_at >= seconds(rule->idle_timeout_sec)) {
      is_expired = true;
    }
    if (is_expired) {
      deindex_rule(rule.get());
      expired.push_back(std::move(*rule));
    } else {
      *keep++ = std::move(rule);
    }
  }
  rules_.erase(keep, rules_.end());
  stats_.deletes += expired.size();
  return expired;
}

std::vector<const FlowRule*> FlowTable::rules() const {
  std::vector<const FlowRule*> out;
  out.reserve(rules_.size());
  for (const auto& rule : rules_) out.push_back(rule.get());
  std::sort(out.begin(), out.end(),
            [](const FlowRule* a, const FlowRule* b) { return ordered_before(*a, *b); });
  return out;
}

void FlowTable::for_each(const std::function<void(const FlowRule&)>& fn) const {
  for (const auto& rule : rules()) fn(*rule);
}

}  // namespace dfi
