// OpenFlow 1.3 match (OXM subset).
//
// Absent fields are wildcards. The subset covers the identifiers DFI's
// policies compile down to (paper Section III-A): in-port, Ethernet
// addresses and type, IP protocol and addresses, and TCP/UDP ports.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "common/types.h"
#include "net/ipv4.h"
#include "net/mac.h"
#include "net/packet.h"

namespace dfi {

struct Match {
  std::optional<PortNo> in_port;
  std::optional<MacAddress> eth_src;
  std::optional<MacAddress> eth_dst;
  std::optional<std::uint16_t> eth_type;
  std::optional<std::uint8_t> ip_proto;
  std::optional<Ipv4Address> ipv4_src;
  std::optional<Ipv4Address> ipv4_dst;
  std::optional<std::uint16_t> tcp_src;
  std::optional<std::uint16_t> tcp_dst;
  std::optional<std::uint16_t> udp_src;
  std::optional<std::uint16_t> udp_dst;

  friend auto operator<=>(const Match&, const Match&) = default;

  // True if this match matches `packet` arriving on `port`.
  // OpenFlow prerequisite semantics apply: IP fields only match IPv4
  // packets, TCP/UDP ports only match the corresponding protocol.
  bool matches(const Packet& packet, PortNo port) const;

  // True if every packet matched by `other` is also matched by this match
  // (i.e. this is equal or strictly wider). Used for OpenFlow non-strict
  // FLOW_MOD delete semantics.
  bool covers(const Match& other) const;

  bool is_wildcard_all() const { return *this == Match{}; }

  // Number of concrete (non-wildcard) fields; exact-match DFI rules set all
  // fields available in the packet.
  int specified_fields() const;

  std::string to_string() const;

  // Build the most specific match for `packet` on `port` — every available
  // identifier concrete, as the DFI PCP installs (paper Section III-B).
  static Match exact_from_packet(const Packet& packet, PortNo port);
};

}  // namespace dfi
