#include "openflow/pipeline.h"

#include <cassert>

namespace dfi {

Pipeline::Pipeline(std::uint8_t num_tables, std::size_t table_capacity) {
  assert(num_tables > 0);
  tables_.reserve(num_tables);
  for (std::uint8_t id = 0; id < num_tables; ++id) {
    tables_.emplace_back(id, table_capacity);
  }
}

FlowTable& Pipeline::table(std::uint8_t id) {
  assert(id < tables_.size());
  return tables_[id];
}

const FlowTable& Pipeline::table(std::uint8_t id) const {
  assert(id < tables_.size());
  return tables_[id];
}

PipelineResult Pipeline::process(const Packet& packet, PortNo in_port,
                                 std::size_t packet_bytes, SimTime now) {
  PipelineResult result;
  std::uint8_t current = 0;
  while (true) {
    FlowRule* rule = tables_[current].lookup(packet, in_port, packet_bytes, now);
    if (rule == nullptr) {
      result.table_miss = true;
      result.miss_table = current;
      return result;
    }
    result.last_cookie = rule->cookie;
    for (const auto& action : rule->instructions.apply_actions) {
      result.output_ports.push_back(std::get<OutputAction>(action).port);
    }
    if (rule->instructions.goto_table.has_value()) {
      const std::uint8_t next = *rule->instructions.goto_table;
      // The OF spec requires goto targets to be strictly increasing and in
      // range; a rule violating that would have been rejected at insert.
      if (next <= current || next >= tables_.size()) {
        result.dropped = result.output_ports.empty();
        return result;
      }
      current = next;
      continue;
    }
    // No goto: processing ends. Empty action set means drop.
    result.dropped = result.output_ports.empty();
    return result;
  }
}

std::size_t Pipeline::total_rules() const {
  std::size_t total = 0;
  for (const auto& flow_table : tables_) total += flow_table.size();
  return total;
}

}  // namespace dfi
