// Multi-table OpenFlow 1.3 pipeline.
//
// Packets enter at Table 0 and walk goto-table instructions forward. The
// DFI Proxy reserves Table 0 for access-control rules and shifts the
// controller's tables up by one (paper Section IV-B), so the pipeline is
// where DFI's precedence over the controller is physically realized.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "openflow/flow_table.h"

namespace dfi {

struct PipelineResult {
  // Egress ports accumulated from apply-actions across tables.
  std::vector<PortNo> output_ports;
  // True if no rule matched in the table where processing ended — the
  // switch raises a Packet-in (table-miss handling; we model the
  // send-to-controller miss behaviour OVS is configured with).
  bool table_miss = false;
  std::uint8_t miss_table = 0;
  // True if a matching rule had empty instructions (explicit drop).
  bool dropped = false;
  // Cookie of the last matching rule (diagnostics).
  Cookie last_cookie{};
};

class Pipeline {
 public:
  explicit Pipeline(std::uint8_t num_tables = 4, std::size_t table_capacity = 8192);

  std::uint8_t num_tables() const { return static_cast<std::uint8_t>(tables_.size()); }

  FlowTable& table(std::uint8_t id);
  const FlowTable& table(std::uint8_t id) const;

  // Process a packet: walk tables from table 0 following goto instructions.
  PipelineResult process(const Packet& packet, PortNo in_port,
                         std::size_t packet_bytes, SimTime now);

  std::size_t total_rules() const;

 private:
  std::vector<FlowTable> tables_;
};

}  // namespace dfi
