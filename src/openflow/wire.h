// OpenFlow 1.3 binary wire codec (subset).
//
// The proxy in the paper interposes on the actual OpenFlow TCP connections
// between switches and the controller, parsing messages with OpenFlowJ and
// rewriting table references. To exercise the same mechanism, switches,
// controller and proxy here exchange real OF 1.3 byte streams: 8-byte
// ofp_header framing, OXM TLV matches, instruction/action TLVs. The codec
// covers the message subset in messages.h and rejects the rest cleanly.
//
// Two paths through the codec:
//
//  * Slow path: decode() a frame into an OfMessage, mutate it, encode() it
//    back. Fully general, allocation-heavy.
//  * Fast path (DESIGN.md §5): classify() looks at a FrameView — a
//    non-owning span over one frame in the decoder's buffer — and reports
//    whether the proxy can forward the bytes untouched (kPassThrough),
//    rewrite every table_id in place at fixed/TLV-walked offsets (kPatch),
//    or must fall back to full decode (kDecode). classify() only admits
//    frames in *canonical* form — the exact byte layout encode() produces —
//    because the slow path is decode→re-encode and therefore canonicalizes;
//    admitting anything else would break byte-for-byte equivalence between
//    the two paths. The slow path stays on as the differential oracle
//    (tests/wire_fastpath_test.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "openflow/messages.h"

namespace dfi {

// Non-owning view over one length-prefixed frame (ofp_header + body). Valid
// only while the underlying storage is — for views produced by
// FrameDecoder::next_frame, until the next feed().
class FrameView {
 public:
  FrameView() = default;
  FrameView(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Header accessors; only meaningful when size() >= 8.
  std::uint8_t version() const { return data_[0]; }
  OfType type() const { return static_cast<OfType>(data_[1]); }
  std::uint8_t raw_type() const { return data_[1]; }
  std::uint16_t length() const {
    return static_cast<std::uint16_t>((data_[2] << 8) | data_[3]);
  }
  std::uint32_t xid() const {
    return (static_cast<std::uint32_t>(data_[4]) << 24) |
           (static_cast<std::uint32_t>(data_[5]) << 16) |
           (static_cast<std::uint32_t>(data_[6]) << 8) | data_[7];
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

// Which way a frame is crossing the proxy. Table shifting is asymmetric:
// +1 toward the switch, -1 toward the controller.
enum class ProxyDirection : std::uint8_t {
  kSwitchToController,
  kControllerToSwitch,
};

enum class FrameClass : std::uint8_t {
  kPassThrough,  // forward the bytes verbatim
  kPatch,        // rewrite table ids in place via patch_table_refs()
  kDecode,       // full decode required (Packet-in -> PCP, handshake,
                 // errors, expansion, and anything non-canonical)
};

// Fixed byte offsets of the primary table_id in patchable messages
// (ofp_header included). Used by patch_table_refs and the proxy's
// FLOW_REMOVED Table-0 drop check.
inline constexpr std::size_t kPacketInTableOffset = 15;
inline constexpr std::size_t kFlowRemovedTableOffset = 19;
inline constexpr std::size_t kFlowModTableOffset = 24;
inline constexpr std::size_t kMultipartRequestTableOffset = 16;

// Classify one frame for the proxy fast path without decoding it.
// `switch_num_tables` is the table count learned from the handshake (0 if
// unknown); it gates the FLOW_MOD out-of-range check exactly like the slow
// path does. Guarantees: a kPassThrough frame forwarded verbatim, or a
// kPatch frame run through patch_table_refs(), is byte-identical to what
// decode -> table shift -> encode would have produced.
FrameClass classify(const FrameView& view, ProxyDirection direction,
                    std::uint8_t switch_num_tables);

// Rewrite every table reference in a frame previously classified kPatch for
// the same direction: the primary table_id at its fixed offset, plus
// goto-table instructions and multipart flow-stats entries at TLV-walked
// offsets. Returns false (leaving partial writes possible) only if the
// frame does not hold up to re-validation — callers then fall back to the
// slow path on the original bytes.
bool patch_table_refs(std::uint8_t* data, std::size_t size, ProxyDirection direction);

// Encode one message to wire bytes (ofp_header + body).
std::vector<std::uint8_t> encode(const OfMessage& message);

// Encode into caller-provided storage (cleared first; capacity reused).
// This is the zero-allocation path when `out` comes from a FrameBufferPool.
void encode_into(const OfMessage& message, std::vector<std::uint8_t>& out);

// Decode exactly one message from `bytes` (must contain exactly one frame).
Result<OfMessage> decode(const std::vector<std::uint8_t>& bytes);

// Slow-path fallback for frames the fast path cannot handle.
Result<OfMessage> decode(const FrameView& view);

enum class FrameStatus : std::uint8_t {
  kFrame,    // `view` holds the next complete frame
  kAwait,    // need more bytes
  kCorrupt,  // framing destroyed (length < 8); stream was reset
};

// Writable region of decoder-owned storage, for scatter input (readv).
struct MutableByteSpan {
  std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

// Stream decoder: feed arbitrary byte chunks, pop complete frames. Models
// the TCP byte-stream the proxy actually reads. Consumed bytes are
// reclaimed by compacting the buffer at most once per input (amortized O(1)
// per byte — never the old erase-from-front per drain).
//
// Two input paths share the same storage:
//   feed(chunk)              — contiguous append copy (in-process streams)
//   writable_spans + commit  — scatter input: a readv lands directly in the
//                              decoder's tail capacity, no intermediate copy
class FrameDecoder {
 public:
  void feed(const std::vector<std::uint8_t>& chunk);

  // Scatter input (socket transport). Compacts, grows the tail to at least
  // min_bytes, and returns writable spans for a vectored read: spans[0] is
  // the buffer's spare tail, spans[1] a fixed spill block so one large
  // readv can land more than min_bytes in a single syscall. Always returns
  // 2 spans. commit(n) then adopts the first n bytes written across the
  // spans in order; bytes that overran into the spill block are folded into
  // the main buffer (paid only on overrun — the next writable_spans() grows
  // the tail, so steady state stays single-span and copy-free).
  std::size_t writable_spans(std::size_t min_bytes, MutableByteSpan spans[2]);
  void commit(std::size_t n);

  // Zero-copy: yields a view over the next complete frame in internal
  // storage. The view is valid until the next feed() or commit(). kCorrupt
  // resets the stream (framing is unrecoverable once a length field is < 8).
  FrameStatus next_frame(FrameView& view);

  // Returns decoded messages in arrival order; malformed frames produce an
  // Error result but do not desynchronize the stream (length-prefixed).
  std::vector<Result<OfMessage>> drain();

  std::size_t buffered_bytes() const { return end_pos_ - read_pos_; }

 private:
  void compact_for_input();

  // buffer_.size() is the allocated extent in use; valid bytes live in
  // [read_pos_, end_pos_), and [end_pos_, buffer_.size()) is writable tail.
  std::vector<std::uint8_t> buffer_;
  std::vector<std::uint8_t> spill_;
  std::size_t read_pos_ = 0;
  std::size_t end_pos_ = 0;
  std::size_t last_tail_ = 0;  // spans[0].size at the last writable_spans()
};

}  // namespace dfi
