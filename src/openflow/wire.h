// OpenFlow 1.3 binary wire codec (subset).
//
// The proxy in the paper interposes on the actual OpenFlow TCP connections
// between switches and the controller, parsing messages with OpenFlowJ and
// rewriting table references. To exercise the same mechanism, switches,
// controller and proxy here exchange real OF 1.3 byte streams: 8-byte
// ofp_header framing, OXM TLV matches, instruction/action TLVs. The codec
// covers the message subset in messages.h and rejects the rest cleanly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "openflow/messages.h"

namespace dfi {

// Encode one message to wire bytes (ofp_header + body).
std::vector<std::uint8_t> encode(const OfMessage& message);

// Decode exactly one message from `bytes` (must contain exactly one frame).
Result<OfMessage> decode(const std::vector<std::uint8_t>& bytes);

// Stream decoder: feed arbitrary byte chunks, pop complete messages. Models
// the TCP byte-stream the proxy actually reads.
class FrameDecoder {
 public:
  void feed(const std::vector<std::uint8_t>& chunk);

  // Returns decoded messages in arrival order; malformed frames produce an
  // Error result but do not desynchronize the stream (length-prefixed).
  std::vector<Result<OfMessage>> drain();

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace dfi
