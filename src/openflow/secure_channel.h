// Secure control-channel wrapper (TLS surrogate).
//
// Paper Section IV: the proxy's switch/controller sockets "may be
// optionally secured using TLS to encrypt all exchanged OpenFlow
// messages". We have no TLS stack offline, so this models the properties
// the deployment relies on — confidentiality, integrity, and replay
// rejection on an ordered byte channel — with a keyed stream cipher and a
// keyed 128-bit tag built on splitmix64.
//
// THIS IS A SIMULATION SUBSTITUTE, NOT CRYPTOGRAPHY. The point is that the
// channel refuses tampered, replayed, or wrong-key records and that the
// plumbing (sealing on send, opening on receive, failure handling) is
// exercised end to end; swap in real TLS for deployment.
//
// Record format: [8B record number][ciphertext][16B tag].
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace dfi {

class SecureChannel {
 public:
  // Both directions of a connection use one channel object per peer,
  // sharing `key`. Each peer seals with its own monotone record counter;
  // the receiving side enforces strictly increasing record numbers.
  explicit SecureChannel(std::uint64_t key) : key_(key) {}

  // Encrypt-and-authenticate one record.
  std::vector<std::uint8_t> seal(const std::vector<std::uint8_t>& plaintext);

  // Same, into caller storage (cleared first; capacity reused). Encrypts in
  // place inside `out` — no per-record ciphertext temporary — so sealing
  // with a FrameBufferPool buffer allocates nothing at steady state.
  void seal_into(const std::uint8_t* plaintext, std::size_t size,
                 std::vector<std::uint8_t>& out);

  // Verify-and-decrypt one record. Fails on truncation, a bad tag (tamper
  // or wrong key), or a non-increasing record number (replay/reorder).
  Result<std::vector<std::uint8_t>> open(const std::vector<std::uint8_t>& record);

  // Same, into caller storage (cleared first; untouched on failure). On
  // success returns the plaintext length, equal to out.size().
  Result<std::size_t> open_into(const std::uint8_t* record, std::size_t size,
                                std::vector<std::uint8_t>& out);

  std::uint64_t records_sealed() const { return send_counter_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  std::uint64_t key_;
  std::uint64_t send_counter_ = 0;
  std::uint64_t highest_received_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace dfi
