// Flow rules and instructions (OpenFlow 1.3 subset).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "openflow/match.h"

namespace dfi {

// Actions (apply-actions instruction contents).
struct OutputAction {
  PortNo port;

  friend auto operator<=>(const OutputAction&, const OutputAction&) = default;
};

using Action = std::variant<OutputAction>;

inline bool operator==(const Action& a, const Action& b) {
  return std::get<OutputAction>(a) == std::get<OutputAction>(b);
}

// OpenFlow 1.3 instruction set subset: apply-actions and goto-table.
// An empty instruction set drops the packet (per the OF spec: no output
// action and no goto ends processing, discarding the packet). This is how
// DFI expresses Deny rules; Allow rules carry goto-table(next) so the
// controller's tables decide forwarding (paper Section IV-B).
struct Instructions {
  std::vector<Action> apply_actions;
  std::optional<std::uint8_t> goto_table;

  friend bool operator==(const Instructions&, const Instructions&) = default;

  static Instructions drop() { return Instructions{}; }
  static Instructions output(PortNo port) {
    return Instructions{{OutputAction{port}}, std::nullopt};
  }
  static Instructions to_table(std::uint8_t table) {
    return Instructions{{}, table};
  }

  std::string to_string() const;
};

struct FlowRuleCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

// A rule installed in one flow table of a switch.
struct FlowRule {
  std::uint8_t table_id = 0;
  std::uint16_t priority = 0;
  Cookie cookie{};
  Match match;
  Instructions instructions;
  // 0 means no timeout (DFI relies on cookie flushing, not timeouts —
  // paper Section III-A "Policy-Switch Consistency").
  std::uint16_t idle_timeout_sec = 0;
  std::uint16_t hard_timeout_sec = 0;
  // OFPFF_SEND_FLOW_REM: emit Flow-Removed to the control plane on removal.
  bool send_flow_removed = false;

  FlowRuleCounters counters;
  SimTime installed_at{};
  SimTime last_matched_at{};

  std::string to_string() const;
};

inline std::string Instructions::to_string() const {
  std::string text;
  for (const auto& action : apply_actions) {
    const auto& output = std::get<OutputAction>(action);
    if (!text.empty()) text += ",";
    text += "output:" + std::to_string(output.port.value);
  }
  if (goto_table.has_value()) {
    if (!text.empty()) text += ",";
    text += "goto:" + std::to_string(*goto_table);
  }
  if (text.empty()) text = "drop";
  return text;
}

inline std::string FlowRule::to_string() const {
  return "table=" + std::to_string(table_id) + " prio=" + std::to_string(priority) +
         " cookie=" + std::to_string(cookie.value) + " [" + match.to_string() +
         "] -> " + instructions.to_string();
}

}  // namespace dfi
