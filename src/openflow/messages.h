// OpenFlow 1.3 message model (subset).
//
// Each struct mirrors the corresponding ofp_* wire structure closely enough
// that the codec in wire.h can round-trip them byte-exactly. The DFI Proxy
// operates on these decoded forms: it rewrites table_id fields in both
// directions to reserve Table 0 (paper Section IV-B).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/types.h"
#include "openflow/flow_rule.h"
#include "openflow/match.h"

namespace dfi {

inline constexpr std::uint8_t kOfVersion13 = 0x04;
inline constexpr std::uint32_t kNoBuffer = 0xffffffff;

enum class OfType : std::uint8_t {
  kHello = 0,
  kError = 1,
  kEchoRequest = 2,
  kEchoReply = 3,
  kFeaturesRequest = 5,
  kFeaturesReply = 6,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPortStatus = 12,
  kPacketOut = 13,
  kFlowMod = 14,
  kMultipartRequest = 18,
  kMultipartReply = 19,
  kBarrierRequest = 20,
  kBarrierReply = 21,
};

std::string to_string(OfType type);

struct HelloMsg {};
struct EchoRequestMsg {
  std::vector<std::uint8_t> data;
};
struct EchoReplyMsg {
  std::vector<std::uint8_t> data;
};
struct FeaturesRequestMsg {};

struct FeaturesReplyMsg {
  Dpid datapath_id;
  std::uint32_t n_buffers = 0;
  std::uint8_t n_tables = 0;
  std::uint32_t capabilities = 0;
};

struct ErrorMsg {
  std::uint16_t type = 0;
  std::uint16_t code = 0;
  std::vector<std::uint8_t> data;  // first bytes of the offending message
};

enum class PacketInReason : std::uint8_t {
  kNoMatch = 0,   // OFPR_NO_MATCH — table miss
  kAction = 1,    // OFPR_ACTION — explicit output:CONTROLLER
};

struct PacketInMsg {
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t total_len = 0;
  PacketInReason reason = PacketInReason::kNoMatch;
  std::uint8_t table_id = 0;
  Cookie cookie{};
  PortNo in_port{};  // carried as OXM IN_PORT in the ofp_match
  std::vector<std::uint8_t> data;  // raw packet bytes
};

struct PacketOutMsg {
  std::uint32_t buffer_id = kNoBuffer;
  PortNo in_port{};
  std::vector<Action> actions;
  std::vector<std::uint8_t> data;
};

enum class FlowModCommand : std::uint8_t {
  kAdd = 0,
  kModify = 1,
  kModifyStrict = 2,
  kDelete = 3,
  kDeleteStrict = 4,
};

struct FlowModMsg {
  Cookie cookie{};
  Cookie cookie_mask{};
  std::uint8_t table_id = 0;
  FlowModCommand command = FlowModCommand::kAdd;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint16_t priority = 0;
  std::uint32_t buffer_id = kNoBuffer;
  PortNo out_port = kPortAny;
  std::uint16_t flags = 0;
  Match match;
  Instructions instructions;
};

enum class FlowRemovedReason : std::uint8_t {
  kIdleTimeout = 0,
  kHardTimeout = 1,
  kDelete = 2,
};

struct FlowRemovedMsg {
  Cookie cookie{};
  std::uint16_t priority = 0;
  FlowRemovedReason reason = FlowRemovedReason::kDelete;
  std::uint8_t table_id = 0;
  std::uint32_t duration_sec = 0;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  Match match;
};

// Port description and status (ofp_port / OFPT_PORT_STATUS). Links going
// down are security-relevant events: the controller must unlearn locations
// and DFI's MAC<->port bindings go stale.
enum class PortStatusReason : std::uint8_t {
  kAdd = 0,
  kDelete = 1,
  kModify = 2,
};

// OFPPS_LINK_DOWN bit in ofp_port.state.
inline constexpr std::uint32_t kPortStateLinkDown = 0x1;

struct PortDesc {
  PortNo port_no{};
  MacAddress hw_addr;
  std::string name;  // up to 15 chars on the wire
  std::uint32_t config = 0;
  std::uint32_t state = 0;

  bool link_down() const { return (state & kPortStateLinkDown) != 0; }
};

struct PortStatusMsg {
  PortStatusReason reason = PortStatusReason::kModify;
  PortDesc desc;
};

// Per-port counters (subset of ofp_port_stats).
struct PortStatsEntry {
  PortNo port_no{};
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_dropped = 0;
  std::uint32_t duration_sec = 0;
};

// Multipart (statistics) — flow-stats subset, which is what controllers
// poll and what the proxy must rewrite/filter.
struct FlowStatsRequest {
  std::uint8_t table_id = 0xff;  // OFPTT_ALL
  Cookie cookie{};
  Cookie cookie_mask{};
  Match match;
};

struct FlowStatsEntry {
  std::uint8_t table_id = 0;
  std::uint32_t duration_sec = 0;
  std::uint16_t priority = 0;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  Cookie cookie{};
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  Match match;
  Instructions instructions;
};

inline constexpr std::uint16_t kStatsTypeFlow = 1;  // OFPMP_FLOW
inline constexpr std::uint16_t kStatsTypePort = 4;  // OFPMP_PORT_STATS

struct MultipartRequestMsg {
  std::uint16_t stats_type = kStatsTypeFlow;
  FlowStatsRequest flow_request;      // meaningful for OFPMP_FLOW
  PortNo port_no = kPortAny;          // meaningful for OFPMP_PORT_STATS
};

struct MultipartReplyMsg {
  std::uint16_t stats_type = kStatsTypeFlow;
  std::vector<FlowStatsEntry> flow_stats;   // OFPMP_FLOW
  std::vector<PortStatsEntry> port_stats;   // OFPMP_PORT_STATS
};

struct BarrierRequestMsg {};
struct BarrierReplyMsg {};

using OfPayload =
    std::variant<HelloMsg, ErrorMsg, EchoRequestMsg, EchoReplyMsg,
                 FeaturesRequestMsg, FeaturesReplyMsg, PacketInMsg, PacketOutMsg,
                 FlowModMsg, FlowRemovedMsg, PortStatusMsg, MultipartRequestMsg,
                 MultipartReplyMsg, BarrierRequestMsg, BarrierReplyMsg>;

struct OfMessage {
  std::uint32_t xid = 0;
  OfPayload payload;

  OfType type() const;
  std::string summary() const;
};

}  // namespace dfi
