#include "openflow/wire.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace dfi {
namespace {

// ---------------------------------------------------------------- writing

// Writes into caller-provided storage so pooled buffers keep their
// capacity across encodes (encode_into). u32/u64 are single bounded writes
// (one resize, direct stores) rather than per-byte push_back loops.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) { out_.clear(); }

  std::size_t size() const { return out_.size(); }
  void reserve(std::size_t n) { out_.reserve(n); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    const std::size_t p = grow(2);
    out_[p] = static_cast<std::uint8_t>(v >> 8);
    out_[p + 1] = static_cast<std::uint8_t>(v);
  }
  void u32(std::uint32_t v) {
    const std::size_t p = grow(4);
    out_[p] = static_cast<std::uint8_t>(v >> 24);
    out_[p + 1] = static_cast<std::uint8_t>(v >> 16);
    out_[p + 2] = static_cast<std::uint8_t>(v >> 8);
    out_[p + 3] = static_cast<std::uint8_t>(v);
  }
  void u64(std::uint64_t v) {
    const std::size_t p = grow(8);
    for (int i = 0; i < 8; ++i) {
      out_[p + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (56 - 8 * i));
    }
  }
  void mac(const MacAddress& m) {
    const auto& octets = m.octets();
    out_.insert(out_.end(), octets.begin(), octets.end());
  }
  void pad(std::size_t n) { out_.insert(out_.end(), n, 0); }
  void bytes(const std::vector<std::uint8_t>& data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  // Overwrite a previously written big-endian u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }

 private:
  std::size_t grow(std::size_t n) {
    const std::size_t p = out_.size();
    out_.resize(p + n);
    return p;
  }

  std::vector<std::uint8_t>& out_;
};

// OXM field codes (OFPXMC_OPENFLOW_BASIC class 0x8000).
enum : std::uint8_t {
  kOxmInPort = 0,
  kOxmEthDst = 3,
  kOxmEthSrc = 4,
  kOxmEthType = 5,
  kOxmIpProto = 10,
  kOxmIpv4Src = 11,
  kOxmIpv4Dst = 12,
  kOxmTcpSrc = 13,
  kOxmTcpDst = 14,
  kOxmUdpSrc = 15,
  kOxmUdpDst = 16,
};

void write_oxm_header(Writer& w, std::uint8_t field, std::uint8_t len) {
  w.u16(0x8000);                                   // OFPXMC_OPENFLOW_BASIC
  w.u8(static_cast<std::uint8_t>(field << 1));     // no mask
  w.u8(len);
}

void write_match(Writer& w, const Match& match) {
  const std::size_t start = w.size();
  w.u16(1);  // OFPMT_OXM
  const std::size_t len_offset = w.size();
  w.u16(0);  // patched below

  if (match.in_port) {
    write_oxm_header(w, kOxmInPort, 4);
    w.u32(match.in_port->value);
  }
  if (match.eth_dst) {
    write_oxm_header(w, kOxmEthDst, 6);
    w.mac(*match.eth_dst);
  }
  if (match.eth_src) {
    write_oxm_header(w, kOxmEthSrc, 6);
    w.mac(*match.eth_src);
  }
  if (match.eth_type) {
    write_oxm_header(w, kOxmEthType, 2);
    w.u16(*match.eth_type);
  }
  if (match.ip_proto) {
    write_oxm_header(w, kOxmIpProto, 1);
    w.u8(*match.ip_proto);
  }
  if (match.ipv4_src) {
    write_oxm_header(w, kOxmIpv4Src, 4);
    w.u32(match.ipv4_src->value());
  }
  if (match.ipv4_dst) {
    write_oxm_header(w, kOxmIpv4Dst, 4);
    w.u32(match.ipv4_dst->value());
  }
  if (match.tcp_src) {
    write_oxm_header(w, kOxmTcpSrc, 2);
    w.u16(*match.tcp_src);
  }
  if (match.tcp_dst) {
    write_oxm_header(w, kOxmTcpDst, 2);
    w.u16(*match.tcp_dst);
  }
  if (match.udp_src) {
    write_oxm_header(w, kOxmUdpSrc, 2);
    w.u16(*match.udp_src);
  }
  if (match.udp_dst) {
    write_oxm_header(w, kOxmUdpDst, 2);
    w.u16(*match.udp_dst);
  }

  const std::size_t match_len = w.size() - start;  // excludes trailing pad
  w.patch_u16(len_offset, static_cast<std::uint16_t>(match_len));
  const std::size_t padded = (match_len + 7) / 8 * 8;
  w.pad(padded - match_len);
}

void write_actions(Writer& w, const std::vector<Action>& actions) {
  for (const auto& action : actions) {
    const auto& output = std::get<OutputAction>(action);
    w.u16(0);   // OFPAT_OUTPUT
    w.u16(16);  // length
    w.u32(output.port.value);
    w.u16(0xffff);  // max_len = OFPCML_MAX (send full packet)
    w.pad(6);
  }
}

void write_port_desc(Writer& w, const PortDesc& desc) {
  w.u32(desc.port_no.value);
  w.pad(4);
  w.mac(desc.hw_addr);
  w.pad(2);
  // name: 16 bytes, NUL-padded.
  for (std::size_t i = 0; i < 16; ++i) {
    w.u8(i < desc.name.size() && i < 15 ? static_cast<std::uint8_t>(desc.name[i]) : 0);
  }
  w.u32(desc.config);
  w.u32(desc.state);
  w.pad(24);  // curr/advertised/supported/peer/curr_speed/max_speed
}

void write_instructions(Writer& w, const Instructions& instructions) {
  if (instructions.goto_table.has_value()) {
    w.u16(1);  // OFPIT_GOTO_TABLE
    w.u16(8);
    w.u8(*instructions.goto_table);
    w.pad(3);
  }
  if (!instructions.apply_actions.empty()) {
    w.u16(4);  // OFPIT_APPLY_ACTIONS
    const std::uint16_t len =
        static_cast<std::uint16_t>(8 + 16 * instructions.apply_actions.size());
    w.u16(len);
    w.pad(4);
    write_actions(w, instructions.apply_actions);
  }
}

// ---------------------------------------------------------------- reading

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool has(std::size_t n) const { return pos_ + n <= size_; }
  std::size_t remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }

  std::uint8_t u8() { return data_[pos_++]; }
  std::uint16_t u16() {
    const auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }
  MacAddress mac() {
    std::array<std::uint8_t, 6> octets{};
    for (auto& octet : octets) octet = data_[pos_++];
    return MacAddress(octets);
  }
  void skip(std::size_t n) { pos_ += n; }
  std::vector<std::uint8_t> take(std::size_t n) {
    std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }
  std::vector<std::uint8_t> rest() { return take(remaining()); }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

#define DFI_REQUIRE(reader, n, what)                                   \
  do {                                                                 \
    if (!(reader).has(n)) {                                            \
      return Result<OfMessage>::Fail(ErrorCode::kMalformed,            \
                                     std::string("truncated ") + what); \
    }                                                                  \
  } while (0)

Status read_match(Reader& r, Match& match) {
  if (!r.has(4)) return Status::Fail(ErrorCode::kMalformed, "truncated match");
  const std::uint16_t type = r.u16();
  const std::uint16_t length = r.u16();
  if (type != 1) return Status::Fail(ErrorCode::kUnsupported, "non-OXM match");
  if (length < 4) return Status::Fail(ErrorCode::kMalformed, "bad match length");
  std::size_t oxm_remaining = length - 4;
  if (!r.has(oxm_remaining)) {
    return Status::Fail(ErrorCode::kMalformed, "truncated OXM fields");
  }
  while (oxm_remaining > 0) {
    if (oxm_remaining < 4) {
      return Status::Fail(ErrorCode::kMalformed, "truncated OXM header");
    }
    const std::uint16_t oxm_class = r.u16();
    const std::uint8_t field_hm = r.u8();
    const std::uint8_t len = r.u8();
    oxm_remaining -= 4;
    if (oxm_remaining < len) {
      return Status::Fail(ErrorCode::kMalformed, "truncated OXM value");
    }
    const std::uint8_t field = field_hm >> 1;
    const bool has_mask = (field_hm & 1) != 0;
    if (oxm_class != 0x8000 || has_mask) {
      // Skip unknown classes and masked fields (treated as unsupported but
      // non-fatal: the proxy must pass through what it does not understand).
      r.skip(len);
      oxm_remaining -= len;
      continue;
    }
    switch (field) {
      case kOxmInPort: match.in_port = PortNo{r.u32()}; break;
      case kOxmEthDst: match.eth_dst = r.mac(); break;
      case kOxmEthSrc: match.eth_src = r.mac(); break;
      case kOxmEthType: match.eth_type = r.u16(); break;
      case kOxmIpProto: match.ip_proto = r.u8(); break;
      case kOxmIpv4Src: match.ipv4_src = Ipv4Address(r.u32()); break;
      case kOxmIpv4Dst: match.ipv4_dst = Ipv4Address(r.u32()); break;
      case kOxmTcpSrc: match.tcp_src = r.u16(); break;
      case kOxmTcpDst: match.tcp_dst = r.u16(); break;
      case kOxmUdpSrc: match.udp_src = r.u16(); break;
      case kOxmUdpDst: match.udp_dst = r.u16(); break;
      default: r.skip(len); break;
    }
    oxm_remaining -= len;
  }
  // Trailing pad to 8-byte boundary.
  const std::size_t padded = (length + 7) / 8 * 8;
  const std::size_t pad_len = padded - length;
  if (!r.has(pad_len)) return Status::Fail(ErrorCode::kMalformed, "truncated match pad");
  r.skip(pad_len);
  return Status::Ok();
}

Status read_actions(Reader& r, std::size_t total_len, std::vector<Action>& actions) {
  std::size_t remaining = total_len;
  while (remaining > 0) {
    if (remaining < 4 || !r.has(4)) {
      return Status::Fail(ErrorCode::kMalformed, "truncated action header");
    }
    const std::uint16_t type = r.u16();
    const std::uint16_t len = r.u16();
    if (len < 8 || len > remaining || !r.has(len - 4)) {
      return Status::Fail(ErrorCode::kMalformed, "bad action length");
    }
    if (type == 0) {  // OFPAT_OUTPUT
      if (len != 16) return Status::Fail(ErrorCode::kMalformed, "bad output action");
      const std::uint32_t port = r.u32();
      r.skip(2);  // max_len
      r.skip(6);  // pad
      actions.push_back(OutputAction{PortNo{port}});
    } else {
      r.skip(len - 4);  // unsupported action: pass over
    }
    remaining -= len;
  }
  return Status::Ok();
}

Status read_instructions(Reader& r, std::size_t total_len, Instructions& instructions) {
  std::size_t remaining = total_len;
  while (remaining > 0) {
    if (remaining < 4 || !r.has(4)) {
      return Status::Fail(ErrorCode::kMalformed, "truncated instruction header");
    }
    const std::uint16_t type = r.u16();
    const std::uint16_t len = r.u16();
    if (len < 8 || len > remaining || !r.has(len - 4)) {
      return Status::Fail(ErrorCode::kMalformed, "bad instruction length");
    }
    if (type == 1) {  // OFPIT_GOTO_TABLE
      instructions.goto_table = r.u8();
      r.skip(3);
    } else if (type == 4) {  // OFPIT_APPLY_ACTIONS
      r.skip(4);  // pad
      const Status status = read_actions(r, len - 8, instructions.apply_actions);
      if (!status.ok()) return status;
    } else {
      r.skip(len - 4);
    }
    remaining -= len;
  }
  return Status::Ok();
}

}  // namespace

OfType OfMessage::type() const {
  struct Visitor {
    OfType operator()(const HelloMsg&) const { return OfType::kHello; }
    OfType operator()(const ErrorMsg&) const { return OfType::kError; }
    OfType operator()(const EchoRequestMsg&) const { return OfType::kEchoRequest; }
    OfType operator()(const EchoReplyMsg&) const { return OfType::kEchoReply; }
    OfType operator()(const FeaturesRequestMsg&) const { return OfType::kFeaturesRequest; }
    OfType operator()(const FeaturesReplyMsg&) const { return OfType::kFeaturesReply; }
    OfType operator()(const PacketInMsg&) const { return OfType::kPacketIn; }
    OfType operator()(const PacketOutMsg&) const { return OfType::kPacketOut; }
    OfType operator()(const FlowModMsg&) const { return OfType::kFlowMod; }
    OfType operator()(const FlowRemovedMsg&) const { return OfType::kFlowRemoved; }
    OfType operator()(const PortStatusMsg&) const { return OfType::kPortStatus; }
    OfType operator()(const MultipartRequestMsg&) const { return OfType::kMultipartRequest; }
    OfType operator()(const MultipartReplyMsg&) const { return OfType::kMultipartReply; }
    OfType operator()(const BarrierRequestMsg&) const { return OfType::kBarrierRequest; }
    OfType operator()(const BarrierReplyMsg&) const { return OfType::kBarrierReply; }
  };
  return std::visit(Visitor{}, payload);
}

std::string to_string(OfType type) {
  switch (type) {
    case OfType::kHello: return "HELLO";
    case OfType::kError: return "ERROR";
    case OfType::kEchoRequest: return "ECHO_REQUEST";
    case OfType::kEchoReply: return "ECHO_REPLY";
    case OfType::kFeaturesRequest: return "FEATURES_REQUEST";
    case OfType::kFeaturesReply: return "FEATURES_REPLY";
    case OfType::kPacketIn: return "PACKET_IN";
    case OfType::kFlowRemoved: return "FLOW_REMOVED";
    case OfType::kPortStatus: return "PORT_STATUS";
    case OfType::kPacketOut: return "PACKET_OUT";
    case OfType::kFlowMod: return "FLOW_MOD";
    case OfType::kMultipartRequest: return "MULTIPART_REQUEST";
    case OfType::kMultipartReply: return "MULTIPART_REPLY";
    case OfType::kBarrierRequest: return "BARRIER_REQUEST";
    case OfType::kBarrierReply: return "BARRIER_REPLY";
  }
  return "UNKNOWN";
}

std::string OfMessage::summary() const {
  std::string text = to_string(type()) + " xid=" + std::to_string(xid);
  if (const auto* flow_mod = std::get_if<FlowModMsg>(&payload)) {
    text += " table=" + std::to_string(flow_mod->table_id) + " [" +
            flow_mod->match.to_string() + "]";
  } else if (const auto* packet_in = std::get_if<PacketInMsg>(&payload)) {
    text += " in_port=" + std::to_string(packet_in->in_port.value) + " " +
            std::to_string(packet_in->data.size()) + "B";
  }
  return text;
}

namespace {

// Lower-bound size hint so encode_into reserves once up front instead of
// growing geometrically through the body (match/instruction TLV sizes are
// approximated, not summed exactly).
std::size_t body_size_hint(const OfMessage& message) {
  struct Visitor {
    std::size_t operator()(const HelloMsg&) const { return 0; }
    std::size_t operator()(const ErrorMsg& m) const { return 4 + m.data.size(); }
    std::size_t operator()(const EchoRequestMsg& m) const { return m.data.size(); }
    std::size_t operator()(const EchoReplyMsg& m) const { return m.data.size(); }
    std::size_t operator()(const FeaturesRequestMsg&) const { return 0; }
    std::size_t operator()(const FeaturesReplyMsg&) const { return 24; }
    std::size_t operator()(const PacketInMsg& m) const {
      return 16 + 16 + 2 + m.data.size();
    }
    std::size_t operator()(const PacketOutMsg& m) const {
      return 16 + 16 * m.actions.size() + m.data.size();
    }
    std::size_t operator()(const FlowModMsg&) const { return 40 + 56 + 32; }
    std::size_t operator()(const FlowRemovedMsg&) const { return 40 + 56; }
    std::size_t operator()(const PortStatusMsg&) const { return 8 + 64; }
    std::size_t operator()(const MultipartRequestMsg& m) const {
      return m.stats_type == kStatsTypeFlow ? 8 + 32 + 56 : 8 + 8;
    }
    std::size_t operator()(const MultipartReplyMsg& m) const {
      return 8 + m.flow_stats.size() * (48 + 56 + 32) + m.port_stats.size() * 112;
    }
    std::size_t operator()(const BarrierRequestMsg&) const { return 0; }
    std::size_t operator()(const BarrierReplyMsg&) const { return 0; }
  };
  return std::visit(Visitor{}, message.payload);
}

}  // namespace

std::vector<std::uint8_t> encode(const OfMessage& message) {
  std::vector<std::uint8_t> bytes;
  encode_into(message, bytes);
  return bytes;
}

void encode_into(const OfMessage& message, std::vector<std::uint8_t>& out) {
  Writer w(out);
  w.reserve(8 + body_size_hint(message));
  w.u8(kOfVersion13);
  w.u8(static_cast<std::uint8_t>(message.type()));
  const std::size_t len_offset = w.size();
  w.u16(0);  // patched at the end
  w.u32(message.xid);

  struct Visitor {
    Writer& w;

    void operator()(const HelloMsg&) {}
    void operator()(const ErrorMsg& m) {
      w.u16(m.type);
      w.u16(m.code);
      w.bytes(m.data);
    }
    void operator()(const EchoRequestMsg& m) { w.bytes(m.data); }
    void operator()(const EchoReplyMsg& m) { w.bytes(m.data); }
    void operator()(const FeaturesRequestMsg&) {}
    void operator()(const FeaturesReplyMsg& m) {
      w.u64(m.datapath_id.value);
      w.u32(m.n_buffers);
      w.u8(m.n_tables);
      w.u8(0);  // auxiliary_id
      w.pad(2);
      w.u32(m.capabilities);
      w.u32(0);  // reserved
    }
    void operator()(const PacketInMsg& m) {
      w.u32(m.buffer_id);
      w.u16(m.total_len);
      w.u8(static_cast<std::uint8_t>(m.reason));
      w.u8(m.table_id);
      w.u64(m.cookie.value);
      Match match;
      match.in_port = m.in_port;
      write_match(w, match);
      w.pad(2);
      w.bytes(m.data);
    }
    void operator()(const PacketOutMsg& m) {
      w.u32(m.buffer_id);
      w.u32(m.in_port.value);
      w.u16(static_cast<std::uint16_t>(16 * m.actions.size()));
      w.pad(6);
      write_actions(w, m.actions);
      w.bytes(m.data);
    }
    void operator()(const FlowModMsg& m) {
      w.u64(m.cookie.value);
      w.u64(m.cookie_mask.value);
      w.u8(m.table_id);
      w.u8(static_cast<std::uint8_t>(m.command));
      w.u16(m.idle_timeout);
      w.u16(m.hard_timeout);
      w.u16(m.priority);
      w.u32(m.buffer_id);
      w.u32(m.out_port.value);
      w.u32(0xffffffff);  // out_group = OFPG_ANY
      w.u16(m.flags);
      w.pad(2);
      write_match(w, m.match);
      write_instructions(w, m.instructions);
    }
    void operator()(const FlowRemovedMsg& m) {
      w.u64(m.cookie.value);
      w.u16(m.priority);
      w.u8(static_cast<std::uint8_t>(m.reason));
      w.u8(m.table_id);
      w.u32(m.duration_sec);
      w.u32(0);  // duration_nsec
      w.u16(m.idle_timeout);
      w.u16(m.hard_timeout);
      w.u64(m.packet_count);
      w.u64(m.byte_count);
      write_match(w, m.match);
    }
    void operator()(const PortStatusMsg& m) {
      w.u8(static_cast<std::uint8_t>(m.reason));
      w.pad(7);
      write_port_desc(w, m.desc);
    }
    void operator()(const MultipartRequestMsg& m) {
      w.u16(m.stats_type);
      w.u16(0);  // flags
      w.pad(4);
      if (m.stats_type == kStatsTypeFlow) {
        w.u8(m.flow_request.table_id);
        w.pad(3);
        w.u32(kPortAny.value);    // out_port
        w.u32(0xffffffff);        // out_group
        w.pad(4);
        w.u64(m.flow_request.cookie.value);
        w.u64(m.flow_request.cookie_mask.value);
        write_match(w, m.flow_request.match);
      } else if (m.stats_type == kStatsTypePort) {
        w.u32(m.port_no.value);
        w.pad(4);
      }
    }
    void operator()(const MultipartReplyMsg& m) {
      w.u16(m.stats_type);
      w.u16(0);  // flags
      w.pad(4);
      for (const auto& entry : m.flow_stats) {
        const std::size_t entry_start = w.size();
        const std::size_t entry_len_offset = w.size();
        w.u16(0);  // length, patched
        w.u8(entry.table_id);
        w.pad(1);
        w.u32(entry.duration_sec);
        w.u32(0);  // duration_nsec
        w.u16(entry.priority);
        w.u16(entry.idle_timeout);
        w.u16(entry.hard_timeout);
        w.u16(0);  // flags
        w.pad(4);
        w.u64(entry.cookie.value);
        w.u64(entry.packet_count);
        w.u64(entry.byte_count);
        write_match(w, entry.match);
        write_instructions(w, entry.instructions);
        w.patch_u16(entry_len_offset,
                    static_cast<std::uint16_t>(w.size() - entry_start));
      }
      for (const auto& entry : m.port_stats) {
        w.u32(entry.port_no.value);
        w.pad(4);
        w.u64(entry.rx_packets);
        w.u64(entry.tx_packets);
        w.u64(entry.rx_bytes);
        w.u64(entry.tx_bytes);
        w.u64(entry.rx_dropped);
        w.u64(entry.tx_dropped);
        w.pad(48);  // rx/tx errors, frame/over/crc errors, collisions
        w.u32(entry.duration_sec);
        w.u32(0);  // duration_nsec
      }
    }
    void operator()(const BarrierRequestMsg&) {}
    void operator()(const BarrierReplyMsg&) {}
  };
  std::visit(Visitor{w}, message.payload);

  w.patch_u16(len_offset, static_cast<std::uint16_t>(out.size()));
  // The patched header length must describe the whole frame: a body that
  // outgrew the u16 length field would silently truncate on the wire.
  assert(out.size() == (static_cast<std::size_t>(out[len_offset]) << 8 |
                        out[len_offset + 1]));
}

namespace {

Result<OfMessage> decode_frame(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  DFI_REQUIRE(r, 8, "ofp_header");
  const std::uint8_t version = r.u8();
  const std::uint8_t type = r.u8();
  const std::uint16_t length = r.u16();
  const std::uint32_t xid = r.u32();
  if (version != kOfVersion13) {
    return Result<OfMessage>::Fail(ErrorCode::kUnsupported,
                                   "OpenFlow version " + std::to_string(version));
  }
  if (length != size) {
    return Result<OfMessage>::Fail(ErrorCode::kMalformed, "frame length mismatch");
  }

  OfMessage message;
  message.xid = xid;

  switch (static_cast<OfType>(type)) {
    case OfType::kHello:
      message.payload = HelloMsg{};
      return message;
    case OfType::kError: {
      DFI_REQUIRE(r, 4, "ERROR body");
      ErrorMsg m;
      m.type = r.u16();
      m.code = r.u16();
      m.data = r.rest();
      message.payload = m;
      return message;
    }
    case OfType::kEchoRequest:
      message.payload = EchoRequestMsg{r.rest()};
      return message;
    case OfType::kEchoReply:
      message.payload = EchoReplyMsg{r.rest()};
      return message;
    case OfType::kFeaturesRequest:
      message.payload = FeaturesRequestMsg{};
      return message;
    case OfType::kFeaturesReply: {
      DFI_REQUIRE(r, 24, "FEATURES_REPLY body");
      FeaturesReplyMsg m;
      m.datapath_id = Dpid{r.u64()};
      m.n_buffers = r.u32();
      m.n_tables = r.u8();
      r.skip(3);  // auxiliary_id + pad
      m.capabilities = r.u32();
      r.skip(4);  // reserved
      message.payload = m;
      return message;
    }
    case OfType::kPacketIn: {
      DFI_REQUIRE(r, 16, "PACKET_IN body");
      PacketInMsg m;
      m.buffer_id = r.u32();
      m.total_len = r.u16();
      m.reason = static_cast<PacketInReason>(r.u8());
      m.table_id = r.u8();
      m.cookie = Cookie{r.u64()};
      Match match;
      if (Status status = read_match(r, match); !status.ok()) {
        return Result<OfMessage>::Fail(status.error().code, status.error().message);
      }
      m.in_port = match.in_port.value_or(PortNo{0});
      DFI_REQUIRE(r, 2, "PACKET_IN pad");
      r.skip(2);
      m.data = r.rest();
      message.payload = m;
      return message;
    }
    case OfType::kPortStatus: {
      DFI_REQUIRE(r, 8 + 64, "PORT_STATUS body");
      PortStatusMsg m;
      m.reason = static_cast<PortStatusReason>(r.u8());
      r.skip(7);
      m.desc.port_no = PortNo{r.u32()};
      r.skip(4);
      m.desc.hw_addr = r.mac();
      r.skip(2);
      std::string name;
      for (int i = 0; i < 16; ++i) {
        const char c = static_cast<char>(r.u8());
        if (c != '\0') name += c;
      }
      m.desc.name = std::move(name);
      m.desc.config = r.u32();
      m.desc.state = r.u32();
      r.skip(24);
      message.payload = m;
      return message;
    }
    case OfType::kPacketOut: {
      DFI_REQUIRE(r, 16, "PACKET_OUT body");
      PacketOutMsg m;
      m.buffer_id = r.u32();
      m.in_port = PortNo{r.u32()};
      const std::uint16_t actions_len = r.u16();
      r.skip(6);
      if (!r.has(actions_len)) {
        return Result<OfMessage>::Fail(ErrorCode::kMalformed, "truncated PACKET_OUT actions");
      }
      if (Status status = read_actions(r, actions_len, m.actions); !status.ok()) {
        return Result<OfMessage>::Fail(status.error().code, status.error().message);
      }
      m.data = r.rest();
      message.payload = m;
      return message;
    }
    case OfType::kFlowMod: {
      DFI_REQUIRE(r, 40, "FLOW_MOD body");
      FlowModMsg m;
      m.cookie = Cookie{r.u64()};
      m.cookie_mask = Cookie{r.u64()};
      m.table_id = r.u8();
      m.command = static_cast<FlowModCommand>(r.u8());
      m.idle_timeout = r.u16();
      m.hard_timeout = r.u16();
      m.priority = r.u16();
      m.buffer_id = r.u32();
      m.out_port = PortNo{r.u32()};
      r.skip(4);  // out_group
      m.flags = r.u16();
      r.skip(2);  // pad
      if (Status status = read_match(r, m.match); !status.ok()) {
        return Result<OfMessage>::Fail(status.error().code, status.error().message);
      }
      if (Status status = read_instructions(r, r.remaining(), m.instructions);
          !status.ok()) {
        return Result<OfMessage>::Fail(status.error().code, status.error().message);
      }
      message.payload = m;
      return message;
    }
    case OfType::kFlowRemoved: {
      DFI_REQUIRE(r, 40, "FLOW_REMOVED body");
      FlowRemovedMsg m;
      m.cookie = Cookie{r.u64()};
      m.priority = r.u16();
      m.reason = static_cast<FlowRemovedReason>(r.u8());
      m.table_id = r.u8();
      m.duration_sec = r.u32();
      r.skip(4);  // duration_nsec
      m.idle_timeout = r.u16();
      m.hard_timeout = r.u16();
      m.packet_count = r.u64();
      m.byte_count = r.u64();
      if (Status status = read_match(r, m.match); !status.ok()) {
        return Result<OfMessage>::Fail(status.error().code, status.error().message);
      }
      message.payload = m;
      return message;
    }
    case OfType::kMultipartRequest: {
      DFI_REQUIRE(r, 8, "MULTIPART_REQUEST header");
      MultipartRequestMsg m;
      m.stats_type = r.u16();
      r.skip(2);  // flags
      r.skip(4);  // pad
      if (m.stats_type == kStatsTypeFlow) {
        DFI_REQUIRE(r, 32, "flow stats request");
        m.flow_request.table_id = r.u8();
        r.skip(3);
        r.skip(8);  // out_port, out_group
        r.skip(4);  // pad
        m.flow_request.cookie = Cookie{r.u64()};
        m.flow_request.cookie_mask = Cookie{r.u64()};
        if (Status status = read_match(r, m.flow_request.match); !status.ok()) {
          return Result<OfMessage>::Fail(status.error().code, status.error().message);
        }
      } else if (m.stats_type == kStatsTypePort) {
        DFI_REQUIRE(r, 8, "port stats request");
        m.port_no = PortNo{r.u32()};
        r.skip(4);
      }
      message.payload = m;
      return message;
    }
    case OfType::kMultipartReply: {
      DFI_REQUIRE(r, 8, "MULTIPART_REPLY header");
      MultipartReplyMsg m;
      m.stats_type = r.u16();
      r.skip(2);
      r.skip(4);
      if (m.stats_type == kStatsTypePort) {
        while (r.remaining() > 0) {
          DFI_REQUIRE(r, 112, "port stats entry");
          PortStatsEntry entry;
          entry.port_no = PortNo{r.u32()};
          r.skip(4);
          entry.rx_packets = r.u64();
          entry.tx_packets = r.u64();
          entry.rx_bytes = r.u64();
          entry.tx_bytes = r.u64();
          entry.rx_dropped = r.u64();
          entry.tx_dropped = r.u64();
          r.skip(48);
          entry.duration_sec = r.u32();
          r.skip(4);
          m.port_stats.push_back(entry);
        }
      }
      if (m.stats_type == kStatsTypeFlow) {
        while (r.remaining() > 0) {
          DFI_REQUIRE(r, 48, "flow stats entry");
          const std::size_t entry_start = r.pos();
          FlowStatsEntry entry;
          const std::uint16_t entry_len = r.u16();
          if (entry_len < 48) {
            return Result<OfMessage>::Fail(ErrorCode::kMalformed, "bad stats entry length");
          }
          entry.table_id = r.u8();
          r.skip(1);
          entry.duration_sec = r.u32();
          r.skip(4);  // duration_nsec
          entry.priority = r.u16();
          entry.idle_timeout = r.u16();
          entry.hard_timeout = r.u16();
          r.skip(2);  // flags
          r.skip(4);  // pad
          entry.cookie = Cookie{r.u64()};
          entry.packet_count = r.u64();
          entry.byte_count = r.u64();
          if (Status status = read_match(r, entry.match); !status.ok()) {
            return Result<OfMessage>::Fail(status.error().code, status.error().message);
          }
          const std::size_t consumed = r.pos() - entry_start;
          if (consumed > entry_len || !r.has(entry_len - consumed)) {
            return Result<OfMessage>::Fail(ErrorCode::kMalformed, "stats entry overrun");
          }
          if (Status status = read_instructions(r, entry_len - consumed, entry.instructions);
              !status.ok()) {
            return Result<OfMessage>::Fail(status.error().code, status.error().message);
          }
          m.flow_stats.push_back(std::move(entry));
        }
      }
      message.payload = m;
      return message;
    }
    case OfType::kBarrierRequest:
      message.payload = BarrierRequestMsg{};
      return message;
    case OfType::kBarrierReply:
      message.payload = BarrierReplyMsg{};
      return message;
  }
  return Result<OfMessage>::Fail(ErrorCode::kUnsupported,
                                 "message type " + std::to_string(type));
}

// ------------------------------------------------- fast-path classification
//
// The walkers below accept exactly the byte layouts encode() produces
// ("canonical form") and nothing else. That is deliberately stricter than
// decode(): decode() tolerates unknown OXM classes, masked fields, unknown
// action/instruction types, nonzero skipped padding, reordered instructions
// and trailing garbage — all of which re-encode *differently* after the
// round trip. Only frames the round trip would reproduce bit-for-bit may
// skip it; everything else is kDecode so both paths stay byte-identical.

constexpr std::size_t kHdrLen = 8;

std::uint16_t rd16(const std::uint8_t* d) {
  return static_cast<std::uint16_t>((d[0] << 8) | d[1]);
}

bool all_zero(const std::uint8_t* d, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0) return false;
  }
  return true;
}

// Canonical OXM match starting at `off`: OFPMT_OXM, fields from the known
// set in encode order (strictly ascending field codes, exact value lengths,
// class 0x8000, no masks), zeroed pad to the 8-byte boundary. Returns the
// offset just past the pad, or 0 on anything non-canonical.
std::size_t walk_canonical_match(const std::uint8_t* d, std::size_t size,
                                 std::size_t off) {
  if (off + 4 > size) return 0;
  if (rd16(d + off) != 1) return 0;  // OFPMT_OXM
  const std::uint16_t length = rd16(d + off + 2);
  if (length < 4) return 0;
  const std::size_t padded = (static_cast<std::size_t>(length) + 7) / 8 * 8;
  if (off + padded > size) return 0;
  const std::size_t fields_end = off + length;
  std::size_t p = off + 4;
  int prev_field = -1;
  while (p < fields_end) {
    if (p + 4 > fields_end) return 0;
    if (rd16(d + p) != 0x8000) return 0;  // OFPXMC_OPENFLOW_BASIC
    const std::uint8_t field_hm = d[p + 2];
    if ((field_hm & 1) != 0) return 0;  // masked
    const std::uint8_t field = field_hm >> 1;
    std::uint8_t want = 0;
    switch (field) {
      case kOxmInPort: want = 4; break;
      case kOxmEthDst: want = 6; break;
      case kOxmEthSrc: want = 6; break;
      case kOxmEthType: want = 2; break;
      case kOxmIpProto: want = 1; break;
      case kOxmIpv4Src: want = 4; break;
      case kOxmIpv4Dst: want = 4; break;
      case kOxmTcpSrc: want = 2; break;
      case kOxmTcpDst: want = 2; break;
      case kOxmUdpSrc: want = 2; break;
      case kOxmUdpDst: want = 2; break;
      default: return 0;
    }
    if (d[p + 3] != want) return 0;
    // encode() emits the known fields in ascending field-code order,
    // each at most once.
    if (static_cast<int>(field) <= prev_field) return 0;
    prev_field = field;
    p += 4 + want;
  }
  if (p != fields_end) return 0;
  if (!all_zero(d + fields_end, off + padded - fields_end)) return 0;
  return off + padded;
}

// Canonical action list covering exactly [off, end): OFPAT_OUTPUT only,
// length 16, max_len OFPCML_MAX, zeroed pad.
bool walk_canonical_actions(const std::uint8_t* d, std::size_t off, std::size_t end) {
  while (off < end) {
    if (off + 16 > end) return false;
    if (rd16(d + off) != 0) return false;       // OFPAT_OUTPUT
    if (rd16(d + off + 2) != 16) return false;  // length
    if (rd16(d + off + 8) != 0xffff) return false;  // max_len re-encodes as MAX
    if (!all_zero(d + off + 10, 6)) return false;
    off += 16;
  }
  return true;
}

// Canonical instruction list covering exactly [off, end): at most one
// goto-table first, then at most one non-empty apply-actions — the order
// and multiplicity write_instructions() produces. Records the offset of the
// goto table_id byte (0 if absent) for in-place patching.
bool walk_canonical_instructions(const std::uint8_t* d, std::size_t off,
                                 std::size_t end, std::size_t* goto_offset) {
  if (goto_offset != nullptr) *goto_offset = 0;
  if (off < end && off + 4 <= end && rd16(d + off) == 1) {  // OFPIT_GOTO_TABLE
    if (rd16(d + off + 2) != 8 || off + 8 > end) return false;
    if (!all_zero(d + off + 5, 3)) return false;
    if (goto_offset != nullptr) *goto_offset = off + 4;
    off += 8;
  }
  if (off < end) {  // OFPIT_APPLY_ACTIONS
    if (off + 8 > end) return false;
    if (rd16(d + off) != 4) return false;
    const std::uint16_t len = rd16(d + off + 2);
    // encode() omits an empty apply-actions entirely, so len == 8 (zero
    // actions) is non-canonical.
    if (len < 8 + 16 || (len - 8) % 16 != 0) return false;
    if (off + len > end) return false;
    if (!all_zero(d + off + 4, 4)) return false;
    if (!walk_canonical_actions(d, off + 8, off + len)) return false;
    off += len;
  }
  return off == end;
}

// FLOW_MOD fixed part (body offsets 8..47): out_group and pad re-encode as
// OFPG_ANY / zero, everything else round-trips. Match at 48.
bool flow_mod_fixed_canonical(const std::uint8_t* d, std::size_t size) {
  if (size < kHdrLen + 40) return false;
  if (d[40] != 0xff || d[41] != 0xff || d[42] != 0xff || d[43] != 0xff) return false;
  return d[46] == 0 && d[47] == 0;
}

FrameClass classify_flow_mod(const std::uint8_t* d, std::size_t n,
                             std::uint8_t switch_num_tables) {
  if (!flow_mod_fixed_canonical(d, n)) return FrameClass::kDecode;
  const std::uint8_t table = d[kFlowModTableOffset];
  // OFPTT_ALL expands to per-table deletes (or an error); an out-of-range
  // table draws an ERROR reply. Both originate messages — slow path.
  if (table == 0xff) return FrameClass::kDecode;
  const std::uint8_t tables = switch_num_tables == 0 ? 4 : switch_num_tables;
  if (table + 1 >= tables) return FrameClass::kDecode;
  const std::size_t match_end = walk_canonical_match(d, n, kHdrLen + 40);
  if (match_end == 0) return FrameClass::kDecode;
  std::size_t goto_offset = 0;
  if (!walk_canonical_instructions(d, match_end, n, &goto_offset)) {
    return FrameClass::kDecode;
  }
  return FrameClass::kPatch;
}

FrameClass classify_packet_in(const std::uint8_t* d, std::size_t n) {
  if (n < kHdrLen + 16) return FrameClass::kDecode;
  // Table-0 miss: the PCP decides before the controller may see it.
  if (d[kPacketInTableOffset] == 0) return FrameClass::kDecode;
  // decode() keeps only the IN_PORT oxm and re-encode always writes exactly
  // one, so canonical means: match of length 12 whose single field is
  // IN_PORT (4 + 8), padded to 16, then the 2-byte zero pad, then data.
  const std::size_t match_off = kHdrLen + 16;
  const std::size_t match_end = walk_canonical_match(d, n, match_off);
  if (match_end == 0) return FrameClass::kDecode;
  if (rd16(d + match_off + 2) != 12) return FrameClass::kDecode;
  if (d[match_off + 6] >> 1 != kOxmInPort) return FrameClass::kDecode;
  if (match_end + 2 > n) return FrameClass::kDecode;
  if (d[match_end] != 0 || d[match_end + 1] != 0) return FrameClass::kDecode;
  return FrameClass::kPatch;
}

FrameClass classify_flow_removed(const std::uint8_t* d, std::size_t n) {
  if (n < kHdrLen + 40) return FrameClass::kDecode;
  if (!all_zero(d + 24, 4)) return FrameClass::kDecode;  // duration_nsec
  // decode() ignores trailing bytes after the match; re-encode drops them.
  if (walk_canonical_match(d, n, kHdrLen + 40) != n) return FrameClass::kDecode;
  return FrameClass::kPatch;
}

FrameClass classify_multipart_request(const std::uint8_t* d, std::size_t n) {
  if (n < kHdrLen + 8) return FrameClass::kDecode;
  if (!all_zero(d + 10, 6)) return FrameClass::kDecode;  // flags + pad
  const std::uint16_t stats_type = rd16(d + 8);
  if (stats_type == kStatsTypeFlow) {
    if (n < kHdrLen + 8 + 32) return FrameClass::kDecode;
    if (!all_zero(d + 17, 3)) return FrameClass::kDecode;  // pad after table_id
    // out_port / out_group re-encode as OFPP_ANY / OFPG_ANY.
    for (std::size_t i = 20; i < 28; ++i) {
      if (d[i] != 0xff) return FrameClass::kDecode;
    }
    if (!all_zero(d + 28, 4)) return FrameClass::kDecode;
    if (walk_canonical_match(d, n, kHdrLen + 40) != n) return FrameClass::kDecode;
    // OFPTT_ALL is forwarded unshifted.
    return d[kMultipartRequestTableOffset] == 0xff ? FrameClass::kPassThrough
                                                   : FrameClass::kPatch;
  }
  if (stats_type == kStatsTypePort) {
    if (n != kHdrLen + 8 + 8) return FrameClass::kDecode;
    if (!all_zero(d + 20, 4)) return FrameClass::kDecode;
    return FrameClass::kPassThrough;
  }
  // Other stats types decode to an empty request body.
  return n == kHdrLen + 8 ? FrameClass::kPassThrough : FrameClass::kDecode;
}

// Flow-stats entries: length-prefixed records, each 48 fixed bytes + match
// + instructions. Walks every entry; reports whether any row cites Table 0
// (those are filtered by the proxy, which changes the frame length — slow
// path).
FrameClass classify_multipart_reply(const std::uint8_t* d, std::size_t n) {
  if (n < kHdrLen + 8) return FrameClass::kDecode;
  if (!all_zero(d + 10, 6)) return FrameClass::kDecode;
  const std::uint16_t stats_type = rd16(d + 8);
  if (stats_type == kStatsTypeFlow) {
    std::size_t off = kHdrLen + 8;
    bool any_table0 = false;
    bool any_shift = false;
    while (off < n) {
      if (off + 48 > n) return FrameClass::kDecode;
      const std::uint16_t entry_len = rd16(d + off);
      if (entry_len < 48 || off + entry_len > n) return FrameClass::kDecode;
      if (d[off + 2] == 0) any_table0 = true;
      if (d[off + 3] != 0) return FrameClass::kDecode;       // pad
      if (!all_zero(d + off + 8, 4)) return FrameClass::kDecode;   // duration_nsec
      if (!all_zero(d + off + 18, 6)) return FrameClass::kDecode;  // flags + pad
      const std::size_t match_end = walk_canonical_match(d, off + entry_len, off + 48);
      if (match_end == 0) return FrameClass::kDecode;
      if (!walk_canonical_instructions(d, match_end, off + entry_len, nullptr)) {
        return FrameClass::kDecode;
      }
      any_shift = true;
      off += entry_len;
    }
    if (off != n) return FrameClass::kDecode;
    if (any_table0) return FrameClass::kDecode;  // rows get filtered out
    return any_shift ? FrameClass::kPatch : FrameClass::kPassThrough;
  }
  if (stats_type == kStatsTypePort) {
    std::size_t off = kHdrLen + 8;
    while (off < n) {
      if (off + 112 > n) return FrameClass::kDecode;
      if (!all_zero(d + off + 4, 4)) return FrameClass::kDecode;    // pad
      if (!all_zero(d + off + 56, 48)) return FrameClass::kDecode;  // error ctrs
      if (!all_zero(d + off + 108, 4)) return FrameClass::kDecode;  // duration_nsec
      off += 112;
    }
    return FrameClass::kPassThrough;
  }
  return n == kHdrLen + 8 ? FrameClass::kPassThrough : FrameClass::kDecode;
}

FrameClass classify_packet_out(const std::uint8_t* d, std::size_t n) {
  if (n < kHdrLen + 16) return FrameClass::kDecode;
  const std::uint16_t actions_len = rd16(d + 16);
  if (!all_zero(d + 18, 6)) return FrameClass::kDecode;
  if (kHdrLen + 16 + actions_len > n) return FrameClass::kDecode;
  // decode() recomputes actions_len as 16 * count, so only an exact list of
  // canonical OUTPUT actions round-trips.
  if (!walk_canonical_actions(d, kHdrLen + 16, kHdrLen + 16 + actions_len)) {
    return FrameClass::kDecode;
  }
  return FrameClass::kPassThrough;  // data tail round-trips verbatim
}

}  // namespace

FrameClass classify(const FrameView& view, ProxyDirection direction,
                    std::uint8_t switch_num_tables) {
  const std::uint8_t* d = view.data();
  const std::size_t n = view.size();
  // Frames decode() would reject (bad version, length mismatch) take the
  // slow path so the malformed accounting stays identical.
  if (n < kHdrLen || d[0] != kOfVersion13 || view.length() != n) {
    return FrameClass::kDecode;
  }
  const bool to_controller = direction == ProxyDirection::kSwitchToController;
  switch (static_cast<OfType>(d[1])) {
    // Body-less messages: decode() ignores any body bytes and re-encode
    // emits exactly 8, so only bare headers pass through.
    case OfType::kHello:
    case OfType::kFeaturesRequest:
    case OfType::kBarrierRequest:
    case OfType::kBarrierReply:
      return n == kHdrLen ? FrameClass::kPassThrough : FrameClass::kDecode;
    // Echo and Error carry their payload verbatim.
    case OfType::kEchoRequest:
    case OfType::kEchoReply:
      return FrameClass::kPassThrough;
    case OfType::kError:
      return n >= kHdrLen + 4 ? FrameClass::kPassThrough : FrameClass::kDecode;
    case OfType::kPacketIn:
      // Controller-originated PACKET_IN is nonsensical; let the slow path's
      // default pass-through handle it.
      return to_controller ? classify_packet_in(d, n) : FrameClass::kDecode;
    case OfType::kFlowRemoved:
      // kPatch here includes the Table-0 case: the proxy checks
      // kFlowRemovedTableOffset and drops the frame without copying it.
      return to_controller ? classify_flow_removed(d, n) : FrameClass::kDecode;
    case OfType::kFlowMod:
      return to_controller ? FrameClass::kDecode
                           : classify_flow_mod(d, n, switch_num_tables);
    case OfType::kMultipartRequest:
      return to_controller ? FrameClass::kDecode : classify_multipart_request(d, n);
    case OfType::kMultipartReply:
      return to_controller ? classify_multipart_reply(d, n) : FrameClass::kDecode;
    case OfType::kPacketOut:
      return to_controller ? FrameClass::kDecode : classify_packet_out(d, n);
    // FEATURES_REPLY drives session registration; PORT_STATUS is rare.
    case OfType::kFeaturesReply:
    case OfType::kPortStatus:
      return FrameClass::kDecode;
  }
  return FrameClass::kDecode;  // unknown type: slow path counts it malformed
}

bool patch_table_refs(std::uint8_t* data, std::size_t size, ProxyDirection direction) {
  const bool to_controller = direction == ProxyDirection::kSwitchToController;
  switch (static_cast<OfType>(data[1])) {
    case OfType::kPacketIn: {
      if (!to_controller || size < kHdrLen + 16) return false;
      std::uint8_t& table = data[kPacketInTableOffset];
      if (table == 0) return false;  // PCP-bound; never patched
      --table;
      return true;
    }
    case OfType::kFlowRemoved: {
      if (!to_controller || size < kHdrLen + 40) return false;
      std::uint8_t& table = data[kFlowRemovedTableOffset];
      if (table == 0) return false;  // dropped, not shifted
      --table;
      return true;
    }
    case OfType::kFlowMod: {
      if (to_controller || size < kHdrLen + 40) return false;
      const std::size_t match_end = walk_canonical_match(data, size, kHdrLen + 40);
      if (match_end == 0) return false;
      std::size_t goto_offset = 0;
      if (!walk_canonical_instructions(data, match_end, size, &goto_offset)) {
        return false;
      }
      ++data[kFlowModTableOffset];
      // The slow path increments goto unconditionally on the shift path.
      if (goto_offset != 0) ++data[goto_offset];
      return true;
    }
    case OfType::kMultipartRequest: {
      if (to_controller || size < kHdrLen + 8 + 32) return false;
      std::uint8_t& table = data[kMultipartRequestTableOffset];
      if (table == 0xff) return false;  // OFPTT_ALL passes through
      ++table;
      return true;
    }
    case OfType::kMultipartReply: {
      if (!to_controller || size < kHdrLen + 8) return false;
      if (rd16(data + 8) != kStatsTypeFlow) return false;
      std::size_t off = kHdrLen + 8;
      while (off < size) {
        if (off + 48 > size) return false;
        const std::uint16_t entry_len = rd16(data + off);
        if (entry_len < 48 || off + entry_len > size) return false;
        if (data[off + 2] == 0) return false;  // Table-0 rows are filtered
        --data[off + 2];
        const std::size_t match_end =
            walk_canonical_match(data, off + entry_len, off + 48);
        if (match_end == 0) return false;
        std::size_t goto_offset = 0;
        if (!walk_canonical_instructions(data, match_end, off + entry_len,
                                         &goto_offset)) {
          return false;
        }
        // Matches the slow path: only gotos above the boundary shift down.
        if (goto_offset != 0 && data[goto_offset] > 0) --data[goto_offset];
        off += entry_len;
      }
      return true;
    }
    default:
      return false;
  }
}

Result<OfMessage> decode(const std::vector<std::uint8_t>& bytes) {
  return decode_frame(bytes.data(), bytes.size());
}

Result<OfMessage> decode(const FrameView& view) {
  return decode_frame(view.data(), view.size());
}

void FrameDecoder::compact_for_input() {
  if (read_pos_ == end_pos_) {
    // Fully drained: recycle the storage outright (capacity is kept).
    read_pos_ = 0;
    end_pos_ = 0;
  } else if (read_pos_ > 0 && read_pos_ >= end_pos_ - read_pos_) {
    // The consumed prefix outweighs the live tail: compact once. The move
    // cost is bounded by bytes consumed since the last compaction, so the
    // decoder stays amortized O(1) per byte even under 1-byte feeds.
    std::memmove(buffer_.data(), buffer_.data() + read_pos_,
                 end_pos_ - read_pos_);
    end_pos_ -= read_pos_;
    read_pos_ = 0;
  }
}

void FrameDecoder::feed(const std::vector<std::uint8_t>& chunk) {
  if (chunk.empty()) return;
  compact_for_input();
  if (buffer_.size() < end_pos_ + chunk.size()) {
    buffer_.resize(std::max(buffer_.size() * 2, end_pos_ + chunk.size()));
  }
  std::memcpy(buffer_.data() + end_pos_, chunk.data(), chunk.size());
  end_pos_ += chunk.size();
}

std::size_t FrameDecoder::writable_spans(std::size_t min_bytes,
                                         MutableByteSpan spans[2]) {
  constexpr std::size_t kSpillBytes = 16 * 1024;
  compact_for_input();
  if (buffer_.size() - end_pos_ < min_bytes) {
    buffer_.resize(std::max(buffer_.size() * 2, end_pos_ + min_bytes));
  }
  if (spill_.size() < kSpillBytes) spill_.resize(kSpillBytes);
  last_tail_ = buffer_.size() - end_pos_;
  spans[0] = MutableByteSpan{buffer_.data() + end_pos_, last_tail_};
  spans[1] = MutableByteSpan{spill_.data(), spill_.size()};
  return 2;
}

void FrameDecoder::commit(std::size_t n) {
  const std::size_t into_tail = std::min(n, last_tail_);
  end_pos_ += into_tail;
  const std::size_t overrun = n - into_tail;
  if (overrun > 0) {
    // The read spilled past the tail: fold the spill block in. Bounded by
    // the spill size, and rare — the next writable_spans() doubles the tail.
    if (buffer_.size() < end_pos_ + overrun) {
      buffer_.resize(std::max(buffer_.size() * 2, end_pos_ + overrun));
    }
    std::memcpy(buffer_.data() + end_pos_, spill_.data(), overrun);
    end_pos_ += overrun;
  }
  last_tail_ = buffer_.size() - end_pos_;
}

FrameStatus FrameDecoder::next_frame(FrameView& view) {
  const std::size_t available = end_pos_ - read_pos_;
  if (available < 8) return FrameStatus::kAwait;
  const std::size_t frame_len =
      (static_cast<std::size_t>(buffer_[read_pos_ + 2]) << 8) |
      buffer_[read_pos_ + 3];
  if (frame_len < 8) {
    // Unrecoverable framing corruption: reset the stream.
    read_pos_ = 0;
    end_pos_ = 0;
    return FrameStatus::kCorrupt;
  }
  if (available < frame_len) return FrameStatus::kAwait;
  view = FrameView(buffer_.data() + read_pos_, frame_len);
  read_pos_ += frame_len;
  return FrameStatus::kFrame;
}

std::vector<Result<OfMessage>> FrameDecoder::drain() {
  std::vector<Result<OfMessage>> messages;
  FrameView view;
  for (;;) {
    switch (next_frame(view)) {
      case FrameStatus::kFrame:
        messages.push_back(decode(view));
        break;
      case FrameStatus::kAwait:
        return messages;
      case FrameStatus::kCorrupt:
        messages.push_back(
            Result<OfMessage>::Fail(ErrorCode::kMalformed, "frame length < 8"));
        return messages;
    }
  }
}

}  // namespace dfi
