#include "openflow/wire.h"

#include <cassert>
#include <cstring>

namespace dfi {
namespace {

// ---------------------------------------------------------------- writing

class Writer {
 public:
  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      out_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }
  void u64(std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      out_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }
  void mac(const MacAddress& m) {
    for (auto octet : m.octets()) out_.push_back(octet);
  }
  void pad(std::size_t n) { out_.insert(out_.end(), n, 0); }
  void bytes(const std::vector<std::uint8_t>& data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  // Overwrite a previously written big-endian u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }

 private:
  std::vector<std::uint8_t> out_;
};

// OXM field codes (OFPXMC_OPENFLOW_BASIC class 0x8000).
enum : std::uint8_t {
  kOxmInPort = 0,
  kOxmEthDst = 3,
  kOxmEthSrc = 4,
  kOxmEthType = 5,
  kOxmIpProto = 10,
  kOxmIpv4Src = 11,
  kOxmIpv4Dst = 12,
  kOxmTcpSrc = 13,
  kOxmTcpDst = 14,
  kOxmUdpSrc = 15,
  kOxmUdpDst = 16,
};

void write_oxm_header(Writer& w, std::uint8_t field, std::uint8_t len) {
  w.u16(0x8000);                                   // OFPXMC_OPENFLOW_BASIC
  w.u8(static_cast<std::uint8_t>(field << 1));     // no mask
  w.u8(len);
}

void write_match(Writer& w, const Match& match) {
  const std::size_t start = w.size();
  w.u16(1);  // OFPMT_OXM
  const std::size_t len_offset = w.size();
  w.u16(0);  // patched below

  if (match.in_port) {
    write_oxm_header(w, kOxmInPort, 4);
    w.u32(match.in_port->value);
  }
  if (match.eth_dst) {
    write_oxm_header(w, kOxmEthDst, 6);
    w.mac(*match.eth_dst);
  }
  if (match.eth_src) {
    write_oxm_header(w, kOxmEthSrc, 6);
    w.mac(*match.eth_src);
  }
  if (match.eth_type) {
    write_oxm_header(w, kOxmEthType, 2);
    w.u16(*match.eth_type);
  }
  if (match.ip_proto) {
    write_oxm_header(w, kOxmIpProto, 1);
    w.u8(*match.ip_proto);
  }
  if (match.ipv4_src) {
    write_oxm_header(w, kOxmIpv4Src, 4);
    w.u32(match.ipv4_src->value());
  }
  if (match.ipv4_dst) {
    write_oxm_header(w, kOxmIpv4Dst, 4);
    w.u32(match.ipv4_dst->value());
  }
  if (match.tcp_src) {
    write_oxm_header(w, kOxmTcpSrc, 2);
    w.u16(*match.tcp_src);
  }
  if (match.tcp_dst) {
    write_oxm_header(w, kOxmTcpDst, 2);
    w.u16(*match.tcp_dst);
  }
  if (match.udp_src) {
    write_oxm_header(w, kOxmUdpSrc, 2);
    w.u16(*match.udp_src);
  }
  if (match.udp_dst) {
    write_oxm_header(w, kOxmUdpDst, 2);
    w.u16(*match.udp_dst);
  }

  const std::size_t match_len = w.size() - start;  // excludes trailing pad
  w.patch_u16(len_offset, static_cast<std::uint16_t>(match_len));
  const std::size_t padded = (match_len + 7) / 8 * 8;
  w.pad(padded - match_len);
}

void write_actions(Writer& w, const std::vector<Action>& actions) {
  for (const auto& action : actions) {
    const auto& output = std::get<OutputAction>(action);
    w.u16(0);   // OFPAT_OUTPUT
    w.u16(16);  // length
    w.u32(output.port.value);
    w.u16(0xffff);  // max_len = OFPCML_MAX (send full packet)
    w.pad(6);
  }
}

void write_port_desc(Writer& w, const PortDesc& desc) {
  w.u32(desc.port_no.value);
  w.pad(4);
  w.mac(desc.hw_addr);
  w.pad(2);
  // name: 16 bytes, NUL-padded.
  for (std::size_t i = 0; i < 16; ++i) {
    w.u8(i < desc.name.size() && i < 15 ? static_cast<std::uint8_t>(desc.name[i]) : 0);
  }
  w.u32(desc.config);
  w.u32(desc.state);
  w.pad(24);  // curr/advertised/supported/peer/curr_speed/max_speed
}

void write_instructions(Writer& w, const Instructions& instructions) {
  if (instructions.goto_table.has_value()) {
    w.u16(1);  // OFPIT_GOTO_TABLE
    w.u16(8);
    w.u8(*instructions.goto_table);
    w.pad(3);
  }
  if (!instructions.apply_actions.empty()) {
    w.u16(4);  // OFPIT_APPLY_ACTIONS
    const std::uint16_t len =
        static_cast<std::uint16_t>(8 + 16 * instructions.apply_actions.size());
    w.u16(len);
    w.pad(4);
    write_actions(w, instructions.apply_actions);
  }
}

// ---------------------------------------------------------------- reading

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool has(std::size_t n) const { return pos_ + n <= size_; }
  std::size_t remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }

  std::uint8_t u8() { return data_[pos_++]; }
  std::uint16_t u16() {
    const auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }
  MacAddress mac() {
    std::array<std::uint8_t, 6> octets{};
    for (auto& octet : octets) octet = data_[pos_++];
    return MacAddress(octets);
  }
  void skip(std::size_t n) { pos_ += n; }
  std::vector<std::uint8_t> take(std::size_t n) {
    std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }
  std::vector<std::uint8_t> rest() { return take(remaining()); }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

#define DFI_REQUIRE(reader, n, what)                                   \
  do {                                                                 \
    if (!(reader).has(n)) {                                            \
      return Result<OfMessage>::Fail(ErrorCode::kMalformed,            \
                                     std::string("truncated ") + what); \
    }                                                                  \
  } while (0)

Status read_match(Reader& r, Match& match) {
  if (!r.has(4)) return Status::Fail(ErrorCode::kMalformed, "truncated match");
  const std::uint16_t type = r.u16();
  const std::uint16_t length = r.u16();
  if (type != 1) return Status::Fail(ErrorCode::kUnsupported, "non-OXM match");
  if (length < 4) return Status::Fail(ErrorCode::kMalformed, "bad match length");
  std::size_t oxm_remaining = length - 4;
  if (!r.has(oxm_remaining)) {
    return Status::Fail(ErrorCode::kMalformed, "truncated OXM fields");
  }
  while (oxm_remaining > 0) {
    if (oxm_remaining < 4) {
      return Status::Fail(ErrorCode::kMalformed, "truncated OXM header");
    }
    const std::uint16_t oxm_class = r.u16();
    const std::uint8_t field_hm = r.u8();
    const std::uint8_t len = r.u8();
    oxm_remaining -= 4;
    if (oxm_remaining < len) {
      return Status::Fail(ErrorCode::kMalformed, "truncated OXM value");
    }
    const std::uint8_t field = field_hm >> 1;
    const bool has_mask = (field_hm & 1) != 0;
    if (oxm_class != 0x8000 || has_mask) {
      // Skip unknown classes and masked fields (treated as unsupported but
      // non-fatal: the proxy must pass through what it does not understand).
      r.skip(len);
      oxm_remaining -= len;
      continue;
    }
    switch (field) {
      case kOxmInPort: match.in_port = PortNo{r.u32()}; break;
      case kOxmEthDst: match.eth_dst = r.mac(); break;
      case kOxmEthSrc: match.eth_src = r.mac(); break;
      case kOxmEthType: match.eth_type = r.u16(); break;
      case kOxmIpProto: match.ip_proto = r.u8(); break;
      case kOxmIpv4Src: match.ipv4_src = Ipv4Address(r.u32()); break;
      case kOxmIpv4Dst: match.ipv4_dst = Ipv4Address(r.u32()); break;
      case kOxmTcpSrc: match.tcp_src = r.u16(); break;
      case kOxmTcpDst: match.tcp_dst = r.u16(); break;
      case kOxmUdpSrc: match.udp_src = r.u16(); break;
      case kOxmUdpDst: match.udp_dst = r.u16(); break;
      default: r.skip(len); break;
    }
    oxm_remaining -= len;
  }
  // Trailing pad to 8-byte boundary.
  const std::size_t padded = (length + 7) / 8 * 8;
  const std::size_t pad_len = padded - length;
  if (!r.has(pad_len)) return Status::Fail(ErrorCode::kMalformed, "truncated match pad");
  r.skip(pad_len);
  return Status::Ok();
}

Status read_actions(Reader& r, std::size_t total_len, std::vector<Action>& actions) {
  std::size_t remaining = total_len;
  while (remaining > 0) {
    if (remaining < 4 || !r.has(4)) {
      return Status::Fail(ErrorCode::kMalformed, "truncated action header");
    }
    const std::uint16_t type = r.u16();
    const std::uint16_t len = r.u16();
    if (len < 8 || len > remaining || !r.has(len - 4)) {
      return Status::Fail(ErrorCode::kMalformed, "bad action length");
    }
    if (type == 0) {  // OFPAT_OUTPUT
      if (len != 16) return Status::Fail(ErrorCode::kMalformed, "bad output action");
      const std::uint32_t port = r.u32();
      r.skip(2);  // max_len
      r.skip(6);  // pad
      actions.push_back(OutputAction{PortNo{port}});
    } else {
      r.skip(len - 4);  // unsupported action: pass over
    }
    remaining -= len;
  }
  return Status::Ok();
}

Status read_instructions(Reader& r, std::size_t total_len, Instructions& instructions) {
  std::size_t remaining = total_len;
  while (remaining > 0) {
    if (remaining < 4 || !r.has(4)) {
      return Status::Fail(ErrorCode::kMalformed, "truncated instruction header");
    }
    const std::uint16_t type = r.u16();
    const std::uint16_t len = r.u16();
    if (len < 8 || len > remaining || !r.has(len - 4)) {
      return Status::Fail(ErrorCode::kMalformed, "bad instruction length");
    }
    if (type == 1) {  // OFPIT_GOTO_TABLE
      instructions.goto_table = r.u8();
      r.skip(3);
    } else if (type == 4) {  // OFPIT_APPLY_ACTIONS
      r.skip(4);  // pad
      const Status status = read_actions(r, len - 8, instructions.apply_actions);
      if (!status.ok()) return status;
    } else {
      r.skip(len - 4);
    }
    remaining -= len;
  }
  return Status::Ok();
}

}  // namespace

OfType OfMessage::type() const {
  struct Visitor {
    OfType operator()(const HelloMsg&) const { return OfType::kHello; }
    OfType operator()(const ErrorMsg&) const { return OfType::kError; }
    OfType operator()(const EchoRequestMsg&) const { return OfType::kEchoRequest; }
    OfType operator()(const EchoReplyMsg&) const { return OfType::kEchoReply; }
    OfType operator()(const FeaturesRequestMsg&) const { return OfType::kFeaturesRequest; }
    OfType operator()(const FeaturesReplyMsg&) const { return OfType::kFeaturesReply; }
    OfType operator()(const PacketInMsg&) const { return OfType::kPacketIn; }
    OfType operator()(const PacketOutMsg&) const { return OfType::kPacketOut; }
    OfType operator()(const FlowModMsg&) const { return OfType::kFlowMod; }
    OfType operator()(const FlowRemovedMsg&) const { return OfType::kFlowRemoved; }
    OfType operator()(const PortStatusMsg&) const { return OfType::kPortStatus; }
    OfType operator()(const MultipartRequestMsg&) const { return OfType::kMultipartRequest; }
    OfType operator()(const MultipartReplyMsg&) const { return OfType::kMultipartReply; }
    OfType operator()(const BarrierRequestMsg&) const { return OfType::kBarrierRequest; }
    OfType operator()(const BarrierReplyMsg&) const { return OfType::kBarrierReply; }
  };
  return std::visit(Visitor{}, payload);
}

std::string to_string(OfType type) {
  switch (type) {
    case OfType::kHello: return "HELLO";
    case OfType::kError: return "ERROR";
    case OfType::kEchoRequest: return "ECHO_REQUEST";
    case OfType::kEchoReply: return "ECHO_REPLY";
    case OfType::kFeaturesRequest: return "FEATURES_REQUEST";
    case OfType::kFeaturesReply: return "FEATURES_REPLY";
    case OfType::kPacketIn: return "PACKET_IN";
    case OfType::kFlowRemoved: return "FLOW_REMOVED";
    case OfType::kPortStatus: return "PORT_STATUS";
    case OfType::kPacketOut: return "PACKET_OUT";
    case OfType::kFlowMod: return "FLOW_MOD";
    case OfType::kMultipartRequest: return "MULTIPART_REQUEST";
    case OfType::kMultipartReply: return "MULTIPART_REPLY";
    case OfType::kBarrierRequest: return "BARRIER_REQUEST";
    case OfType::kBarrierReply: return "BARRIER_REPLY";
  }
  return "UNKNOWN";
}

std::string OfMessage::summary() const {
  std::string text = to_string(type()) + " xid=" + std::to_string(xid);
  if (const auto* flow_mod = std::get_if<FlowModMsg>(&payload)) {
    text += " table=" + std::to_string(flow_mod->table_id) + " [" +
            flow_mod->match.to_string() + "]";
  } else if (const auto* packet_in = std::get_if<PacketInMsg>(&payload)) {
    text += " in_port=" + std::to_string(packet_in->in_port.value) + " " +
            std::to_string(packet_in->data.size()) + "B";
  }
  return text;
}

std::vector<std::uint8_t> encode(const OfMessage& message) {
  Writer w;
  w.u8(kOfVersion13);
  w.u8(static_cast<std::uint8_t>(message.type()));
  const std::size_t len_offset = w.size();
  w.u16(0);  // patched at the end
  w.u32(message.xid);

  struct Visitor {
    Writer& w;

    void operator()(const HelloMsg&) {}
    void operator()(const ErrorMsg& m) {
      w.u16(m.type);
      w.u16(m.code);
      w.bytes(m.data);
    }
    void operator()(const EchoRequestMsg& m) { w.bytes(m.data); }
    void operator()(const EchoReplyMsg& m) { w.bytes(m.data); }
    void operator()(const FeaturesRequestMsg&) {}
    void operator()(const FeaturesReplyMsg& m) {
      w.u64(m.datapath_id.value);
      w.u32(m.n_buffers);
      w.u8(m.n_tables);
      w.u8(0);  // auxiliary_id
      w.pad(2);
      w.u32(m.capabilities);
      w.u32(0);  // reserved
    }
    void operator()(const PacketInMsg& m) {
      w.u32(m.buffer_id);
      w.u16(m.total_len);
      w.u8(static_cast<std::uint8_t>(m.reason));
      w.u8(m.table_id);
      w.u64(m.cookie.value);
      Match match;
      match.in_port = m.in_port;
      write_match(w, match);
      w.pad(2);
      w.bytes(m.data);
    }
    void operator()(const PacketOutMsg& m) {
      w.u32(m.buffer_id);
      w.u32(m.in_port.value);
      w.u16(static_cast<std::uint16_t>(16 * m.actions.size()));
      w.pad(6);
      write_actions(w, m.actions);
      w.bytes(m.data);
    }
    void operator()(const FlowModMsg& m) {
      w.u64(m.cookie.value);
      w.u64(m.cookie_mask.value);
      w.u8(m.table_id);
      w.u8(static_cast<std::uint8_t>(m.command));
      w.u16(m.idle_timeout);
      w.u16(m.hard_timeout);
      w.u16(m.priority);
      w.u32(m.buffer_id);
      w.u32(m.out_port.value);
      w.u32(0xffffffff);  // out_group = OFPG_ANY
      w.u16(m.flags);
      w.pad(2);
      write_match(w, m.match);
      write_instructions(w, m.instructions);
    }
    void operator()(const FlowRemovedMsg& m) {
      w.u64(m.cookie.value);
      w.u16(m.priority);
      w.u8(static_cast<std::uint8_t>(m.reason));
      w.u8(m.table_id);
      w.u32(m.duration_sec);
      w.u32(0);  // duration_nsec
      w.u16(m.idle_timeout);
      w.u16(m.hard_timeout);
      w.u64(m.packet_count);
      w.u64(m.byte_count);
      write_match(w, m.match);
    }
    void operator()(const PortStatusMsg& m) {
      w.u8(static_cast<std::uint8_t>(m.reason));
      w.pad(7);
      write_port_desc(w, m.desc);
    }
    void operator()(const MultipartRequestMsg& m) {
      w.u16(m.stats_type);
      w.u16(0);  // flags
      w.pad(4);
      if (m.stats_type == kStatsTypeFlow) {
        w.u8(m.flow_request.table_id);
        w.pad(3);
        w.u32(kPortAny.value);    // out_port
        w.u32(0xffffffff);        // out_group
        w.pad(4);
        w.u64(m.flow_request.cookie.value);
        w.u64(m.flow_request.cookie_mask.value);
        write_match(w, m.flow_request.match);
      } else if (m.stats_type == kStatsTypePort) {
        w.u32(m.port_no.value);
        w.pad(4);
      }
    }
    void operator()(const MultipartReplyMsg& m) {
      w.u16(m.stats_type);
      w.u16(0);  // flags
      w.pad(4);
      for (const auto& entry : m.flow_stats) {
        const std::size_t entry_start = w.size();
        const std::size_t entry_len_offset = w.size();
        w.u16(0);  // length, patched
        w.u8(entry.table_id);
        w.pad(1);
        w.u32(entry.duration_sec);
        w.u32(0);  // duration_nsec
        w.u16(entry.priority);
        w.u16(entry.idle_timeout);
        w.u16(entry.hard_timeout);
        w.u16(0);  // flags
        w.pad(4);
        w.u64(entry.cookie.value);
        w.u64(entry.packet_count);
        w.u64(entry.byte_count);
        write_match(w, entry.match);
        write_instructions(w, entry.instructions);
        w.patch_u16(entry_len_offset,
                    static_cast<std::uint16_t>(w.size() - entry_start));
      }
      for (const auto& entry : m.port_stats) {
        w.u32(entry.port_no.value);
        w.pad(4);
        w.u64(entry.rx_packets);
        w.u64(entry.tx_packets);
        w.u64(entry.rx_bytes);
        w.u64(entry.tx_bytes);
        w.u64(entry.rx_dropped);
        w.u64(entry.tx_dropped);
        w.pad(48);  // rx/tx errors, frame/over/crc errors, collisions
        w.u32(entry.duration_sec);
        w.u32(0);  // duration_nsec
      }
    }
    void operator()(const BarrierRequestMsg&) {}
    void operator()(const BarrierReplyMsg&) {}
  };
  std::visit(Visitor{w}, message.payload);

  auto bytes = w.take();
  bytes[len_offset] = static_cast<std::uint8_t>(bytes.size() >> 8);
  bytes[len_offset + 1] = static_cast<std::uint8_t>(bytes.size());
  return bytes;
}

namespace {

Result<OfMessage> decode_frame(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  DFI_REQUIRE(r, 8, "ofp_header");
  const std::uint8_t version = r.u8();
  const std::uint8_t type = r.u8();
  const std::uint16_t length = r.u16();
  const std::uint32_t xid = r.u32();
  if (version != kOfVersion13) {
    return Result<OfMessage>::Fail(ErrorCode::kUnsupported,
                                   "OpenFlow version " + std::to_string(version));
  }
  if (length != size) {
    return Result<OfMessage>::Fail(ErrorCode::kMalformed, "frame length mismatch");
  }

  OfMessage message;
  message.xid = xid;

  switch (static_cast<OfType>(type)) {
    case OfType::kHello:
      message.payload = HelloMsg{};
      return message;
    case OfType::kError: {
      DFI_REQUIRE(r, 4, "ERROR body");
      ErrorMsg m;
      m.type = r.u16();
      m.code = r.u16();
      m.data = r.rest();
      message.payload = m;
      return message;
    }
    case OfType::kEchoRequest:
      message.payload = EchoRequestMsg{r.rest()};
      return message;
    case OfType::kEchoReply:
      message.payload = EchoReplyMsg{r.rest()};
      return message;
    case OfType::kFeaturesRequest:
      message.payload = FeaturesRequestMsg{};
      return message;
    case OfType::kFeaturesReply: {
      DFI_REQUIRE(r, 24, "FEATURES_REPLY body");
      FeaturesReplyMsg m;
      m.datapath_id = Dpid{r.u64()};
      m.n_buffers = r.u32();
      m.n_tables = r.u8();
      r.skip(3);  // auxiliary_id + pad
      m.capabilities = r.u32();
      r.skip(4);  // reserved
      message.payload = m;
      return message;
    }
    case OfType::kPacketIn: {
      DFI_REQUIRE(r, 16, "PACKET_IN body");
      PacketInMsg m;
      m.buffer_id = r.u32();
      m.total_len = r.u16();
      m.reason = static_cast<PacketInReason>(r.u8());
      m.table_id = r.u8();
      m.cookie = Cookie{r.u64()};
      Match match;
      if (Status status = read_match(r, match); !status.ok()) {
        return Result<OfMessage>::Fail(status.error().code, status.error().message);
      }
      m.in_port = match.in_port.value_or(PortNo{0});
      DFI_REQUIRE(r, 2, "PACKET_IN pad");
      r.skip(2);
      m.data = r.rest();
      message.payload = m;
      return message;
    }
    case OfType::kPortStatus: {
      DFI_REQUIRE(r, 8 + 64, "PORT_STATUS body");
      PortStatusMsg m;
      m.reason = static_cast<PortStatusReason>(r.u8());
      r.skip(7);
      m.desc.port_no = PortNo{r.u32()};
      r.skip(4);
      m.desc.hw_addr = r.mac();
      r.skip(2);
      std::string name;
      for (int i = 0; i < 16; ++i) {
        const char c = static_cast<char>(r.u8());
        if (c != '\0') name += c;
      }
      m.desc.name = std::move(name);
      m.desc.config = r.u32();
      m.desc.state = r.u32();
      r.skip(24);
      message.payload = m;
      return message;
    }
    case OfType::kPacketOut: {
      DFI_REQUIRE(r, 16, "PACKET_OUT body");
      PacketOutMsg m;
      m.buffer_id = r.u32();
      m.in_port = PortNo{r.u32()};
      const std::uint16_t actions_len = r.u16();
      r.skip(6);
      if (!r.has(actions_len)) {
        return Result<OfMessage>::Fail(ErrorCode::kMalformed, "truncated PACKET_OUT actions");
      }
      if (Status status = read_actions(r, actions_len, m.actions); !status.ok()) {
        return Result<OfMessage>::Fail(status.error().code, status.error().message);
      }
      m.data = r.rest();
      message.payload = m;
      return message;
    }
    case OfType::kFlowMod: {
      DFI_REQUIRE(r, 40, "FLOW_MOD body");
      FlowModMsg m;
      m.cookie = Cookie{r.u64()};
      m.cookie_mask = Cookie{r.u64()};
      m.table_id = r.u8();
      m.command = static_cast<FlowModCommand>(r.u8());
      m.idle_timeout = r.u16();
      m.hard_timeout = r.u16();
      m.priority = r.u16();
      m.buffer_id = r.u32();
      m.out_port = PortNo{r.u32()};
      r.skip(4);  // out_group
      m.flags = r.u16();
      r.skip(2);  // pad
      if (Status status = read_match(r, m.match); !status.ok()) {
        return Result<OfMessage>::Fail(status.error().code, status.error().message);
      }
      if (Status status = read_instructions(r, r.remaining(), m.instructions);
          !status.ok()) {
        return Result<OfMessage>::Fail(status.error().code, status.error().message);
      }
      message.payload = m;
      return message;
    }
    case OfType::kFlowRemoved: {
      DFI_REQUIRE(r, 40, "FLOW_REMOVED body");
      FlowRemovedMsg m;
      m.cookie = Cookie{r.u64()};
      m.priority = r.u16();
      m.reason = static_cast<FlowRemovedReason>(r.u8());
      m.table_id = r.u8();
      m.duration_sec = r.u32();
      r.skip(4);  // duration_nsec
      m.idle_timeout = r.u16();
      m.hard_timeout = r.u16();
      m.packet_count = r.u64();
      m.byte_count = r.u64();
      if (Status status = read_match(r, m.match); !status.ok()) {
        return Result<OfMessage>::Fail(status.error().code, status.error().message);
      }
      message.payload = m;
      return message;
    }
    case OfType::kMultipartRequest: {
      DFI_REQUIRE(r, 8, "MULTIPART_REQUEST header");
      MultipartRequestMsg m;
      m.stats_type = r.u16();
      r.skip(2);  // flags
      r.skip(4);  // pad
      if (m.stats_type == kStatsTypeFlow) {
        DFI_REQUIRE(r, 32, "flow stats request");
        m.flow_request.table_id = r.u8();
        r.skip(3);
        r.skip(8);  // out_port, out_group
        r.skip(4);  // pad
        m.flow_request.cookie = Cookie{r.u64()};
        m.flow_request.cookie_mask = Cookie{r.u64()};
        if (Status status = read_match(r, m.flow_request.match); !status.ok()) {
          return Result<OfMessage>::Fail(status.error().code, status.error().message);
        }
      } else if (m.stats_type == kStatsTypePort) {
        DFI_REQUIRE(r, 8, "port stats request");
        m.port_no = PortNo{r.u32()};
        r.skip(4);
      }
      message.payload = m;
      return message;
    }
    case OfType::kMultipartReply: {
      DFI_REQUIRE(r, 8, "MULTIPART_REPLY header");
      MultipartReplyMsg m;
      m.stats_type = r.u16();
      r.skip(2);
      r.skip(4);
      if (m.stats_type == kStatsTypePort) {
        while (r.remaining() > 0) {
          DFI_REQUIRE(r, 112, "port stats entry");
          PortStatsEntry entry;
          entry.port_no = PortNo{r.u32()};
          r.skip(4);
          entry.rx_packets = r.u64();
          entry.tx_packets = r.u64();
          entry.rx_bytes = r.u64();
          entry.tx_bytes = r.u64();
          entry.rx_dropped = r.u64();
          entry.tx_dropped = r.u64();
          r.skip(48);
          entry.duration_sec = r.u32();
          r.skip(4);
          m.port_stats.push_back(entry);
        }
      }
      if (m.stats_type == kStatsTypeFlow) {
        while (r.remaining() > 0) {
          DFI_REQUIRE(r, 48, "flow stats entry");
          const std::size_t entry_start = r.pos();
          FlowStatsEntry entry;
          const std::uint16_t entry_len = r.u16();
          if (entry_len < 48) {
            return Result<OfMessage>::Fail(ErrorCode::kMalformed, "bad stats entry length");
          }
          entry.table_id = r.u8();
          r.skip(1);
          entry.duration_sec = r.u32();
          r.skip(4);  // duration_nsec
          entry.priority = r.u16();
          entry.idle_timeout = r.u16();
          entry.hard_timeout = r.u16();
          r.skip(2);  // flags
          r.skip(4);  // pad
          entry.cookie = Cookie{r.u64()};
          entry.packet_count = r.u64();
          entry.byte_count = r.u64();
          if (Status status = read_match(r, entry.match); !status.ok()) {
            return Result<OfMessage>::Fail(status.error().code, status.error().message);
          }
          const std::size_t consumed = r.pos() - entry_start;
          if (consumed > entry_len || !r.has(entry_len - consumed)) {
            return Result<OfMessage>::Fail(ErrorCode::kMalformed, "stats entry overrun");
          }
          if (Status status = read_instructions(r, entry_len - consumed, entry.instructions);
              !status.ok()) {
            return Result<OfMessage>::Fail(status.error().code, status.error().message);
          }
          m.flow_stats.push_back(std::move(entry));
        }
      }
      message.payload = m;
      return message;
    }
    case OfType::kBarrierRequest:
      message.payload = BarrierRequestMsg{};
      return message;
    case OfType::kBarrierReply:
      message.payload = BarrierReplyMsg{};
      return message;
  }
  return Result<OfMessage>::Fail(ErrorCode::kUnsupported,
                                 "message type " + std::to_string(type));
}

}  // namespace

Result<OfMessage> decode(const std::vector<std::uint8_t>& bytes) {
  return decode_frame(bytes.data(), bytes.size());
}

void FrameDecoder::feed(const std::vector<std::uint8_t>& chunk) {
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
}

std::vector<Result<OfMessage>> FrameDecoder::drain() {
  std::vector<Result<OfMessage>> messages;
  std::size_t offset = 0;
  while (buffer_.size() - offset >= 8) {
    const std::size_t frame_len =
        (static_cast<std::size_t>(buffer_[offset + 2]) << 8) | buffer_[offset + 3];
    if (frame_len < 8) {
      // Unrecoverable framing corruption: report and reset the stream.
      messages.push_back(
          Result<OfMessage>::Fail(ErrorCode::kMalformed, "frame length < 8"));
      buffer_.clear();
      return messages;
    }
    if (buffer_.size() - offset < frame_len) break;  // incomplete frame
    messages.push_back(decode_frame(buffer_.data() + offset, frame_len));
    offset += frame_len;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
  return messages;
}

}  // namespace dfi
