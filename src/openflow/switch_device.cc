#include "openflow/switch_device.h"

#include <cassert>

#include "common/logging.h"

namespace dfi {

SwitchDevice::SwitchDevice(SwitchConfig config, ClockFn clock)
    : config_(config),
      clock_(std::move(clock)),
      pipeline_(config.num_tables, config.table_capacity) {
  assert(clock_);
}

void SwitchDevice::add_port(PortNo port, PortOutputFn output, const std::string& name) {
  assert(port.value > 0 && port < kPortFlood);
  Port state;
  state.output = std::move(output);
  state.name = name.empty() ? "port" + std::to_string(port.value) : name;
  state.since = clock_();
  ports_[port] = std::move(state);
}

std::vector<PortNo> SwitchDevice::ports() const {
  std::vector<PortNo> out;
  out.reserve(ports_.size());
  for (const auto& [port, state] : ports_) out.push_back(port);
  return out;
}

PortDesc SwitchDevice::describe(PortNo port, const Port& state) const {
  PortDesc desc;
  desc.port_no = port;
  desc.hw_addr = MacAddress::from_u64((config_.dpid.value << 8) | port.value);
  desc.name = state.name;
  desc.state = state.down ? kPortStateLinkDown : 0;
  return desc;
}

void SwitchDevice::set_port_down(PortNo port, bool down) {
  const auto it = ports_.find(port);
  if (it == ports_.end() || it->second.down == down) return;
  it->second.down = down;
  PortStatusMsg status;
  status.reason = PortStatusReason::kModify;
  status.desc = describe(port, it->second);
  send_to_control(OfMessage{next_xid_++, std::move(status)});
}

bool SwitchDevice::port_down(PortNo port) const {
  const auto it = ports_.find(port);
  return it != ports_.end() && it->second.down;
}

PortStatsEntry SwitchDevice::port_stats(PortNo port) const {
  PortStatsEntry entry;
  entry.port_no = port;
  const auto it = ports_.find(port);
  if (it == ports_.end()) return entry;
  const Port& state = it->second;
  entry.rx_packets = state.rx_packets;
  entry.tx_packets = state.tx_packets;
  entry.rx_bytes = state.rx_bytes;
  entry.tx_bytes = state.tx_bytes;
  entry.rx_dropped = state.rx_dropped;
  entry.tx_dropped = state.tx_dropped;
  entry.duration_sec = static_cast<std::uint32_t>((clock_() - state.since).to_seconds());
  return entry;
}

void SwitchDevice::transmit(PortNo port, Port& state,
                            const std::vector<std::uint8_t>& bytes) {
  (void)port;
  if (state.down) {
    ++state.tx_dropped;
    ++counters_.packets_dropped;
    return;
  }
  ++state.tx_packets;
  state.tx_bytes += bytes.size();
  ++counters_.packets_forwarded;
  state.output(port, bytes);
}

void SwitchDevice::connect_control(ControlOutputFn output) {
  control_output_ = std::move(output);
  send_to_control(OfMessage{next_xid_++, HelloMsg{}});
}

void SwitchDevice::receive_packet(PortNo in_port, const std::vector<std::uint8_t>& bytes) {
  if (const auto it = ports_.find(in_port); it != ports_.end()) {
    if (it->second.down) {
      ++it->second.rx_dropped;
      return;  // a down link delivers nothing
    }
    ++it->second.rx_packets;
    it->second.rx_bytes += bytes.size();
  }
  ++counters_.packets_in;
  const auto parsed = Packet::parse(bytes);
  if (!parsed.ok()) {
    ++counters_.packets_dropped;
    DFI_DEBUG << to_string(config_.dpid) << " dropped unparsable packet: "
              << parsed.error().message;
    return;
  }
  const PipelineResult result =
      pipeline_.process(parsed.value(), in_port, bytes.size(), clock_());
  if (result.table_miss) {
    send_packet_in(in_port, result.miss_table, bytes);
    return;
  }
  if (result.output_ports.empty()) {
    ++counters_.packets_dropped;
    return;
  }
  for (PortNo port : result.output_ports) {
    if (port == kPortController) {
      send_packet_in(in_port, 0, bytes);
    } else if (port == kPortFlood) {
      flood(in_port, bytes);
    } else if (auto it = ports_.find(port); it != ports_.end()) {
      transmit(port, it->second, bytes);
    }
  }
}

void SwitchDevice::flood(PortNo in_port, const std::vector<std::uint8_t>& bytes) {
  for (auto& [port, state] : ports_) {
    if (port == in_port) continue;
    transmit(port, state, bytes);
  }
}

void SwitchDevice::receive_control(const std::vector<std::uint8_t>& chunk) {
  if (secure_ != nullptr) {
    // One sealed record per delivery; open in place into a pooled buffer.
    std::vector<std::uint8_t> plain = control_pool_.acquire();
    const auto opened = secure_->open_into(chunk.data(), chunk.size(), plain);
    if (!opened.ok()) {
      DFI_WARN << to_string(config_.dpid)
               << " rejected control record: " << opened.error().message;
      control_pool_.release(std::move(plain));
      return;
    }
    control_decoder_.feed(plain);
    control_pool_.release(std::move(plain));
  } else {
    control_decoder_.feed(chunk);
  }
  for (auto& result : control_decoder_.drain()) {
    if (!result.ok()) {
      DFI_WARN << to_string(config_.dpid)
               << " bad control frame: " << result.error().message;
      send_to_control(OfMessage{next_xid_++, ErrorMsg{/*type=*/1, /*code=*/0, {}}});
      continue;
    }
    handle_message(result.value());
  }
}

void SwitchDevice::handle_message(const OfMessage& message) {
  struct Visitor {
    SwitchDevice& sw;
    std::uint32_t xid;

    void operator()(const HelloMsg&) {}
    void operator()(const ErrorMsg&) {}
    void operator()(const EchoRequestMsg& m) {
      sw.send_to_control(OfMessage{xid, EchoReplyMsg{m.data}});
    }
    void operator()(const EchoReplyMsg&) {}
    void operator()(const FeaturesRequestMsg&) {
      FeaturesReplyMsg reply;
      reply.datapath_id = sw.config_.dpid;
      reply.n_buffers = 0;  // no buffering: packet-ins carry full packets
      reply.n_tables = sw.config_.num_tables;
      reply.capabilities = 0x1 | 0x4;  // FLOW_STATS | PORT_STATS
      sw.send_to_control(OfMessage{xid, reply});
    }
    void operator()(const FeaturesReplyMsg&) {}
    void operator()(const PacketInMsg&) {}
    void operator()(const PacketOutMsg& m) {
      ++sw.counters_.packet_outs;
      sw.execute_actions(m.actions, m.in_port, m.data);
    }
    void operator()(const FlowModMsg& m) {
      ++sw.counters_.flow_mods;
      sw.apply_flow_mod(m);
    }
    void operator()(const FlowRemovedMsg&) {}
    void operator()(const PortStatusMsg&) {}
    void operator()(const MultipartRequestMsg& m) {
      MultipartReplyMsg reply;
      reply.stats_type = m.stats_type;
      if (m.stats_type == kStatsTypePort) {
        for (const auto& [port, state] : sw.ports_) {
          if (m.port_no != kPortAny && m.port_no != port) continue;
          reply.port_stats.push_back(sw.port_stats(port));
        }
      }
      if (m.stats_type == kStatsTypeFlow) {
        const SimTime now = sw.clock_();
        const auto collect = [&](const FlowTable& table) {
          table.for_each([&](const FlowRule& rule) {
            if (!m.flow_request.match.covers(rule.match)) return;
            if ((rule.cookie.value & m.flow_request.cookie_mask.value) !=
                (m.flow_request.cookie.value & m.flow_request.cookie_mask.value)) {
              return;
            }
            FlowStatsEntry entry;
            entry.table_id = rule.table_id;
            entry.duration_sec =
                static_cast<std::uint32_t>((now - rule.installed_at).to_seconds());
            entry.priority = rule.priority;
            entry.idle_timeout = rule.idle_timeout_sec;
            entry.hard_timeout = rule.hard_timeout_sec;
            entry.cookie = rule.cookie;
            entry.packet_count = rule.counters.packets;
            entry.byte_count = rule.counters.bytes;
            entry.match = rule.match;
            entry.instructions = rule.instructions;
            reply.flow_stats.push_back(std::move(entry));
          });
        };
        if (m.flow_request.table_id == 0xff) {
          for (std::uint8_t t = 0; t < sw.pipeline_.num_tables(); ++t) {
            collect(sw.pipeline_.table(t));
          }
        } else if (m.flow_request.table_id < sw.pipeline_.num_tables()) {
          collect(sw.pipeline_.table(m.flow_request.table_id));
        }
      }
      sw.send_to_control(OfMessage{xid, reply});
    }
    void operator()(const MultipartReplyMsg&) {}
    void operator()(const BarrierRequestMsg&) {
      sw.send_to_control(OfMessage{xid, BarrierReplyMsg{}});
    }
    void operator()(const BarrierReplyMsg&) {}
  };
  std::visit(Visitor{*this, message.xid}, message.payload);
}

void SwitchDevice::apply_flow_mod(const FlowModMsg& mod) {
  if (mod.table_id != 0xff && mod.table_id >= pipeline_.num_tables()) {
    send_to_control(OfMessage{next_xid_++, ErrorMsg{/*FLOW_MOD_FAILED*/ 5,
                                                    /*BAD_TABLE_ID*/ 2, {}}});
    return;
  }
  const SimTime now = clock_();
  switch (mod.command) {
    case FlowModCommand::kAdd: {
      FlowRule rule;
      rule.priority = mod.priority;
      rule.cookie = mod.cookie;
      rule.match = mod.match;
      rule.instructions = mod.instructions;
      rule.idle_timeout_sec = mod.idle_timeout;
      rule.hard_timeout_sec = mod.hard_timeout;
      rule.send_flow_removed = (mod.flags & 0x1) != 0;  // OFPFF_SEND_FLOW_REM
      const std::uint8_t table = mod.table_id == 0xff ? 0 : mod.table_id;
      const Status status = pipeline_.table(table).add(std::move(rule), now);
      if (!status.ok()) {
        send_to_control(OfMessage{next_xid_++, ErrorMsg{/*FLOW_MOD_FAILED*/ 5,
                                                        /*TABLE_FULL*/ 1, {}}});
      }
      break;
    }
    case FlowModCommand::kModify:
    case FlowModCommand::kModifyStrict: {
      const std::uint8_t table = mod.table_id == 0xff ? 0 : mod.table_id;
      pipeline_.table(table).modify(mod.match, mod.cookie, mod.cookie_mask,
                                    mod.instructions);
      break;
    }
    case FlowModCommand::kDelete:
    case FlowModCommand::kDeleteStrict: {
      const auto delete_from = [&](FlowTable& table) {
        std::vector<FlowRule> removed =
            mod.command == FlowModCommand::kDelete
                ? table.remove(mod.match, mod.cookie, mod.cookie_mask)
                : table.remove_strict(mod.match, mod.priority, mod.cookie,
                                      mod.cookie_mask);
        for (const auto& rule : removed) {
          if (rule.send_flow_removed) {
            send_flow_removed(rule, FlowRemovedReason::kDelete);
          }
        }
      };
      if (mod.table_id == 0xff) {  // OFPTT_ALL
        for (std::uint8_t t = 0; t < pipeline_.num_tables(); ++t) {
          delete_from(pipeline_.table(t));
        }
      } else {
        delete_from(pipeline_.table(mod.table_id));
      }
      break;
    }
  }
}

void SwitchDevice::execute_actions(const std::vector<Action>& actions, PortNo in_port,
                                   const std::vector<std::uint8_t>& bytes) {
  for (const auto& action : actions) {
    const PortNo port = std::get<OutputAction>(action).port;
    if (port == kPortFlood) {
      flood(in_port, bytes);
    } else if (port == kPortController) {
      send_packet_in(in_port, 0, bytes);
    } else if (auto it = ports_.find(port); it != ports_.end()) {
      transmit(port, it->second, bytes);
    }
  }
}

void SwitchDevice::send_to_control(const OfMessage& message) {
  if (!control_output_) return;
  std::vector<std::uint8_t> frame = control_pool_.acquire();
  encode_into(message, frame);
  if (secure_ != nullptr) {
    // Pooled seal path: encode into one pooled buffer, seal in place into a
    // second — a secured link leaving via a real socket still allocates
    // nothing per frame at steady state.
    std::vector<std::uint8_t> sealed = control_pool_.acquire();
    secure_->seal_into(frame.data(), frame.size(), sealed);
    control_output_(sealed);
    control_pool_.release(std::move(sealed));
  } else {
    control_output_(frame);
  }
  control_pool_.release(std::move(frame));
}

void SwitchDevice::send_packet_in(PortNo in_port, std::uint8_t table_id,
                                  const std::vector<std::uint8_t>& bytes) {
  if (!control_output_) {
    ++counters_.packets_dropped;
    return;
  }
  ++counters_.packet_in_events;
  PacketInMsg packet_in;
  packet_in.buffer_id = kNoBuffer;  // full packet inline
  packet_in.total_len = static_cast<std::uint16_t>(bytes.size());
  packet_in.reason = PacketInReason::kNoMatch;
  packet_in.table_id = table_id;
  packet_in.in_port = in_port;
  packet_in.data = bytes;
  send_to_control(OfMessage{next_xid_++, std::move(packet_in)});
}

void SwitchDevice::send_flow_removed(const FlowRule& rule, FlowRemovedReason reason) {
  FlowRemovedMsg removed;
  removed.cookie = rule.cookie;
  removed.priority = rule.priority;
  removed.reason = reason;
  removed.table_id = rule.table_id;
  removed.duration_sec =
      static_cast<std::uint32_t>((clock_() - rule.installed_at).to_seconds());
  removed.idle_timeout = rule.idle_timeout_sec;
  removed.hard_timeout = rule.hard_timeout_sec;
  removed.packet_count = rule.counters.packets;
  removed.byte_count = rule.counters.bytes;
  removed.match = rule.match;
  send_to_control(OfMessage{next_xid_++, std::move(removed)});
}

void SwitchDevice::expire_flows() {
  for (std::uint8_t t = 0; t < pipeline_.num_tables(); ++t) {
    for (const auto& rule : pipeline_.table(t).expire(clock_())) {
      if (rule.send_flow_removed) {
        const bool hard = rule.hard_timeout_sec > 0 &&
                          clock_() - rule.installed_at >= seconds(rule.hard_timeout_sec);
        send_flow_removed(rule, hard ? FlowRemovedReason::kHardTimeout
                                     : FlowRemovedReason::kIdleTimeout);
      }
    }
  }
}

}  // namespace dfi
