// Deterministic fault-injection plan (DESIGN.md §6).
//
// The paper's safety claims — denied flows never reach the controller,
// Table 0 stays invisible, revoked policies leave no residual switch rules —
// must hold under event loss, reordering, delay and channel failure, not
// just on clean traces. The fault substrate makes those scenarios
// *replayable*: every fault decision (drop this DHCP event, duplicate that
// Packet-in, kill shard worker 2 at job 17) is drawn from one seeded Rng
// owned by a FaultPlan, and every decision is appended to a textual trace.
// Same seed -> byte-identical fault schedule and trace, so any invariant
// violation found by the fuzzer (tests/fuzz_invariants_test.cc) reproduces
// from its seed alone.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"

namespace dfi {

// Per-channel fault probabilities. All default to zero: a FaultChannel with
// a default spec is a transparent pipe.
struct FaultSpec {
  double drop = 0.0;       // message silently lost
  double duplicate = 0.0;  // message delivered twice
  double delay = 0.0;      // message held back 1..max_delay_flushes flushes
  double reorder = 0.0;    // per-flush: scramble this flush's delivery order
  int max_delay_flushes = 2;
};

struct FaultPlanStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered_flushes = 0;
  std::uint64_t severed_drops = 0;  // messages offered while severed
};

// The single source of randomness and the replay trace for one fault
// schedule. Channels and the fuzzer share one plan so the interleaving of
// their draws is part of the seed's definition.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  std::uint64_t seed() const { return seed_; }
  Rng& rng() { return rng_; }

  bool chance(double p) { return p > 0.0 && rng_.chance(p); }

  // Append one line to the replay trace. Records fault decisions and any
  // checkpoints the caller wants covered by byte-identical replay.
  void note(const std::string& line) {
    trace_ += line;
    trace_ += '\n';
  }

  const std::string& trace() const { return trace_; }
  FaultPlanStats& stats() { return stats_; }
  const FaultPlanStats& stats() const { return stats_; }

 private:
  std::uint64_t seed_;
  Rng rng_;
  std::string trace_;
  FaultPlanStats stats_;
};

}  // namespace dfi
