// Deterministic fault-injection plan (DESIGN.md §6).
//
// The paper's safety claims — denied flows never reach the controller,
// Table 0 stays invisible, revoked policies leave no residual switch rules —
// must hold under event loss, reordering, delay and channel failure, not
// just on clean traces. The fault substrate makes those scenarios
// *replayable*: every fault decision (drop this DHCP event, duplicate that
// Packet-in, kill shard worker 2 at job 17) is drawn from one seeded Rng
// owned by a FaultPlan, and every decision is appended to a textual trace.
// Same seed -> byte-identical fault schedule and trace, so any invariant
// violation found by the fuzzer (tests/fuzz_invariants_test.cc) reproduces
// from its seed alone.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"

namespace dfi {

// Per-channel fault probabilities. All default to zero: a FaultChannel with
// a default spec is a transparent pipe.
struct FaultSpec {
  double drop = 0.0;       // message silently lost
  double duplicate = 0.0;  // message delivered twice
  double delay = 0.0;      // message held back 1..max_delay_flushes flushes
  double reorder = 0.0;    // per-flush: scramble this flush's delivery order
  int max_delay_flushes = 2;
};

struct FaultPlanStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered_flushes = 0;
  std::uint64_t severed_drops = 0;  // messages offered while severed
  std::uint64_t crash_points = 0;   // process-kill points armed
};

// One seeded process-kill point for the crash-recovery fuzzer
// (tests/crash_recovery_fuzz_test.cc). A journal store armed with a
// CrashPoint counts down `ops_remaining` durable operations (appends,
// syncs, compaction commits) and then dies mid-operation: an append
// persists only `tear_fraction` of its bytes (the torn tail recovery must
// truncate), a sync persists nothing new, and a compaction commit either
// never happens or completes just before the kill (`commit_survives`) —
// the two sides of the atomic-rename race.
struct CrashPoint {
  bool armed = false;
  std::uint64_t ops_remaining = 0;
  double tear_fraction = 1.0;
  bool commit_survives = false;
};

// The single source of randomness and the replay trace for one fault
// schedule. Channels and the fuzzer share one plan so the interleaving of
// their draws is part of the seed's definition.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  std::uint64_t seed() const { return seed_; }
  Rng& rng() { return rng_; }

  bool chance(double p) { return p > 0.0 && rng_.chance(p); }

  // Append one line to the replay trace. Records fault decisions and any
  // checkpoints the caller wants covered by byte-identical replay.
  void note(const std::string& line) {
    trace_ += line;
    trace_ += '\n';
  }

  // Draw a kill point for the next journal "process lifetime": the crash
  // fires within the next `max_ops` durable operations. Recorded in the
  // trace so a schedule's kill/restart sequence replays from its seed.
  CrashPoint draw_crash_point(std::uint64_t max_ops) {
    CrashPoint point;
    point.armed = true;
    point.ops_remaining = static_cast<std::uint64_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(max_ops)));
    point.tear_fraction = static_cast<double>(rng_.uniform_int(0, 100)) / 100.0;
    point.commit_survives = rng_.chance(0.5);
    ++stats_.crash_points;
    note("crash-point: ops=" + std::to_string(point.ops_remaining) +
         " tear=" + std::to_string(point.tear_fraction) +
         " commit_survives=" + (point.commit_survives ? "yes" : "no"));
    return point;
  }

  const std::string& trace() const { return trace_; }
  FaultPlanStats& stats() { return stats_; }
  const FaultPlanStats& stats() const { return stats_; }

 private:
  std::uint64_t seed_;
  Rng rng_;
  std::string trace_;
  FaultPlanStats stats_;
};

}  // namespace dfi
