// Seeded faulty delivery channel (DESIGN.md §6).
//
// A FaultChannel<T> sits between a producer and a consumer of discrete
// messages — sensor service events bound for the bus, OpenFlow messages on
// the proxy's byte streams, binding flaps — and injects drop, duplication,
// delay and reordering according to a FaultSpec, drawing every decision
// from the shared FaultPlan so the schedule replays from one seed.
//
// Delivery is batched: offer() classifies a message (drop it, queue it once
// or twice, or hold it for a later flush) and flush() delivers the due
// backlog — in offer order, or scrambled when the plan draws a reorder for
// this flush. The fuzzer flushes at its step boundaries, which keeps fault
// timing deterministic in both the DES and the threaded Packet-in backend:
// messages move only when the control thread says so, never at a wall-clock
// whim. sever()/restore() model channel failure: a severed channel drops
// every offer (TCP sessions do not deliver partial streams after a cut;
// message-granular loss keeps the FrameDecoder framing intact).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"

namespace dfi {

template <typename T>
class FaultChannel {
 public:
  using DeliverFn = std::function<void(const T&)>;

  FaultChannel(std::string name, FaultSpec spec, FaultPlan& plan, DeliverFn deliver)
      : name_(std::move(name)),
        spec_(spec),
        plan_(plan),
        deliver_(std::move(deliver)) {}

  // Hand one message to the channel. It is delivered (possibly twice,
  // possibly scrambled) on a future flush — or never, if dropped.
  void offer(const T& message) {
    ++offered_;
    if (severed_) {
      ++plan_.stats().severed_drops;
      plan_.note(name_ + ": severed-drop #" + std::to_string(offered_));
      return;
    }
    if (plan_.chance(spec_.drop)) {
      ++plan_.stats().dropped;
      plan_.note(name_ + ": drop #" + std::to_string(offered_));
      return;
    }
    int copies = 1;
    if (plan_.chance(spec_.duplicate)) {
      copies = 2;
      ++plan_.stats().duplicated;
      plan_.note(name_ + ": duplicate #" + std::to_string(offered_));
    }
    for (int copy = 0; copy < copies; ++copy) {
      int hold = 0;
      if (plan_.chance(spec_.delay)) {
        hold = static_cast<int>(
            plan_.rng().uniform_int(1, spec_.max_delay_flushes));
        ++plan_.stats().delayed;
        plan_.note(name_ + ": delay #" + std::to_string(offered_) + " by " +
                   std::to_string(hold));
      }
      pending_.push_back(Pending{message, hold});
    }
  }

  // Deliver every message whose hold has expired. Returns how many were
  // delivered. The consumer runs synchronously inside this call.
  std::size_t flush() {
    std::vector<T> due;
    std::deque<Pending> kept;
    for (Pending& pending : pending_) {
      if (pending.hold_flushes > 0) {
        --pending.hold_flushes;
        kept.push_back(std::move(pending));
      } else {
        due.push_back(std::move(pending.message));
      }
    }
    pending_ = std::move(kept);
    if (due.size() > 1 && plan_.chance(spec_.reorder)) {
      ++plan_.stats().reordered_flushes;
      plan_.note(name_ + ": reorder flush of " + std::to_string(due.size()));
      plan_.rng().shuffle(due);
    }
    for (const T& message : due) deliver_(message);
    delivered_ += due.size();
    return due.size();
  }

  // Channel failure: every subsequent offer is lost until restore().
  // Pending (delayed) messages are lost too — they were in flight on the
  // severed stream.
  void sever() {
    severed_ = true;
    plan_.note(name_ + ": sever (" + std::to_string(pending_.size()) +
               " in-flight lost)");
    pending_.clear();
  }

  void restore() {
    severed_ = false;
    plan_.note(name_ + ": restore");
  }

  bool severed() const { return severed_; }
  std::size_t pending() const { return pending_.size(); }
  std::uint64_t offered() const { return offered_; }
  std::uint64_t delivered() const { return delivered_; }
  const std::string& name() const { return name_; }

 private:
  struct Pending {
    T message;
    int hold_flushes = 0;
  };

  std::string name_;
  FaultSpec spec_;
  FaultPlan& plan_;
  DeliverFn deliver_;
  std::deque<Pending> pending_;
  bool severed_ = false;
  std::uint64_t offered_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace dfi
