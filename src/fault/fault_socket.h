// Seeded socket shim for deterministic replay of socket schedules
// (DESIGN.md §9, the transport-level sibling of FaultChannel).
//
// A FaultSocket is an in-memory SocketOps endpoint: the test harness
// injects raw bytes with peer_write() and collects the connection's output
// with peer_drain(), while the Connection under test runs its real readv/
// writev machinery against it. Every IO call consults a dedicated seeded
// Rng (NOT the schedule's FaultPlan rng — existing schedules must keep
// their byte-identical traces when the socket shim is disabled) and may
//   - truncate a read/write to a random prefix          (short_read/write)
//   - report EAGAIN despite available bytes/space       (eagain_* storms)
//   - cap every write at a few bytes                    (slow_drain_cap)
//   - reset the stream at a preset byte offset, landing
//     mid-frame like a real RST                         (rst_after_bytes)
// Fault decisions are appended to the FaultPlan trace (when attached) so a
// socket schedule replays byte-identically from its seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/fault_plan.h"
#include "net/asyncio/socket_ops.h"

namespace dfi {

struct FaultSocketSpec {
  double short_read = 0.0;    // P(read delivers a random prefix)
  double eagain_read = 0.0;   // P(EAGAIN despite buffered bytes)
  double short_write = 0.0;   // P(write accepts a random prefix)
  double eagain_write = 0.0;  // P(EAGAIN despite queue space)
  std::size_t slow_drain_cap = 0;    // >0: peer accepts at most this per write
  std::uint64_t rst_after_bytes = 0;  // >0: reset once this many bytes read
  // Forced progress: after this many consecutive EAGAINs on one side the
  // next call succeeds, so drain loops terminate.
  int max_eagain_run = 8;
};

class FaultSocket final : public net::SocketOps {
 public:
  FaultSocket(FaultSocketSpec spec, std::uint64_t seed, FaultPlan* plan = nullptr)
      : spec_(spec), rng_(seed), plan_(plan) {}

  // ------------------------------------------------------------ test side
  void peer_write(const std::vector<std::uint8_t>& bytes) {
    in_.insert(in_.end(), bytes.begin(), bytes.end());
  }
  // Bytes the connection wrote, in order; clears the output queue.
  std::vector<std::uint8_t> peer_drain() {
    std::vector<std::uint8_t> out;
    out.swap(out_);
    return out;
  }
  // Orderly shutdown: reads report EOF once the buffered bytes are drained.
  void peer_shutdown() { peer_shutdown_ = true; }
  void reset_now() { reset_ = true; }
  std::size_t pending_in() const { return in_.size() - in_pos_; }
  std::size_t pending_out() const { return out_.size(); }
  bool reset() const { return reset_; }

  // ------------------------------------------------------------ SocketOps
  net::IoResult read_vec(const MutableByteSpan* spans, std::size_t count) override {
    if (closed_ || reset_) return {net::IoStatus::kReset, 0};
    if (spec_.rst_after_bytes > 0 && read_total_ >= spec_.rst_after_bytes) {
      trip_reset("rst mid-stream after " + std::to_string(read_total_) + "B");
      return {net::IoStatus::kReset, 0};
    }
    std::size_t avail = in_.size() - in_pos_;
    if (spec_.rst_after_bytes > 0) {
      avail = std::min<std::size_t>(
          avail, static_cast<std::size_t>(spec_.rst_after_bytes - read_total_));
    }
    if (avail == 0) {
      if (peer_shutdown_ && in_pos_ == in_.size()) return {net::IoStatus::kEof, 0};
      if (spec_.rst_after_bytes > 0 && in_pos_ < in_.size()) {
        trip_reset("rst mid-stream after " + std::to_string(read_total_) + "B");
        return {net::IoStatus::kReset, 0};
      }
      return {net::IoStatus::kWouldBlock, 0};
    }
    if (draw(spec_.eagain_read, &eagain_reads_)) {
      note("sock: eagain-read");
      return {net::IoStatus::kWouldBlock, 0};
    }
    std::size_t n = avail;
    if (n > 1 && plan_chance(spec_.short_read)) {
      n = static_cast<std::size_t>(rng_.uniform_int(1, static_cast<std::int64_t>(n)));
      note("sock: short-read " + std::to_string(n) + "/" + std::to_string(avail));
    }
    std::size_t copied = 0;
    for (std::size_t i = 0; i < count && copied < n; ++i) {
      const std::size_t take = std::min(n - copied, spans[i].size);
      if (take == 0) continue;
      std::memcpy(spans[i].data, in_.data() + in_pos_, take);
      in_pos_ += take;
      copied += take;
    }
    read_total_ += copied;
    compact_in();
    return {net::IoStatus::kOk, copied};
  }

  net::IoResult write_vec(const net::ConstByteSpan* spans, std::size_t count) override {
    if (closed_ || reset_) return {net::IoStatus::kReset, 0};
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) total += spans[i].size;
    if (total == 0) return {net::IoStatus::kOk, 0};
    if (draw(spec_.eagain_write, &eagain_writes_)) {
      note("sock: eagain-write");
      return {net::IoStatus::kWouldBlock, 0};
    }
    std::size_t n = total;
    if (spec_.slow_drain_cap > 0) n = std::min(n, spec_.slow_drain_cap);
    if (n > 1 && plan_chance(spec_.short_write)) {
      n = static_cast<std::size_t>(rng_.uniform_int(1, static_cast<std::int64_t>(n)));
      note("sock: short-write " + std::to_string(n) + "/" + std::to_string(total));
    }
    std::size_t put = 0;
    for (std::size_t i = 0; i < count && put < n; ++i) {
      const std::size_t take = std::min(n - put, spans[i].size);
      out_.insert(out_.end(), spans[i].data, spans[i].data + take);
      put += take;
    }
    return {net::IoStatus::kOk, put};
  }

  void close() override { closed_ = true; }
  int fd() const override { return -1; }  // in-memory: pumped manually

 private:
  bool plan_chance(double p) { return p > 0.0 && rng_.chance(p); }

  bool draw(double p, int* run) {
    if (!plan_chance(p)) {
      *run = 0;
      return false;
    }
    if (++*run > spec_.max_eagain_run) {
      *run = 0;
      return false;  // forced progress
    }
    return true;
  }

  void trip_reset(const std::string& why) {
    if (!reset_) note("sock: " + why);
    reset_ = true;
  }

  void note(const std::string& line) {
    if (plan_ != nullptr) plan_->note(line);
  }

  void compact_in() {
    if (in_pos_ == in_.size()) {
      in_.clear();
      in_pos_ = 0;
    } else if (in_pos_ >= 64 * 1024) {
      in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(in_pos_));
      in_pos_ = 0;
    }
  }

  FaultSocketSpec spec_;
  Rng rng_;
  FaultPlan* plan_ = nullptr;

  std::vector<std::uint8_t> in_;
  std::size_t in_pos_ = 0;
  std::uint64_t read_total_ = 0;
  std::vector<std::uint8_t> out_;
  bool peer_shutdown_ = false;
  bool reset_ = false;
  bool closed_ = false;
  int eagain_reads_ = 0;
  int eagain_writes_ = 0;
};

}  // namespace dfi
