#include "common/logging.h"

#include <cstdio>

namespace dfi {
namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  if (sink_) sink_(level, message);
}

}  // namespace dfi
