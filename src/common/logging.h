// Minimal leveled logger.
//
// Experiments run millions of simulated events, so logging is off by default
// and filtered by level; sinks are swappable for tests. Not thread-safe by
// design: the simulator is single-threaded and deterministic.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dfi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void log(LogLevel level, const std::string& message);

 private:
  Logger();

  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace log_detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { Logger::instance().log(level_, stream_.str()); }

  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace log_detail

}  // namespace dfi

#define DFI_LOG(lvl)                                          \
  if (static_cast<int>(lvl) <                                 \
      static_cast<int>(::dfi::Logger::instance().level())) {} \
  else ::dfi::log_detail::LineBuilder(lvl)

#define DFI_DEBUG DFI_LOG(::dfi::LogLevel::kDebug)
#define DFI_INFO DFI_LOG(::dfi::LogLevel::kInfo)
#define DFI_WARN DFI_LOG(::dfi::LogLevel::kWarn)
#define DFI_ERROR DFI_LOG(::dfi::LogLevel::kError)
