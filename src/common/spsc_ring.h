// Bounded lock-free single-producer/single-consumer ring (DESIGN.md §5).
//
// The shard pool's hot path moves one small struct per Packet-in in each
// direction: control thread -> worker (ingress jobs) and worker -> control
// thread (completions). A mutex per transfer is the dominant cost at
// 100k+ decisions/s, so each direction gets one of these rings: exactly one
// producer thread calls try_push and exactly one consumer thread calls
// try_pop, and the only synchronization is two atomic cursors.
//
// Capacity semantics: the *logical* capacity is exactly what the caller
// asked for — try_push fails once `capacity()` items are in flight — while
// the slot array is rounded up to a power of two so wrap-around is a mask,
// not a modulo. This keeps the shard pool's "queue full -> drop" behavior
// bit-compatible with the mutex-guarded deque it replaces.
//
// Memory ordering: cursor *publish* stores (tail after a push, head after a
// pop) are seq_cst, as are the empty()/full() cursor loads. That is
// slightly stronger than the usual release/acquire pairing on purpose: the
// shard pool's sleep/wake protocol is a Dekker-style handshake —
//   sleeper:  store sleeping-flag; re-check ring state; wait
//   waker:    publish to ring;     load sleeping-flag;   notify if set
// which is only lost-wakeup-free when the flag and cursor accesses are all
// in the single seq_cst total order (one side must see the other's store).
// The cost is nanoseconds per transfer; a missed wakeup is a hang.
//
// T must be default-constructible and move-assignable. Failed try_push
// leaves the value untouched so the caller can retry or drop it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dfi {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        mask_(round_up_pow2(capacity_) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Producer side. Returns false (value untouched) when the ring holds
  // capacity() items.
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= capacity_) {
      return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_seq_cst);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_seq_cst);
    return true;
  }

  // Cursor views, callable from either thread. From the "wrong" side the
  // answer is conservative-stale (a sleeping consumer may see empty just
  // before a push lands), which the seq_cst sleep/wake handshake above is
  // designed around.
  bool empty() const {
    return head_.load(std::memory_order_seq_cst) ==
           tail_.load(std::memory_order_seq_cst);
  }
  bool full() const { return size() >= capacity_; }
  std::size_t size() const {
    const std::uint64_t head = head_.load(std::memory_order_seq_cst);
    const std::uint64_t tail = tail_.load(std::memory_order_seq_cst);
    return static_cast<std::size_t>(tail - head);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;  // logical bound enforced by try_push
  const std::size_t mask_;      // slots_.size() - 1 (power of two)
  std::vector<T> slots_;
  // Consumer cursor and producer cursor; monotonically increasing, masked
  // on use. 64-bit so wrap-around of the counter itself is a non-issue.
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
};

}  // namespace dfi
