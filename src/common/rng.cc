#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace dfi {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  return next_double() < p;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

LogNormalParams LogNormalParams::from_moments(double mean, double stddev) {
  assert(mean > 0.0);
  const double variance = stddev * stddev;
  const double sigma2 = std::log(1.0 + variance / (mean * mean));
  return {std::log(mean) - sigma2 / 2.0, std::sqrt(sigma2)};
}

double Rng::lognormal_from_moments(double mean, double stddev) {
  return lognormal(LogNormalParams::from_moments(mean, stddev));
}

double Rng::lognormal(const LogNormalParams& params) {
  return std::exp(params.mu + params.sigma * normal());
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::fork() {
  return Rng(next_u64());
}

}  // namespace dfi
