// Paged copy-on-write tables keyed by dense entity ids.
//
// PR 2's snapshot isolation rebuilt the whole ErmIdentityTables on every
// dirty epoch — O(total bindings) per publication, which is exactly what a
// million-entity ERM cannot afford when one log-on event lands between two
// Packet-in bursts. A CowTable instead stores its values in fixed-size
// pages behind a shared root: taking a snapshot is a root-pointer copy, and
// the *next* mutation path-copies only the root page vector and the one
// dirty page — O(changed), independent of table size.
//
// Race-freedom without use_count() probes (see the caveat in
// common/snapshot.h): sharing is tracked by generation tags, not refcounts.
// `freeze()` — called by the owner every time it publishes a snapshot —
// bumps the table's generation; a page (or the root) whose tag lags the
// current generation may be referenced by some snapshot and is cloned
// before the first write, while structures created after the latest freeze
// carry the current tag and are mutated in place. The control thread never
// writes memory a snapshot can reach, so readers need no synchronization
// beyond the snapshot handoff itself.
//
// Single-writer contract (same as common/snapshot.h): all mutation and
// freezing happen on the control thread; reader threads only ever touch
// frozen copies obtained through a published snapshot.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace dfi {

struct CowTableStats {
  std::uint64_t page_copies = 0;   // pages cloned because a snapshot shares them
  std::uint64_t root_copies = 0;   // root vectors cloned after a freeze
};

template <typename V, std::uint32_t kPageShift = 9>
class CowTable {
 public:
  static constexpr std::uint32_t kPageSize = 1u << kPageShift;
  static constexpr std::uint32_t kPageMask = kPageSize - 1;

  CowTable() : root_(std::make_shared<Root>()) {}

  // Readable slot for `id`, or nullptr when the id was never written in
  // this version. Safe on any thread holding a frozen copy.
  const V* find(std::uint32_t id) const {
    const Root& root = *root_;
    const std::uint32_t page_index = id >> kPageShift;
    if (page_index >= root.pages.size()) return nullptr;
    const Page* page = root.pages[page_index].get();
    if (page == nullptr) return nullptr;
    return &page->slots[id & kPageMask];
  }

  // Writer only: mark every currently reachable page as potentially shared.
  // Call once per published snapshot; the next mutation of each shared
  // page clones it first.
  void freeze() { ++generation_; }

  // Writer only: writable slot for `id`, path-copying shared structure.
  V& mutate(std::uint32_t id) {
    if (root_->tag != generation_) {
      root_ = std::make_shared<Root>(Root{generation_, root_->pages});
      ++stats_.root_copies;
    }
    const std::uint32_t page_index = id >> kPageShift;
    if (page_index >= root_->pages.size()) root_->pages.resize(page_index + 1);
    std::shared_ptr<Page>& page = root_->pages[page_index];
    if (page == nullptr) {
      page = std::make_shared<Page>();
      page->tag = generation_;
    } else if (page->tag != generation_) {
      page = std::make_shared<Page>(*page);
      page->tag = generation_;
      ++stats_.page_copies;
    }
    return page->slots[id & kPageMask];
  }

  std::size_t page_count() const { return root_->pages.size(); }
  const CowTableStats& stats() const { return stats_; }

 private:
  struct Page {
    std::uint64_t tag = 0;
    std::array<V, kPageSize> slots{};
  };
  struct Root {
    std::uint64_t tag = 0;
    std::vector<std::shared_ptr<Page>> pages;
  };

  std::shared_ptr<Root> root_;
  std::uint64_t generation_ = 0;
  CowTableStats stats_;
};

}  // namespace dfi
