// Arena string/value interner with small dense entity ids.
//
// The million-entity ERM (DESIGN.md §8) cannot key its binding tables on
// heap strings: every map node then carries a 32+-byte key, every probe
// hashes the full string, and enrichment output ordering needs ordered sets
// of strings. Instead, every entity named anywhere in the identity plane is
// interned once into a per-kind namespace (user / host / IP / MAC) and from
// then on travels as a dense 32-bit `EntityId` — small enough to pack into
// posting lists, to index paged copy-on-write tables (common/cow_table.h)
// directly, and to mark in a scratch bitmap during enrichment dedup.
//
// Id contract:
//   * ids are dense: the k-th distinct entity interned into a namespace
//     gets id k, forever — ids are never reused or re-assigned, so an id
//     captured inside a published ErmSnapshot stays valid (and means the
//     same string) across every later epoch.
//   * namespaces are independent: interning "alice" as a user and "alice"
//     as a host yields two unrelated ids.
//
// Concurrency contract (mirrors common/snapshot.h): exactly one writer —
// the control thread — ever calls intern(). Concurrent readers (PCP shard
// workers enriching against a published ErmSnapshot) may call
//   * view()/key() for any id they obtained from a published snapshot or
//     from a lookup table capture, and
//   * find() through a `Reader` captured on the control thread at snapshot
//     time.
// Entry storage is chunked with atomically published chunk pointers and
// the lookup table uses open-addressing slots published with release
// stores, so readers never observe a partially initialized entry. Growth
// rehashes into a fresh table; readers holding the previous capture simply
// miss entries interned after their snapshot, which is exactly what their
// snapshot's binding tables answer anyway.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dfi {

// Dense identifier of one interned entity within one namespace.
struct EntityId {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t value = kInvalid;

  bool valid() const { return value != kInvalid; }
  friend auto operator<=>(const EntityId&, const EntityId&) = default;
};

// The four identity-plane namespaces (paper Figure 3's identifier kinds).
enum class EntityKind : std::uint8_t { kUser = 0, kHost = 1, kIp = 2, kMac = 3 };

namespace intern_detail {

inline constexpr std::uint32_t kChunkShift = 12;  // 4096 entries per chunk
inline constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
inline constexpr std::uint32_t kChunkMask = kChunkSize - 1;
inline constexpr std::uint32_t kMaxChunks = 1u << 12;  // 16M ids per namespace

inline std::uint64_t hash_bytes(const char* data, std::size_t len) {
  // FNV-1a 64, finalized with a xor-shift so low bits carry entropy for
  // power-of-two table masks.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  return h ^ (h >> 32);
}

inline std::uint64_t hash_u64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Open-addressing lookup table: slots hold id+1 (0 = empty), published with
// release stores so a reader that observes a slot also observes the entry
// it refers to. Append-only, no tombstones.
struct LookupTable {
  explicit LookupTable(std::uint32_t capacity_log2)
      : mask((1u << capacity_log2) - 1),
        slots(new std::atomic<std::uint32_t>[std::size_t{1} << capacity_log2]) {
    for (std::uint32_t i = 0; i <= mask; ++i) {
      slots[i].store(0, std::memory_order_relaxed);
    }
  }
  std::uint32_t mask;
  std::unique_ptr<std::atomic<std::uint32_t>[]> slots;
};

// Grow-only chunked entry store: entry k lives at chunks[k >> shift][k &
// mask]. Chunk pointers are published atomically once and never change, so
// readers index without touching any growable container.
template <typename Entry>
class ChunkedStore {
 public:
  ChunkedStore() {
    for (auto& chunk : chunks_) chunk.store(nullptr, std::memory_order_relaxed);
  }
  ~ChunkedStore() {
    for (auto& chunk : chunks_) delete[] chunk.load(std::memory_order_relaxed);
  }
  ChunkedStore(const ChunkedStore&) = delete;
  ChunkedStore& operator=(const ChunkedStore&) = delete;

  // Writer only: slot for the next entry at index `id`.
  Entry& writable(std::uint32_t id) {
    const std::uint32_t chunk_index = id >> kChunkShift;
    Entry* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Entry[kChunkSize]();
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    return chunk[id & kChunkMask];
  }

  // Any thread, for ids published to it (snapshot handoff or table slot).
  const Entry& at(std::uint32_t id) const {
    const Entry* chunk = chunks_[id >> kChunkShift].load(std::memory_order_acquire);
    return chunk[id & kChunkMask];
  }

 private:
  std::array<std::atomic<Entry*>, kMaxChunks> chunks_;
};

}  // namespace intern_detail

// Interns strings into dense ids. The character data lives in append-only
// arena blocks owned by the interner, so `view()` results stay valid for
// the interner's lifetime.
class StringInterner {
 public:
  StringInterner() : table_(std::make_shared<intern_detail::LookupTable>(10)) {}
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  // Writer only: id of `s`, interning it on first sight.
  EntityId intern(std::string_view s) {
    const std::uint64_t hash = intern_detail::hash_bytes(s.data(), s.size());
    if (const EntityId found = find_in(*table_, s, hash); found.valid()) return found;
    if ((size_ + 1) * 10 > (std::uint64_t{table_->mask} + 1) * 7) grow();
    const EntityId id{size_};
    Entry& entry = entries_.writable(id.value);
    entry.data = arena_append(s);
    entry.length = static_cast<std::uint32_t>(s.size());
    publish(*table_, id, hash);
    ++size_;
    return id;
  }

  // Writer thread (probes the current table).
  EntityId find(std::string_view s) const {
    return find_in(*table_, s, intern_detail::hash_bytes(s.data(), s.size()));
  }

  // Any thread, for any id obtained from a published structure.
  std::string_view view(EntityId id) const {
    const Entry& entry = entries_.at(id.value);
    return {entry.data, entry.length};
  }

  std::uint32_t size() const { return size_; }

  // Capture of the lookup table for concurrent readers. Take it on the
  // writer thread; find() through it from anywhere. Entries interned after
  // the capture may or may not be visible — both answers are consistent
  // with any snapshot taken at or before the capture.
  class Reader {
   public:
    Reader() = default;
    EntityId find(std::string_view s) const {
      if (owner_ == nullptr) return EntityId{};
      return owner_->find_in(*table_, s,
                             intern_detail::hash_bytes(s.data(), s.size()));
    }

   private:
    friend class StringInterner;
    Reader(const StringInterner* owner,
           std::shared_ptr<const intern_detail::LookupTable> table)
        : owner_(owner), table_(std::move(table)) {}
    const StringInterner* owner_ = nullptr;
    std::shared_ptr<const intern_detail::LookupTable> table_;
  };

  // Writer only (hands out the current table).
  Reader reader() const { return Reader(this, table_); }

 private:
  struct Entry {
    const char* data = nullptr;
    std::uint32_t length = 0;
  };

  EntityId find_in(const intern_detail::LookupTable& table, std::string_view s,
                   std::uint64_t hash) const {
    for (std::uint32_t probe = static_cast<std::uint32_t>(hash);;) {
      probe &= table.mask;
      const std::uint32_t slot = table.slots[probe].load(std::memory_order_acquire);
      if (slot == 0) return EntityId{};
      const EntityId id{slot - 1};
      if (view(id) == s) return id;
      ++probe;
    }
  }

  void publish(intern_detail::LookupTable& table, EntityId id, std::uint64_t hash) {
    for (std::uint32_t probe = static_cast<std::uint32_t>(hash);;) {
      probe &= table.mask;
      if (table.slots[probe].load(std::memory_order_relaxed) == 0) {
        table.slots[probe].store(id.value + 1, std::memory_order_release);
        return;
      }
      ++probe;
    }
  }

  void grow() {
    std::uint32_t log2 = 1;
    while ((1u << log2) <= table_->mask) ++log2;
    auto grown = std::make_shared<intern_detail::LookupTable>(log2 + 1);
    for (std::uint32_t id = 0; id < size_; ++id) {
      const std::string_view s = view(EntityId{id});
      publish(*grown, EntityId{id},
              intern_detail::hash_bytes(s.data(), s.size()));
    }
    // Readers holding the old table keep using it unharmed; new entries
    // from here on land only in the grown table.
    table_ = std::move(grown);
  }

  const char* arena_append(std::string_view s) {
    static constexpr std::size_t kBlockSize = 1u << 16;
    if (blocks_.empty() || block_used_ + s.size() > blocks_.back().second) {
      const std::size_t block = std::max(kBlockSize, s.size());
      blocks_.emplace_back(std::make_unique<char[]>(block), block);
      block_used_ = 0;
    }
    char* dest = blocks_.back().first.get() + block_used_;
    std::memcpy(dest, s.data(), s.size());
    block_used_ += s.size();
    return dest;
  }

  intern_detail::ChunkedStore<Entry> entries_;
  std::shared_ptr<intern_detail::LookupTable> table_;
  std::vector<std::pair<std::unique_ptr<char[]>, std::size_t>> blocks_;
  std::size_t block_used_ = 0;
  std::uint32_t size_ = 0;
};

// Interns fixed-width values (IPv4 addresses as u32, MACs as u48-in-u64)
// into dense ids, so the numeric namespaces get the same paged-table and
// bitmap treatment as the string ones.
class ValueInterner {
 public:
  ValueInterner() : table_(std::make_shared<intern_detail::LookupTable>(10)) {}
  ValueInterner(const ValueInterner&) = delete;
  ValueInterner& operator=(const ValueInterner&) = delete;

  // Writer only.
  EntityId intern(std::uint64_t key) {
    if (const EntityId found = find_in(*table_, key); found.valid()) return found;
    if ((size_ + 1) * 10 > (std::uint64_t{table_->mask} + 1) * 7) grow();
    const EntityId id{size_};
    entries_.writable(id.value) = key;
    publish(*table_, id, key);
    ++size_;
    return id;
  }

  EntityId find(std::uint64_t key) const { return find_in(*table_, key); }

  std::uint64_t key(EntityId id) const { return entries_.at(id.value); }
  std::uint32_t size() const { return size_; }

  class Reader {
   public:
    Reader() = default;
    EntityId find(std::uint64_t key) const {
      if (owner_ == nullptr) return EntityId{};
      return owner_->find_in(*table_, key);
    }

   private:
    friend class ValueInterner;
    Reader(const ValueInterner* owner,
           std::shared_ptr<const intern_detail::LookupTable> table)
        : owner_(owner), table_(std::move(table)) {}
    const ValueInterner* owner_ = nullptr;
    std::shared_ptr<const intern_detail::LookupTable> table_;
  };

  // Writer only.
  Reader reader() const { return Reader(this, table_); }

 private:
  EntityId find_in(const intern_detail::LookupTable& table, std::uint64_t key) const {
    for (std::uint32_t probe = static_cast<std::uint32_t>(intern_detail::hash_u64(key));;) {
      probe &= table.mask;
      const std::uint32_t slot = table.slots[probe].load(std::memory_order_acquire);
      if (slot == 0) return EntityId{};
      const EntityId id{slot - 1};
      if (entries_.at(id.value) == key) return id;
      ++probe;
    }
  }

  void publish(intern_detail::LookupTable& table, EntityId id, std::uint64_t key) {
    for (std::uint32_t probe = static_cast<std::uint32_t>(intern_detail::hash_u64(key));;) {
      probe &= table.mask;
      if (table.slots[probe].load(std::memory_order_relaxed) == 0) {
        table.slots[probe].store(id.value + 1, std::memory_order_release);
        return;
      }
      ++probe;
    }
  }

  void grow() {
    std::uint32_t log2 = 1;
    while ((1u << log2) <= table_->mask) ++log2;
    auto grown = std::make_shared<intern_detail::LookupTable>(log2 + 1);
    for (std::uint32_t id = 0; id < size_; ++id) {
      publish(*grown, EntityId{id}, entries_.at(id));
    }
    table_ = std::move(grown);
  }

  intern_detail::ChunkedStore<std::uint64_t> entries_;
  std::shared_ptr<intern_detail::LookupTable> table_;
  std::uint32_t size_ = 0;
};

// The identity plane's four namespaces under one roof. Shared (via
// shared_ptr) between the live ERM and every published snapshot — interning
// is append-only, so a snapshot's ids stay meaningful forever.
class EntityInterner {
 public:
  StringInterner& users() { return users_; }
  const StringInterner& users() const { return users_; }
  StringInterner& hosts() { return hosts_; }
  const StringInterner& hosts() const { return hosts_; }
  ValueInterner& ips() { return ips_; }
  const ValueInterner& ips() const { return ips_; }
  ValueInterner& macs() { return macs_; }
  const ValueInterner& macs() const { return macs_; }

 private:
  StringInterner users_;
  StringInterner hosts_;
  ValueInterner ips_;
  ValueInterner macs_;
};

}  // namespace dfi

namespace std {
template <>
struct hash<dfi::EntityId> {
  size_t operator()(const dfi::EntityId& id) const noexcept {
    return hash<uint32_t>{}(id.value);
  }
};
}  // namespace std
