// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the reproduction (service-time jitter, worm
// target shuffling, user log-on scripts, randomized packet headers) draws
// from explicitly seeded Rng instances so every experiment is replayable.
// The core generator is xoshiro256** seeded via splitmix64.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dfi {

// Precomputed parameters of the normal underlying a log-normal
// distribution. Deriving (mu, sigma) from a target mean/sd costs two logs
// and a sqrt; callers on a hot path (the PCP samples three service times
// per Packet-in) derive them once at configuration time and sample with
// Rng::lognormal.
struct LogNormalParams {
  double mu = 0.0;
  double sigma = 0.0;

  // Parameters such that exp(N(mu, sigma^2)) has the given mean and
  // standard deviation. Requires mean > 0.
  static LogNormalParams from_moments(double mean, double stddev);
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  // Bernoulli trial with success probability p.
  bool chance(double p);

  // Standard normal via Box-Muller (cached spare value).
  double normal();

  // Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  // Log-normal parameterized by the *target* mean and standard deviation of
  // the resulting distribution (not the underlying normal). Used for
  // component service times calibrated to the paper's Table II.
  double lognormal_from_moments(double mean, double stddev);

  // Log-normal sample from precomputed parameters (hot-path form of
  // lognormal_from_moments).
  double lognormal(const LogNormalParams& params);

  // Exponential with the given mean (inter-arrival times for open-loop
  // traffic generation in the Fig. 4 reproduction).
  double exponential(double mean);

  // Fisher-Yates shuffle. The NotPetya surrogate shuffles its target list on
  // each infected host (paper Section V-B).
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Derive an independent generator (for per-entity streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace dfi
