// Minimal expected-style result types.
//
// The toolchain targets C++20, which predates std::expected, so we provide a
// small equivalent. Errors carry a code plus a human-readable message; the
// codes cover the failure classes that appear on DFI's hot paths (malformed
// wire data, unknown entities, queue overload).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace dfi {

enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kMalformed,      // wire data failed to decode
  kUnsupported,    // valid but outside the implemented OpenFlow subset
  kOverloaded,     // bounded queue rejected work (paper Fig. 4 saturation)
  kPermissionDenied,
  kInternal,
};

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

// Result of an operation that produces no value.
class Status {
 public:
  Status() = default;  // OK
  explicit Status(Error error) : error_(std::move(error)) {}

  static Status Ok() { return Status{}; }
  static Status Fail(ErrorCode code, std::string message) {
    return Status{Error{code, std::move(message)}};
  }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(error_.has_value());
    return *error_;
  }

  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(dfi::to_string(error_->code)) + ": " + error_->message;
  }

 private:
  std::optional<Error> error_;
};

// Result of an operation that produces a T on success.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT

  static Result Fail(ErrorCode code, std::string message) {
    return Result(Error{code, std::move(message)});
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return Status(error());
  }

  T value_or(T fallback) const {
    if (ok()) return std::get<T>(storage_);
    return fallback;
  }

 private:
  std::variant<T, Error> storage_;
};

}  // namespace dfi
