// Shared hash-mixing primitives.
//
// The Packet-in hot path hashes the canonical flow tuple twice: once for
// the per-shard decision cache (core/decision_cache.h) and once to pick the
// PCP shard a flow is routed to (core/pcp_shard_pool.h). Both uses need the
// same property — cheap, well-distributed 64-bit mixing — so the finalizer
// lives here rather than being re-derived per call site. Shard routing in
// particular depends on high-entropy low bits (the shard id is `hash %
// shards`), which the raw tuple fields do not provide.
#pragma once

#include <cstdint>

namespace dfi {

// splitmix64 finalizer: cheap, well-distributed mixing for hash combining.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Fold `value` into an accumulated hash.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (mix64(value) + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

}  // namespace dfi
