// CRC-32 (IEEE 802.3 polynomial, reflected), for journal record framing.
//
// The write-ahead log (core/journal.h) stores a checksum with every record
// so startup can distinguish a torn tail — a record cut short by a crash
// mid-write — from a complete one. The classic byte-wise table algorithm is
// plenty: journal records are short and appended on the control plane, not
// the packet hot path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace dfi {

namespace crc32_detail {

inline const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = [] {
    std::array<std::uint32_t, 256> out{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      out[i] = c;
    }
    return out;
  }();
  return t;
}

}  // namespace crc32_detail

// CRC-32 of `size` bytes at `data`; `seed` chains incremental computations
// (pass the previous call's return value).
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                           std::uint32_t seed = 0) {
  const auto& t = crc32_detail::table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = t[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace dfi
