#include "common/sim_time.h"

#include <cstdio>

namespace dfi {

std::string format_clock(SimTime t) {
  std::int64_t total_seconds = t.us / 1000000;
  if (total_seconds < 0) total_seconds = 0;
  const int hh = static_cast<int>((total_seconds / 3600) % 24);
  const int mm = static_cast<int>((total_seconds / 60) % 60);
  const int ss = static_cast<int>(total_seconds % 60);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", hh, mm, ss);
  return buf;
}

std::string format_duration(SimDuration d) {
  char buf[32];
  if (d.us < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(d.us));
  } else if (d.us < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", d.to_ms());
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", d.to_seconds());
  }
  return buf;
}

}  // namespace dfi
