// Simulated time.
//
// The discrete-event simulator measures time in integer microseconds from
// the start of the scenario. SimTime is an absolute instant; SimDuration a
// signed difference. Helpers convert to/from the wall-clock units the paper
// reports (milliseconds, seconds, hours of the business day).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace dfi {

struct SimDuration {
  std::int64_t us = 0;

  constexpr double to_ms() const { return static_cast<double>(us) / 1e3; }
  constexpr double to_seconds() const { return static_cast<double>(us) / 1e6; }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration{a.us + b.us};
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration{a.us - b.us};
  }
  friend constexpr SimDuration operator*(SimDuration a, std::int64_t k) {
    return SimDuration{a.us * k};
  }
  friend constexpr auto operator<=>(const SimDuration&, const SimDuration&) = default;
};

struct SimTime {
  std::int64_t us = 0;

  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime{t.us + d.us};
  }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) {
    return SimTime{t.us - d.us};
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration{a.us - b.us};
  }
  friend constexpr auto operator<=>(const SimTime&, const SimTime&) = default;
};

constexpr SimDuration microseconds(std::int64_t n) { return SimDuration{n}; }
constexpr SimDuration milliseconds(double n) {
  return SimDuration{static_cast<std::int64_t>(n * 1e3)};
}
constexpr SimDuration seconds(double n) {
  return SimDuration{static_cast<std::int64_t>(n * 1e6)};
}
constexpr SimDuration minutes(double n) { return seconds(n * 60.0); }
constexpr SimDuration hours(double n) { return seconds(n * 3600.0); }

// Instant at HH:MM of the simulated business day (day starts at t = 0 =
// midnight). The worm experiments condition on foothold hour (Fig. 5b).
constexpr SimTime clock_time(int hour, int minute = 0) {
  return SimTime{} + hours(hour) + minutes(minute);
}

// "HH:MM:SS" rendering of an instant within the simulated day.
std::string format_clock(SimTime t);

// "12.34ms" style rendering of a duration.
std::string format_duration(SimDuration d);

}  // namespace dfi
