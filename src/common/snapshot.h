// Lazily rebuilt, immutable state snapshots.
//
// The snapshot-isolated control plane (DESIGN.md §5) has every mutable
// component — the Entity Resolution Manager and the Policy Manager —
// publish an immutable, epoch-versioned copy of its decision-relevant
// state. The Packet-in decision path is a pure function of such a snapshot
// pair, so any number of PCP shards (including real threads) can decide
// concurrently without reading live component state.
//
// Concurrency contract: all mutation, invalidation, and rebuilding happen
// on the single control thread that owns the component. Worker threads only
// ever hold `shared_ptr<const T>` copies handed out at submit time, so the
// only cross-thread traffic is the shared_ptr refcount. Rebuilds create a
// fresh object rather than mutating one a worker might still read; stale
// snapshots simply deallocate when their last holder drops them. This is
// deliberately NOT copy-on-write through a use_count() probe — observing a
// refcount of 1 from a relaxed load does not order the former holder's
// reads before our writes, and that boundary is exactly where COW schemes
// go racy.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

namespace dfi {

// Caches one immutable snapshot of type T, rebuilt on demand after the
// owner invalidates it. T is built at most once per invalidation no matter
// how many decisions read it in between.
template <typename T>
class SnapshotCache {
 public:
  // Mark the cached snapshot stale (call on every mutation that could
  // change what `build` would produce).
  void invalidate() { dirty_ = true; }

  bool dirty() const { return dirty_; }
  std::uint64_t rebuilds() const { return rebuilds_; }

  // Current snapshot, rebuilding via `build() -> std::shared_ptr<const T>`
  // (or anything convertible) if a mutation invalidated the cached one.
  template <typename BuildFn>
  std::shared_ptr<const T> get(BuildFn&& build) {
    if (dirty_ || cached_ == nullptr) {
      cached_ = std::forward<BuildFn>(build)();
      dirty_ = false;
      ++rebuilds_;
    }
    return cached_;
  }

 private:
  std::shared_ptr<const T> cached_;
  bool dirty_ = true;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace dfi
