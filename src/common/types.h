// Strong identifier types shared across the DFI reproduction.
//
// Network-element and policy identifiers are wrapped in distinct types so
// that a switch datapath id cannot silently be passed where a policy-rule id
// is expected. All wrappers are trivially copyable value types.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace dfi {

// OpenFlow datapath identifier of a switch (64-bit per the OF spec).
struct Dpid {
  std::uint64_t value = 0;

  friend auto operator<=>(const Dpid&, const Dpid&) = default;
};

// Physical or logical port number on a switch. OpenFlow 1.3 reserves the
// high range (>= 0xffffff00) for special ports; we model the ones we need.
struct PortNo {
  std::uint32_t value = 0;

  friend auto operator<=>(const PortNo&, const PortNo&) = default;
};

// Reserved OpenFlow port numbers (subset used by this implementation).
inline constexpr PortNo kPortFlood{0xfffffffb};
inline constexpr PortNo kPortController{0xfffffffd};
inline constexpr PortNo kPortAny{0xffffffff};

// 64-bit opaque metadata attached to flow rules. DFI tags each installed
// rule with the policy-rule id it derives from so stale rules can be
// flushed by cookie when policy changes (paper Section III-B, PCP).
struct Cookie {
  std::uint64_t value = 0;

  friend auto operator<=>(const Cookie&, const Cookie&) = default;
};

// Unique identifier the Policy Manager assigns to every inserted policy
// rule; PDPs use it to revoke rules they emitted.
struct PolicyRuleId {
  std::uint64_t value = 0;

  friend auto operator<=>(const PolicyRuleId&, const PolicyRuleId&) = default;
};

// Administrator-assigned priority of a Policy Decision Point. Rules inherit
// the priority of the PDP that emitted them; higher wins.
struct PdpPriority {
  std::uint32_t value = 0;

  friend auto operator<=>(const PdpPriority&, const PdpPriority&) = default;
};

// High-level entity identifiers used in policy (paper Section III-A).
struct Username {
  std::string value;

  friend auto operator<=>(const Username&, const Username&) = default;
};

struct Hostname {
  std::string value;

  friend auto operator<=>(const Hostname&, const Hostname&) = default;
};

inline std::string to_string(Dpid d) { return "dpid:" + std::to_string(d.value); }
inline std::string to_string(PortNo p) {
  if (p == kPortFlood) return "port:FLOOD";
  if (p == kPortController) return "port:CONTROLLER";
  if (p == kPortAny) return "port:ANY";
  return "port:" + std::to_string(p.value);
}
inline std::string to_string(Cookie c) { return "cookie:" + std::to_string(c.value); }
inline std::string to_string(PolicyRuleId id) { return "policy:" + std::to_string(id.value); }
inline std::string to_string(const Username& u) { return u.value; }
inline std::string to_string(const Hostname& h) { return h.value; }

}  // namespace dfi

namespace std {
template <>
struct hash<dfi::Dpid> {
  size_t operator()(const dfi::Dpid& d) const noexcept {
    return hash<uint64_t>{}(d.value);
  }
};
template <>
struct hash<dfi::PortNo> {
  size_t operator()(const dfi::PortNo& p) const noexcept {
    return hash<uint32_t>{}(p.value);
  }
};
template <>
struct hash<dfi::Cookie> {
  size_t operator()(const dfi::Cookie& c) const noexcept {
    return hash<uint64_t>{}(c.value);
  }
};
template <>
struct hash<dfi::PolicyRuleId> {
  size_t operator()(const dfi::PolicyRuleId& id) const noexcept {
    return hash<uint64_t>{}(id.value);
  }
};
template <>
struct hash<dfi::Username> {
  size_t operator()(const dfi::Username& u) const noexcept {
    return hash<string>{}(u.value);
  }
};
template <>
struct hash<dfi::Hostname> {
  size_t operator()(const dfi::Hostname& h) const noexcept {
    return hash<string>{}(h.value);
  }
};
}  // namespace std
