// Strong identifier types shared across the DFI reproduction.
//
// Network-element and policy identifiers are wrapped in distinct types so
// that a switch datapath id cannot silently be passed where a policy-rule id
// is expected. All wrappers are trivially copyable value types.
#pragma once

#include <charconv>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace dfi {

// OpenFlow datapath identifier of a switch (64-bit per the OF spec).
struct Dpid {
  std::uint64_t value = 0;

  friend auto operator<=>(const Dpid&, const Dpid&) = default;
};

// Physical or logical port number on a switch. OpenFlow 1.3 reserves the
// high range (>= 0xffffff00) for special ports; we model the ones we need.
struct PortNo {
  std::uint32_t value = 0;

  friend auto operator<=>(const PortNo&, const PortNo&) = default;
};

// Reserved OpenFlow port numbers (subset used by this implementation).
inline constexpr PortNo kPortFlood{0xfffffffb};
inline constexpr PortNo kPortController{0xfffffffd};
inline constexpr PortNo kPortAny{0xffffffff};

// 64-bit opaque metadata attached to flow rules. DFI tags each installed
// rule with the policy-rule id it derives from so stale rules can be
// flushed by cookie when policy changes (paper Section III-B, PCP).
struct Cookie {
  std::uint64_t value = 0;

  friend auto operator<=>(const Cookie&, const Cookie&) = default;
};

// Unique identifier the Policy Manager assigns to every inserted policy
// rule; PDPs use it to revoke rules they emitted.
struct PolicyRuleId {
  std::uint64_t value = 0;

  friend auto operator<=>(const PolicyRuleId&, const PolicyRuleId&) = default;
};

// Administrator-assigned priority of a Policy Decision Point. Rules inherit
// the priority of the PDP that emitted them; higher wins.
struct PdpPriority {
  std::uint32_t value = 0;

  friend auto operator<=>(const PdpPriority&, const PdpPriority&) = default;
};

// High-level entity identifiers used in policy (paper Section III-A).
struct Username {
  std::string value;

  friend auto operator<=>(const Username&, const Username&) = default;
};

struct Hostname {
  std::string value;

  friend auto operator<=>(const Hostname&, const Hostname&) = default;
};

namespace types_detail {

// "prefix:1234" in one allocation. The old `prefix + std::to_string(v)`
// shape allocated a temporary for the digits and usually a second buffer
// for the concatenation — these run on hot paths (flow-table cookie dumps,
// spoof reasons, log lines), so format digits on the stack and reserve the
// exact length once.
inline std::string tagged_number(std::string_view prefix, std::uint64_t value) {
  char digits[20];  // max u64 is 20 digits
  const auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), value);
  std::string out;
  out.reserve(prefix.size() + static_cast<std::size_t>(end - digits));
  out.append(prefix);
  out.append(digits, end);
  return out;
}

}  // namespace types_detail

inline std::string to_string(Dpid d) { return types_detail::tagged_number("dpid:", d.value); }
inline std::string to_string(PortNo p) {
  if (p == kPortFlood) return "port:FLOOD";
  if (p == kPortController) return "port:CONTROLLER";
  if (p == kPortAny) return "port:ANY";
  return types_detail::tagged_number("port:", p.value);
}
inline std::string to_string(Cookie c) { return types_detail::tagged_number("cookie:", c.value); }
inline std::string to_string(PolicyRuleId id) { return types_detail::tagged_number("policy:", id.value); }
inline std::string to_string(const Username& u) { return u.value; }
inline std::string to_string(const Hostname& h) { return h.value; }

}  // namespace dfi

namespace std {
template <>
struct hash<dfi::Dpid> {
  size_t operator()(const dfi::Dpid& d) const noexcept {
    return hash<uint64_t>{}(d.value);
  }
};
template <>
struct hash<dfi::PortNo> {
  size_t operator()(const dfi::PortNo& p) const noexcept {
    return hash<uint32_t>{}(p.value);
  }
};
template <>
struct hash<dfi::Cookie> {
  size_t operator()(const dfi::Cookie& c) const noexcept {
    return hash<uint64_t>{}(c.value);
  }
};
template <>
struct hash<dfi::PolicyRuleId> {
  size_t operator()(const dfi::PolicyRuleId& id) const noexcept {
    return hash<uint64_t>{}(id.value);
  }
};
// No hash specializations for Username/Hostname: the compact entity plane
// (common/intern.h) keys every identity container on interned EntityIds, so
// string-keyed hash maps of these types no longer exist. Keeping the
// specializations deleted stops them from quietly coming back.
}  // namespace std
