// Slab of reusable frame buffers for the wire fast path (DESIGN.md §5).
//
// The proxy, the secure channel and the switch device each move thousands
// of short-lived byte vectors per second; without pooling every forwarded
// frame costs at least one heap allocation. acquire() hands back a cleared
// vector whose *capacity* survives from earlier use, so steady-state
// forwarding touches the allocator only while buffers are still warming up
// to their working-set sizes. Buffers are plain std::vector values (not
// RAII handles) so deferred-delivery closures can capture them by move and
// release() them after delivery — std::function requires copyable callables,
// which rules out move-only handle types.
//
// Not thread-safe: all users live on the control thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dfi {

class FrameBufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;       // served from the free list
    std::uint64_t allocations = 0;  // free list empty: fresh vector
    std::uint64_t releases = 0;
    std::size_t free_buffers = 0;   // snapshot at stats() time
    std::size_t peak_in_use = 0;

    double hit_rate() const {
      return acquires == 0 ? 1.0
                           : static_cast<double>(reuses) /
                                 static_cast<double>(acquires);
    }
  };

  // `max_free` bounds the retained slab so a burst does not pin its peak
  // memory forever; releases beyond it simply free the buffer.
  explicit FrameBufferPool(std::size_t max_free = 64) : max_free_(max_free) {
    free_.reserve(max_free_);
  }

  // A cleared buffer, reusing capacity from the free list when possible.
  std::vector<std::uint8_t> acquire() {
    ++stats_.acquires;
    ++in_use_;
    if (in_use_ > stats_.peak_in_use) stats_.peak_in_use = in_use_;
    if (!free_.empty()) {
      ++stats_.reuses;
      std::vector<std::uint8_t> buffer = std::move(free_.back());
      free_.pop_back();
      buffer.clear();  // keeps capacity
      return buffer;
    }
    ++stats_.allocations;
    return {};
  }

  // Acquire pre-filled with a copy of [data, data + size).
  std::vector<std::uint8_t> acquire_copy(const std::uint8_t* data, std::size_t size) {
    std::vector<std::uint8_t> buffer = acquire();
    buffer.insert(buffer.end(), data, data + size);
    return buffer;
  }

  void release(std::vector<std::uint8_t>&& buffer) {
    ++stats_.releases;
    if (in_use_ > 0) --in_use_;
    if (free_.size() < max_free_) free_.push_back(std::move(buffer));
  }

  Stats stats() const {
    Stats out = stats_;
    out.free_buffers = free_.size();
    return out;
  }

  std::size_t in_use() const { return in_use_; }

 private:
  std::size_t max_free_;
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t in_use_ = 0;
  Stats stats_;
};

}  // namespace dfi
