#include "testbed/activity.h"

#include <algorithm>

namespace dfi {
namespace {

SimTime at_hours(double h) { return SimTime{} + hours(h); }

}  // namespace

ActivityScript generate_activity_script(Rng& rng) {
  ActivityScript script;

  // Early-morning stint (rare).
  if (rng.chance(0.08)) {
    const double start = rng.uniform_real(5.0, 7.5);
    const double duration = rng.uniform_real(0.25, 1.0);
    script.push_back({at_hours(start), at_hours(start + duration)});
  }

  // Guaranteed morning block, always yielding >= 2 h inside 09:00-13:00.
  // Starts are bimodal: most users are at their desks by 09:00, a minority
  // trickles in later (the paper's AT-RBAC run hinges on both populations:
  // early users make the 09:00 foothold spread; one enclave survived
  // because its vulnerable host was not logged into until 10:46).
  {
    double start, duration;
    if (rng.chance(0.6)) {
      // Early bird: at the desk before 09:00; must stay until >= 11:00 to
      // bank two hours inside the window.
      start = rng.uniform_real(7.5, 9.0);
      duration = rng.uniform_real(3.5, 5.5);
    } else {
      // Late starter: beginning at 09:00-10:45 (start + 3 h <= 13:45 keeps
      // at least 2.25 h inside the window).
      start = rng.uniform_real(9.0, 10.75);
      duration = rng.uniform_real(3.0, 4.5);
    }
    script.push_back({at_hours(start), at_hours(start + duration)});
  }

  // Afternoon block (common).
  if (rng.chance(0.75)) {
    const double start = rng.uniform_real(13.5, 15.5);
    const double duration = rng.uniform_real(1.0, 3.0);
    script.push_back({at_hours(start), at_hours(start + duration)});
  }

  // Evening stint (uncommon).
  if (rng.chance(0.15)) {
    const double start = rng.uniform_real(18.0, 21.0);
    const double duration = rng.uniform_real(0.5, 1.5);
    script.push_back({at_hours(start), at_hours(start + duration)});
  }

  std::sort(script.begin(), script.end(),
            [](const LogonInterval& a, const LogonInterval& b) { return a.on < b.on; });

  // Merge any overlaps so SIEM events nest cleanly.
  ActivityScript merged;
  for (const auto& interval : script) {
    if (!merged.empty() && interval.on <= merged.back().off) {
      merged.back().off = std::max(merged.back().off, interval.off);
    } else {
      merged.push_back(interval);
    }
  }
  return merged;
}

SimDuration logged_on_within(const ActivityScript& script, SimTime from, SimTime to) {
  SimDuration total{};
  for (const auto& interval : script) {
    const SimTime lo = std::max(interval.on, from);
    const SimTime hi = std::min(interval.off, to);
    if (lo < hi) total = total + (hi - lo);
  }
  return total;
}

bool logged_on_at(const ActivityScript& script, SimTime t) {
  for (const auto& interval : script) {
    if (interval.on <= t && t < interval.off) return true;
  }
  return false;
}

void schedule_script(Simulator& sim, SiemService& siem, DirectoryService& directory,
                     const Username& user, const Hostname& host,
                     const ActivityScript& script) {
  for (const auto& interval : script) {
    sim.schedule_at(interval.on, [&siem, &directory, user, host]() {
      directory.record_logon(user, host);
      siem.process_created(user, host);
    });
    sim.schedule_at(interval.off, [&siem, user, host]() {
      siem.process_terminated(user, host);
    });
  }
}

}  // namespace dfi
