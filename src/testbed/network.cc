#include "testbed/network.h"

#include <cassert>

namespace dfi {

Network::Network(Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config), arp_(std::make_shared<ArpTable>()) {}

SwitchDevice& Network::add_switch(Dpid dpid) {
  assert(switches_.count(dpid) == 0);
  SwitchConfig sw_config;
  sw_config.dpid = dpid;
  sw_config.num_tables = config_.switch_tables;
  sw_config.table_capacity = config_.switch_table_capacity;
  auto device = std::make_unique<SwitchDevice>(
      sw_config, [this]() { return sim_.now(); });
  SwitchDevice& ref = *device;
  switches_.emplace(dpid, std::move(device));
  return ref;
}

void Network::link_switches(Dpid a, PortNo port_a, Dpid b, PortNo port_b) {
  SwitchDevice* sw_a = find_switch(a);
  SwitchDevice* sw_b = find_switch(b);
  assert(sw_a != nullptr && sw_b != nullptr);
  const SimDuration latency = config_.link_latency;
  sw_a->add_port(port_a, [this, sw_b, port_b, latency](
                             PortNo, const std::vector<std::uint8_t>& bytes) {
    sim_.schedule_after(latency,
                        [sw_b, port_b, bytes]() { sw_b->receive_packet(port_b, bytes); });
  });
  sw_b->add_port(port_b, [this, sw_a, port_a, latency](
                             PortNo, const std::vector<std::uint8_t>& bytes) {
    sim_.schedule_after(latency,
                        [sw_a, port_a, bytes]() { sw_a->receive_packet(port_a, bytes); });
  });
}

Host& Network::add_host(const Hostname& name, MacAddress mac, Dpid dpid, PortNo port) {
  SwitchDevice* sw = find_switch(dpid);
  assert(sw != nullptr);
  auto host = std::make_unique<Host>(sim_, name, mac, arp_);
  Host* host_ptr = host.get();
  const SimDuration latency = config_.link_latency;

  // Host NIC -> switch port.
  host_ptr->set_transmit([this, sw, port, latency](const std::vector<std::uint8_t>& bytes) {
    sim_.schedule_after(latency,
                        [sw, port, bytes]() { sw->receive_packet(port, bytes); });
  });
  // Switch port -> host NIC.
  sw->add_port(port, [this, host_ptr, latency](PortNo,
                                               const std::vector<std::uint8_t>& bytes) {
    sim_.schedule_after(latency, [host_ptr, bytes]() { host_ptr->receive(bytes); });
  });

  hosts_by_name_[name] = host_ptr;
  hosts_.push_back(std::move(host));
  return *host_ptr;
}

SwitchDevice* Network::find_switch(Dpid dpid) {
  const auto it = switches_.find(dpid);
  return it == switches_.end() ? nullptr : it->second.get();
}

Host* Network::find_host(const Hostname& name) {
  const auto it = hosts_by_name_.find(name);
  return it == hosts_by_name_.end() ? nullptr : it->second;
}

Host* Network::find_host_by_ip(Ipv4Address ip) {
  for (const auto& host : hosts_) {
    if (host->ip() == ip) return host.get();
  }
  return nullptr;
}

std::vector<Host*> Network::hosts() {
  std::vector<Host*> out;
  out.reserve(hosts_.size());
  for (const auto& host : hosts_) out.push_back(host.get());
  return out;
}

std::vector<SwitchDevice*> Network::switches() {
  std::vector<SwitchDevice*> out;
  out.reserve(switches_.size());
  for (const auto& [dpid, sw] : switches_) out.push_back(sw.get());
  return out;
}

void Network::attach_dfi_control(DfiSystem& dfi, LearningController& controller) {
  const SimDuration latency = config_.control_latency;
  for (const auto& [dpid, sw_ptr] : switches_) {
    SwitchDevice* sw = sw_ptr.get();

    // The proxy session and controller session reference each other; a
    // shared wiring block breaks the construction cycle.
    struct Wiring {
      DfiProxy::Session* proxy = nullptr;
      LearningController::Session* ctrl = nullptr;
    };
    auto wiring = std::make_shared<Wiring>();

    DfiProxy::Session& proxy_session = dfi.proxy().create_session(
        // proxy -> switch
        [this, sw, latency](const std::vector<std::uint8_t>& bytes) {
          sim_.schedule_after(latency, [sw, bytes]() { sw->receive_control(bytes); });
        },
        // proxy -> controller
        [this, wiring, latency](const std::vector<std::uint8_t>& bytes) {
          sim_.schedule_after(latency, [wiring, bytes]() {
            if (wiring->ctrl != nullptr) wiring->ctrl->receive(bytes);
          });
        });
    wiring->proxy = &proxy_session;

    LearningController::Session& ctrl_session = controller.accept_connection(
        // controller -> proxy
        [this, wiring, latency](const std::vector<std::uint8_t>& bytes) {
          sim_.schedule_after(latency, [wiring, bytes]() {
            if (wiring->proxy != nullptr) wiring->proxy->from_controller(bytes);
          });
        });
    wiring->ctrl = &ctrl_session;

    // switch -> proxy
    sw->connect_control([this, wiring, latency](const std::vector<std::uint8_t>& bytes) {
      sim_.schedule_after(latency, [wiring, bytes]() {
        if (wiring->proxy != nullptr) wiring->proxy->from_switch(bytes);
      });
    });
  }
}

void Network::attach_direct_control(LearningController& controller) {
  const SimDuration latency = config_.control_latency;
  for (const auto& [dpid, sw_ptr] : switches_) {
    SwitchDevice* sw = sw_ptr.get();
    LearningController::Session& session = controller.accept_connection(
        [this, sw, latency](const std::vector<std::uint8_t>& bytes) {
          sim_.schedule_after(latency, [sw, bytes]() { sw->receive_control(bytes); });
        });
    sw->connect_control(
        [this, &session, latency](const std::vector<std::uint8_t>& bytes) {
          sim_.schedule_after(latency,
                              [&session, bytes]() { session.receive(bytes); });
        });
    // Without DFI there is no default-deny Table 0: packets fall straight
    // through to the controller pipeline. Table 0 miss already raises a
    // Packet-in, which is the controller's reactive path — nothing to add.
  }
}

void Network::settle() {
  // The handshake involves a fixed, small number of exchanges; a second of
  // simulated time is orders of magnitude more than enough.
  sim_.run_until(sim_.now() + seconds(1.0));
}

void Network::inject(Dpid dpid, PortNo port, const std::vector<std::uint8_t>& bytes) {
  SwitchDevice* sw = find_switch(dpid);
  assert(sw != nullptr);
  sw->receive_packet(port, bytes);
}

}  // namespace dfi
