#include "testbed/enterprise.h"

#include <cassert>

namespace dfi {
namespace {

constexpr std::uint64_t kCoreDpid = 1;
constexpr std::uint64_t kFirstEnclaveDpid = 2;
// Enclave layout: dpids 2..10 -> dept-1..dept-9 (9 hosts), dpid 11 ->
// dept-10 (5 hosts), dpids 12..14 -> server enclaves (2 servers each).
constexpr int kDeptEnclaves = 10;
constexpr int kServerEnclaves = 3;

struct ServerSpec {
  const char* name;
  int enclave;  // 0..2 -> dpid 12..14
};

constexpr ServerSpec kServers[] = {
    {"srv-ad", 0},    {"srv-email", 0}, {"srv-web", 1},
    {"srv-file", 1},  {"srv-db", 2},    {"srv-backup", 2},
};

}  // namespace

EnterpriseTestbed::EnterpriseTestbed(EnterpriseConfig config)
    : config_(config), rng_(config.seed) {
  const auto clock = [this]() { return sim_.now(); };
  siem_ = std::make_unique<SiemService>(bus_, clock);
  dhcp_ = std::make_unique<DhcpServer>(bus_, clock, Ipv4Address(10, 0, 0, 10), 4096);
  dns_ = std::make_unique<DnsServer>(bus_, clock);

  // DFI must exist before DHCP/DNS provisioning so its sensors observe the
  // binding events.
  if (config_.condition != PolicyCondition::kBaseline) {
    DfiConfig dfi_config = config_.dfi;
    dfi_config.seed ^= config_.seed;
    dfi_ = std::make_unique<DfiSystem>(sim_, bus_, dfi_config);
  }
  controller_ = std::make_unique<LearningController>(sim_, config_.controller,
                                                     Rng(config_.seed ^ 0xc0117011ull));
  network_ = std::make_unique<Network>(sim_, config_.network);

  build_topology();
  provision_endpoints();
  attach_control_plane();

  // Policy activation happens after the control plane settles so flush
  // directives reach registered switches.
  if (config_.condition == PolicyCondition::kSRbac) {
    srbac_ = std::make_unique<SRbacPdp>(PdpPriority{100}, dfi_->policy_manager(),
                                        directory_);
    srbac_->activate();
  } else if (config_.condition == PolicyCondition::kAtRbac) {
    atrbac_ = std::make_unique<AtRbacPdp>(PdpPriority{100}, dfi_->policy_manager(),
                                          directory_, bus_,
                                          std::vector<Hostname>{Hostname{"srv-ad"}});
    atrbac_->activate();
  }
}

void EnterpriseTestbed::build_topology() {
  network_->add_switch(Dpid{kCoreDpid});
  const int total_enclaves = kDeptEnclaves + kServerEnclaves;
  for (int enclave = 0; enclave < total_enclaves; ++enclave) {
    const Dpid dpid{kFirstEnclaveDpid + static_cast<std::uint64_t>(enclave)};
    network_->add_switch(dpid);
    // Core port (enclave+1) <-> enclave switch port 1 (trunk).
    network_->link_switches(Dpid{kCoreDpid}, PortNo{static_cast<std::uint32_t>(enclave + 1)},
                            dpid, PortNo{1});
  }
}

void EnterpriseTestbed::provision_endpoints() {
  std::uint64_t next_mac = 0x020000000001ull;

  const auto provision = [&](const Hostname& name, const std::string& enclave,
                             bool is_server, Dpid dpid, PortNo port) {
    const MacAddress mac = MacAddress::from_u64(next_mac++);
    Host& host = network_->add_host(name, mac, dpid, port);

    // DHCP lease + dynamic DNS registration: these emit the authoritative
    // binding events the ERM sensors consume (paper Figure 3).
    const auto leased = dhcp_->lease(mac);
    assert(leased.ok());
    host.set_ip(leased.value());
    dns_->register_record(name, leased.value());
    (*network_->arp())[leased.value()] = mac;

    host.open_port(config_.service_port);

    const Status added = directory_.add_host(HostRecord{name, enclave, is_server});
    assert(added.ok());
    (void)added;
    endpoints_.push_back(name);
    if (is_server) servers_.push_back(name);
  };

  // Department enclaves: dept-1..dept-9 with 9 hosts, dept-10 with 5.
  for (int dept = 1; dept <= kDeptEnclaves; ++dept) {
    const std::string enclave = "dept-" + std::to_string(dept);
    const Dpid dpid{kFirstEnclaveDpid + static_cast<std::uint64_t>(dept - 1)};
    const int host_count = dept <= 9 ? 9 : 5;
    for (int index = 1; index <= host_count; ++index) {
      const Hostname name{"host-d" + std::to_string(dept) + "-" + std::to_string(index)};
      provision(name, enclave, /*is_server=*/false,
                dpid, PortNo{static_cast<std::uint32_t>(index + 1)});

      // Primary user; department peers get Local Administrator via the
      // directory's enclave rule.
      const Username user{"user-d" + std::to_string(dept) + "-" + std::to_string(index)};
      const Status added = directory_.add_user(UserRecord{user, enclave, name});
      assert(added.ok());
      (void)added;
      primary_users_[name] = user;
      // The primary user has logged onto their machine before: their
      // credential is cached (the worm's credential-theft vector).
      directory_.record_logon(user, name);

      // One vulnerable (unpatched) host per department enclave.
      if (index == 1) vulnerable_.insert(name);
    }
  }

  // Server enclaves.
  int server_port_index = 0;
  int last_enclave = -1;
  for (const ServerSpec& spec : kServers) {
    const std::string enclave = "servers-" + std::to_string(spec.enclave + 1);
    const Dpid dpid{kFirstEnclaveDpid + static_cast<std::uint64_t>(kDeptEnclaves + spec.enclave)};
    if (spec.enclave != last_enclave) {
      server_port_index = 0;
      last_enclave = spec.enclave;
    }
    ++server_port_index;
    provision(Hostname{spec.name}, enclave, /*is_server=*/true, dpid,
              PortNo{static_cast<std::uint32_t>(server_port_index + 1)});
    // All servers are vulnerable (their transmission vector — Section V-B).
    vulnerable_.insert(Hostname{spec.name});
    // The AD server answers the authentication services (DNS, DHCP,
    // Kerberos, LDAP) that AT-RBAC's standing rules are scoped to.
    if (std::string(spec.name) == "srv-ad") {
      Host* ad = network_->find_host(Hostname{spec.name});
      for (const std::uint16_t port : {53, 67, 88, 389}) ad->open_port(port);
    }
  }
}

void EnterpriseTestbed::attach_control_plane() {
  if (dfi_ != nullptr) {
    network_->attach_dfi_control(*dfi_, *controller_);
  } else {
    network_->attach_direct_control(*controller_);
  }
  network_->settle();
}

std::optional<Username> EnterpriseTestbed::primary_user(const Hostname& host) const {
  const auto it = primary_users_.find(host);
  if (it == primary_users_.end()) return std::nullopt;
  return it->second;
}

void EnterpriseTestbed::schedule_all_activity() {
  for (const auto& [host, user] : primary_users_) {
    Rng script_rng = rng_.fork();
    ActivityScript script = generate_activity_script(script_rng);
    scripts_[user] = script;
    schedule_script(sim_, *siem_, directory_, user, host, script);
  }
}

}  // namespace dfi
