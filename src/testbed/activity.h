// User log-on/log-off activity scripts (paper Section V-B).
//
// Each testbed user is assigned a random time-series "script" establishing
// when they are logged onto their primary host over the simulated business
// day. Per the paper: every script has at least two hours logged on during
// the first half of the work day (09:00-13:00), and activity dwindles
// outside business hours (which is what makes off-hours footholds
// ineffective under AT-RBAC — Fig. 5b).
#pragma once

#include <map>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "services/directory.h"
#include "services/siem.h"
#include "sim/simulator.h"

namespace dfi {

struct LogonInterval {
  SimTime on;
  SimTime off;
};

using ActivityScript = std::vector<LogonInterval>;

// Generate one day's script: a guaranteed morning block plus probabilistic
// afternoon/evening/early-morning blocks. Intervals are sorted and disjoint.
ActivityScript generate_activity_script(Rng& rng);

// Total logged-on time within [from, to].
SimDuration logged_on_within(const ActivityScript& script, SimTime from, SimTime to);

// True if the script has the user logged on at time `t`.
bool logged_on_at(const ActivityScript& script, SimTime t);

// Schedule the script's sessions: at each log-on the endpoint's SIEM
// collector reports a process creation (which flips the SIEM's count to >0)
// and the credential is cached in the directory; at each log-off the
// process terminates.
void schedule_script(Simulator& sim, SiemService& siem, DirectoryService& directory,
                     const Username& user, const Hostname& host,
                     const ActivityScript& script);

}  // namespace dfi
