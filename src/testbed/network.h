// Network: wires switches, hosts, links and the control plane together on
// the discrete-event simulator.
//
// Data-plane links and control-plane connections are modeled as byte
// channels with fixed one-way latency. The control plane can be attached in
// two configurations matching the paper's Fig. 4 conditions:
//   * direct: switches talk straight to the SDN controller (no DFI);
//   * DFI: every switch connection passes through a DfiProxy session, with
//     Packet-ins visiting the PCP first (paper Figure 1).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "controller/learning_controller.h"
#include "core/dfi_system.h"
#include "openflow/switch_device.h"
#include "sim/simulator.h"
#include "testbed/host.h"

namespace dfi {

struct NetworkConfig {
  SimDuration link_latency = microseconds(100);     // data-plane, one-way
  SimDuration control_latency = microseconds(200);  // per control-plane leg
  std::uint8_t switch_tables = 4;
  std::size_t switch_table_capacity = 1 << 17;  // OVS-scale software tables
};

class Network {
 public:
  Network(Simulator& sim, NetworkConfig config = {});

  Simulator& sim() { return sim_; }
  const NetworkConfig& config() const { return config_; }
  std::shared_ptr<ArpTable> arp() { return arp_; }

  SwitchDevice& add_switch(Dpid dpid);
  // Bidirectional inter-switch link.
  void link_switches(Dpid a, PortNo port_a, Dpid b, PortNo port_b);
  // Create a host and cable it to a switch port.
  Host& add_host(const Hostname& name, MacAddress mac, Dpid dpid, PortNo port);

  SwitchDevice* find_switch(Dpid dpid);
  Host* find_host(const Hostname& name);
  Host* find_host_by_ip(Ipv4Address ip);
  std::vector<Host*> hosts();
  std::vector<SwitchDevice*> switches();

  // Attach every switch to the controller through the DFI proxy.
  void attach_dfi_control(DfiSystem& dfi, LearningController& controller);
  // Attach every switch directly to the controller (baseline, no DFI).
  void attach_direct_control(LearningController& controller);

  // Run the simulator until the control-plane handshake settles.
  void settle();

  // Inject raw bytes into a switch port (background-traffic generators).
  void inject(Dpid dpid, PortNo port, const std::vector<std::uint8_t>& bytes);

 private:
  Simulator& sim_;
  NetworkConfig config_;
  std::shared_ptr<ArpTable> arp_;
  std::map<Dpid, std::unique_ptr<SwitchDevice>> switches_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::map<Hostname, Host*> hosts_by_name_;
};

}  // namespace dfi
