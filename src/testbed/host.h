// End-host model.
//
// Hosts are the testbed's traffic endpoints: they run a minimal TCP
// handshake (SYN / SYN-ACK / RST with retransmission), which is exactly the
// surface the paper's experiments need — TTFB measurement (Fig. 4) is
// SYN->SYN-ACK time, and the worm's reachability test is whether a TCP
// connection to the target completes.
//
// ARP is substituted by a shared resolver table populated by the testbed
// builder (real deployments resolve via ARP broadcast; identifier *policy*
// in DFI never depends on ARP, so the substitution preserves behaviour —
// see DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace dfi {

// Shared IP -> MAC resolver (ARP surrogate).
using ArpTable = std::map<Ipv4Address, MacAddress>;

struct ConnectOptions {
  SimDuration timeout = seconds(3.0);    // overall give-up deadline
  SimDuration rto = milliseconds(200);   // SYN retransmission interval
  int max_syn_retries = 3;
};

// Outcome of a connection attempt.
struct ConnectResult {
  bool connected = false;
  bool refused = false;      // RST received (port closed)
  SimDuration time_to_first_byte{};
  int syn_transmissions = 1;
};

class Host {
 public:
  using TransmitFn = std::function<void(const std::vector<std::uint8_t>&)>;
  using ConnectCallback = std::function<void(const ConnectResult&)>;
  using PacketHook = std::function<void(const Packet&)>;

  Host(Simulator& sim, Hostname name, MacAddress mac,
       std::shared_ptr<ArpTable> arp);

  const Hostname& name() const { return name_; }
  MacAddress mac() const { return mac_; }
  Ipv4Address ip() const { return ip_; }
  void set_ip(Ipv4Address ip) { ip_ = ip; }

  // Wired by the Network: bytes leave this host's NIC toward its switch.
  void set_transmit(TransmitFn transmit) { transmit_ = std::move(transmit); }

  // A TCP port that answers SYNs with SYN-ACK.
  void open_port(std::uint16_t port) { open_ports_.insert(port); }
  void close_port(std::uint16_t port) { open_ports_.erase(port); }
  bool port_open(std::uint16_t port) const { return open_ports_.count(port) != 0; }

  // Enable dynamic ARP: addresses not in the shared resolver table are
  // resolved by broadcasting real ARP requests through the data plane
  // (which DFI subjects to policy like any other traffic). Replies are
  // learned into a per-host cache.
  void enable_arp() { arp_enabled_ = true; }
  bool arp_enabled() const { return arp_enabled_; }
  std::size_t arp_cache_size() const { return arp_cache_.size(); }

  // Start a TCP handshake to dst_ip:dst_port. The callback fires exactly
  // once: on SYN-ACK (connected), RST (refused) or deadline (timeout).
  void connect(Ipv4Address dst_ip, std::uint16_t dst_port, ConnectCallback done,
               ConnectOptions options = {});

  // Inject an arbitrary packet from this host.
  void send_packet(const Packet& packet);

  // Bytes arriving from the switch port.
  void receive(const std::vector<std::uint8_t>& bytes);

  // Observation hook for tests/scenarios (invoked for every delivered
  // packet addressed to this host).
  void set_packet_hook(PacketHook hook) { packet_hook_ = std::move(hook); }

  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  struct PendingConnect {
    Ipv4Address dst_ip;
    MacAddress dst_mac;
    std::uint16_t dst_port;
    std::uint16_t src_port;
    SimTime started;
    ConnectOptions options;
    ConnectCallback done;
    int syn_sent = 1;
    bool finished = false;
  };

  struct PendingArp {
    std::vector<std::function<void(std::optional<MacAddress>)>> waiters;
    int requests_sent = 0;
  };

  void send_syn(const PendingConnect& pending);
  void start_handshake(Ipv4Address dst_ip, MacAddress dst_mac, std::uint16_t dst_port,
                       ConnectCallback done, ConnectOptions options);
  void schedule_retransmit(std::uint16_t src_port);
  void finish(PendingConnect& pending, const ConnectResult& result);
  std::optional<MacAddress> resolve(Ipv4Address ip) const;
  // Resolve via the static table / local cache, falling back to an ARP
  // exchange when enabled. The callback may fire synchronously.
  void resolve_async(Ipv4Address ip,
                     std::function<void(std::optional<MacAddress>)> done);
  void arp_retry(Ipv4Address ip);
  void handle_arp(const ArpHeader& arp);

  Simulator& sim_;
  Hostname name_;
  MacAddress mac_;
  Ipv4Address ip_;
  std::shared_ptr<ArpTable> arp_;
  TransmitFn transmit_;
  PacketHook packet_hook_;
  std::set<std::uint16_t> open_ports_;
  std::map<std::uint16_t, std::shared_ptr<PendingConnect>> pending_;  // by src port
  bool arp_enabled_ = false;
  ArpTable arp_cache_;  // learned dynamically, consulted before arp_
  std::map<Ipv4Address, PendingArp> arp_pending_;
  std::uint16_t next_src_port_ = 49152;
  std::uint64_t packets_received_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace dfi
