// Enterprise testbed builder (paper Section V-B).
//
// Reproduces the paper's testbed shape: 86 end hosts and 6 servers across a
// star of 14 OpenFlow switches (one core, 13 enclave switches). Nine
// department enclaves hold 9 hosts each, a tenth smaller department holds
// 5, and the remaining three enclaves hold the 6 servers. One end host per
// department enclave (10 total) is vulnerable to the worm's exploit, as are
// all servers. Every host has a unique primary user; users of the same
// department are Local Administrators on each other's machines. An AD
// server (srv-ad) provides DHCP/DNS/directory services.
//
// The builder wires the chosen control-plane condition (paper Fig. 5):
//   kBaseline  - controller only, no access control beyond forwarding;
//   kSRbac     - DFI enforcing the static role-based policy;
//   kAtRbac    - DFI enforcing the authentication-triggered policy.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "controller/learning_controller.h"
#include "core/dfi_system.h"
#include "core/pdps/atrbac.h"
#include "core/pdps/srbac.h"
#include "services/dhcp.h"
#include "services/directory.h"
#include "services/dns.h"
#include "services/siem.h"
#include "sim/simulator.h"
#include "testbed/activity.h"
#include "testbed/network.h"

namespace dfi {

enum class PolicyCondition { kBaseline, kSRbac, kAtRbac };

inline const char* to_string(PolicyCondition condition) {
  switch (condition) {
    case PolicyCondition::kBaseline: return "baseline";
    case PolicyCondition::kSRbac: return "S-RBAC";
    case PolicyCondition::kAtRbac: return "AT-RBAC";
  }
  return "?";
}

struct EnterpriseConfig {
  PolicyCondition condition = PolicyCondition::kBaseline;
  std::uint64_t seed = 42;  // drives activity scripts & DFI latency sampling
  NetworkConfig network;
  DfiConfig dfi;
  ControllerConfig controller;
  std::uint16_t service_port = 445;  // the worm's target service (SMB)
};

class EnterpriseTestbed {
 public:
  explicit EnterpriseTestbed(EnterpriseConfig config);

  Simulator& sim() { return sim_; }
  MessageBus& bus() { return bus_; }
  Network& network() { return *network_; }
  DirectoryService& directory() { return directory_; }
  SiemService& siem() { return *siem_; }
  DhcpServer& dhcp() { return *dhcp_; }
  DnsServer& dns() { return *dns_; }
  LearningController& controller() { return *controller_; }
  // Null in the baseline condition.
  DfiSystem* dfi() { return dfi_.get(); }
  AtRbacPdp* atrbac() { return atrbac_.get(); }
  const EnterpriseConfig& config() const { return config_; }

  // All endpoints (hosts + servers), their metadata and lookup helpers.
  const std::vector<Hostname>& endpoints() const { return endpoints_; }
  const std::vector<Hostname>& servers() const { return servers_; }
  bool is_vulnerable(const Hostname& host) const {
    return vulnerable_.count(host) != 0;
  }
  Host* host(const Hostname& name) { return network_->find_host(name); }
  std::optional<Username> primary_user(const Hostname& host) const;

  // Generate (seeded) scripts for all users and schedule their SIEM events.
  void schedule_all_activity();
  const std::map<Username, ActivityScript>& scripts() const { return scripts_; }

 private:
  void build_topology();
  void provision_endpoints();
  void attach_control_plane();

  EnterpriseConfig config_;
  Simulator sim_;
  MessageBus bus_;
  Rng rng_;

  DirectoryService directory_;
  std::unique_ptr<SiemService> siem_;
  std::unique_ptr<DhcpServer> dhcp_;
  std::unique_ptr<DnsServer> dns_;
  std::unique_ptr<DfiSystem> dfi_;
  std::unique_ptr<LearningController> controller_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<SRbacPdp> srbac_;
  std::unique_ptr<AtRbacPdp> atrbac_;

  std::vector<Hostname> endpoints_;
  std::vector<Hostname> servers_;
  std::set<Hostname> vulnerable_;
  std::map<Hostname, Username> primary_users_;
  std::map<Username, ActivityScript> scripts_;
};

}  // namespace dfi
