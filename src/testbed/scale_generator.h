// Deterministic enterprise-scale binding and policy generator.
//
// The paper's testbed (testbed/enterprise.h) is 92 endpoints — the right
// shape for reproducing Fig. 4/5, three orders of magnitude short of the
// production enterprises the compact entity plane (DESIGN.md §8) is sized
// for. This generator synthesizes the *identity plane* of such an
// enterprise directly: N hosts, each with a DHCP lease (IP<->MAC), a DNS
// name (host<->IP), a primary logged-on user (user<->host), and a switch
// location — 4+ bindings and 4 fresh entities per host, so N = 250k hosts
// exercises a million-entity ERM — plus a rule population in the 100k range
// spread across PDP priorities and pivot fields the way real per-department
// policy is.
//
// Everything is a pure function of (config, index): host k's name, user,
// MAC, IP, and switch are derived arithmetically, so tests and benches can
// regenerate any single host's bindings without storing the population, and
// two runs with the same seed produce byte-identical event streams.
//
// Churn schedules model the three binding storms the issue calls out:
//   * logon storms  - morning shift: users log on/off hosts in bulk
//                     (user<->host assert/retract waves);
//   * DHCP rollover - lease expiry: a host's IP moves to the next address
//                     in its subnet (IP<->MAC retract + assert, DNS rebind);
//   * host mobility - a laptop reappears on another switch (MAC-location
//                     replacement, the no-identity-epoch-bump path).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/policy.h"
#include "net/ipv4.h"
#include "net/mac.h"
#include "services/events.h"

namespace dfi {

struct ScaleConfig {
  // Host population; entities ~ 4x this (user, host, IP, MAC per host).
  std::uint32_t hosts = 10000;
  // Hosts per access switch (drives MAC-location bindings and mobility).
  std::uint32_t hosts_per_switch = 48;
  // Secondary DNS aliases: every alias_stride-th host gets a second
  // hostname bound to its IP (exercises multi-host enrichment dedup).
  std::uint32_t alias_stride = 16;
  // Roaming users: every roam_stride-th user is also logged on to the next
  // host (exercises multi-host user lists).
  std::uint32_t roam_stride = 32;
  std::uint64_t seed = 42;
};

class ScaleGenerator {
 public:
  explicit ScaleGenerator(ScaleConfig config) : config_(config) {}

  const ScaleConfig& config() const { return config_; }

  // ---------------------------------------------------- entity derivation
  // All pure: host index -> that host's identifiers.
  std::string host_name(std::uint32_t host) const;
  std::string alias_name(std::uint32_t host) const;  // secondary DNS name
  std::string user_name(std::uint32_t host) const;
  Ipv4Address ip_of(std::uint32_t host) const;
  MacAddress mac_of(std::uint32_t host) const;
  Dpid switch_of(std::uint32_t host) const;
  PortNo port_of(std::uint32_t host) const;

  // ------------------------------------------------------- initial state
  // Emit the full initial binding population, in host order, to `sink`:
  // per host ip<->mac, host<->ip, (alias<->ip), user<->host, (roaming
  // user<->host), mac-location. Streams — never materializes the
  // population.
  void emit_initial_bindings(const std::function<void(const BindingEvent&)>& sink) const;

  // Number of events emit_initial_bindings produces (for reserve()).
  std::size_t initial_binding_count() const;

  // ----------------------------------------------------------- churn
  // One logon storm: `count` users starting at `first` log off their host
  // and a shifted user population logs on (2 events per user).
  void emit_logon_storm(std::uint32_t first, std::uint32_t count, std::uint32_t shift,
                        const std::function<void(const BindingEvent&)>& sink) const;

  // One DHCP rollover wave: `count` hosts starting at `first` move to their
  // alternate lease (IP changes within the host's subnet; 4 events per
  // host: retract old ip<->mac and host<->ip, assert both for the new IP).
  void emit_dhcp_rollover(std::uint32_t first, std::uint32_t count, bool to_alternate,
                          const std::function<void(const BindingEvent&)>& sink) const;

  // One mobility wave: `count` hosts starting at `first` reappear on the
  // next switch (1 MAC-location assertion per host).
  void emit_host_mobility(std::uint32_t first, std::uint32_t count, std::uint32_t hop,
                          const std::function<void(const BindingEvent&)>& sink) const;

  // ----------------------------------------------------------- policy
  // Deterministic rule population: `count` rules cycling through the
  // index's pivot fields (src/dst IP, MAC, user, host, port-only
  // wildcards), naming entities of this generator's population so queries
  // actually hit posting lists. Callers spread PDP priorities at insert
  // time (rules carry no priority of their own).
  std::vector<PolicyRule> make_rules(std::uint32_t count) const;

  // The host each rule of make_rules(count) targets, in rule order (rule i
  // names an identifier of host rule_targets(count)[i]; port-only wildcard
  // rules still draw a target to keep the streams aligned). Benches draw
  // probe flows from this so the fraction of flows that match a rule is
  // population-invariant — at a constant rule count, random flows over N
  // hosts get ~rules/N matches each, which would compare a hit-heavy small
  // point against a miss-heavy large one instead of measuring the entity
  // plane.
  std::vector<std::uint32_t> rule_targets(std::uint32_t count) const;

 private:
  Ipv4Address lease_ip(std::uint32_t host, bool alternate) const;

  ScaleConfig config_;
};

}  // namespace dfi
