#include "testbed/host.h"

#include <cassert>

#include "common/logging.h"

namespace dfi {

Host::Host(Simulator& sim, Hostname name, MacAddress mac, std::shared_ptr<ArpTable> arp)
    : sim_(sim), name_(std::move(name)), mac_(mac), arp_(std::move(arp)) {}

std::optional<MacAddress> Host::resolve(Ipv4Address ip) const {
  if (const auto cached = arp_cache_.find(ip); cached != arp_cache_.end()) {
    return cached->second;
  }
  if (!arp_) return std::nullopt;
  const auto it = arp_->find(ip);
  if (it == arp_->end()) return std::nullopt;
  return it->second;
}

void Host::resolve_async(Ipv4Address ip,
                         std::function<void(std::optional<MacAddress>)> done) {
  if (const auto known = resolve(ip); known.has_value()) {
    done(known);
    return;
  }
  if (!arp_enabled_) {
    done(std::nullopt);
    return;
  }
  PendingArp& pending = arp_pending_[ip];
  pending.waiters.push_back(std::move(done));
  if (pending.waiters.size() == 1) {
    pending.requests_sent = 1;
    send_packet(make_arp_request(mac_, ip_, ip));
    sim_.schedule_after(milliseconds(500), [this, ip]() { arp_retry(ip); });
  }
}

void Host::arp_retry(Ipv4Address ip) {
  const auto it = arp_pending_.find(ip);
  if (it == arp_pending_.end()) return;  // already resolved
  PendingArp& pending = it->second;
  if (pending.requests_sent >= 3) {
    const auto waiters = std::move(pending.waiters);
    arp_pending_.erase(it);
    for (const auto& waiter : waiters) waiter(std::nullopt);
    return;
  }
  ++pending.requests_sent;
  send_packet(make_arp_request(mac_, ip_, ip));
  sim_.schedule_after(milliseconds(500), [this, ip]() { arp_retry(ip); });
}

void Host::handle_arp(const ArpHeader& arp) {
  // Glean the sender's binding either way (standard ARP behaviour).
  if (arp.sender_ip != Ipv4Address{}) {
    arp_cache_[arp.sender_ip] = arp.sender_mac;
  }
  if (arp.op == ArpOp::kRequest && arp.target_ip == ip_) {
    send_packet(make_arp_reply(mac_, ip_, arp.sender_mac, arp.sender_ip));
    return;
  }
  // Release any waiters for the sender's address.
  const auto it = arp_pending_.find(arp.sender_ip);
  if (it != arp_pending_.end()) {
    const auto waiters = std::move(it->second.waiters);
    arp_pending_.erase(it);
    for (const auto& waiter : waiters) waiter(arp.sender_mac);
  }
}

void Host::connect(Ipv4Address dst_ip, std::uint16_t dst_port, ConnectCallback done,
                   ConnectOptions options) {
  resolve_async(dst_ip, [this, dst_ip, dst_port, done = std::move(done),
                         options](std::optional<MacAddress> dst_mac) mutable {
    if (!dst_mac.has_value()) {
      ConnectResult result;
      result.connected = false;
      done(result);
      return;
    }
    start_handshake(dst_ip, *dst_mac, dst_port, std::move(done), options);
  });
}

void Host::start_handshake(Ipv4Address dst_ip, MacAddress dst_mac,
                           std::uint16_t dst_port, ConnectCallback done,
                           ConnectOptions options) {
  auto pending = std::make_shared<PendingConnect>();
  pending->dst_ip = dst_ip;
  pending->dst_mac = dst_mac;
  pending->dst_port = dst_port;
  pending->src_port = next_src_port_++;
  if (next_src_port_ == 0) next_src_port_ = 49152;  // wrap inside ephemeral range
  pending->started = sim_.now();
  pending->options = options;
  pending->done = std::move(done);
  pending_[pending->src_port] = pending;

  send_syn(*pending);
  schedule_retransmit(pending->src_port);

  // Overall deadline.
  const std::uint16_t src_port = pending->src_port;
  sim_.schedule_after(options.timeout, [this, src_port]() {
    const auto it = pending_.find(src_port);
    if (it == pending_.end()) return;
    ConnectResult result;
    result.connected = false;
    result.syn_transmissions = it->second->syn_sent;
    finish(*it->second, result);
  });
}

void Host::send_syn(const PendingConnect& pending) {
  send_packet(make_tcp_packet(mac_, pending.dst_mac, ip_, pending.dst_ip,
                              pending.src_port, pending.dst_port, kTcpSyn));
}

void Host::schedule_retransmit(std::uint16_t src_port) {
  const auto it = pending_.find(src_port);
  if (it == pending_.end()) return;
  const SimDuration rto = it->second->options.rto;
  sim_.schedule_after(rto, [this, src_port]() {
    const auto entry = pending_.find(src_port);
    if (entry == pending_.end()) return;
    PendingConnect& pending = *entry->second;
    if (pending.syn_sent > pending.options.max_syn_retries) return;
    ++pending.syn_sent;
    send_syn(pending);
    schedule_retransmit(src_port);
  });
}

void Host::finish(PendingConnect& pending, const ConnectResult& result) {
  if (pending.finished) return;
  pending.finished = true;
  const ConnectCallback done = std::move(pending.done);
  pending_.erase(pending.src_port);
  if (done) done(result);
}

void Host::send_packet(const Packet& packet) {
  ++packets_sent_;
  if (transmit_) transmit_(packet.serialize());
}

void Host::receive(const std::vector<std::uint8_t>& bytes) {
  // Flooded frames for other hosts reach us; a real NIC filters them by
  // destination MAC before the stack ever parses the frame.
  if (bytes.size() < 14) return;
  bool for_us = true, broadcast = true;
  const auto& mac_octets = mac_.octets();
  for (int i = 0; i < 6; ++i) {
    if (bytes[static_cast<std::size_t>(i)] != mac_octets[static_cast<std::size_t>(i)]) {
      for_us = false;
    }
    if (bytes[static_cast<std::size_t>(i)] != 0xff) broadcast = false;
  }
  if (!for_us && !broadcast) return;

  const auto parsed = Packet::parse(bytes);
  if (!parsed.ok()) return;
  const Packet& packet = parsed.value();
  ++packets_received_;
  if (packet_hook_) packet_hook_(packet);

  if (packet.arp.has_value()) {
    handle_arp(*packet.arp);
    return;
  }
  if (!packet.ipv4.has_value() || !packet.tcp.has_value()) return;
  if (packet.ipv4->dst != ip_) return;
  const TcpHeader& tcp = *packet.tcp;

  const bool is_syn = (tcp.flags & kTcpSyn) != 0 && (tcp.flags & kTcpAck) == 0;
  const bool is_syn_ack = (tcp.flags & kTcpSyn) != 0 && (tcp.flags & kTcpAck) != 0;
  const bool is_rst = (tcp.flags & kTcpRst) != 0;

  if (is_syn) {
    // Server side: answer SYN on an open port, RST otherwise.
    const auto src_mac = resolve(packet.ipv4->src);
    const MacAddress reply_mac = src_mac.value_or(packet.eth.src);
    const std::uint8_t flags =
        port_open(tcp.dst_port) ? (kTcpSyn | kTcpAck) : (kTcpRst | kTcpAck);
    send_packet(make_tcp_packet(mac_, reply_mac, ip_, packet.ipv4->src, tcp.dst_port,
                                tcp.src_port, flags));
    return;
  }

  if (is_syn_ack || is_rst) {
    // Client side: match a pending handshake by our ephemeral port.
    const auto it = pending_.find(tcp.dst_port);
    if (it == pending_.end()) return;
    PendingConnect& pending = *it->second;
    if (pending.dst_ip != packet.ipv4->src || pending.dst_port != tcp.src_port) return;
    ConnectResult result;
    result.connected = is_syn_ack;
    result.refused = is_rst;
    result.time_to_first_byte = sim_.now() - pending.started;
    result.syn_transmissions = pending.syn_sent;
    finish(pending, result);
  }
}

}  // namespace dfi
