#include "testbed/scale_generator.h"

#include <charconv>

namespace dfi {
namespace {

// "corp-h001234" style names: fixed 7-digit suffix keeps lexicographic and
// numeric order identical, which makes expected enrichment output easy to
// derive in tests.
std::string numbered(const char* prefix, std::uint32_t n) {
  char digits[8];
  for (int i = 6; i >= 0; --i) {
    digits[i] = static_cast<char>('0' + n % 10);
    n /= 10;
  }
  std::string out;
  out.reserve(std::string_view(prefix).size() + 7);
  out.append(prefix);
  out.append(digits, 7);
  return out;
}

BindingEvent user_host(std::string user, std::string host, bool retracted) {
  BindingEvent event;
  event.kind = BindingKind::kUserHost;
  event.retracted = retracted;
  event.user = Username{std::move(user)};
  event.host = Hostname{std::move(host)};
  return event;
}

BindingEvent host_ip(std::string host, Ipv4Address ip, bool retracted) {
  BindingEvent event;
  event.kind = BindingKind::kHostIp;
  event.retracted = retracted;
  event.host = Hostname{std::move(host)};
  event.ip = ip;
  return event;
}

BindingEvent ip_mac(Ipv4Address ip, MacAddress mac, bool retracted) {
  BindingEvent event;
  event.kind = BindingKind::kIpMac;
  event.retracted = retracted;
  event.ip = ip;
  event.mac = mac;
  return event;
}

BindingEvent mac_location(Dpid dpid, MacAddress mac, PortNo port) {
  BindingEvent event;
  event.kind = BindingKind::kMacLocation;
  event.dpid = dpid;
  event.mac = mac;
  event.port = port;
  return event;
}

}  // namespace

std::string ScaleGenerator::host_name(std::uint32_t host) const {
  return numbered("corp-h", host);
}

std::string ScaleGenerator::alias_name(std::uint32_t host) const {
  return numbered("corp-svc", host);
}

std::string ScaleGenerator::user_name(std::uint32_t host) const {
  return numbered("user", host);
}

Ipv4Address ScaleGenerator::lease_ip(std::uint32_t host, bool alternate) const {
  // 10.0.0.0/8 primary pool, 11.0.0.0/8 alternate-lease pool: rollover
  // never collides with another host's primary address.
  return Ipv4Address(((alternate ? 11u : 10u) << 24) + host);
}

Ipv4Address ScaleGenerator::ip_of(std::uint32_t host) const {
  return lease_ip(host, false);
}

MacAddress ScaleGenerator::mac_of(std::uint32_t host) const {
  // Locally administered OUI 02:… plus a seed-derived site id, so
  // differently seeded populations do not share MACs.
  return MacAddress::from_u64((0x020000000000ull) |
                              ((config_.seed & 0xff) << 32) | host);
}

Dpid ScaleGenerator::switch_of(std::uint32_t host) const {
  return Dpid{1 + host / config_.hosts_per_switch};
}

PortNo ScaleGenerator::port_of(std::uint32_t host) const {
  return PortNo{1 + host % config_.hosts_per_switch};
}

void ScaleGenerator::emit_initial_bindings(
    const std::function<void(const BindingEvent&)>& sink) const {
  for (std::uint32_t h = 0; h < config_.hosts; ++h) {
    const Ipv4Address ip = ip_of(h);
    sink(ip_mac(ip, mac_of(h), false));
    sink(host_ip(host_name(h), ip, false));
    if (config_.alias_stride != 0 && h % config_.alias_stride == 0) {
      sink(host_ip(alias_name(h), ip, false));
    }
    sink(user_host(user_name(h), host_name(h), false));
    if (config_.roam_stride != 0 && h % config_.roam_stride == 0 &&
        h + 1 < config_.hosts) {
      sink(user_host(user_name(h), host_name(h + 1), false));
    }
    sink(mac_location(switch_of(h), mac_of(h), port_of(h)));
  }
}

std::size_t ScaleGenerator::initial_binding_count() const {
  std::size_t count = std::size_t{config_.hosts} * 4;  // ip-mac, host-ip, user-host, location
  if (config_.alias_stride != 0) {
    count += (config_.hosts + config_.alias_stride - 1) / config_.alias_stride;
  }
  if (config_.roam_stride != 0 && config_.hosts > 1) {
    count += (config_.hosts + config_.roam_stride - 1) / config_.roam_stride;
  }
  return count;
}

void ScaleGenerator::emit_logon_storm(
    std::uint32_t first, std::uint32_t count, std::uint32_t shift,
    const std::function<void(const BindingEvent&)>& sink) const {
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t h = (first + i) % config_.hosts;
    const std::uint32_t next = (h + shift) % config_.hosts;
    sink(user_host(user_name(h), host_name(h), true));
    sink(user_host(user_name(next), host_name(h), false));
  }
}

void ScaleGenerator::emit_dhcp_rollover(
    std::uint32_t first, std::uint32_t count, bool to_alternate,
    const std::function<void(const BindingEvent&)>& sink) const {
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t h = (first + i) % config_.hosts;
    const Ipv4Address old_ip = lease_ip(h, !to_alternate);
    const Ipv4Address new_ip = lease_ip(h, to_alternate);
    sink(ip_mac(old_ip, mac_of(h), true));
    sink(host_ip(host_name(h), old_ip, true));
    sink(ip_mac(new_ip, mac_of(h), false));
    sink(host_ip(host_name(h), new_ip, false));
  }
}

void ScaleGenerator::emit_host_mobility(
    std::uint32_t first, std::uint32_t count, std::uint32_t hop,
    const std::function<void(const BindingEvent&)>& sink) const {
  const std::uint32_t switches =
      (config_.hosts + config_.hosts_per_switch - 1) / config_.hosts_per_switch;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t h = (first + i) % config_.hosts;
    const std::uint64_t moved = 1 + (switch_of(h).value - 1 + hop) % std::max(1u, switches);
    sink(mac_location(Dpid{moved}, mac_of(h), port_of(h)));
  }
}

std::vector<std::uint32_t> ScaleGenerator::rule_targets(std::uint32_t count) const {
  std::vector<std::uint32_t> targets;
  targets.reserve(count);
  Rng rng(config_.seed ^ 0x9e3779b97f4a7c15ull);
  for (std::uint32_t i = 0; i < count; ++i) {
    targets.push_back(
        static_cast<std::uint32_t>(rng.uniform_int(0, static_cast<int>(config_.hosts) - 1)));
  }
  return targets;
}

std::vector<PolicyRule> ScaleGenerator::make_rules(std::uint32_t count) const {
  std::vector<PolicyRule> rules;
  rules.reserve(count);
  const std::vector<std::uint32_t> targets = rule_targets(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t target = targets[i];
    PolicyRule rule;
    rule.action = (i % 5 == 0) ? PolicyAction::kDeny : PolicyAction::kAllow;
    // Cycle through the index's pivot fields so every posting map carries
    // real load; one slot in eight is a port-only wildcard rule.
    switch (i % 8) {
      case 0: rule.source.ip = ip_of(target); break;
      case 1: rule.destination.ip = ip_of(target); break;
      case 2: rule.source.mac = mac_of(target); break;
      case 3: rule.source.user = Username{user_name(target)}; break;
      case 4: rule.destination.user = Username{user_name(target)}; break;
      case 5: rule.source.host = Hostname{host_name(target)}; break;
      case 6: rule.destination.host = Hostname{host_name(target)}; break;
      case 7: rule.destination.l4_port = static_cast<std::uint16_t>(1024 + i % 40000); break;
    }
    rule.properties.ether_type = 0x0800;
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace dfi
