#include "worm/worm.h"

#include <cassert>

#include "common/logging.h"

namespace dfi {

WormScenario::WormScenario(EnterpriseTestbed& testbed, WormConfig config)
    : testbed_(testbed), config_(config), rng_(config.seed) {}

void WormScenario::infect_foothold(const Hostname& host, SimTime at) {
  testbed_.sim().schedule_at(at, [this, host]() {
    infect(host, Hostname{}, /*via_exploit=*/false);
  });
}

bool WormScenario::infect(const Hostname& host, const Hostname& from, bool via_exploit) {
  if (infected_.count(host) != 0) return false;
  infected_.insert(host);
  records_.push_back(InfectionRecord{host, from, testbed_.sim().now(), via_exploit});
  DFI_INFO << format_clock(testbed_.sim().now()) << " worm: " << host.value
           << " infected"
           << (from.value.empty() ? " (foothold)"
                                  : " from " + from.value +
                                        (via_exploit ? " [exploit]" : " [credential]"));
  start_instance(host);
  return true;
}

void WormScenario::start_instance(const Hostname& host) {
  auto instance = std::make_shared<Instance>();
  instance->host = host;
  instance->rng = rng_.fork();
  const double active_minutes = instance->rng.uniform_real(
      config_.min_active_minutes, config_.max_active_minutes);
  instance->active_until = testbed_.sim().now() + minutes(active_minutes);

  // Reconnaissance: every endpoint except ourselves, shuffled.
  for (const auto& endpoint : testbed_.endpoints()) {
    if (endpoint != host) instance->targets.push_back(endpoint);
  }
  instance->rng.shuffle(instance->targets);

  attempt_next(std::move(instance));
}

void WormScenario::attempt_next(std::shared_ptr<Instance> instance) {
  Simulator& sim = testbed_.sim();
  if (sim.now() >= instance->active_until) {
    ++stats_.timed_out_instances;
    DFI_INFO << format_clock(sim.now()) << " worm: " << instance->host.value
             << " timed out (lock-down)";
    return;
  }
  if (instance->next_target >= instance->targets.size()) {
    // Sweep complete: wait, reshuffle, go again.
    instance->next_target = 0;
    instance->rng.shuffle(instance->targets);
    sim.schedule_after(config_.sweep_pause, [this, instance = std::move(instance)]() mutable {
      attempt_next(std::move(instance));
    });
    return;
  }
  const Hostname target = instance->targets[instance->next_target++];
  attack_target(std::move(instance), target);
}

void WormScenario::attack_target(std::shared_ptr<Instance> instance,
                                 const Hostname& target) {
  Simulator& sim = testbed_.sim();
  Host* attacker = testbed_.host(instance->host);
  Host* victim = testbed_.host(target);
  assert(attacker != nullptr && victim != nullptr);

  ++stats_.connection_attempts;
  attacker->connect(
      victim->ip(), config_.target_port,
      [this, instance = std::move(instance), target](const ConnectResult& result) mutable {
        Simulator& inner_sim = testbed_.sim();
        if (!result.connected) {
          // Unreachable (policy-denied, queue-dropped, or refused): move on.
          attempt_next(std::move(instance));
          return;
        }
        ++stats_.connections_succeeded;

        // Vector 1: exploit payload, sent first.
        inner_sim.schedule_after(config_.exploit_time, [this, instance =
                                                            std::move(instance),
                                                        target]() mutable {
          if (config_.exploit_vector && testbed_.is_vulnerable(target)) {
            if (infect(target, instance->host, /*via_exploit=*/true)) {
              ++stats_.exploit_successes;
            }
            attempt_next(std::move(instance));
            return;
          }
          if (!config_.credential_vector) {
            attempt_next(std::move(instance));
            return;
          }
          // Vector 2: credential theft — any credential cached on the local
          // host that grants Local Administrator on the target.
          const auto creds = testbed_.directory().cached_credentials(instance->host);
          bool usable = false;
          for (const auto& user : creds) {
            if (testbed_.directory().is_local_admin(user, target)) {
              usable = true;
              break;
            }
          }
          testbed_.sim().schedule_after(
              config_.credential_time,
              [this, instance = std::move(instance), target, usable]() mutable {
                if (usable && infect(target, instance->host, /*via_exploit=*/false)) {
                  ++stats_.credential_successes;
                }
                attempt_next(std::move(instance));
              });
        });
      },
      config_.connect);
}

TimeSeries WormScenario::infection_curve() const {
  TimeSeries series;
  series.add(0.0, 0.0);
  std::size_t count = 0;
  for (const auto& record : records_) {
    ++count;
    series.add(static_cast<double>(record.at.us) / 1e6, static_cast<double>(count));
  }
  return series;
}

}  // namespace dfi
