// NotPetya surrogate (paper Section V-B).
//
// Propagation logic reproduced from the paper's description of its
// surrogate:
//  * on infection, the worm gathers a target list of all end hosts and
//    servers via reconnaissance (instant — AD enumeration), shuffles it,
//    and attacks targets serially in a loop;
//  * per target, it first opens a connection to the victim service (the
//    network-reachability test that DFI's policies gate); on success the
//    exploit payload is sent first — it succeeds only on vulnerable
//    (unpatched) machines; if the exploit fails, the worm tries every
//    credential cached on the local host and succeeds if one grants Local
//    Administrator on the target;
//  * after looping through all targets the worm waits three minutes and
//    restarts (reshuffled);
//  * each instance propagates for a randomly chosen 10-60 minutes, then
//    times out ("ransomware lock-down") and stops spreading.
//
// Every connection attempt is a real simulated TCP handshake through the
// OpenFlow data plane, so DFI's Table-0 rules (and their event-driven
// churn under AT-RBAC) are what the worm actually runs into.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "sim/stats.h"
#include "testbed/enterprise.h"

namespace dfi {

struct WormConfig {
  std::uint16_t target_port = 445;
  SimDuration sweep_pause = minutes(3);
  double min_active_minutes = 10.0;   // propagation window, uniform
  double max_active_minutes = 60.0;
  SimDuration exploit_time = seconds(1.0);        // payload send + attempt
  SimDuration credential_time = milliseconds(500);  // dump + remote logon
  ConnectOptions connect{seconds(20.0), seconds(3.0), 6};  // Windows-like SYN behaviour
  std::uint64_t seed = 7;

  // Propagation-vector toggles. NotPetya used both (the paper's surrogate);
  // a WannaCry-style strain is exploit-only; credential-only models a pure
  // lateral-movement tool (e.g. mimikatz + psexec).
  bool exploit_vector = true;
  bool credential_vector = true;
};

struct InfectionRecord {
  Hostname host;
  Hostname infected_from;  // empty for the foothold
  SimTime at{};
  bool via_exploit = false;  // false = credential theft (or foothold)
};

struct WormStats {
  std::uint64_t connection_attempts = 0;
  std::uint64_t connections_succeeded = 0;
  std::uint64_t exploit_successes = 0;     // fresh infections via exploit
  std::uint64_t credential_successes = 0;  // fresh infections via credentials
  std::uint64_t timed_out_instances = 0;
};

class WormScenario {
 public:
  WormScenario(EnterpriseTestbed& testbed, WormConfig config);

  // Plant the initial foothold at the given simulated time.
  void infect_foothold(const Hostname& host, SimTime at);

  // Advance the simulation (worm + user activity + network all progress).
  void run_until(SimTime t) { testbed_.sim().run_until(t); }

  bool is_infected(const Hostname& host) const { return infected_.count(host) != 0; }
  std::size_t infected_count() const { return infected_.size(); }
  const std::vector<InfectionRecord>& infections() const { return records_; }
  const WormStats& stats() const { return stats_; }

  // Step function: seconds since scenario start -> number infected.
  TimeSeries infection_curve() const;

 private:
  struct Instance {
    Hostname host;
    SimTime active_until{};
    std::vector<Hostname> targets;
    std::size_t next_target = 0;
    Rng rng{0};
  };

  // Returns true if `host` was newly infected.
  bool infect(const Hostname& host, const Hostname& from, bool via_exploit);
  void start_instance(const Hostname& host);
  void attempt_next(std::shared_ptr<Instance> instance);
  void attack_target(std::shared_ptr<Instance> instance, const Hostname& target);

  EnterpriseTestbed& testbed_;
  WormConfig config_;
  Rng rng_;
  std::set<Hostname> infected_;
  std::vector<InfectionRecord> records_;
  WormStats stats_;
};

}  // namespace dfi
