#include "controller/learning_controller.h"

#include "common/logging.h"

namespace dfi {

LearningController::LearningController(Simulator& sim, ControllerConfig config, Rng rng)
    : sim_(sim), config_(config), rng_(rng) {}

LearningController::Session& LearningController::accept_connection(SendFn send) {
  sessions_.push_back(std::make_unique<Session>(*this, std::move(send)));
  return *sessions_.back();
}

LearningController::Session::Session(LearningController& controller, SendFn send)
    : controller_(controller), send_(std::move(send)) {}

void LearningController::Session::send(const OfMessage& message) {
  send_(encode(message));
}

void LearningController::Session::receive(const std::vector<std::uint8_t>& chunk) {
  decoder_.feed(chunk);
  for (auto& result : decoder_.drain()) {
    if (!result.ok()) {
      DFI_WARN << "controller: malformed frame: " << result.error().message;
      continue;
    }
    handle(result.value());
  }
}

void LearningController::Session::handle(const OfMessage& message) {
  struct Visitor {
    Session& session;
    std::uint32_t xid;

    void operator()(const HelloMsg&) {
      // Complete the handshake: our HELLO, then learn the datapath.
      session.send(OfMessage{session.next_xid_++, HelloMsg{}});
      session.send(OfMessage{session.next_xid_++, FeaturesRequestMsg{}});
    }
    void operator()(const FeaturesReplyMsg& m) {
      session.dpid_ = m.datapath_id;
      session.advertised_tables_ = m.n_tables;
    }
    void operator()(const PacketInMsg& m) {
      ++session.controller_.stats_.packet_ins;
      // Model controller compute time, then react.
      auto& controller = session.controller_;
      double delay_ms = 0.0;
      if (!controller.config_.zero_latency) {
        delay_ms = controller.rng_.lognormal_from_moments(
            controller.config_.processing_mean_ms, controller.config_.processing_sd_ms);
      }
      Session* target = &session;
      controller.sim_.schedule_after(
          milliseconds(delay_ms),
          [target, m, id = xid]() { target->handle_packet_in(m, id); });
    }
    void operator()(const EchoRequestMsg& m) {
      session.send(OfMessage{xid, EchoReplyMsg{m.data}});
    }
    void operator()(const ErrorMsg&) { ++session.controller_.stats_.errors_received; }
    void operator()(const FlowRemovedMsg&) {
      ++session.controller_.stats_.flow_removed_received;
    }
    void operator()(const PortStatusMsg& m) {
      ++session.controller_.stats_.port_status_received;
      if (m.desc.link_down() || m.reason == PortStatusReason::kDelete) {
        // Unlearn every MAC last seen on the failed port; traffic to those
        // hosts falls back to flooding until they are seen again.
        for (auto it = session.mac_table_.begin(); it != session.mac_table_.end();) {
          if (it->second == m.desc.port_no) {
            it = session.mac_table_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    void operator()(const EchoReplyMsg&) {}
    void operator()(const FeaturesRequestMsg&) {}
    void operator()(const PacketOutMsg&) {}
    void operator()(const FlowModMsg&) {}
    void operator()(const MultipartRequestMsg&) {}
    void operator()(const MultipartReplyMsg&) {}
    void operator()(const BarrierRequestMsg&) {}
    void operator()(const BarrierReplyMsg&) {}
  };
  std::visit(Visitor{*this, message.xid}, message.payload);
}

void LearningController::Session::handle_packet_in(const PacketInMsg& packet_in,
                                                   std::uint32_t) {
  const auto parsed = Packet::parse(packet_in.data);
  if (!parsed.ok()) return;
  const Packet& packet = parsed.value();

  // Learn the source location.
  if (!packet.eth.src.is_multicast()) {
    mac_table_[packet.eth.src] = packet_in.in_port;
  }

  const auto destination = mac_table_.find(packet.eth.dst);
  const bool known =
      !packet.eth.dst.is_broadcast() && !packet.eth.dst.is_multicast() &&
      destination != mac_table_.end();

  if (known) {
    // Install a forwarding rule for this destination, then forward the
    // triggering packet. The controller addresses its "Table 0" — the
    // proxy shifts it to the switch's Table 1.
    FlowModMsg mod;
    mod.command = FlowModCommand::kAdd;
    mod.table_id = 0;
    mod.priority = controller_.config_.forwarding_rule_priority;
    mod.idle_timeout = controller_.config_.idle_timeout_sec;
    if (controller_.config_.exact_match_rules) {
      mod.match = Match::exact_from_packet(packet, packet_in.in_port);
    } else {
      mod.match.eth_dst = packet.eth.dst;
    }
    mod.instructions = Instructions::output(destination->second);
    send(OfMessage{next_xid_++, mod});
    ++controller_.stats_.flow_mods_sent;

    PacketOutMsg out;
    out.in_port = packet_in.in_port;
    out.actions = {OutputAction{destination->second}};
    out.data = packet_in.data;
    send(OfMessage{next_xid_++, std::move(out)});
    ++controller_.stats_.packet_outs_sent;
  } else {
    // Unknown destination (or broadcast): flood.
    PacketOutMsg out;
    out.in_port = packet_in.in_port;
    out.actions = {OutputAction{kPortFlood}};
    out.data = packet_in.data;
    send(OfMessage{next_xid_++, std::move(out)});
    ++controller_.stats_.packet_outs_sent;
    ++controller_.stats_.floods;
  }
}

}  // namespace dfi
