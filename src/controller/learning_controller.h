// Reactive L2-learning SDN controller (ONOS reactive-forwarding surrogate).
//
// The paper runs ONOS 1.13; DFI is oblivious to the controller, so any
// reactive controller exercises the interposition path. This one implements
// the classic learning switch: it learns source MAC -> ingress port from
// Packet-in events, installs destination-MAC forwarding rules into what it
// believes is Table 0 (the proxy transparently shifts its writes to Table
// 1), and floods unknown destinations via Packet-out.
//
// Controller processing latency per Packet-in is sampled from a log-normal
// distribution; it dominates the no-DFI baseline TTFB of ~4-6 ms (Fig. 4).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/mac.h"
#include "openflow/wire.h"
#include "sim/simulator.h"

namespace dfi {

struct ControllerConfig {
  // Per-Packet-in processing time in ms.
  double processing_mean_ms = 2.0;
  double processing_sd_ms = 0.5;
  bool zero_latency = false;

  std::uint16_t forwarding_rule_priority = 10;
  // Install rules with this idle timeout (0 = none). ONOS reactive
  // forwarding defaults to short idle timeouts; configurable for ablations.
  std::uint16_t idle_timeout_sec = 0;
  // Install per-flow (exact-match) selectors, as ONOS reactive forwarding
  // does — every new flow then visits the controller once, which is what
  // gives the paper's flat 4-6 ms no-DFI TTFB (Fig. 4). When false, rules
  // match destination MAC only (classic learning switch).
  bool exact_match_rules = true;
};

struct ControllerStats {
  std::uint64_t packet_ins = 0;
  std::uint64_t flow_mods_sent = 0;
  std::uint64_t packet_outs_sent = 0;
  std::uint64_t floods = 0;
  std::uint64_t errors_received = 0;
  std::uint64_t flow_removed_received = 0;
  std::uint64_t port_status_received = 0;
};

class LearningController {
 public:
  using SendFn = std::function<void(const std::vector<std::uint8_t>&)>;

  class Session {
   public:
    Session(LearningController& controller, SendFn send);

    // Bytes arriving from the switch (through the proxy, when present).
    void receive(const std::vector<std::uint8_t>& chunk);

    std::optional<Dpid> dpid() const { return dpid_; }
    std::uint8_t advertised_tables() const { return advertised_tables_; }

   private:
    friend class LearningController;
    void handle(const OfMessage& message);
    void handle_packet_in(const PacketInMsg& packet_in, std::uint32_t xid);
    void send(const OfMessage& message);

    LearningController& controller_;
    SendFn send_;
    FrameDecoder decoder_;
    std::optional<Dpid> dpid_;
    std::uint8_t advertised_tables_ = 0;
    std::map<MacAddress, PortNo> mac_table_;
    std::uint32_t next_xid_ = 1;
  };

  LearningController(Simulator& sim, ControllerConfig config, Rng rng);

  Session& accept_connection(SendFn send);

  const ControllerStats& stats() const { return stats_; }
  const std::vector<std::unique_ptr<Session>>& sessions() const { return sessions_; }

 private:
  friend class Session;

  Simulator& sim_;
  ControllerConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<Session>> sessions_;
  ControllerStats stats_;
};

}  // namespace dfi
