// cbench surrogate (paper Section V-A, Table I / Table II).
//
// The paper measures the DFI control plane with cbench, a synthetic
// OpenFlow benchmark that emulates a switch and blasts Packet-in events
// with randomized headers at the control plane. This surrogate applies the
// same method to our stack: a real SwitchDevice is attached through the
// DFI Proxy (zero-latency channels isolate the control plane itself, as
// cbench-over-localhost does), an allow-all policy is installed, and
// randomized packets are injected.
//
//  * Latency mode: one flow at a time — inject, wait for the compiled flow
//    rule to come back, measure, repeat.
//  * Throughput mode: open-loop Poisson arrivals at a configured rate;
//    completed flow-rule installs per second is the achieved throughput.
#pragma once

#include <memory>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "controller/learning_controller.h"
#include "core/dfi_system.h"
#include "openflow/switch_device.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace dfi {

struct CbenchConfig {
  DfiConfig dfi;
  std::uint64_t seed = 0xcbe9c4;
};

class CbenchEmulator {
 public:
  explicit CbenchEmulator(CbenchConfig config = {});
  ~CbenchEmulator();

  // Serial request/response; returns per-flow latency samples in ms.
  SampleStats run_latency_mode(int samples);

  // Open-loop arrivals at `offered_fps` for `duration`; returns completed
  // flow installs per second.
  double run_throughput_mode(double offered_fps, SimDuration duration);

  // Ramp the offered rate until completions stop growing; returns the
  // saturation throughput (flows/sec).
  double find_saturation(double start_fps = 800.0, double step_fps = 200.0,
                         double max_fps = 4000.0,
                         SimDuration window = seconds(10.0));

  DfiSystem& dfi() { return *dfi_; }

 private:
  void inject_random_flow();

  Simulator sim_;
  MessageBus bus_;
  std::unique_ptr<DfiSystem> dfi_;
  std::unique_ptr<LearningController> controller_;
  std::unique_ptr<SwitchDevice> switch_;
  Rng rng_;
  // Completion signal: flow-mod frames observed on the proxy->switch leg.
  std::uint64_t flow_mods_seen_ = 0;
};

}  // namespace dfi
