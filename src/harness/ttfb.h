// Time-to-First-Byte experiment (paper Section V-A, Fig. 4).
//
// Reproduces the paper's end-to-end setup: a small data plane (one software
// switch, three end hosts) attached to the ONOS-surrogate controller either
// directly (no DFI) or through the DFI proxy. A prober host repeatedly
// opens TCP connections to a responder and measures SYN -> SYN-ACK time;
// simultaneously, randomized Ethernet packets are injected into the data
// plane at a configured rate as background traffic. Each background packet
// is a fresh flow, so the configured rate is the new-flow arrival rate on
// the control plane.
//
// End-to-end calibration: the paper's end-to-end DFI path saturates near
// 700-800 flows/sec although the isolated control plane sustains ~1350
// (Table I); the difference is per-connection overhead (OVS rule
// application, OpenFlow session handling) absent from the microbenchmark.
// `e2e_service_scale` models that overhead; see EXPERIMENTS.md.
#pragma once

#include <cstdint>

#include "common/sim_time.h"
#include "core/proxy.h"
#include "sim/stats.h"

namespace dfi {

struct TtfbConfig {
  bool with_dfi = true;
  double background_fps = 0.0;        // new background flows per second
  SimDuration duration = seconds(30.0);
  SimDuration probe_interval = milliseconds(250);
  std::uint64_t seed = 0x77fb;
  // Scale applied to the PCP component service times in the end-to-end
  // configuration (see header comment). 1.0 reproduces Table I conditions.
  double e2e_service_scale = 1.8;
};

struct TtfbResult {
  SampleStats ttfb_ms;        // successful probes only
  int probes_sent = 0;
  int probes_failed = 0;      // timed out entirely
  std::uint64_t background_flows = 0;
  std::uint64_t control_plane_drops = 0;  // PCP queue rejections
  // Full proxy counters at end of run (with_dfi only), including the
  // recovery/degradation mirrors — feed to recovery_report().
  ProxyStats proxy;
};

TtfbResult run_ttfb_experiment(const TtfbConfig& config);

}  // namespace dfi
