#include "harness/cbench.h"

#include <cassert>

namespace dfi {
namespace {

constexpr Dpid kCbenchDpid{0xcb};

}  // namespace

CbenchEmulator::CbenchEmulator(CbenchConfig config) : rng_(config.seed) {
  dfi_ = std::make_unique<DfiSystem>(sim_, bus_, config.dfi);

  ControllerConfig controller_config;
  controller_config.zero_latency = true;  // isolate DFI, per the paper
  controller_ = std::make_unique<LearningController>(sim_, controller_config,
                                                     Rng(config.seed ^ 0xc0ull));

  SwitchConfig switch_config;
  switch_config.dpid = kCbenchDpid;
  switch_config.table_capacity = 1 << 20;  // never the bottleneck here
  switch_ = std::make_unique<SwitchDevice>(switch_config, [this]() { return sim_.now(); });

  // Wire switch <-> proxy <-> controller with zero-latency channels. The
  // proxy->switch leg counts FLOW_MOD frames: one completed DFI decision
  // each (the PCP's compiled rule or a flush).
  struct Wiring {
    DfiProxy::Session* proxy = nullptr;
    LearningController::Session* ctrl = nullptr;
  };
  auto wiring = std::make_shared<Wiring>();

  DfiProxy::Session& proxy_session = dfi_->proxy().create_session(
      [this](const std::vector<std::uint8_t>& bytes) {
        if (bytes.size() >= 2 &&
            bytes[1] == static_cast<std::uint8_t>(OfType::kFlowMod)) {
          ++flow_mods_seen_;
          // Like cbench, count the response but do not apply it: the
          // emulated switch would otherwise accumulate one exact-match
          // rule per randomized flow.
          return;
        }
        switch_->receive_control(bytes);
      },
      [wiring](const std::vector<std::uint8_t>& bytes) {
        if (wiring->ctrl != nullptr) wiring->ctrl->receive(bytes);
      });
  wiring->proxy = &proxy_session;

  LearningController::Session& ctrl_session =
      controller_->accept_connection([wiring](const std::vector<std::uint8_t>& bytes) {
        if (wiring->proxy != nullptr) wiring->proxy->from_controller(bytes);
      });
  wiring->ctrl = &ctrl_session;

  switch_->add_port(PortNo{1}, [](PortNo, const std::vector<std::uint8_t>&) {});
  switch_->add_port(PortNo{2}, [](PortNo, const std::vector<std::uint8_t>&) {});
  switch_->connect_control([wiring](const std::vector<std::uint8_t>& bytes) {
    if (wiring->proxy != nullptr) wiring->proxy->from_switch(bytes);
  });
  sim_.run_until(sim_.now() + seconds(1.0));  // settle the handshake

  // Allow-all policy: cbench measures processing cost, not policy outcome.
  PolicyRule allow_all;
  allow_all.action = PolicyAction::kAllow;
  dfi_->policy_manager().insert(allow_all, PdpPriority{1}, "cbench-allow-all");
}

CbenchEmulator::~CbenchEmulator() = default;

void CbenchEmulator::inject_random_flow() {
  // Randomized headers, as cbench generates: unique MACs/IPs/ports so every
  // packet is a new flow (exact-match DFI rules never match it).
  const MacAddress src = MacAddress::from_u64(0x060000000000ull | (rng_.next_u64() & 0xffffffff));
  const MacAddress dst = MacAddress::from_u64(0x0a0000000000ull | (rng_.next_u64() & 0xffffffff));
  const Ipv4Address src_ip(static_cast<std::uint32_t>(rng_.next_u64()));
  const Ipv4Address dst_ip(static_cast<std::uint32_t>(rng_.next_u64()));
  const auto sport = static_cast<std::uint16_t>(rng_.uniform_int(1024, 65535));
  const auto dport = static_cast<std::uint16_t>(rng_.uniform_int(1, 1023));
  const Packet packet = make_tcp_packet(src, dst, src_ip, dst_ip, sport, dport);
  switch_->receive_packet(PortNo{1}, packet.serialize());
}

SampleStats CbenchEmulator::run_latency_mode(int samples) {
  SampleStats latency_ms;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t before = flow_mods_seen_;
    const SimTime start = sim_.now();
    inject_random_flow();
    // Serial mode: run until this flow's rule lands in the switch.
    while (flow_mods_seen_ == before && !sim_.empty()) {
      sim_.run_until(sim_.now() + milliseconds(1.0));
    }
    latency_ms.add((sim_.now() - start).to_ms());
    sim_.run();  // drain any trailing controller traffic
  }
  return latency_ms;
}

double CbenchEmulator::run_throughput_mode(double offered_fps, SimDuration duration) {
  assert(offered_fps > 0.0);
  const SimTime window_start = sim_.now();
  const SimTime window_end = window_start + duration;

  // Open-loop Poisson arrivals.
  std::function<void()> arrival = [&]() {
    if (sim_.now() >= window_end) return;
    inject_random_flow();
    sim_.schedule_after(seconds(rng_.exponential(1.0 / offered_fps)), arrival);
  };
  const std::uint64_t before = flow_mods_seen_;
  sim_.schedule_at(window_start, arrival);
  sim_.run_until(window_end);
  const std::uint64_t completed = flow_mods_seen_ - before;
  sim_.run();  // drain
  return static_cast<double>(completed) / duration.to_seconds();
}

double CbenchEmulator::find_saturation(double start_fps, double step_fps,
                                       double max_fps, SimDuration window) {
  double best = 0.0;
  for (double rate = start_fps; rate <= max_fps; rate += step_fps) {
    const double achieved = run_throughput_mode(rate, window);
    if (achieved > best) best = achieved;
    // Past saturation the achieved rate stops tracking the offered rate.
    if (achieved < rate * 0.85 && rate > start_fps) break;
  }
  return best;
}

}  // namespace dfi
