#include "harness/worm_experiment.h"

namespace dfi {

WormExperimentResult run_worm_experiment(const WormExperimentConfig& config) {
  EnterpriseConfig enterprise;
  enterprise.condition = config.condition;
  enterprise.seed = config.seed;
  if (config.condition != PolicyCondition::kBaseline) {
    // Fig. 5 evaluates policy dynamics, not control-plane latency; the
    // functional configuration keeps multi-hour day simulations cheap
    // while every flow still traverses the full DFI decision path.
    enterprise.dfi = DfiConfig::functional();
  }
  enterprise.controller.zero_latency = true;

  EnterpriseTestbed testbed(enterprise);
  testbed.schedule_all_activity();

  WormConfig worm_config = config.worm;
  worm_config.seed ^= config.seed;
  WormScenario worm(testbed, worm_config);

  const SimTime foothold_at = clock_time(config.foothold_hour);
  worm.infect_foothold(config.foothold, foothold_at);
  worm.run_until(foothold_at + config.horizon_after_foothold);

  WormExperimentResult result;
  result.total_infected = worm.infected_count();
  result.endpoints = testbed.endpoints().size();
  result.stats = worm.stats();

  const double t0 = static_cast<double>(foothold_at.us) / 1e6;
  result.curve.add(0.0, 0.0);
  std::size_t count = 0;
  for (const auto& record : worm.infections()) {
    ++count;
    const double t = static_cast<double>(record.at.us) / 1e6 - t0;
    result.curve.add(t, static_cast<double>(count));
    if (!record.infected_from.value.empty() && result.first_infection_s < 0.0) {
      result.first_infection_s = t;
    }
    result.last_infection_s = t;
  }
  return result;
}

}  // namespace dfi
