// Fixed-width table rendering for the experiment binaries, so every bench
// prints the same rows/series the paper reports, side by side with the
// paper's numbers.
#pragma once

#include <string>
#include <vector>

namespace dfi {

struct ProxyStats;

class Report {
 public:
  explicit Report(std::string title);

  void columns(std::vector<std::string> headers);
  void row(std::vector<std::string> cells);
  void note(std::string text);

  // Render to stdout.
  void print() const;

  static std::string fmt(double value, int decimals = 2);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

// Recovery/degradation summary (DESIGN.md §6): renders the failure-time
// counters DfiProxy::stats() mirrors from the HealthMonitor, Journal and
// PCP — degraded window entries/exits, gated Packet-in outcomes, reconnect
// backoff retries, Table-0 resync clears and journal replay activity.
Report recovery_report(const ProxyStats& stats);

}  // namespace dfi
