#include "harness/report.h"

#include <algorithm>
#include <cstdio>

#include "core/proxy.h"

namespace dfi {

Report::Report(std::string title) : title_(std::move(title)) {}

void Report::columns(std::vector<std::string> headers) { headers_ = std::move(headers); }

void Report::row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Report::note(std::string text) { notes_.push_back(std::move(text)); }

std::string Report::fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

void Report::print() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& cells : rows_) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  }

  std::printf("\n=== %s ===\n", title_.c_str());
  const auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("  ");
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::vector<std::string> separators;
  separators.reserve(widths.size());
  for (const std::size_t width : widths) separators.push_back(std::string(width, '-'));
  print_row(separators);
  for (const auto& cells : rows_) print_row(cells);
  for (const auto& text : notes_) std::printf("  note: %s\n", text.c_str());
  std::printf("\n");
}

Report recovery_report(const ProxyStats& stats) {
  Report report("Recovery & degraded-mode summary");
  report.columns({"counter", "value"});
  const auto row = [&report](const char* name, std::uint64_t value) {
    report.row({name, std::to_string(value)});
  };
  row("degraded entries", stats.degraded_entries);
  row("degraded exits", stats.degraded_exits);
  row("packet-ins suppressed while degraded (fail-secure)",
      stats.degraded_suppressed);
  row("packet-ins forwarded while degraded (fail-open)",
      stats.degraded_forwarded);
  row("reconnect backoff retries", stats.backoff_retries);
  row("table-0 resync clears", stats.resync_clears);
  row("journal replays", stats.journal_replays);
  row("journal records replayed", stats.journal_records_replayed);
  row("journal torn tails truncated", stats.journal_torn_tails);
  return report;
}

}  // namespace dfi
