// Shared driver for the security evaluation (paper Section V-B, Fig. 5).
//
// Builds the paper-shaped enterprise testbed under a policy condition,
// schedules a day of user activity, plants the NotPetya-surrogate foothold
// at a chosen hour, and runs the simulation to a horizon.
#pragma once

#include <cstdint>

#include "sim/stats.h"
#include "testbed/enterprise.h"
#include "worm/worm.h"

namespace dfi {

struct WormExperimentConfig {
  PolicyCondition condition = PolicyCondition::kBaseline;
  int foothold_hour = 9;
  Hostname foothold{"host-d3-2"};
  SimDuration horizon_after_foothold = hours(2.0);
  std::uint64_t seed = 42;
  WormConfig worm;  // paper-faithful defaults
};

struct WormExperimentResult {
  TimeSeries curve;   // seconds since foothold -> infected count
  std::size_t total_infected = 0;
  std::size_t endpoints = 0;
  // Seconds from foothold to first non-foothold infection; <0 if none.
  double first_infection_s = -1.0;
  // Seconds from foothold until the last infection observed; <0 if none.
  double last_infection_s = -1.0;
  WormStats stats;
};

WormExperimentResult run_worm_experiment(const WormExperimentConfig& config);

}  // namespace dfi
