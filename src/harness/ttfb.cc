#include "harness/ttfb.h"

#include <functional>
#include <memory>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "controller/learning_controller.h"
#include "core/dfi_system.h"
#include "sim/simulator.h"
#include "testbed/network.h"

namespace dfi {

TtfbResult run_ttfb_experiment(const TtfbConfig& config) {
  Simulator sim;
  MessageBus bus;
  Rng rng(config.seed);
  TtfbResult result;

  // Data plane: one switch, prober + responder + background source.
  Network network(sim);
  network.add_switch(Dpid{1});
  Host& prober = network.add_host(Hostname{"prober"},
                                  MacAddress::from_u64(0x020000000001ull), Dpid{1},
                                  PortNo{2});
  Host& responder = network.add_host(Hostname{"responder"},
                                     MacAddress::from_u64(0x020000000002ull), Dpid{1},
                                     PortNo{3});
  network.add_host(Hostname{"background"}, MacAddress::from_u64(0x020000000003ull),
                   Dpid{1}, PortNo{4});

  prober.set_ip(Ipv4Address(10, 0, 0, 1));
  responder.set_ip(Ipv4Address(10, 0, 0, 2));
  (*network.arp())[prober.ip()] = prober.mac();
  (*network.arp())[responder.ip()] = responder.mac();
  responder.open_port(80);

  ControllerConfig controller_config;  // ~2 ms processing: no-DFI TTFB 4-6 ms
  LearningController controller(sim, controller_config, Rng(config.seed ^ 0xc2ull));

  std::unique_ptr<DfiSystem> dfi;
  if (config.with_dfi) {
    DfiConfig dfi_config;
    dfi_config.seed = config.seed;
    dfi_config.pcp.binding_query_mean_ms *= config.e2e_service_scale;
    dfi_config.pcp.binding_query_sd_ms *= config.e2e_service_scale;
    dfi_config.pcp.policy_query_mean_ms *= config.e2e_service_scale;
    dfi_config.pcp.policy_query_sd_ms *= config.e2e_service_scale;
    dfi_config.pcp.other_mean_ms *= config.e2e_service_scale;
    dfi_config.pcp.other_sd_ms *= config.e2e_service_scale;
    dfi = std::make_unique<DfiSystem>(sim, bus, dfi_config);
    network.attach_dfi_control(*dfi, controller);
  } else {
    network.attach_direct_control(controller);
  }
  network.settle();

  if (dfi != nullptr) {
    PolicyRule allow_all;
    allow_all.action = PolicyAction::kAllow;
    dfi->policy_manager().insert(allow_all, PdpPriority{1}, "ttfb-allow-all");
  }

  const SimTime window_end = sim.now() + config.duration;

  // Background: open-loop randomized Ethernet frames, each a fresh flow.
  auto bg_count = std::make_shared<std::uint64_t>(0);
  if (config.background_fps > 0.0) {
    auto bg_rng = std::make_shared<Rng>(rng.fork());
    auto arrival = std::make_shared<std::function<void()>>();
    *arrival = [&sim, &network, bg_rng, bg_count, window_end, arrival,
                fps = config.background_fps]() {
      if (sim.now() >= window_end) return;
      Packet packet;
      packet.eth.src =
          MacAddress::from_u64(0x0e0000000000ull | (bg_rng->next_u64() & 0xffffffffull));
      packet.eth.dst =
          MacAddress::from_u64(0x0e0100000000ull | (bg_rng->next_u64() & 0xffffffffull));
      packet.eth.ether_type = static_cast<std::uint16_t>(EtherType::kExperimental);
      network.inject(Dpid{1}, PortNo{4}, packet.serialize());
      ++*bg_count;
      sim.schedule_after(seconds(bg_rng->exponential(1.0 / fps)), *arrival);
    };
    sim.schedule_after(seconds(0.001), *arrival);
  }

  // Probes: periodic TCP connects; TTFB = SYN -> SYN-ACK (both directions
  // traverse the control plane on their first packet).
  auto probe = std::make_shared<std::function<void()>>();
  ConnectOptions probe_options;
  probe_options.timeout = seconds(2.0);
  probe_options.rto = milliseconds(150);  // SYN retransmit after a drop
  probe_options.max_syn_retries = 8;
  *probe = [&sim, &prober, &responder, &result, probe, probe_options, window_end,
            interval = config.probe_interval]() {
    if (sim.now() >= window_end) return;
    ++result.probes_sent;
    prober.connect(
        responder.ip(), 80,
        [&result](const ConnectResult& outcome) {
          if (outcome.connected) {
            result.ttfb_ms.add(outcome.time_to_first_byte.to_ms());
          } else {
            ++result.probes_failed;
          }
        },
        probe_options);
    sim.schedule_after(interval, *probe);
  };
  sim.schedule_after(milliseconds(10.0), *probe);

  sim.run_until(window_end + seconds(5.0));  // let trailing probes resolve

  result.background_flows = *bg_count;
  if (dfi != nullptr) {
    result.control_plane_drops = dfi->pcp().stats().dropped_overload;
    result.proxy = dfi->proxy().stats();
  }
  return result;
}

}  // namespace dfi
