// Epoch-invalidated Packet-in decision cache (PCP hot path).
//
// Key: the canonical low-level flow tuple the PCP observes on a Packet-in
// (ingress DPID + port, MACs, EtherType, IPs, ip_proto, L4 ports). Value:
// the complete decision previously computed for that tuple — policy
// verdict plus the compiled Table-0 flow rule — stamped with the policy
// epoch and binding epoch in force when it was derived.
//
// Late binding (paper Section III-B) means a decision is valid only for
// the exact policy database and identifier-binding state it was derived
// from: the same packet from the same port must be re-decided the moment
// alice logs off, a DHCP lease moves, or a PDP inserts/revokes a rule.
// Rather than tracking which rules and bindings each decision read, the
// cache is guarded by two global version counters: the Policy Manager
// bumps its epoch on every insert/revoke, and the Entity Resolution
// Manager bumps its epoch on every binding change that could alter an
// enrichment or spoof-validation result. A lookup whose stamps do not both
// match the current epochs is discarded and the PCP re-runs the full
// validate/enrich/query pipeline — the same conservative rule the paper's
// cookie-flush consistency applies to switch-resident state, applied to
// controller-resident state. Any stale epoch forces a full re-decision, so
// a hit can never return an answer the current policy+bindings would not.
//
// The cache is bounded: when full, the whole map is dropped (bulk
// eviction) instead of maintaining per-entry LRU bookkeeping on the hot
// path; entries repopulate at one full decision per flow, exactly the cost
// the cache was absorbing.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "net/packet.h"

namespace dfi {

// Canonical flow tuple. Absent layers are zeroed and guarded by presence
// flags so an ARP packet cannot alias an IPv4 flow with zero addresses.
struct FlowKey {
  std::uint64_t dpid = 0;
  std::uint32_t in_port = 0;
  std::uint64_t src_mac = 0;
  std::uint64_t dst_mac = 0;
  std::uint16_t ether_type = 0;
  bool has_ipv4 = false;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint8_t ip_proto = 0;
  bool has_l4 = false;
  std::uint16_t src_l4 = 0;
  std::uint16_t dst_l4 = 0;

  static FlowKey from_packet(Dpid dpid, PortNo in_port, const Packet& packet);

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& key) const noexcept;
};

struct DecisionCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;          // key absent
  std::uint64_t stale_policy = 0;    // policy epoch moved since stored
  std::uint64_t stale_binding = 0;   // binding epoch moved since stored
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;       // entries dropped by bulk eviction

  std::uint64_t lookups() const {
    return hits + misses + stale_policy + stale_binding;
  }
  double hit_rate() const {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename Decision>
class DecisionCache {
 public:
  explicit DecisionCache(std::size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }

  // The cached decision for `key` iff it was derived under exactly the
  // current epochs; nullptr (and a recorded miss/stale) otherwise. Stale
  // entries are erased eagerly so the map holds live decisions only.
  const Decision* lookup(const FlowKey& key, std::uint64_t policy_epoch,
                         std::uint64_t binding_epoch) {
    if (!enabled()) return nullptr;
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    if (it->second.policy_epoch != policy_epoch) {
      ++stats_.stale_policy;
      entries_.erase(it);
      return nullptr;
    }
    if (it->second.binding_epoch != binding_epoch) {
      ++stats_.stale_binding;
      entries_.erase(it);
      return nullptr;
    }
    ++stats_.hits;
    return &it->second.decision;
  }

  void store(const FlowKey& key, Decision decision, std::uint64_t policy_epoch,
             std::uint64_t binding_epoch) {
    if (!enabled()) return;
    if (entries_.size() >= capacity_ && !entries_.contains(key)) {
      stats_.evictions += entries_.size();
      entries_.clear();
    }
    ++stats_.insertions;
    entries_[key] = Entry{std::move(decision), policy_epoch, binding_epoch};
  }

  void clear() {
    stats_.evictions += entries_.size();
    entries_.clear();
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const DecisionCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    Decision decision;
    std::uint64_t policy_epoch = 0;
    std::uint64_t binding_epoch = 0;
  };

  std::size_t capacity_;
  std::unordered_map<FlowKey, Entry, FlowKeyHash> entries_;
  DecisionCacheStats stats_;
};

}  // namespace dfi
