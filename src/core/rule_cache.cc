#include "core/rule_cache.h"

namespace dfi {
namespace {

// Pin one side of the wildcard match from the policy spec, narrowing
// high-level identifiers to the flow's observed addresses. Returns false
// when no safe pinning exists (caller falls back to exact-match).
bool pin_endpoint(const EndpointSpec& spec, const EndpointView& view, bool is_source,
                  Match& match, bool& identity_derived) {
  const bool names_identity = spec.user.has_value() || spec.host.has_value();
  if (names_identity) {
    // Narrow the identity to the observed IP — a safe subset of the policy
    // scope under the current bindings.
    if (!view.ip.has_value()) return false;
    identity_derived = true;
    (is_source ? match.ipv4_src : match.ipv4_dst) = *view.ip;
  }
  if (spec.ip.has_value()) {
    (is_source ? match.ipv4_src : match.ipv4_dst) = *spec.ip;
  }
  if (spec.mac.has_value()) {
    (is_source ? match.eth_src : match.eth_dst) = *spec.mac;
  }
  if (spec.switch_port.has_value()) {
    // Only the ingress (source) switch port is expressible in a match.
    if (!is_source) return false;
    match.in_port = *spec.switch_port;
  }
  // spec.dpid needs no match field: the rule is installed only on the
  // switch that raised the Packet-in, which the policy already matched.
  return true;
}

}  // namespace

std::optional<WildcardCompileResult> compile_wildcard(const PolicySnapshot& policy,
                                                      const PolicyDecision& decision,
                                                      const FlowView& flow) {
  // Default deny has no policy scope to generalize.
  if (decision.default_deny) return std::nullopt;
  const StoredPolicyRule* stored = policy.find(decision.rule_id);
  if (stored == nullptr) return std::nullopt;

  // Safety gate: any other rule with priority >= ours and the opposite
  // action that overlaps our scope could decide a covered packet
  // differently (including the equal-priority case, where Deny wins).
  for (const auto& other : policy.rules()) {
    if (other.id == stored->id) continue;
    if (other.priority < stored->priority) continue;
    if (other.rule.action == stored->rule.action) continue;
    if (other.rule.overlaps(stored->rule)) return std::nullopt;
  }

  WildcardCompileResult result;
  Match& match = result.match;

  // Frame-level pinning keeps OpenFlow match prerequisites satisfied.
  match.eth_type = flow.ether_type;
  const bool needs_proto = stored->rule.properties.ip_proto.has_value() ||
                           stored->rule.source.l4_port.has_value() ||
                           stored->rule.destination.l4_port.has_value();
  if (needs_proto) {
    if (!flow.ip_proto.has_value()) return std::nullopt;
    match.ip_proto = flow.ip_proto;
  }

  if (!pin_endpoint(stored->rule.source, flow.src, /*is_source=*/true, match,
                    result.identity_derived)) {
    return std::nullopt;
  }
  if (!pin_endpoint(stored->rule.destination, flow.dst, /*is_source=*/false, match,
                    result.identity_derived)) {
    return std::nullopt;
  }

  // L4 ports, typed by the flow's transport.
  const auto pin_port = [&](const std::optional<std::uint16_t>& port, bool is_source) {
    if (!port.has_value()) return;
    const bool is_tcp =
        flow.ip_proto == static_cast<std::uint8_t>(IpProto::kTcp);
    if (is_tcp) {
      (is_source ? match.tcp_src : match.tcp_dst) = *port;
    } else {
      (is_source ? match.udp_src : match.udp_dst) = *port;
    }
  };
  pin_port(stored->rule.source.l4_port, /*is_source=*/true);
  pin_port(stored->rule.destination.l4_port, /*is_source=*/false);

  // A fully-wildcarded result (allow/deny-all policy with no identity) is
  // legitimate: one rule covers the whole table.
  return result;
}

std::optional<WildcardCompileResult> compile_wildcard(const PolicyManager& policy,
                                                      const PolicyDecision& decision,
                                                      const FlowView& flow) {
  return compile_wildcard(*policy.snapshot_view(), decision, flow);
}

}  // namespace dfi
