// Sharded execution plane for Packet-in decisions (DESIGN.md §5).
//
// The pool partitions Packet-ins across N logical PCP shards (the caller
// routes by canonical-flow-tuple hash, so one flow always lands on one
// shard — and therefore one decision cache). Each shard is a full capacity
// unit; two interchangeable backends implement it:
//
//   * kSimulated — one deterministic-simulator ServiceStation per shard.
//     Everything still runs on the single DES thread; shards model parallel
//     *capacity*, not parallel execution, so shards=1 is bit-identical to
//     the paper-calibrated single-PCP model (Table I / Fig. 4) and any N
//     stays deterministic.
//
//   * kThreads — one std::thread worker per shard with a bounded FIFO
//     queue. Work runs concurrently for real; each job returns an "apply"
//     closure that the pool releases back to the control thread strictly in
//     submission order (a sequence-numbered reorder buffer), so all side
//     effects — stats, bus publishes, rule installation, done callbacks —
//     happen single-threaded and in a deterministic order regardless of how
//     worker execution interleaves.
//
// The pool is pure transport: it never inspects packets, snapshots, or
// decisions. The PCP shell decides what runs where (core/pcp.cc).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "core/decision_cache.h"
#include "core/pcp_decide.h"
#include "sim/service_station.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace dfi {

// Fault-injection verdict for one threaded-backend job (DESIGN.md §6).
// Consulted by the worker just before it runs the job.
enum class WorkerFault {
  kNone,
  kStall,  // worker sleeps briefly first — models a wedged decision
  kKill,   // worker abandons the job and exits — models a crashed shard
};

class PcpShardPool {
 public:
  // Thread-backend job: runs on the shard's worker thread and returns the
  // apply closure, which the pool runs later on the control thread (via
  // poll_completions/wait_idle) in submission order.
  using ThreadWork = std::function<std::function<void()>()>;

  // Fault probe for the threaded backend: called from the worker thread
  // with (shard, submission seq) before each job runs, so it must be a
  // pure, thread-safe function. Deterministic probes (hash of seed, shard
  // and seq) make worker crashes replayable.
  using WorkerFaultProbe = std::function<WorkerFault(std::size_t, std::uint64_t)>;

  PcpShardPool(Simulator& sim, const PcpConfig& config);
  ~PcpShardPool();

  PcpShardPool(const PcpShardPool&) = delete;
  PcpShardPool& operator=(const PcpShardPool&) = delete;

  PcpBackend backend() const { return backend_; }
  std::size_t shards() const { return shards_; }

  // The shard one flow is pinned to. mix64 gives the modulo high-entropy
  // low bits (common/hash.h).
  std::size_t shard_of(const FlowKey& key) const {
    return mix64(FlowKeyHash{}(key)) % shards_;
  }

  // --------------------------------------------------- simulated backend
  // Submit to a shard's service station; `on_done` runs in the DES when
  // service completes. Returns false when the shard's queue is full.
  bool submit_simulated(std::size_t shard,
                        ServiceStation::ServiceTimeFn service_time,
                        ServiceStation::DoneFn on_done);

  // ---------------------------------------------------- threaded backend
  // Enqueue work on a shard's worker. Control thread only. Returns false
  // when the shard's queue is full (the caller counts the drop).
  bool submit_threaded(std::size_t shard, ThreadWork work);

  // Run apply closures of finished jobs, in submission order, stopping at
  // the first job still in flight. Control thread only. Returns how many
  // were applied. No-op in the simulated backend.
  //
  // Fault recovery: jobs stranded on a dead shard (worker killed by the
  // fault probe) are executed inline on the control thread first, so the
  // submission-order contract survives worker death. The one job the
  // worker was killed *on* is abandoned — its apply never runs and its
  // callback never fires, exactly like an overload drop.
  std::size_t poll_completions();

  // Block until every accepted job has been applied or abandoned. Control
  // thread only. Wakes on worker death too, so a killed shard can never
  // wedge the caller (the recovery path above drains its queue).
  void wait_idle();

  // ---------------------------------------------------- fault injection
  // Install (or clear, with nullptr) the worker fault probe. Threaded
  // backend only; call from the control thread.
  void set_worker_fault_probe(WorkerFaultProbe probe);

  // Join and restart workers the probe killed; their shards accept
  // submissions again. Returns how many workers were respawned. Control
  // thread only.
  std::size_t respawn_dead_workers();

  std::size_t dead_workers() const;
  // Jobs killed by the probe: accepted but neither executed nor applied.
  std::uint64_t jobs_abandoned() const { return jobs_abandoned_.load(); }

  // Jobs accepted but not yet (simulated: dispatched; threaded: taken by a
  // worker). Aggregated across shards.
  std::size_t queue_depth() const;

  // Wall-clock microseconds each decision spent executing on shard
  // `shard`'s worker (threaded backend only). Read when idle: the stats are
  // written by the worker thread.
  const SampleStats& decision_latency_us(std::size_t shard) const {
    return thread_shards_[shard]->latency_us;
  }

 private:
  struct ThreadShard {
    std::size_t index = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<std::uint64_t, ThreadWork>> queue;
    bool stop = false;
    // Set by the worker (under mu) when the fault probe kills it. A dead
    // shard rejects submissions; its stranded queue is drained inline by
    // poll_completions until respawn_dead_workers revives the worker.
    bool dead = false;
    SampleStats latency_us;  // written by the worker thread only
    std::thread worker;
  };

  void worker_loop(ThreadShard& shard);
  // Execute jobs stranded on dead shards inline (control thread), filing
  // their applies into the reorder buffer under their original seq.
  void recover_dead_shards();

  const PcpBackend backend_;
  const std::size_t shards_;
  const std::size_t queue_capacity_;

  // kSimulated: one station per shard (unique_ptr: stations are immovable).
  std::vector<std::unique_ptr<ServiceStation>> stations_;

  // kThreads: workers + the submission-order reorder buffer.
  std::vector<std::unique_ptr<ThreadShard>> thread_shards_;
  std::uint64_t next_submit_seq_ = 0;  // control thread only
  std::uint64_t next_apply_seq_ = 0;   // control thread only
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  // seq -> apply closure; a null closure marks a job the probe abandoned
  // (poll_completions skips it without running anything).
  std::map<std::uint64_t, std::function<void()>> completed_;
  // Guarded by done_mu_ (workers read it once per job).
  WorkerFaultProbe fault_probe_;
  // Jobs stranded in dead shards' queues, visible to wait_idle's wait
  // predicate without taking shard locks.
  std::atomic<std::uint64_t> stranded_jobs_{0};
  std::atomic<std::uint64_t> jobs_abandoned_{0};
};

}  // namespace dfi
