// Sharded execution plane for Packet-in decisions (DESIGN.md §5).
//
// The pool partitions Packet-ins across N logical PCP shards (the caller
// routes by canonical-flow-tuple hash, so one flow always lands on one
// shard — and therefore one decision cache). Each shard is a full capacity
// unit; two interchangeable backends implement it:
//
//   * kSimulated — one deterministic-simulator ServiceStation per shard.
//     Everything still runs on the single DES thread; shards model parallel
//     *capacity*, not parallel execution, so shards=1 is bit-identical to
//     the paper-calibrated single-PCP model (Table I / Fig. 4) and any N
//     stays deterministic.
//
//   * kThreads — one std::thread worker per shard fed by a pair of bounded
//     lock-free SPSC rings (common/spsc_ring.h): an ingress ring the
//     control thread pushes jobs into, and a completion ring the worker
//     pushes finished "apply" closures into, drained by the control thread.
//     No mutex is taken on the per-packet path; the per-shard mutex and the
//     global done_mu_ exist only to park idle/backpressured threads, and
//     are touched exclusively through an armed-sleeper flag handshake (see
//     spsc_ring.h's ordering notes). Apply closures are released back to
//     the control thread strictly in submission order via a
//     sequence-numbered reorder buffer, so all side effects — stats, bus
//     publishes, rule installation, done callbacks — happen single-threaded
//     and in a deterministic order regardless of how worker execution
//     interleaves.
//
// The pool is pure transport: it never inspects packets, snapshots, or
// decisions. The PCP shell decides what runs where (core/pcp.cc).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/spsc_ring.h"
#include "core/decision_cache.h"
#include "core/pcp_decide.h"
#include "sim/service_station.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace dfi {

// Fault-injection verdict for one threaded-backend job (DESIGN.md §6).
// Consulted by the worker just before it runs the job.
enum class WorkerFault {
  kNone,
  kStall,  // worker sleeps briefly first — models a wedged decision
  kKill,   // worker abandons the job and exits — models a crashed shard
  // Worker runs the decision, then dies before publishing the completion on
  // its ring — models a crash in the window where shard-local state (the
  // decision cache) already saw the job but its effects never reach the
  // control thread. Observably identical to kKill (the job is abandoned)
  // except for that cache residue.
  kKillAfterDecide,
};

class PcpShardPool {
 public:
  // Thread-backend job: runs on the shard's worker thread and returns the
  // apply closure, which the pool runs later on the control thread (via
  // poll_completions/wait_idle) in submission order.
  using ThreadWork = std::function<std::function<void()>()>;

  // Fault probe for the threaded backend: called from the worker thread
  // with (shard, submission seq) before each job runs, so it must be a
  // pure, thread-safe function. Deterministic probes (hash of seed, shard
  // and seq) make worker crashes replayable.
  using WorkerFaultProbe = std::function<WorkerFault(std::size_t, std::uint64_t)>;

  PcpShardPool(Simulator& sim, const PcpConfig& config);
  ~PcpShardPool();

  PcpShardPool(const PcpShardPool&) = delete;
  PcpShardPool& operator=(const PcpShardPool&) = delete;

  PcpBackend backend() const { return backend_; }
  std::size_t shards() const { return shards_; }

  // The shard one flow is pinned to. mix64 gives the modulo high-entropy
  // low bits (common/hash.h).
  std::size_t shard_of(const FlowKey& key) const {
    return mix64(FlowKeyHash{}(key)) % shards_;
  }

  // --------------------------------------------------- simulated backend
  // Submit to a shard's service station; `on_done` runs in the DES when
  // service completes. Returns false when the shard's queue is full.
  bool submit_simulated(std::size_t shard,
                        ServiceStation::ServiceTimeFn service_time,
                        ServiceStation::DoneFn on_done);

  // ---------------------------------------------------- threaded backend
  // Enqueue work on a shard's worker. Control thread only. Returns false
  // when the shard's ingress ring is full (the caller counts the drop).
  bool submit_threaded(std::size_t shard, ThreadWork work);

  // Run apply closures of finished jobs, in submission order, stopping at
  // the first job still in flight. Control thread only. Returns how many
  // were applied. No-op in the simulated backend.
  //
  // Fault recovery: jobs stranded on a dead shard (worker killed by the
  // fault probe) are executed inline on the control thread first, so the
  // submission-order contract survives worker death. The one job the
  // worker was killed *on* is abandoned — its apply never runs and its
  // callback never fires, exactly like an overload drop.
  std::size_t poll_completions();

  // Block until every accepted job has been applied or abandoned. Control
  // thread only. Sleeps with an armed-waiter flag: workers take done_mu_
  // and notify only while the control thread is actually parked, so a
  // pipelined caller never pays a wakeup (or a lock) per completion.
  // Wakes on worker death too, so a killed shard can never wedge the
  // caller (the recovery path above drains its rings).
  void wait_idle();

  // Sequence counters, control thread only. Every accepted job gets the
  // next submit seq; applied_seq advances past applied *and* abandoned
  // jobs. The PCP shell uses these to retire batch-shared snapshot
  // contexts once every job borrowing them has retired (core/pcp.h).
  std::uint64_t submitted_seq() const { return next_submit_seq_; }
  std::uint64_t applied_seq() const { return next_apply_seq_; }

  // ---------------------------------------------------- fault injection
  // Install (or clear, with nullptr) the worker fault probe. Threaded
  // backend only; call from the control thread.
  void set_worker_fault_probe(WorkerFaultProbe probe);

  // Join and restart workers the probe killed; their shards accept
  // submissions again. Returns how many workers were respawned. Control
  // thread only.
  std::size_t respawn_dead_workers();

  std::size_t dead_workers() const;
  // Jobs killed by the probe: accepted but never applied.
  std::uint64_t jobs_abandoned() const { return jobs_abandoned_.load(); }

  // Jobs accepted but not yet (simulated: dispatched; threaded: taken by a
  // worker). Aggregated across shards.
  std::size_t queue_depth() const;

  // Wall-clock microseconds each decision spent executing on shard
  // `shard`'s worker (threaded backend only). Read when idle: the stats are
  // written by the worker thread.
  const SampleStats& decision_latency_us(std::size_t shard) const {
    return thread_shards_[shard]->latency_us;
  }

 private:
  struct IngressJob {
    std::uint64_t seq = 0;
    ThreadWork work;
  };
  // A null apply marks a job the probe abandoned (poll_completions skips
  // its seq without running anything).
  struct Completion {
    std::uint64_t seq = 0;
    std::function<void()> apply;
  };

  struct ThreadShard {
    std::size_t index = 0;
    // control thread -> worker; capacity is the configured queue bound.
    SpscRing<IngressJob> ingress;
    // worker -> control thread. Sized past the ingress bound so a worker
    // only blocks when the control thread has not drained for a long time;
    // push_completion handles that backpressure.
    SpscRing<Completion> done;
    std::atomic<bool> stop{false};
    // Set by the worker when the fault probe kills it, strictly before the
    // abandoning completion is published (so any control thread that has
    // drained that completion also sees dead). A dead shard rejects
    // submissions; its stranded ingress ring is drained inline by
    // poll_completions until respawn_dead_workers revives the worker —
    // safe, because a dead worker never touches its rings again.
    std::atomic<bool> dead{false};
    // Armed-sleeper handshake (spsc_ring.h): true only while the worker is
    // parked on cv (idle ingress or full done ring). The control thread
    // locks mu and notifies only when it observes the flag.
    std::atomic<bool> sleeping{false};
    std::mutex mu;
    std::condition_variable cv;
    SampleStats latency_us;  // written by the worker thread only
    std::thread worker;

    ThreadShard(std::size_t idx, std::size_t queue_capacity)
        : index(idx), ingress(queue_capacity), done(2 * queue_capacity + 2) {}
  };

  void worker_loop(ThreadShard& shard);
  void spawn_worker(ThreadShard& shard);
  // Worker side: publish a completion, blocking (armed sleep) while the
  // done ring is full. Returns false only when stop was requested first.
  bool push_completion(ThreadShard& shard, Completion completion);
  // Worker side: die on `seq` — mark the shard dead, publish the
  // abandoning null completion, wake the control thread.
  void kill_worker(ThreadShard& shard, std::uint64_t seq);
  // Control side: wake a shard's worker if it is parked (new ingress work
  // or freed done-ring space).
  void wake_worker(ThreadShard& shard);
  // Worker side: wake the control thread if wait_idle is parked.
  void wake_control();
  // Control side: pop every shard's done ring into the reorder buffer.
  // Returns how many completions moved.
  std::size_t drain_completion_rings();
  // Execute jobs stranded on dead shards inline (control thread), filing
  // their applies into the reorder buffer under their original seq.
  void recover_dead_shards();
  // wait_idle's wake predicate: some completion is drainable or some dead
  // shard has stranded work to recover.
  bool completions_pending() const;

  const PcpBackend backend_;
  const std::size_t shards_;
  const std::size_t queue_capacity_;
  const bool pin_workers_;

  // kSimulated: one station per shard (unique_ptr: stations are immovable).
  std::vector<std::unique_ptr<ServiceStation>> stations_;

  // kThreads: workers + the submission-order reorder buffer.
  std::vector<std::unique_ptr<ThreadShard>> thread_shards_;
  std::uint64_t next_submit_seq_ = 0;  // control thread only
  std::uint64_t next_apply_seq_ = 0;   // control thread only
  // seq -> apply closure, control thread only (filled by draining the
  // completion rings; no lock — workers never touch it).
  std::map<std::uint64_t, std::function<void()>> completed_;
  // Armed-waiter handshake for wait_idle: done_mu_ guards nothing but the
  // park itself; workers take it only when control_waiting_ is set.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<bool> control_waiting_{false};
  // Probe storage: has_probe_ keeps the common case (no probe armed) free
  // of locks; probe_mu_ serializes the read-vs-install race while armed.
  std::mutex probe_mu_;
  std::atomic<bool> has_probe_{false};
  WorkerFaultProbe fault_probe_;
  std::atomic<std::uint64_t> jobs_abandoned_{0};
};

}  // namespace dfi
