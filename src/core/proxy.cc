#include "core/proxy.h"

#include "common/logging.h"
#include "core/health_monitor.h"
#include "core/journal.h"

namespace dfi {

DfiProxy::DfiProxy(Simulator& sim, PolicyCompilationPoint& pcp, ProxyConfig config,
                   Rng rng)
    : sim_(sim), pcp_(pcp), config_(config), rng_(rng) {
  if (!config_.zero_latency) {
    latency_ =
        LogNormalParams::from_moments(config_.latency_mean_ms, config_.latency_sd_ms);
  }
}

DfiProxy::~DfiProxy() {
  *alive_ = false;
  for (const auto& session : sessions_) {
    // Outstanding deferred deliveries must become no-ops: the sessions and
    // the pool die with the proxy.
    *session->alive_ = false;
    if (session->dpid_.has_value()) pcp_.unregister_switch(*session->dpid_);
  }
}

const ProxyStats& DfiProxy::stats() const {
  // Counters owned elsewhere are mirrored on read so ProxyStats stays one
  // flat struct for tests, benches and the harness recovery report.
  const FrameBufferPool::Stats pool = pool_.stats();
  stats_.pool_acquires = pool.acquires;
  stats_.pool_reuses = pool.reuses;
  stats_.resync_clears = pcp_.stats().resync_clears;
  if (health_ != nullptr) {
    stats_.degraded_entries = health_->stats().degraded_entries;
    stats_.degraded_exits = health_->stats().degraded_exits;
    stats_.backoff_retries = health_->stats().backoff_retries;
  }
  if (journal_ != nullptr) {
    stats_.journal_replays = journal_->stats().replays;
    stats_.journal_records_replayed = journal_->stats().records_replayed;
    stats_.journal_torn_tails = journal_->stats().torn_tails_truncated;
  }
  return stats_;
}

DfiProxy::Session& DfiProxy::create_session(SendFn to_switch, SendFn to_controller) {
  sessions_.push_back(
      std::make_unique<Session>(*this, std::move(to_switch), std::move(to_controller)));
  return *sessions_.back();
}

void DfiProxy::destroy_session(Session& session) {
  // Kill outstanding closures first: an in-flight PCP decision callback or
  // deferred delivery may fire after the erase below frees the session.
  *session.alive_ = false;
  // A pending coalesced egress buffer dies with the session — undelivered,
  // but returned to the pool so outstanding-buffer accounting stays exact.
  if (session.pending_egress_active_) {
    session.pending_egress_active_ = false;
    pool_.release(std::move(session.pending_egress_));
  }
  if (session.dpid_.has_value()) pcp_.unregister_switch(*session.dpid_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() == &session) {
      sessions_.erase(it);
      return;
    }
  }
}

void DfiProxy::flush_egress() {
  for (const auto& session : sessions_) session->flush_switch_egress();
}

void DfiProxy::after_proxy_delay(std::function<void()> deliver) {
  double delay_ms = 0.0;
  if (!config_.zero_latency) {
    delay_ms = rng_.lognormal(latency_);
  }
  latency_ms_.add(delay_ms);
  sim_.schedule_after(milliseconds(delay_ms), std::move(deliver));
}

DfiProxy::Session::Session(DfiProxy& proxy, SendFn to_switch, SendFn to_controller)
    : proxy_(proxy), to_switch_(std::move(to_switch)),
      to_controller_(std::move(to_controller)) {}

void DfiProxy::Session::send_to_switch(const OfMessage& message) {
  const auto bytes = encode(message);
  to_switch_(bytes);
}

void DfiProxy::Session::send_to_controller(const OfMessage& message) {
  const auto bytes = encode(message);
  to_controller_(bytes);
}

void DfiProxy::Session::defer_to_switch(OfMessage message) {
  if (proxy_.config_.coalesce_egress) {
    // Decided FlowMods (and every other switch-bound message) join the
    // session's pending multi-frame write instead of paying a deferred
    // delivery each. encode_scratch_ keeps its capacity across appends.
    encode_into(message, encode_scratch_);
    append_switch_bytes(encode_scratch_.data(), encode_scratch_.size());
    return;
  }
  std::vector<std::uint8_t> frame = proxy_.pool_.acquire();
  encode_into(message, frame);
  defer_frame_to_switch(std::move(frame));
}

void DfiProxy::Session::defer_to_controller(OfMessage message) {
  std::vector<std::uint8_t> frame = proxy_.pool_.acquire();
  encode_into(message, frame);
  defer_bytes_to_controller(std::move(frame));
}

void DfiProxy::Session::defer_bytes_to_switch(std::vector<std::uint8_t> frame) {
  if (proxy_.config_.coalesce_egress) {
    append_switch_bytes(frame.data(), frame.size());
    proxy_.pool_.release(std::move(frame));
    return;
  }
  defer_frame_to_switch(std::move(frame));
}

void DfiProxy::Session::append_switch_bytes(const std::uint8_t* data,
                                            std::size_t size) {
  if (!pending_egress_active_) {
    pending_egress_ = proxy_.pool_.acquire();
    pending_egress_active_ = true;
  }
  pending_egress_.insert(pending_egress_.end(), data, data + size);
  // Watermark backpressure: one buffer never grows past roughly the
  // configured bound, so a quiet flush_egress() caller still sees bounded
  // per-session memory and the switch sees timely writes under load.
  if (pending_egress_.size() >= proxy_.config_.egress_watermark_bytes) {
    flush_switch_egress();
  }
}

void DfiProxy::Session::flush_switch_egress() {
  if (!pending_egress_active_) return;
  pending_egress_active_ = false;
  std::vector<std::uint8_t> out = std::move(pending_egress_);
  pending_egress_ = {};
  defer_frame_to_switch(std::move(out));
}

void DfiProxy::Session::defer_frame_to_switch(std::vector<std::uint8_t> frame) {
  proxy_.after_proxy_delay([this, proxy = &proxy_, alive = alive_,
                            proxy_alive = proxy_.alive_,
                            out = std::move(frame)]() mutable {
    // Severed session: nothing is delivered. Either way the pooled buffer
    // goes home through the captured proxy pointer, never `this` — the
    // SendFn may request teardown of its own session (the socket frontend's
    // overflow sever), after which `this` is untrusted.
    if (*alive) to_switch_(out);
    if (*proxy_alive) proxy->pool_.release(std::move(out));
  });
}

void DfiProxy::Session::defer_bytes_to_controller(std::vector<std::uint8_t> frame) {
  proxy_.after_proxy_delay([this, proxy = &proxy_, alive = alive_,
                            proxy_alive = proxy_.alive_,
                            out = std::move(frame)]() mutable {
    if (*alive) to_controller_(out);
    if (*proxy_alive) proxy->pool_.release(std::move(out));
  });
}

void DfiProxy::Session::switch_frame(const FrameView& view) {
  ++proxy_.stats_.from_switch;
  fast_path_from_switch(view);
}

void DfiProxy::Session::controller_frame(const FrameView& view) {
  ++proxy_.stats_.from_controller;
  fast_path_from_controller(view);
}

void DfiProxy::Session::switch_batch_end() {
  // A Packet-in run never outlives its read batch: everything the switch
  // sent in this read is on its way to the PCP before control returns.
  flush_packet_ins();
  // Same rule for the coalesced write side: whatever this read produced for
  // the switch (handshake replies, resync clears, shifted mods) goes out at
  // batch end, not at the next watermark crossing — a below-watermark
  // handshake must not wedge waiting for unrelated traffic.
  flush_switch_egress();
}

void DfiProxy::Session::controller_batch_end() { flush_switch_egress(); }

void DfiProxy::Session::switch_stream_corrupt() {
  ++proxy_.stats_.from_switch;
  ++proxy_.stats_.malformed;
  DFI_WARN << "proxy: malformed frame from switch: frame length < 8";
}

void DfiProxy::Session::controller_stream_corrupt() {
  ++proxy_.stats_.from_controller;
  ++proxy_.stats_.malformed;
  DFI_WARN << "proxy: malformed frame from controller: frame length < 8";
}

void DfiProxy::Session::from_switch(const std::vector<std::uint8_t>& chunk) {
  switch_decoder_.feed(chunk);
  FrameView view;
  for (;;) {
    const FrameStatus status = switch_decoder_.next_frame(view);
    if (status == FrameStatus::kAwait) break;
    if (status == FrameStatus::kCorrupt) {
      switch_stream_corrupt();
      break;  // the decoder reset the stream
    }
    switch_frame(view);
  }
  switch_batch_end();
}

void DfiProxy::Session::from_controller(const std::vector<std::uint8_t>& chunk) {
  controller_decoder_.feed(chunk);
  FrameView view;
  for (;;) {
    const FrameStatus status = controller_decoder_.next_frame(view);
    if (status == FrameStatus::kAwait) break;
    if (status == FrameStatus::kCorrupt) {
      controller_stream_corrupt();
      break;
    }
    controller_frame(view);
  }
  controller_batch_end();
}

void DfiProxy::Session::fast_path_from_switch(const FrameView& view) {
  switch (classify(view, ProxyDirection::kSwitchToController, switch_num_tables_)) {
    case FrameClass::kPassThrough:
      ++proxy_.stats_.frames_fast_path;
      defer_bytes_to_controller(proxy_.pool_.acquire_copy(view.data(), view.size()));
      return;
    case FrameClass::kPatch: {
      if (view.type() == OfType::kFlowRemoved &&
          view.data()[kFlowRemovedTableOffset] == 0) {
        // DFI-internal rule expiry: invisible to the controller, dropped
        // without even a copy.
        ++proxy_.stats_.frames_fast_path;
        return;
      }
      std::vector<std::uint8_t> frame =
          proxy_.pool_.acquire_copy(view.data(), view.size());
      if (!patch_table_refs(frame.data(), frame.size(),
                            ProxyDirection::kSwitchToController)) {
        proxy_.pool_.release(std::move(frame));
        break;  // revalidation failed: slow path decides on the original bytes
      }
      ++proxy_.stats_.frames_patched;
      defer_bytes_to_controller(std::move(frame));
      return;
    }
    case FrameClass::kDecode:
      break;
  }
  ++proxy_.stats_.frames_decoded;
  auto result = decode(view);
  if (!result.ok()) {
    ++proxy_.stats_.malformed;
    DFI_WARN << "proxy: malformed frame from switch: " << result.error().message;
    return;
  }
  handle_switch_message(std::move(result).value());
}

void DfiProxy::Session::fast_path_from_controller(const FrameView& view) {
  switch (classify(view, ProxyDirection::kControllerToSwitch, switch_num_tables_)) {
    case FrameClass::kPassThrough:
      ++proxy_.stats_.frames_fast_path;
      defer_bytes_to_switch(proxy_.pool_.acquire_copy(view.data(), view.size()));
      return;
    case FrameClass::kPatch: {
      std::vector<std::uint8_t> frame =
          proxy_.pool_.acquire_copy(view.data(), view.size());
      if (!patch_table_refs(frame.data(), frame.size(),
                            ProxyDirection::kControllerToSwitch)) {
        proxy_.pool_.release(std::move(frame));
        break;
      }
      ++proxy_.stats_.frames_patched;
      if (view.type() == OfType::kFlowMod) ++proxy_.stats_.flow_mods_shifted;
      defer_bytes_to_switch(std::move(frame));
      return;
    }
    case FrameClass::kDecode:
      break;
  }
  ++proxy_.stats_.frames_decoded;
  auto result = decode(view);
  if (!result.ok()) {
    ++proxy_.stats_.malformed;
    DFI_WARN << "proxy: malformed frame from controller: " << result.error().message;
    return;
  }
  handle_controller_message(std::move(result).value());
}

void DfiProxy::Session::flush_packet_ins() {
  if (pending_pins_.empty()) return;
  proxy_.pcp_.handle_packet_in_batch(pending_pins_);
  for (const auto& item : pending_pins_) {
    if (!item.accepted) {
      // PCP queue full: dropped exactly like a rejected handle_packet_in;
      // the flow re-enters on endpoint retransmission (paper Section V-A).
      ++proxy_.stats_.packet_ins_suppressed;
    }
  }
  pending_pins_.clear();
}

void DfiProxy::Session::handle_switch_message(OfMessage message) {
  // Packet-in batching collects *consecutive* table-0 Packet-ins only: any
  // other message type flushes the pending run first, so the PCP sees
  // submissions in exact arrival order.
  if (!pending_pins_.empty()) {
    const auto* packet_in = std::get_if<PacketInMsg>(&message.payload);
    if (packet_in == nullptr || packet_in->table_id != 0) flush_packet_ins();
  }

  // Learn identity from the handshake and register this switch with the
  // PCP; the PCP's writes (Table 0 flow mods) go straight to the switch,
  // not through table shifting.
  if (auto* features = std::get_if<FeaturesReplyMsg>(&message.payload)) {
    dpid_ = features->datapath_id;
    switch_num_tables_ = features->n_tables;
    proxy_.pcp_.register_switch(*dpid_, [this, alive = alive_](const OfMessage& msg) {
      if (*alive) defer_to_switch(msg);
    });
    // Hide DFI's reserved table from the controller.
    FeaturesReplyMsg shifted = *features;
    if (shifted.n_tables > 0) --shifted.n_tables;
    defer_to_controller(OfMessage{message.xid, shifted});
    return;
  }

  if (auto* packet_in = std::get_if<PacketInMsg>(&message.payload)) {
    if (packet_in->table_id == 0) {
      // Miss in DFI's table: this flow has no access-control decision yet.
      // The PCP decides first; only allowed packets reach the controller.
      if (!dpid_.has_value()) {
        ++proxy_.stats_.packet_ins_suppressed;
        DFI_WARN << "proxy: packet-in before handshake completed; dropped";
        return;
      }
      // Degraded-mode gate (DESIGN.md §6): while the control plane is
      // degraded or recovering the PCP's answer cannot be trusted — the
      // store may be mid-replay, shards may be dead. Fail-secure extends
      // default-deny to component failure: the flow is suppressed and
      // re-enters on retransmission once the plane is healthy (invariant
      // I1 holds through the window by construction). Fail-open is the
      // paper-discussed alternative stance, implemented for the ablation:
      // the controller sees the packet undecided.
      if (proxy_.health_ != nullptr && proxy_.health_->gating()) {
        if (proxy_.health_->mode() == DegradedMode::kFailSecure) {
          ++proxy_.stats_.packet_ins_suppressed;
          ++proxy_.stats_.degraded_suppressed;
          return;
        }
        ++proxy_.stats_.degraded_forwarded;
        ++proxy_.stats_.packet_ins_forwarded;
        defer_to_controller(OfMessage{message.xid, *packet_in});
        return;
      }
      ++proxy_.stats_.packet_ins_to_pcp;
      const std::uint32_t xid = message.xid;
      // The decision callback delivers the allow verdict; identical for
      // the per-packet and batched submission paths below.
      auto on_decision = [this, alive = alive_, xid,
                          original = *packet_in](const PcpDecision& decision) {
        // Session torn down while the decision was in flight: nothing
        // to deliver and `this` may be gone — the token is the only
        // safe thing to touch.
        if (!*alive) return;
        if (!decision.allow) {
          ++proxy_.stats_.packet_ins_suppressed;
          return;  // denied: the controller never sees this packet
        }
        ++proxy_.stats_.packet_ins_forwarded;
        // Table 0 in the controller's shifted view is its own first
        // table, so table_id 0 is already correct after the allow.
        defer_to_controller(OfMessage{xid, original});
      };
      if (proxy_.config_.batch_packet_ins) {
        // Join the current run; from_switch (or the next non-Packet-in
        // message) flushes it to handle_packet_in_batch.
        PolicyCompilationPoint::BatchItem item;
        item.dpid = *dpid_;
        item.msg = *packet_in;
        item.done = std::move(on_decision);
        pending_pins_.push_back(std::move(item));
        return;
      }
      const bool accepted = proxy_.pcp_.handle_packet_in(
          *dpid_, PacketInMsg(*packet_in), std::move(on_decision));
      if (!accepted) {
        // PCP queue full: the packet-in is dropped entirely; the flow
        // re-enters on endpoint retransmission (paper Section V-A).
        ++proxy_.stats_.packet_ins_suppressed;
      }
      return;
    }
    // Miss in a controller table: the flow already passed DFI's Table 0.
    PacketInMsg shifted = *packet_in;
    --shifted.table_id;
    defer_to_controller(OfMessage{message.xid, shifted});
    return;
  }

  if (auto* removed = std::get_if<FlowRemovedMsg>(&message.payload)) {
    if (removed->table_id == 0) return;  // DFI-internal; invisible to controller
    FlowRemovedMsg shifted = *removed;
    --shifted.table_id;
    defer_to_controller(OfMessage{message.xid, shifted});
    return;
  }

  if (auto* reply = std::get_if<MultipartReplyMsg>(&message.payload)) {
    MultipartReplyMsg shifted;
    shifted.stats_type = reply->stats_type;
    shifted.port_stats = reply->port_stats;  // port stats carry no table ids
    for (const auto& entry : reply->flow_stats) {
      if (entry.table_id == 0) {
        ++proxy_.stats_.stats_entries_hidden;
        continue;  // DFI rules are not reported to the controller
      }
      FlowStatsEntry adjusted = entry;
      --adjusted.table_id;
      if (adjusted.instructions.goto_table.has_value() &&
          *adjusted.instructions.goto_table > 0) {
        --*adjusted.instructions.goto_table;
      }
      shifted.flow_stats.push_back(std::move(adjusted));
    }
    defer_to_controller(OfMessage{message.xid, std::move(shifted)});
    return;
  }

  // Hello, Echo, Error, Barrier replies: pass through unchanged.
  defer_to_controller(std::move(message));
}

void DfiProxy::Session::handle_controller_message(OfMessage message) {
  if (auto* flow_mod = std::get_if<FlowModMsg>(&message.payload)) {
    FlowModMsg shifted = *flow_mod;
    if (shifted.table_id == 0xff) {
      // OFPTT_ALL is only valid for deletes; it must not touch Table 0.
      // Expand to one delete per controller-visible table.
      if (shifted.command == FlowModCommand::kDelete ||
          shifted.command == FlowModCommand::kDeleteStrict) {
        const std::uint8_t tables = switch_num_tables_ == 0 ? 4 : switch_num_tables_;
        for (std::uint8_t table = 1; table < tables; ++table) {
          FlowModMsg per_table = shifted;
          per_table.table_id = table;
          if (per_table.instructions.goto_table.has_value()) {
            ++*per_table.instructions.goto_table;
          }
          ++proxy_.stats_.flow_mods_shifted;
          defer_to_switch(OfMessage{message.xid, std::move(per_table)});
        }
        return;
      }
      // ADD/MODIFY to ALL is a controller bug; reject.
      ++proxy_.stats_.controller_errors;
      defer_to_controller(OfMessage{
          message.xid, ErrorMsg{/*FLOW_MOD_FAILED*/ 5, /*BAD_TABLE_ID*/ 2, {}}});
      return;
    }
    const std::uint8_t tables = switch_num_tables_ == 0 ? 4 : switch_num_tables_;
    if (shifted.table_id + 1 >= tables) {
      // The controller addressed a table beyond its shifted range.
      ++proxy_.stats_.controller_errors;
      defer_to_controller(OfMessage{
          message.xid, ErrorMsg{/*FLOW_MOD_FAILED*/ 5, /*BAD_TABLE_ID*/ 2, {}}});
      return;
    }
    ++shifted.table_id;
    if (shifted.instructions.goto_table.has_value()) {
      ++*shifted.instructions.goto_table;
    }
    ++proxy_.stats_.flow_mods_shifted;
    defer_to_switch(OfMessage{message.xid, std::move(shifted)});
    return;
  }

  if (auto* request = std::get_if<MultipartRequestMsg>(&message.payload)) {
    MultipartRequestMsg shifted = *request;
    if (shifted.stats_type == kStatsTypeFlow && shifted.flow_request.table_id != 0xff) {
      ++shifted.flow_request.table_id;
    }
    defer_to_switch(OfMessage{message.xid, std::move(shifted)});
    return;
  }

  // Hello, Echo, FeaturesRequest, PacketOut, Barrier: pass through.
  defer_to_switch(std::move(message));
}

}  // namespace dfi
