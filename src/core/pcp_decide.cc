#include "core/pcp_decide.h"

#include <utility>

#include "core/rule_cache.h"
#include "openflow/match.h"

namespace dfi {
namespace {

PolicyDecision default_deny_decision() {
  return PolicyDecision{PolicyAction::kDeny, PolicyRuleId{kDefaultDenyCookie.value},
                        /*default_deny=*/true};
}

}  // namespace

DecisionInput make_decision_input(Dpid dpid, const PacketInMsg& msg) {
  DecisionInput input;
  input.dpid = dpid;
  input.in_port = msg.in_port;
  auto parsed = Packet::parse(msg.data);
  if (parsed.ok()) {
    input.packet = std::move(parsed.value());
    input.flow_key = FlowKey::from_packet(dpid, msg.in_port, *input.packet);
  }
  return input;
}

FlowModMsg compile_exact_rule(const Packet& packet, PortNo in_port, bool allow,
                              Cookie cookie, const PcpConfig& config) {
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.table_id = 0;  // DFI's reserved table
  mod.priority = config.rule_priority;
  mod.cookie = cookie;
  // Exact match: every identifier available in the packet is specified so
  // each new flow gets its own policy check (Section III-B).
  mod.match = Match::exact_from_packet(packet, in_port);
  mod.instructions = allow ? Instructions::to_table(config.controller_first_table)
                           : Instructions::drop();
  return mod;
}

DecisionEffects decide_on_snapshots(const DecisionInput& input,
                                    const DecisionSnapshots& snapshots,
                                    DecisionCache<PcpDecision>& cache,
                                    const PcpConfig& config) {
  DecisionEffects effects;
  PcpDecision& decision = effects.decision;

  if (!input.packet.has_value()) {
    // Unparsable traffic cannot be matched to policy; default deny, but no
    // rule can be compiled for it (no usable header fields).
    effects.unparsable = true;
    decision.allow = false;
    decision.policy = default_deny_decision();
    return effects;
  }
  const Packet& packet = *input.packet;
  const std::uint64_t policy_epoch = snapshots.policy->epoch();
  const std::uint64_t binding_epoch = snapshots.erm.epoch();

  // Decision cache: an identical flow tuple decided under the current
  // policy and binding epochs replays its decision without re-running
  // validation, enrichment, or the policy query. Any policy insert/revoke
  // or effective binding change bumps an epoch and forces the full path,
  // preserving late binding (Section III-B).
  if (cache.enabled()) {
    if (const PcpDecision* cached =
            cache.lookup(input.flow_key, policy_epoch, binding_epoch)) {
      decision = *cached;
      effects.cache_hit = true;
      effects.has_rule = true;
      return effects;
    }
  }

  // Collect all source/destination identifiers present in the packet.
  EndpointView src;
  src.mac = packet.eth.src;
  src.dpid = input.dpid;
  src.switch_port = input.in_port;
  EndpointView dst;
  dst.mac = packet.eth.dst;
  if (packet.ipv4.has_value()) {
    src.ip = packet.ipv4->src;
    dst.ip = packet.ipv4->dst;
  }
  if (packet.tcp.has_value()) {
    src.l4_port = packet.tcp->src_port;
    dst.l4_port = packet.tcp->dst_port;
  } else if (packet.udp.has_value()) {
    src.l4_port = packet.udp->src_port;
    dst.l4_port = packet.udp->dst_port;
  }

  // Spoof validation against authoritative bindings (source side; the
  // destination's claimed identifiers are not attacker-controlled claims).
  // Identity conflicts come from the snapshot. The location check reduces
  // to the prior_src_location scalar and only bites for multicast source
  // MACs: for a unicast source the shell's location sensor asserts the
  // observed (switch, MAC) -> port binding before the decision takes
  // effect, so the live ERM's check always passed by construction.
  SpoofCheck spoof = snapshots.erm.validate_identity(src.mac, src.ip);
  if (!spoof.spoofed && packet.eth.src.is_multicast() &&
      input.prior_src_location.has_value() &&
      *input.prior_src_location != input.in_port) {
    spoof = {true, "MAC " + packet.eth.src.to_string() + " is located at port " +
                       std::to_string(input.prior_src_location->value) + " of " +
                       to_string(input.dpid) + ", not port " +
                       std::to_string(input.in_port.value)};
  }
  if (spoof.spoofed) {
    decision.spoofed = true;
    decision.allow = false;
    decision.policy = default_deny_decision();
    decision.installed_rule = compile_exact_rule(packet, input.in_port,
                                                 /*allow=*/false,
                                                 kDefaultDenyCookie, config);
    effects.has_rule = true;
    effects.spoof_reason = spoof.reason;
    cache.store(input.flow_key, decision, policy_epoch, binding_epoch);
    return effects;
  }

  // Enrichment: map low-level identifiers up to hostnames and usernames at
  // decision time (late binding).
  FlowView flow;
  flow.ether_type = packet.eth.ether_type;
  if (packet.ipv4.has_value()) flow.ip_proto = packet.ipv4->protocol;
  flow.src = snapshots.erm.enrich(std::move(src));
  flow.dst = snapshots.erm.enrich(std::move(dst));

  // Policy query: highest-priority matching rule, default deny.
  decision.policy = snapshots.policy->query(flow);
  decision.allow = decision.policy.action == PolicyAction::kAllow;
  decision.flow = flow;

  decision.installed_rule =
      compile_exact_rule(packet, input.in_port, decision.allow,
                         Cookie{decision.policy.rule_id.value}, config);
  effects.has_rule = true;

  // Wildcard caching extension: replace the exact match with a safe
  // generalization of the deciding policy when one exists.
  if (config.wildcard_caching) {
    const auto cached = compile_wildcard(*snapshots.policy, decision.policy, flow);
    if (cached.has_value()) {
      decision.installed_rule.match = cached->match;
      effects.wildcard_installed = true;
      effects.identity_derived = cached->identity_derived;
    } else {
      effects.wildcard_fallback = true;
    }
  }

  cache.store(input.flow_key, decision, policy_epoch, binding_epoch);
  return effects;
}

}  // namespace dfi
