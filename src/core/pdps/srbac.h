// Static Role-Based Access Control PDP (paper Section V-B, "S-RBAC").
//
// Installs a fixed policy once: every end host may exchange flows with
// (1) all hosts in its own enclave and (2) every server; everything else is
// denied by DFI's default. The policy never changes in response to events —
// it is the static baseline the AT-RBAC policy is compared against.
#pragma once

#include <vector>

#include "core/pdp.h"
#include "services/directory.h"

namespace dfi {

// The role-based allow set shared by the RBAC-family PDPs: every end host
// to (1) all hosts of its own enclave and (2) every server, plus
// server-to-server, all bidirectional.
std::vector<PolicyRule> make_rbac_ruleset(const DirectoryService& directory);

class SRbacPdp : public Pdp {
 public:
  SRbacPdp(PdpPriority priority, PolicyManager& policy,
           const DirectoryService& directory)
      : Pdp("s-rbac", priority, policy), directory_(directory) {}

  // Emit the full static rule set. Idempotent: re-activation revokes the
  // previous rule set first.
  void activate();
  void deactivate() { revoke_all(); }

 private:
  const DirectoryService& directory_;
};

}  // namespace dfi
