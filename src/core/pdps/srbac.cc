#include "core/pdps/srbac.h"

namespace dfi {

std::vector<PolicyRule> make_rbac_ruleset(const DirectoryService& directory) {
  std::vector<PolicyRule> rules;
  const auto allow_between = [&rules](const Hostname& a, const Hostname& b) {
    PolicyRule rule;
    rule.action = PolicyAction::kAllow;
    rule.source.host = a;
    rule.destination.host = b;
    rules.push_back(std::move(rule));
  };

  std::vector<Hostname> servers;
  for (const auto& host : directory.all_hosts()) {
    const HostRecord* record = directory.find_host(host);
    if (record != nullptr && record->is_server) servers.push_back(host);
  }

  for (const auto& enclave : directory.enclaves()) {
    const auto hosts = directory.hosts_in_enclave(enclave);
    // Intra-enclave reachability (both directions).
    for (const auto& a : hosts) {
      for (const auto& b : hosts) {
        if (a == b) continue;
        allow_between(a, b);
      }
    }
    // Host <-> every server, both directions (operational needs).
    for (const auto& host : hosts) {
      const HostRecord* record = directory.find_host(host);
      if (record != nullptr && record->is_server) continue;  // covered below
      for (const auto& server : servers) {
        allow_between(host, server);
        allow_between(server, host);
      }
    }
  }

  // Servers may talk among themselves (cross-enclave server pairs; the
  // intra-enclave loop already covered same-enclave pairs).
  for (const auto& a : servers) {
    for (const auto& b : servers) {
      if (a == b) continue;
      const HostRecord* record_a = directory.find_host(a);
      const HostRecord* record_b = directory.find_host(b);
      if (record_a != nullptr && record_b != nullptr &&
          record_a->enclave == record_b->enclave) {
        continue;
      }
      allow_between(a, b);
    }
  }
  return rules;
}

void SRbacPdp::activate() {
  revoke_all();
  for (PolicyRule& rule : make_rbac_ruleset(directory_)) {
    emit_rule(std::move(rule));
  }
}

}  // namespace dfi
