#include "core/pdps/atrbac.h"

#include <algorithm>

#include "common/logging.h"

namespace dfi {

AtRbacPdp::AtRbacPdp(PdpPriority priority, PolicyManager& policy,
                     const DirectoryService& directory, MessageBus& bus,
                     std::vector<Hostname> infra_servers,
                     std::vector<std::uint16_t> infra_ports)
    : Pdp("at-rbac", priority, policy),
      directory_(directory),
      bus_(bus),
      infra_servers_(std::move(infra_servers)),
      infra_ports_(std::move(infra_ports)) {}

void AtRbacPdp::activate() {
  deactivate();

  // Standing rules: every host can always reach the authentication
  // *services* (and receive their replies) so log-on itself is possible.
  // Scoped to the service ports: a logged-off host gets DNS/DHCP/Kerberos/
  // LDAP on the infra servers and nothing more.
  for (const auto& host : directory_.all_hosts()) {
    for (const auto& infra : infra_servers_) {
      if (host == infra) continue;
      for (const std::uint16_t port : infra_ports_) {
        PolicyRule to_infra;
        to_infra.action = PolicyAction::kAllow;
        to_infra.source.host = host;
        to_infra.destination.host = infra;
        to_infra.destination.l4_port = port;
        emit_rule(to_infra);

        PolicyRule from_infra;
        from_infra.action = PolicyAction::kAllow;
        from_infra.source.host = infra;
        from_infra.source.l4_port = port;
        from_infra.destination.host = host;
        emit_rule(from_infra);
      }
    }
  }

  subscription_ = bus_.subscribe<SessionEvent>(
      topics::kSiemSessions, [this](const SessionEvent& event) { on_session(event); });
}

void AtRbacPdp::deactivate() {
  subscription_.reset();
  sessions_.clear();
  role_rules_.clear();
  revoke_all();
}

void AtRbacPdp::on_session(const SessionEvent& event) {
  const HostRecord* record = directory_.find_host(event.host);
  if (record == nullptr) return;
  // Servers have no interactive users; their reachability is not
  // session-conditioned (they are part of every role set instead).
  if (record->is_server) return;

  auto& users = sessions_[event.host];
  if (event.logged_on) {
    const bool first = users.empty();
    users.insert(event.user);
    if (first) grant_role_set(event.host);
  } else {
    users.erase(event.user);
    if (users.empty()) {
      sessions_.erase(event.host);
      revoke_role_set(event.host);
    }
  }
}

void AtRbacPdp::grant_role_set(const Hostname& host) {
  if (role_rules_.count(host) != 0) return;
  ++grants_;
  DFI_INFO << "AT-RBAC: granting role set to " << host.value;

  std::vector<PolicyRuleId>& ids = role_rules_[host];
  const auto allow = [&](const Hostname& src, const Hostname& dst) {
    PolicyRule rule;
    rule.action = PolicyAction::kAllow;
    rule.source.host = src;
    rule.destination.host = dst;
    ids.push_back(emit_rule(rule));
  };

  const HostRecord* record = directory_.find_host(host);
  if (record == nullptr) return;

  // 1) All hosts in its own enclave, both directions.
  for (const auto& peer : directory_.hosts_in_enclave(record->enclave)) {
    if (peer == host) continue;
    allow(host, peer);
    allow(peer, host);
  }
  // 2) Each of the servers, both directions.
  for (const auto& other : directory_.all_hosts()) {
    const HostRecord* other_record = directory_.find_host(other);
    if (other_record == nullptr || !other_record->is_server) continue;
    if (other_record->enclave == record->enclave) continue;  // covered above
    allow(host, other);
    allow(other, host);
  }
}

void AtRbacPdp::revoke_role_set(const Hostname& host) {
  const auto it = role_rules_.find(host);
  if (it == role_rules_.end()) return;
  ++revocations_;
  DFI_INFO << "AT-RBAC: revoking role set of " << host.value;
  for (PolicyRuleId id : it->second) revoke_rule(id);
  role_rules_.erase(it);
}

std::vector<Hostname> AtRbacPdp::active_hosts() const {
  std::vector<Hostname> out;
  out.reserve(role_rules_.size());
  for (const auto& [host, ids] : role_rules_) out.push_back(host);
  return out;
}

}  // namespace dfi
