// Building-alarm PDP.
//
// The paper names sensor feeds "even off-network (e.g., a building alarm
// system)" as PDP event sources (Section III-B). This PDP subscribes to
// facility alarms: while an alarm is active it emits a high-priority Deny
// on all outbound flows from every end host — the building is evacuating;
// workstations have no business talking — while infrastructure servers
// stay reachable (monitoring, paging, door systems). Clearing the alarm
// revokes the lockdown, and the Policy Manager's consistency machinery
// flushes cached rules both ways.
#pragma once

#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "core/pdp.h"
#include "services/directory.h"

namespace dfi {

// Published by the facility system (off-network feed).
struct BuildingAlarmEvent {
  std::string zone;   // informational
  bool active = true; // false = all-clear
};

namespace topics {
inline const std::string kFacilityAlarms = "facility.alarms";
}  // namespace topics

class AlarmPdp : public Pdp {
 public:
  AlarmPdp(PdpPriority priority, PolicyManager& policy,
           const DirectoryService& directory, MessageBus& bus);

  bool lockdown_active() const { return lockdown_; }

  // Direct controls (also driven via the bus topic).
  void engage_lockdown();
  void clear_lockdown();

 private:
  const DirectoryService& directory_;
  Subscription subscription_;
  bool lockdown_ = false;
};

}  // namespace dfi
