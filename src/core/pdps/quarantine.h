// Quarantine-Upon-Compromise PDP.
//
// The paper names "Quarantine Upon Compromise" as a policy type a dedicated
// PDP can provide (Section III-B). This PDP subscribes to IDS/IR alerts and
// emits a pair of high-priority Deny rules that cut an endpoint off in both
// directions; releasing the quarantine revokes them. Because quarantine
// PDPs are given a higher priority than the RBAC PDPs, their Deny rules win
// the Policy Manager's priority resolution, and the insert-time consistency
// check flushes the host's cached Allow rules from the switches so ongoing
// flows are cut immediately.
#pragma once

#include <map>
#include <utility>

#include "bus/message_bus.h"
#include "core/pdp.h"

namespace dfi {

// Published by detection systems (or the incident-response examples).
struct QuarantineAlert {
  Hostname host;
  bool release = false;
};

namespace topics {
inline const std::string kQuarantineAlerts = "ids.alerts";
}  // namespace topics

class QuarantinePdp : public Pdp {
 public:
  QuarantinePdp(PdpPriority priority, PolicyManager& policy, MessageBus& bus);

  void quarantine(const Hostname& host);
  void release(const Hostname& host);

  bool is_quarantined(const Hostname& host) const {
    return rules_.count(host) != 0;
  }
  std::size_t quarantined_count() const { return rules_.size(); }

 private:
  Subscription subscription_;
  std::map<Hostname, std::pair<PolicyRuleId, PolicyRuleId>> rules_;
};

}  // namespace dfi
