// Authentication-Triggered Role-Based Access Control PDP
// (paper Section V-B, "AT-RBAC" — the policy uniquely enabled by DFI).
//
// Role-based access for a host is granted only while a user is logged on:
// on the SIEM's log-on event the PDP emits the host's role set (flows to
// all hosts of its enclave and to every server, both directions); on the
// last log-off it revokes the set. With no user present, a host can reach
// only the small authentication set (DHCP/DNS/AD — the directory's servers
// flagged as infrastructure), expressed as standing rules. Infected hosts
// thus become "moving targets" whose reachability follows real usage.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/pdp.h"
#include "services/directory.h"
#include "services/events.h"

namespace dfi {

class AtRbacPdp : public Pdp {
 public:
  // `infra_servers`: the authentication services that remain reachable for
  // logged-off hosts (AD/DNS/DHCP hosts in the testbed). The standing rules
  // are scoped to `infra_ports` — the service ports needed to authenticate
  // (DNS 53, DHCP 67, Kerberos 88, LDAP 389 by default) — so a logged-off
  // host can reach the AD server's authentication services but nothing
  // else on it (e.g. not SMB, which is the worm's vector).
  AtRbacPdp(PdpPriority priority, PolicyManager& policy,
            const DirectoryService& directory, MessageBus& bus,
            std::vector<Hostname> infra_servers,
            std::vector<std::uint16_t> infra_ports = {53, 67, 88, 389});

  // Emit the standing authentication-set rules and subscribe to sessions.
  void activate();
  void deactivate();

  // Exposed for tests: hosts currently holding an active role set.
  std::vector<Hostname> active_hosts() const;

  std::uint64_t grants() const { return grants_; }
  std::uint64_t revocations() const { return revocations_; }

 private:
  void on_session(const SessionEvent& event);
  void grant_role_set(const Hostname& host);
  void revoke_role_set(const Hostname& host);

  const DirectoryService& directory_;
  MessageBus& bus_;
  std::vector<Hostname> infra_servers_;
  std::vector<std::uint16_t> infra_ports_;
  Subscription subscription_;

  std::map<Hostname, std::set<Username>> sessions_;       // users per host
  std::map<Hostname, std::vector<PolicyRuleId>> role_rules_;
  std::uint64_t grants_ = 0;
  std::uint64_t revocations_ = 0;
};

}  // namespace dfi
