#include "core/pdps/alarm.h"

#include "common/logging.h"

namespace dfi {

AlarmPdp::AlarmPdp(PdpPriority priority, PolicyManager& policy,
                   const DirectoryService& directory, MessageBus& bus)
    : Pdp("building-alarm", priority, policy),
      directory_(directory),
      subscription_(bus.subscribe<BuildingAlarmEvent>(
          topics::kFacilityAlarms, [this](const BuildingAlarmEvent& event) {
            if (event.active) {
              engage_lockdown();
            } else {
              clear_lockdown();
            }
          })) {}

void AlarmPdp::engage_lockdown() {
  if (lockdown_) return;
  lockdown_ = true;
  DFI_INFO << "building-alarm: lockdown engaged";
  for (const auto& host : directory_.all_hosts()) {
    const HostRecord* record = directory_.find_host(host);
    if (record == nullptr || record->is_server) continue;  // servers stay up
    PolicyRule rule;
    rule.action = PolicyAction::kDeny;
    rule.source.host = host;
    emit_rule(rule);
  }
}

void AlarmPdp::clear_lockdown() {
  if (!lockdown_) return;
  lockdown_ = false;
  DFI_INFO << "building-alarm: all clear";
  revoke_all();
}

}  // namespace dfi
