// Time-of-day PDP.
//
// The paper's PDPs subscribe to arbitrary event sources; the simplest
// security-relevant signal is the clock. This PDP grants the role-based
// allow set only inside configured business hours and revokes it outside
// them — the static-policy middle ground between S-RBAC (always on) and
// AT-RBAC (per-session): a network that is simply unreachable at night.
#pragma once

#include "core/pdp.h"
#include "core/pdps/srbac.h"
#include "services/directory.h"
#include "sim/simulator.h"

namespace dfi {

class TimeOfDayPdp : public Pdp {
 public:
  TimeOfDayPdp(PdpPriority priority, PolicyManager& policy,
               const DirectoryService& directory, Simulator& sim,
               int open_hour = 7, int close_hour = 19);

  // Schedule the day's open/close transitions (and apply the current state
  // immediately if activated mid-day).
  void activate();
  void deactivate();

  bool is_open() const { return open_; }

 private:
  void open();
  void close();

  const DirectoryService& directory_;
  Simulator& sim_;
  int open_hour_;
  int close_hour_;
  bool active_ = false;
  bool open_ = false;
};

}  // namespace dfi
