#include "core/pdps/time_of_day.h"

#include "common/logging.h"

namespace dfi {

TimeOfDayPdp::TimeOfDayPdp(PdpPriority priority, PolicyManager& policy,
                           const DirectoryService& directory, Simulator& sim,
                           int open_hour, int close_hour)
    : Pdp("time-of-day", priority, policy),
      directory_(directory),
      sim_(sim),
      open_hour_(open_hour),
      close_hour_(close_hour) {}

void TimeOfDayPdp::activate() {
  active_ = true;
  const SimTime now = sim_.now();
  const SimTime opens_at = clock_time(open_hour_);
  const SimTime closes_at = clock_time(close_hour_);

  if (now >= opens_at && now < closes_at) {
    open();
  }
  if (now < opens_at) {
    sim_.schedule_at(opens_at, [this]() {
      if (active_) open();
    });
  }
  if (now < closes_at) {
    sim_.schedule_at(closes_at, [this]() {
      if (active_) close();
    });
  }
}

void TimeOfDayPdp::deactivate() {
  active_ = false;
  close();
}

void TimeOfDayPdp::open() {
  if (open_) return;
  open_ = true;
  DFI_INFO << "time-of-day: business hours begin; granting role sets";
  for (PolicyRule& rule : make_rbac_ruleset(directory_)) {
    emit_rule(std::move(rule));
  }
}

void TimeOfDayPdp::close() {
  if (!open_) return;
  open_ = false;
  DFI_INFO << "time-of-day: business hours end; revoking role sets";
  revoke_all();
}

}  // namespace dfi
