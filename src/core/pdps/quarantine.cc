#include "core/pdps/quarantine.h"

#include "common/logging.h"

namespace dfi {

QuarantinePdp::QuarantinePdp(PdpPriority priority, PolicyManager& policy,
                             MessageBus& bus)
    : Pdp("quarantine", priority, policy),
      subscription_(bus.subscribe<QuarantineAlert>(
          topics::kQuarantineAlerts, [this](const QuarantineAlert& alert) {
            if (alert.release) {
              release(alert.host);
            } else {
              quarantine(alert.host);
            }
          })) {}

void QuarantinePdp::quarantine(const Hostname& host) {
  if (rules_.count(host) != 0) return;
  DFI_INFO << "quarantine: isolating " << host.value;

  PolicyRule outbound;
  outbound.action = PolicyAction::kDeny;
  outbound.source.host = host;
  const PolicyRuleId out_id = emit_rule(outbound);

  PolicyRule inbound;
  inbound.action = PolicyAction::kDeny;
  inbound.destination.host = host;
  const PolicyRuleId in_id = emit_rule(inbound);

  rules_.emplace(host, std::make_pair(out_id, in_id));
}

void QuarantinePdp::release(const Hostname& host) {
  const auto it = rules_.find(host);
  if (it == rules_.end()) return;
  DFI_INFO << "quarantine: releasing " << host.value;
  revoke_rule(it->second.first);
  revoke_rule(it->second.second);
  rules_.erase(it);
}

}  // namespace dfi
