#include "core/dfi_system.h"

namespace dfi {

DfiSystem::DfiSystem(Simulator& sim, MessageBus& bus, DfiConfig config)
    : sim_(sim),
      bus_(bus),
      erm_(bus),
      policy_manager_(bus),
      pcp_(sim, bus, erm_, policy_manager_, config.pcp, Rng(config.seed)),
      proxy_(sim, pcp_, config.proxy, Rng(config.seed ^ 0x9e3779b97f4a7c15ull)),
      sensors_(bus) {}

}  // namespace dfi
