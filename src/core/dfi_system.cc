#include "core/dfi_system.h"

#include "core/journal.h"

namespace dfi {

DfiSystem::DfiSystem(Simulator& sim, MessageBus& bus, DfiConfig config)
    : sim_(sim),
      bus_(bus),
      erm_(bus),
      policy_manager_(bus),
      pcp_(sim, bus, erm_, policy_manager_, config.pcp, Rng(config.seed)),
      proxy_(sim, pcp_, config.proxy, Rng(config.seed ^ 0x9e3779b97f4a7c15ull)),
      sensors_(bus),
      health_(sim, bus, config.health, Rng(config.seed ^ 0xc2b2ae3d27d4eb4full)) {
  proxy_.attach_health(&health_);
  // Exiting a degraded window invalidates whatever Table 0 accumulated
  // across it: resync every switch so flows re-enter via Packet-in.
  health_.on_transition([this](HealthState, HealthState to) {
    if (to == HealthState::kHealthy) pcp_.resync_all();
  });
}

void DfiSystem::pump() {
  sim_.run();
  pcp_.wait_idle();
  proxy_.flush_egress();
  sim_.run();
}

void DfiSystem::enable_durability(Journal& journal) {
  policy_manager_.attach_journal(&journal);
  erm_.attach_journal(&journal);
  proxy_.attach_journal_stats(&journal);
}

Result<JournalRecovery> DfiSystem::recover_from(Journal& journal) {
  // The degraded window covers the whole replay: any Packet-in arriving
  // before the store is authoritative again is handled by the proxy's
  // fail-secure gate, never decided against half-replayed state.
  health_.enter_degraded("journal-replay");
  Result<JournalRecovery> recovery = journal.recover(policy_manager_, erm_);
  health_.exit_degraded("journal-replay");
  if (recovery.ok()) enable_durability(journal);
  return recovery;
}

void DfiSystem::attach_store_health(FileJournalStore& store) {
  store.attach_health(&health_);
}

}  // namespace dfi
