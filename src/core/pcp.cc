#include "core/pcp.h"

#include <cassert>
#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace dfi {

PolicyCompilationPoint::PolicyCompilationPoint(Simulator& sim, MessageBus& bus,
                                               EntityResolutionManager& erm,
                                               PolicyManager& policy,
                                               PcpConfig config, Rng rng)
    : sim_(sim),
      bus_(bus),
      erm_(erm),
      policy_(policy),
      config_(config),
      rng_(rng),
      pool_(sim, config),
      flush_subscription_(bus.subscribe<FlushDirective>(
          topics::kRuleFlush,
          [this](const FlushDirective& directive) { flush(directive); })) {
  caches_.reserve(pool_.shards());
  for (std::size_t i = 0; i < pool_.shards(); ++i) {
    caches_.push_back(std::make_unique<DecisionCache<PcpDecision>>(
        config_.decision_cache_capacity));
  }
  if (!config_.zero_latency) {
    // Table II calibration: derive the log-normal parameters once here
    // rather than from the mean/sd on every handle_packet_in.
    binding_service_ = LogNormalParams::from_moments(config_.binding_query_mean_ms,
                                                     config_.binding_query_sd_ms);
    policy_service_ = LogNormalParams::from_moments(config_.policy_query_mean_ms,
                                                    config_.policy_query_sd_ms);
    other_service_ =
        LogNormalParams::from_moments(config_.other_mean_ms, config_.other_sd_ms);
  }
  if (config_.wildcard_caching) {
    // Identity-derived cached rules depend on the bindings used to narrow
    // them; retraction invalidates those caches (see core/rule_cache.h).
    binding_subscription_ = bus.subscribe<BindingEvent>(
        topics::kErmBindings,
        [this](const BindingEvent& event) { on_binding_changed(event); });
  }
}

namespace {

// Delete-all FLOW_MOD for Table 0: cookie mask 0 selects every rule.
FlowModMsg make_clear_all() {
  FlowModMsg del;
  del.command = FlowModCommand::kDelete;
  del.table_id = 0;
  del.cookie = Cookie{0};
  del.cookie_mask = Cookie{0};
  del.out_port = kPortAny;
  return del;
}

}  // namespace

void PolicyCompilationPoint::register_switch(Dpid dpid, SwitchWriter writer) {
  const bool reconnect = !known_dpids_.insert(dpid).second;
  switches_[dpid] = std::move(writer);
  if (!reconnect) return;
  // Reconnect resync: rules installed before the session was lost may cite
  // policies revoked while the switch was unreachable — the flush DELETE
  // could not be delivered. Clear Table 0 wholesale; flows re-enter via
  // Packet-in and are re-decided against current policy.
  ++stats_.resync_clears;
  switches_[dpid](OfMessage{0, make_clear_all()});
}

void PolicyCompilationPoint::resync_all() {
  const FlowModMsg del = make_clear_all();
  for (const auto& [dpid, writer] : switches_) {
    ++stats_.resync_clears;
    writer(OfMessage{0, del});
  }
}

void PolicyCompilationPoint::unregister_switch(Dpid dpid) {
  switches_.erase(dpid);
}

DecisionSnapshots PolicyCompilationPoint::capture_snapshots() const {
  return DecisionSnapshots{erm_.snapshot_view(), policy_.snapshot_view()};
}

bool PolicyCompilationPoint::submit_simulated_one(Dpid dpid, PacketInMsg msg,
                                                  DecisionCallback done) {
  ++stats_.packet_ins;

  // Sample the simulated cost of this decision's subtasks (Table II). The
  // draws stay here, before shard routing, so the per-packet draw sequence
  // is independent of the shard count (shards=1 replays PR-1 exactly).
  double binding_ms = 0.0, policy_ms = 0.0, other_ms = 0.0;
  if (!config_.zero_latency) {
    binding_ms = rng_.lognormal(binding_service_);
    policy_ms = rng_.lognormal(policy_service_);
    other_ms = rng_.lognormal(other_service_);
  }
  const double total_ms = binding_ms + policy_ms + other_ms;

  // Parse once, on the control thread: the canonical flow tuple both keys
  // the decision cache and pins the flow to its shard.
  DecisionInput input = make_decision_input(dpid, msg);
  const std::size_t shard = pool_.shard_of(input.flow_key);

  // Decision-time context capture: the DES serializes everything, so
  // running the sensor + snapshot capture when service *completes* makes
  // each completion exactly one step of the single-threaded oracle.
  const bool accepted = pool_.submit_simulated(
      shard, [total_ms]() { return milliseconds(total_ms); },
      [this, dpid, input = std::move(input), done = std::move(done),
       binding_ms, policy_ms, other_ms, total_ms](SimTime, SimTime) mutable {
        binding_latency_ms_.add(binding_ms);
        policy_latency_ms_.add(policy_ms);
        other_latency_ms_.add(other_ms);
        total_latency_ms_.add(total_ms);
        const DecisionEffects effects = decide_from_input(input);
        apply_effects(dpid, effects, done);
      });
  if (!accepted) ++stats_.dropped_overload;
  return accepted;
}

std::size_t PolicyCompilationPoint::submit_threaded_batch(BatchItem* items,
                                                          std::size_t count) {
  // One snapshot pair for the whole batch (the refcount hoist): no
  // control-thread effect can run between these submissions, so per-item
  // captures would return the identical pair anyway — batch submission is
  // byte-identical to a back-to-back handle_packet_in loop by construction.
  // Workers borrow the context by raw pointer; retire_batches frees it.
  auto context = std::make_unique<BatchContext>();
  context->snapshots = capture_snapshots();
  context->policy_epoch = context->snapshots.policy->epoch();
  context->binding_epoch = context->snapshots.erm.epoch();
  BatchContext* ctx = context.get();

  std::size_t accepted = 0;
  for (std::size_t i = 0; i < count; ++i) {
    BatchItem& item = items[i];
    ++stats_.packet_ins;

    // Table II draws, per item and before shard routing, in the same order
    // as per-packet submission (see submit_simulated_one).
    double binding_ms = 0.0, policy_ms = 0.0, other_ms = 0.0;
    if (!config_.zero_latency) {
      binding_ms = rng_.lognormal(binding_service_);
      policy_ms = rng_.lognormal(policy_service_);
      other_ms = rng_.lognormal(other_service_);
    }
    const double total_ms = binding_ms + policy_ms + other_ms;

    DecisionInput input = make_decision_input(item.dpid, item.msg);
    const std::size_t shard = pool_.shard_of(input.flow_key);

    // Submit-time context capture: workers must not read live ERM/policy
    // state, so the snapshot pair (batch-wide) and the one location scalar
    // (per item) are fixed here, on the control thread. The location
    // sensor runs later, in the apply closure, so binding updates still
    // happen in submission order against the live ERM.
    if (input.packet.has_value()) {
      input.prior_src_location =
          erm_.location_of_mac(item.dpid, input.packet->eth.src);
    }
    item.accepted = pool_.submit_threaded(
        shard,
        [this, ctx, dpid = item.dpid, shard, input = std::move(input),
         done = std::move(item.done), binding_ms, policy_ms, other_ms,
         total_ms]() mutable -> std::function<void()> {
          if (total_ms > 0.0) {
            // The paper's PCP spends its Table II service time blocked on
            // component queries (IPC to the ERM and Policy Manager), not on
            // CPU. Model that as real blocking time so wall-clock
            // throughput scales with the number of in-flight decisions,
            // exactly like the simulated backend's service stations.
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(total_ms));
          }
          DecisionEffects effects =
              decide_on_snapshots(input, ctx->snapshots, *caches_[shard], config_);
          return [this, dpid, input = std::move(input),
                  effects = std::move(effects), done = std::move(done),
                  policy_epoch = ctx->policy_epoch,
                  binding_epoch = ctx->binding_epoch, binding_ms, policy_ms,
                  other_ms, total_ms]() mutable {
            binding_latency_ms_.add(binding_ms);
            policy_latency_ms_.add(policy_ms);
            other_latency_ms_.add(other_ms);
            total_latency_ms_.add(total_ms);
            if (input.packet.has_value()) {
              observe_mac_location(dpid, input.in_port, input.packet->eth.src);
            }
            if (!effects.unparsable && (policy_.epoch() != policy_epoch ||
                                        erm_.epoch() != binding_epoch)) {
              // The decision raced a policy or binding mutation: its
              // snapshots predate the change, so installing its rule could
              // resurrect a just-revoked policy (the flush DELETE already
              // ran). Re-decide on fresh snapshots before any effect lands.
              ++stats_.stale_redecides;
              effects =
                  decide_on_snapshots(input, capture_snapshots(),
                                      redecide_cache_, config_);
            }
            apply_effects(dpid, effects, done);
          };
        });
    if (item.accepted) {
      ++accepted;
    } else {
      ++stats_.dropped_overload;
    }
  }
  if (accepted > 0) {
    batches_.push_back(PendingBatch{pool_.submitted_seq(), std::move(context)});
  }
  return accepted;
}

void PolicyCompilationPoint::retire_batches() {
  const std::uint64_t applied = pool_.applied_seq();
  while (!batches_.empty() && batches_.front().end_seq <= applied) {
    batches_.pop_front();
  }
}

std::size_t PolicyCompilationPoint::poll_completions() {
  const std::size_t applied = pool_.poll_completions();
  retire_batches();
  return applied;
}

void PolicyCompilationPoint::wait_idle() {
  pool_.wait_idle();
  retire_batches();
}

bool PolicyCompilationPoint::handle_packet_in(Dpid dpid, PacketInMsg msg,
                                              DecisionCallback done) {
  if (pool_.backend() == PcpBackend::kSimulated) {
    return submit_simulated_one(dpid, std::move(msg), std::move(done));
  }
  // Threaded: a batch of one through the shared batch path, so per-packet
  // and batched submission are the same code (and provably byte-identical).
  BatchItem item{dpid, std::move(msg), std::move(done)};
  submit_threaded_batch(&item, 1);
  return item.accepted;
}

std::size_t PolicyCompilationPoint::handle_packet_in_batch(
    std::vector<BatchItem>& items) {
  if (items.empty()) return 0;
  if (pool_.backend() == PcpBackend::kSimulated) {
    // The DES serializes everything; batching has nothing to hoist. Loop
    // the per-item path so Table I stays bit-for-bit.
    std::size_t accepted = 0;
    for (BatchItem& item : items) {
      item.accepted =
          submit_simulated_one(item.dpid, std::move(item.msg), std::move(item.done));
      if (item.accepted) ++accepted;
    }
    return accepted;
  }
  return submit_threaded_batch(items.data(), items.size());
}

DecisionEffects PolicyCompilationPoint::decide_from_input(DecisionInput& input) {
  if (input.packet.has_value()) {
    // MAC<->switch-port sensor: the PCP observes data-plane locations from
    // Packet-in metadata and keeps the ERM binding current (Section IV-A).
    observe_mac_location(input.dpid, input.in_port, input.packet->eth.src);
    input.prior_src_location =
        erm_.location_of_mac(input.dpid, input.packet->eth.src);
  }
  const DecisionSnapshots snapshots = capture_snapshots();
  return decide_on_snapshots(input, snapshots,
                             *caches_[pool_.shard_of(input.flow_key)], config_);
}

PcpDecision PolicyCompilationPoint::decide(Dpid dpid, const PacketInMsg& msg) {
  DecisionInput input = make_decision_input(dpid, msg);
  const DecisionEffects effects = decide_from_input(input);
  apply_effects(dpid, effects, nullptr);
  return effects.decision;
}

void PolicyCompilationPoint::apply_effects(Dpid dpid,
                                           const DecisionEffects& effects,
                                           const DecisionCallback& done) {
  if (effects.unparsable) {
    ++stats_.unparsable;
    ++stats_.default_denied;
  } else {
    if (effects.cache_hit) ++stats_.decision_cache_hits;
    count_outcome(effects.decision);
    if (effects.wildcard_installed) {
      ++stats_.wildcard_rules_installed;
      if (effects.identity_derived) {
        identity_cached_policies_.insert(effects.decision.policy.rule_id);
      }
    }
    if (effects.wildcard_fallback) ++stats_.wildcard_fallbacks;
    if (!effects.spoof_reason.empty()) {
      DFI_INFO << "PCP: spoofed packet denied (" << effects.spoof_reason << ")";
    }
    if (effects.has_rule) install(dpid, effects.decision.installed_rule);
  }
  if (done) done(effects.decision);
}

void PolicyCompilationPoint::count_outcome(const PcpDecision& decision) {
  if (decision.spoofed) {
    ++stats_.spoof_denied;
  } else if (decision.allow) {
    ++stats_.allowed;
  } else if (decision.policy.default_deny) {
    ++stats_.default_denied;
  } else {
    ++stats_.denied;
  }
}

DecisionCacheStats PolicyCompilationPoint::aggregate_decision_cache_stats() const {
  DecisionCacheStats total;
  for (const auto& cache : caches_) {
    const DecisionCacheStats& s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.stale_policy += s.stale_policy;
    total.stale_binding += s.stale_binding;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
  }
  return total;
}

std::size_t PolicyCompilationPoint::decision_cache_size() const {
  std::size_t size = 0;
  for (const auto& cache : caches_) size += cache->size();
  return size;
}

void PolicyCompilationPoint::on_binding_changed(const BindingEvent& event) {
  if (!event.retracted) return;
  if (event.kind != BindingKind::kUserHost && event.kind != BindingKind::kHostIp) {
    return;
  }
  if (identity_cached_policies_.empty()) return;
  // Conservative invalidation: flush every identity-derived cached rule.
  // (Tracking which identities narrowed which rule would allow precision;
  // correctness only needs that no stale cached rule survives.)
  ++stats_.binding_invalidations;
  const std::set<PolicyRuleId> to_flush = std::move(identity_cached_policies_);
  identity_cached_policies_.clear();
  for (const PolicyRuleId id : to_flush) {
    bus_.publish(topics::kRuleFlush, FlushDirective{id});
  }
}

void PolicyCompilationPoint::observe_mac_location(Dpid dpid, PortNo port,
                                                  const MacAddress& mac) {
  if (mac.is_multicast()) return;
  const auto current = erm_.location_of_mac(dpid, mac);
  if (current.has_value() && *current == port) return;
  if (current.has_value()) {
    ++stats_.mac_moves;
    BindingEvent retract;
    retract.kind = BindingKind::kMacLocation;
    retract.retracted = true;
    retract.mac = mac;
    retract.dpid = dpid;
    retract.port = *current;
    retract.at = sim_.now();
    bus_.publish(topics::kErmBindings, retract);
  }
  BindingEvent assert_event;
  assert_event.kind = BindingKind::kMacLocation;
  assert_event.mac = mac;
  assert_event.dpid = dpid;
  assert_event.port = port;
  assert_event.at = sim_.now();
  bus_.publish(topics::kErmBindings, assert_event);
}

void PolicyCompilationPoint::install(Dpid dpid, const FlowModMsg& rule) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) {
    DFI_WARN << "PCP: no registered switch for " << to_string(dpid);
    return;
  }
  ++stats_.rules_installed;
  it->second(OfMessage{0, rule});
}

void PolicyCompilationPoint::flush(const FlushDirective& directive) {
  ++stats_.flush_directives;
  FlowModMsg del;
  del.command = FlowModCommand::kDelete;
  del.table_id = 0;
  del.cookie = Cookie{directive.policy.value};
  del.cookie_mask = Cookie{~0ull};
  del.out_port = kPortAny;
  // Wildcard match + cookie filter: removes exactly the rules derived from
  // this policy, in every switch.
  for (const auto& [dpid, writer] : switches_) {
    writer(OfMessage{0, del});
  }
}

}  // namespace dfi
