#include "core/pcp.h"

#include <cassert>

#include "common/logging.h"
#include "core/rule_cache.h"

namespace dfi {

PolicyCompilationPoint::PolicyCompilationPoint(Simulator& sim, MessageBus& bus,
                                               EntityResolutionManager& erm,
                                               PolicyManager& policy,
                                               PcpConfig config, Rng rng)
    : sim_(sim),
      bus_(bus),
      erm_(erm),
      policy_(policy),
      config_(config),
      rng_(rng),
      station_(sim, config.workers, config.queue_capacity),
      decision_cache_(config.decision_cache_capacity),
      flush_subscription_(bus.subscribe<FlushDirective>(
          topics::kRuleFlush,
          [this](const FlushDirective& directive) { flush(directive); })) {
  if (!config_.zero_latency) {
    // Table II calibration: derive the log-normal parameters once here
    // rather than from the mean/sd on every handle_packet_in.
    binding_service_ = LogNormalParams::from_moments(config_.binding_query_mean_ms,
                                                     config_.binding_query_sd_ms);
    policy_service_ = LogNormalParams::from_moments(config_.policy_query_mean_ms,
                                                    config_.policy_query_sd_ms);
    other_service_ =
        LogNormalParams::from_moments(config_.other_mean_ms, config_.other_sd_ms);
  }
  if (config_.wildcard_caching) {
    // Identity-derived cached rules depend on the bindings used to narrow
    // them; retraction invalidates those caches (see core/rule_cache.h).
    binding_subscription_ = bus.subscribe<BindingEvent>(
        topics::kErmBindings,
        [this](const BindingEvent& event) { on_binding_changed(event); });
  }
}

void PolicyCompilationPoint::register_switch(Dpid dpid, SwitchWriter writer) {
  switches_[dpid] = std::move(writer);
}

void PolicyCompilationPoint::unregister_switch(Dpid dpid) {
  switches_.erase(dpid);
}

bool PolicyCompilationPoint::handle_packet_in(Dpid dpid, PacketInMsg msg,
                                              DecisionCallback done) {
  ++stats_.packet_ins;

  // Sample the simulated cost of this decision's subtasks (Table II).
  double binding_ms = 0.0, policy_ms = 0.0, other_ms = 0.0;
  if (!config_.zero_latency) {
    binding_ms = rng_.lognormal(binding_service_);
    policy_ms = rng_.lognormal(policy_service_);
    other_ms = rng_.lognormal(other_service_);
  }
  const double total_ms = binding_ms + policy_ms + other_ms;

  const bool accepted = station_.submit(
      [total_ms]() { return milliseconds(total_ms); },
      [this, dpid, msg = std::move(msg), done = std::move(done), binding_ms,
       policy_ms, other_ms, total_ms](SimTime, SimTime) {
        binding_latency_ms_.add(binding_ms);
        policy_latency_ms_.add(policy_ms);
        other_latency_ms_.add(other_ms);
        total_latency_ms_.add(total_ms);
        const PcpDecision decision = decide(dpid, msg);
        if (done) done(decision);
      });
  if (!accepted) ++stats_.dropped_overload;
  return accepted;
}

PcpDecision PolicyCompilationPoint::decide(Dpid dpid, const PacketInMsg& msg) {
  PcpDecision decision;

  const auto parsed = Packet::parse(msg.data);
  if (!parsed.ok()) {
    // Unparsable traffic cannot be matched to policy; default deny, but no
    // rule can be compiled for it (no usable header fields).
    ++stats_.unparsable;
    ++stats_.default_denied;
    decision.allow = false;
    decision.policy =
        PolicyDecision{PolicyAction::kDeny, PolicyRuleId{kDefaultDenyCookie.value}, true};
    return decision;
  }
  const Packet& packet = parsed.value();

  // MAC<->switch-port sensor: the PCP observes data-plane locations from
  // Packet-in metadata and keeps the ERM binding current (Section IV-A).
  observe_mac_location(dpid, msg.in_port, packet.eth.src);

  // Decision cache: an identical flow tuple decided under the current
  // policy and binding epochs replays its decision without re-running
  // validation, enrichment, or the policy query. Any policy insert/revoke
  // or effective binding change bumps an epoch and forces the full path,
  // preserving late binding (Section III-B).
  const FlowKey flow_key = FlowKey::from_packet(dpid, msg.in_port, packet);
  if (decision_cache_.enabled()) {
    if (const PcpDecision* cached = decision_cache_.lookup(
            flow_key, policy_.epoch(), erm_.epoch())) {
      PcpDecision replayed = *cached;
      ++stats_.decision_cache_hits;
      count_outcome(replayed);
      install(dpid, replayed.installed_rule);
      return replayed;
    }
  }

  // Collect all source/destination identifiers present in the packet.
  EndpointView src;
  src.mac = packet.eth.src;
  src.dpid = dpid;
  src.switch_port = msg.in_port;
  EndpointView dst;
  dst.mac = packet.eth.dst;
  if (packet.ipv4.has_value()) {
    src.ip = packet.ipv4->src;
    dst.ip = packet.ipv4->dst;
  }
  if (packet.tcp.has_value()) {
    src.l4_port = packet.tcp->src_port;
    dst.l4_port = packet.tcp->dst_port;
  } else if (packet.udp.has_value()) {
    src.l4_port = packet.udp->src_port;
    dst.l4_port = packet.udp->dst_port;
  }

  // Spoof validation against authoritative bindings (source side; the
  // destination's claimed identifiers are not attacker-controlled claims).
  const SpoofCheck spoof = erm_.validate(src.mac, src.ip, src.dpid, src.switch_port);
  if (spoof.spoofed) {
    decision.spoofed = true;
    decision.allow = false;
    decision.policy =
        PolicyDecision{PolicyAction::kDeny, PolicyRuleId{kDefaultDenyCookie.value}, true};
    decision.installed_rule = compile_rule(packet, msg.in_port, /*allow=*/false,
                                           kDefaultDenyCookie);
    count_outcome(decision);
    decision_cache_.store(flow_key, decision, policy_.epoch(), erm_.epoch());
    install(dpid, decision.installed_rule);
    DFI_INFO << "PCP: spoofed packet denied (" << spoof.reason << ")";
    return decision;
  }

  // Enrichment: map low-level identifiers up to hostnames and usernames at
  // decision time (late binding).
  FlowView flow;
  flow.ether_type = packet.eth.ether_type;
  if (packet.ipv4.has_value()) flow.ip_proto = packet.ipv4->protocol;
  flow.src = erm_.enrich(std::move(src));
  flow.dst = erm_.enrich(std::move(dst));

  // Policy query: highest-priority matching rule, default deny.
  decision.policy = policy_.query(flow);
  decision.allow = decision.policy.action == PolicyAction::kAllow;
  decision.flow = flow;

  count_outcome(decision);

  decision.installed_rule =
      compile_rule(packet, msg.in_port, decision.allow,
                   Cookie{decision.policy.rule_id.value});

  // Wildcard caching extension: replace the exact match with a safe
  // generalization of the deciding policy when one exists.
  if (config_.wildcard_caching) {
    const auto cached = compile_wildcard(policy_, decision.policy, flow);
    if (cached.has_value()) {
      decision.installed_rule.match = cached->match;
      ++stats_.wildcard_rules_installed;
      if (cached->identity_derived) {
        identity_cached_policies_.insert(decision.policy.rule_id);
      }
    } else {
      ++stats_.wildcard_fallbacks;
    }
  }

  decision_cache_.store(flow_key, decision, policy_.epoch(), erm_.epoch());
  install(dpid, decision.installed_rule);
  return decision;
}

void PolicyCompilationPoint::count_outcome(const PcpDecision& decision) {
  if (decision.spoofed) {
    ++stats_.spoof_denied;
  } else if (decision.allow) {
    ++stats_.allowed;
  } else if (decision.policy.default_deny) {
    ++stats_.default_denied;
  } else {
    ++stats_.denied;
  }
}

void PolicyCompilationPoint::on_binding_changed(const BindingEvent& event) {
  if (!event.retracted) return;
  if (event.kind != BindingKind::kUserHost && event.kind != BindingKind::kHostIp) {
    return;
  }
  if (identity_cached_policies_.empty()) return;
  // Conservative invalidation: flush every identity-derived cached rule.
  // (Tracking which identities narrowed which rule would allow precision;
  // correctness only needs that no stale cached rule survives.)
  ++stats_.binding_invalidations;
  const std::set<PolicyRuleId> to_flush = std::move(identity_cached_policies_);
  identity_cached_policies_.clear();
  for (const PolicyRuleId id : to_flush) {
    bus_.publish(topics::kRuleFlush, FlushDirective{id});
  }
}

void PolicyCompilationPoint::observe_mac_location(Dpid dpid, PortNo port,
                                                  const MacAddress& mac) {
  if (mac.is_multicast()) return;
  const auto current = erm_.location_of_mac(dpid, mac);
  if (current.has_value() && *current == port) return;
  if (current.has_value()) {
    ++stats_.mac_moves;
    BindingEvent retract;
    retract.kind = BindingKind::kMacLocation;
    retract.retracted = true;
    retract.mac = mac;
    retract.dpid = dpid;
    retract.port = *current;
    retract.at = sim_.now();
    bus_.publish(topics::kErmBindings, retract);
  }
  BindingEvent assert_event;
  assert_event.kind = BindingKind::kMacLocation;
  assert_event.mac = mac;
  assert_event.dpid = dpid;
  assert_event.port = port;
  assert_event.at = sim_.now();
  bus_.publish(topics::kErmBindings, assert_event);
}

FlowModMsg PolicyCompilationPoint::compile_rule(const Packet& packet, PortNo in_port,
                                                bool allow, Cookie cookie) const {
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.table_id = 0;  // DFI's reserved table
  mod.priority = config_.rule_priority;
  mod.cookie = cookie;
  // Exact match: every identifier available in the packet is specified so
  // each new flow gets its own policy check (Section III-B).
  mod.match = Match::exact_from_packet(packet, in_port);
  mod.instructions = allow ? Instructions::to_table(config_.controller_first_table)
                           : Instructions::drop();
  return mod;
}

void PolicyCompilationPoint::install(Dpid dpid, const FlowModMsg& rule) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) {
    DFI_WARN << "PCP: no registered switch for " << to_string(dpid);
    return;
  }
  ++stats_.rules_installed;
  it->second(OfMessage{0, rule});
}

void PolicyCompilationPoint::flush(const FlushDirective& directive) {
  ++stats_.flush_directives;
  FlowModMsg del;
  del.command = FlowModCommand::kDelete;
  del.table_id = 0;
  del.cookie = Cookie{directive.policy.value};
  del.cookie_mask = Cookie{~0ull};
  del.out_port = kPortAny;
  // Wildcard match + cookie filter: removes exactly the rules derived from
  // this policy, in every switch.
  for (const auto& [dpid, writer] : switches_) {
    writer(OfMessage{0, del});
  }
}

}  // namespace dfi
