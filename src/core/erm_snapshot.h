// Immutable snapshot of the Entity Resolution Manager's identity bindings.
//
// The PCP decision path must be a pure function of frozen state (DESIGN.md
// §5): enrichment and spoof validation run against an `ErmSnapshot`, never
// against the live ERM maps, so N PCP shards — simulated stations or real
// threads — can decide concurrently while sensors keep mutating the live
// manager on the control thread.
//
// The snapshot covers the *identity* bindings (user<->host, host<->IP,
// IP<->MAC). The MAC<->(switch,port) location binding is deliberately NOT
// part of it: the PCP's own location sensor asserts the observed location
// of every packet's source before deciding, which makes the source-side
// location check a tautology for unicast MACs (see decide_on_snapshots in
// core/pcp_decide.h). Freezing the location map would instead force a
// snapshot rebuild on every first packet of every new host — O(bindings)
// work per flow. The one packet-visible location fact — the prior port of
// the source MAC — travels with the decision request as a scalar input.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "core/policy.h"

namespace dfi {

// Result of spoof validation (also returned by the live ERM).
struct SpoofCheck {
  bool spoofed = false;
  std::string reason;
};

// The identity-binding multimaps, shared verbatim between the live ERM
// (which mutates its private copy) and published snapshots (frozen). Pure
// queries live here so live and snapshot paths cannot drift apart.
struct ErmIdentityTables {
  std::unordered_map<Username, std::set<Hostname>> user_to_hosts;
  std::unordered_map<Hostname, std::set<Username>> host_to_users;
  std::unordered_map<Hostname, std::set<Ipv4Address>> host_to_ips;
  std::unordered_map<Ipv4Address, std::set<Hostname>> ip_to_hosts;
  std::unordered_map<Ipv4Address, MacAddress> ip_to_mac;  // DHCP: one MAC per IP
  std::unordered_map<MacAddress, std::set<Ipv4Address>> mac_to_ips;

  // Enrich the low-level identifiers of one endpoint: the input plus all
  // hostnames bound to the IP and all usernames bound to those hostnames,
  // deduplicated. Pure — no counters, no side effects.
  EndpointView enrich(EndpointView view) const;

  // IP<->MAC spoof validation: a packet claiming an IP that DHCP bound to
  // a different MAC is spoofed. Missing bindings are not spoofing.
  SpoofCheck validate_identity(const std::optional<MacAddress>& mac,
                               const std::optional<Ipv4Address>& ip) const;
};

// One immutable, epoch-stamped view of the identity bindings. Cheap to
// copy (a shared_ptr plus the epoch); safe to read from any thread.
class ErmSnapshot {
 public:
  ErmSnapshot() : tables_(std::make_shared<const ErmIdentityTables>()) {}
  ErmSnapshot(std::shared_ptr<const ErmIdentityTables> tables, std::uint64_t epoch)
      : tables_(std::move(tables)), epoch_(epoch) {}

  EndpointView enrich(EndpointView view) const { return tables_->enrich(std::move(view)); }
  SpoofCheck validate_identity(const std::optional<MacAddress>& mac,
                               const std::optional<Ipv4Address>& ip) const {
    return tables_->validate_identity(mac, ip);
  }

  // The ERM epoch in force when this snapshot was taken; decision-cache
  // entries derived from it are stamped with this value.
  std::uint64_t epoch() const { return epoch_; }

  const ErmIdentityTables& tables() const { return *tables_; }

 private:
  std::shared_ptr<const ErmIdentityTables> tables_;
  std::uint64_t epoch_ = 0;
};

}  // namespace dfi
