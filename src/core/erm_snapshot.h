// Immutable snapshot of the Entity Resolution Manager's identity bindings.
//
// The PCP decision path must be a pure function of frozen state (DESIGN.md
// §5): enrichment and spoof validation run against an `ErmSnapshot`, never
// against the live ERM maps, so N PCP shards — simulated stations or real
// threads — can decide concurrently while sensors keep mutating the live
// manager on the control thread.
//
// Compact entity plane (DESIGN.md §8): the binding tables are keyed on
// dense interned `EntityId`s (common/intern.h), not heap strings. Each
// table is a paged copy-on-write structure (common/cow_table.h) whose
// posting lists hold packed 32-bit ids sorted in the *presentation* order
// of the entities they name (lexicographic for users/hosts, numeric for
// IPs), so enrichment output is byte-identical to the old ordered-set
// layout without sorting on the hot path. Publishing a snapshot is a
// root-pointer capture — O(1) — and the next mutation path-copies only the
// dirty page: one binding event at a million bindings costs the same as
// one binding event at ten thousand.
//
// The snapshot covers the *identity* bindings (user<->host, host<->IP,
// IP<->MAC). The MAC<->(switch,port) location binding is deliberately NOT
// part of it: the PCP's own location sensor asserts the observed location
// of every packet's source before deciding, which makes the source-side
// location check a tautology for unicast MACs (see decide_on_snapshots in
// core/pcp_decide.h). The one packet-visible location fact — the prior
// port of the source MAC — travels with the decision request as a scalar.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cow_table.h"
#include "common/intern.h"
#include "core/policy.h"

namespace dfi {

// Result of spoof validation (also returned by the live ERM).
struct SpoofCheck {
  bool spoofed = false;
  std::string reason;
};

// One immutable, packed posting list of entity ids. Slots in the paged
// tables hold shared pointers to these; mutation replaces the pointer with
// a freshly built list, so published snapshots keep reading the old one.
using PostingListPtr = std::shared_ptr<const std::vector<EntityId>>;

// The identity-binding tables, shared structurally between the live ERM
// (which path-copies on mutation) and published snapshots (frozen). Pure
// queries live here so live and snapshot paths cannot drift apart.
struct ErmIdentityTables {
  ErmIdentityTables()
      : interner(std::make_shared<EntityInterner>()),
        ip_lookup(interner->ips().reader()) {}

  // Append-only id<->name store, shared by every version of the tables.
  std::shared_ptr<EntityInterner> interner;
  // IP value -> id capture for reader-side lookups (refreshed by the ERM
  // on every mutation / publication; see common/intern.h concurrency
  // contract).
  ValueInterner::Reader ip_lookup;

  // user id -> host ids, sorted by hostname.
  CowTable<PostingListPtr> user_to_hosts;
  // host id -> user ids, sorted by username.
  CowTable<PostingListPtr> host_to_users;
  // host id -> ip ids, sorted by address value.
  CowTable<PostingListPtr> host_to_ips;
  // ip id -> host ids, sorted by hostname.
  CowTable<PostingListPtr> ip_to_hosts;
  // ip id -> MAC (DHCP: one MAC per IP), packed as to_u64()+1; 0 = unbound.
  CowTable<std::uint64_t> ip_to_mac;
  // mac id -> ip ids, sorted by address value.
  CowTable<PostingListPtr> mac_to_ips;

  // Enrich the low-level identifiers of one endpoint: the input plus all
  // hostnames bound to the IP and all usernames bound to those hostnames,
  // deduplicated. Pure — no counters, no side effects.
  EndpointView enrich(EndpointView view) const;

  // IP<->MAC spoof validation: a packet claiming an IP that DHCP bound to
  // a different MAC is spoofed. Missing bindings are not spoofing.
  SpoofCheck validate_identity(const std::optional<MacAddress>& mac,
                               const std::optional<Ipv4Address>& ip) const;

  // Writer only: mark every page as shared by a published snapshot, so the
  // next mutation of each path-copies it (common/cow_table.h).
  void freeze_all() {
    user_to_hosts.freeze();
    host_to_users.freeze();
    host_to_ips.freeze();
    ip_to_hosts.freeze();
    ip_to_mac.freeze();
    mac_to_ips.freeze();
  }

  // Aggregate copy-on-write cost counters across all six tables.
  CowTableStats cow_stats() const {
    CowTableStats total;
    for (const CowTableStats* s :
         {&user_to_hosts.stats(), &host_to_users.stats(), &host_to_ips.stats(),
          &ip_to_hosts.stats(), &ip_to_mac.stats(), &mac_to_ips.stats()}) {
      total.page_copies += s->page_copies;
      total.root_copies += s->root_copies;
    }
    return total;
  }
};

// One immutable, epoch-stamped view of the identity bindings. Cheap to
// copy (a shared_ptr plus the epoch); safe to read from any thread.
class ErmSnapshot {
 public:
  ErmSnapshot() : tables_(std::make_shared<const ErmIdentityTables>()) {}
  ErmSnapshot(std::shared_ptr<const ErmIdentityTables> tables, std::uint64_t epoch)
      : tables_(std::move(tables)), epoch_(epoch) {}

  EndpointView enrich(EndpointView view) const { return tables_->enrich(std::move(view)); }
  SpoofCheck validate_identity(const std::optional<MacAddress>& mac,
                               const std::optional<Ipv4Address>& ip) const {
    return tables_->validate_identity(mac, ip);
  }

  // The ERM epoch in force when this snapshot was taken; decision-cache
  // entries derived from it are stamped with this value.
  std::uint64_t epoch() const { return epoch_; }

  const ErmIdentityTables& tables() const { return *tables_; }

 private:
  std::shared_ptr<const ErmIdentityTables> tables_;
  std::uint64_t epoch_ = 0;
};

}  // namespace dfi
