// DFI policy model (paper Section III-B, "Policy Decision Points").
//
// Policy rules are tuples (Action, Flow Properties, Source, Destination).
// Source and Destination are endpoint specifications over both high-level
// identifiers (username, hostname) and low-level ones (IP, L4 port, MAC,
// switch port, switch DPID); every field may be a wildcard. Rules match
// *enriched* flow views: the PCP maps the low-level identifiers observed in
// a packet up to high-level identifiers at decision time (late binding —
// Section III-B, Entity Resolution Manager).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/ipv4.h"
#include "net/mac.h"

namespace dfi {

enum class PolicyAction { kAllow, kDeny };

inline const char* to_string(PolicyAction action) {
  return action == PolicyAction::kAllow ? "Allow" : "Deny";
}

// Flow-level properties a rule may constrain: EtherType and IP protocol.
struct FlowProperties {
  std::optional<std::uint16_t> ether_type;
  std::optional<std::uint8_t> ip_proto;

  friend bool operator==(const FlowProperties&, const FlowProperties&) = default;
};

// One side of a flow as named in policy. Absent fields are wildcards.
struct EndpointSpec {
  std::optional<Username> user;
  std::optional<Hostname> host;
  std::optional<Ipv4Address> ip;
  std::optional<std::uint16_t> l4_port;
  std::optional<MacAddress> mac;
  std::optional<PortNo> switch_port;
  std::optional<Dpid> dpid;

  friend bool operator==(const EndpointSpec&, const EndpointSpec&) = default;

  bool is_wildcard() const { return *this == EndpointSpec{}; }
  std::string to_string() const;
};

// One side of a flow as observed in the network and enriched by the Entity
// Resolution Manager. Hostnames/usernames are sets because bindings are
// many-to-many (a host may have several names bound through multiple IPs; a
// host may have several logged-on users).
struct EndpointView {
  std::optional<MacAddress> mac;
  std::optional<Ipv4Address> ip;
  std::optional<std::uint16_t> l4_port;
  std::optional<Dpid> dpid;          // ingress switch (source side only)
  std::optional<PortNo> switch_port;
  std::vector<Hostname> hostnames;
  std::vector<Username> usernames;

  std::string to_string() const;
};

// A fully enriched flow, ready for policy evaluation.
struct FlowView {
  std::uint16_t ether_type = 0;
  std::optional<std::uint8_t> ip_proto;
  EndpointView src;
  EndpointView dst;
};

struct PolicyRule {
  PolicyAction action = PolicyAction::kDeny;
  FlowProperties properties;
  EndpointSpec source;
  EndpointSpec destination;

  friend bool operator==(const PolicyRule&, const PolicyRule&) = default;

  // True if this rule applies to the enriched flow.
  bool matches(const FlowView& flow) const;

  // True if some flow could match both this rule and `other` (field-wise
  // overlap: wildcards overlap everything, concrete values only if equal).
  // Used by the Policy Manager's consistency check (Section III-B).
  bool overlaps(const PolicyRule& other) const;

  std::string to_string() const;
};

namespace spec_detail {
bool endpoint_matches(const EndpointSpec& spec, const EndpointView& view);
bool endpoints_overlap(const EndpointSpec& a, const EndpointSpec& b);
}  // namespace spec_detail

}  // namespace dfi
