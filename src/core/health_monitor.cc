#include "core/health_monitor.h"

#include <algorithm>

#include "common/logging.h"

namespace dfi {

HealthMonitor::HealthMonitor(Simulator& sim, MessageBus& bus, HealthConfig config,
                             Rng rng)
    : sim_(sim),
      bus_(bus),
      config_(config),
      rng_(rng),
      heartbeat_subscription_(bus.subscribe<HeartbeatEvent>(
          topics::kHealthHeartbeats,
          [this](const HeartbeatEvent& event) { heartbeat(event.component); })) {}

HealthMonitor::~HealthMonitor() { *alive_ = false; }

void HealthMonitor::watch(const std::string& component) {
  last_beat_.emplace(component, sim_.now());
  poll();
}

void HealthMonitor::heartbeat(const std::string& component) {
  ++stats_.heartbeats;
  last_beat_[component] = sim_.now();
  poll();
}

void HealthMonitor::unwatch(const std::string& component) {
  last_beat_.erase(component);
  poll();
}

void HealthMonitor::enter_degraded(const std::string& reason) {
  ++degraded_refs_;
  DFI_DEBUG << "health: degraded window opened (" << reason << "), refs "
            << degraded_refs_;
  poll();
}

void HealthMonitor::exit_degraded(const std::string& reason) {
  if (degraded_refs_ > 0) --degraded_refs_;
  DFI_DEBUG << "health: degraded window closed (" << reason << "), refs "
            << degraded_refs_;
  poll();
}

void HealthMonitor::watch_shards(std::function<std::size_t()> dead,
                                 std::function<std::size_t()> respawn) {
  dead_shards_ = std::move(dead);
  respawn_shards_ = std::move(respawn);
  poll();
}

SimDuration HealthMonitor::backoff_delay(int attempt) {
  // base * 2^attempt, capped, then jittered by a uniform factor in
  // [1 - j, 1 + j]. The shift is bounded so the doubling cannot overflow
  // before the cap applies.
  const int shift = std::min(attempt, 30);
  SimDuration delay = config_.backoff_base * (std::int64_t{1} << shift);
  if (delay > config_.backoff_cap || delay.us < 0) delay = config_.backoff_cap;
  const double jitter = std::clamp(config_.backoff_jitter, 0.0, 1.0);
  const double factor = rng_.uniform_real(1.0 - jitter, 1.0 + jitter);
  delay.us = static_cast<std::int64_t>(static_cast<double>(delay.us) * factor);
  if (delay.us < 1) delay.us = 1;
  return delay;
}

void HealthMonitor::supervise_reconnect(const std::string& name,
                                        std::function<bool()> connect) {
  if (connect()) return;
  // First failure opens a degraded window that stays open until the
  // reconnect lands (or is abandoned): whatever this connection fed —
  // sensor events, controller session — is not flowing.
  enter_degraded("reconnect:" + name);
  reconnect_attempt(name, std::make_shared<std::function<bool()>>(std::move(connect)),
                    0);
}

void HealthMonitor::reconnect_attempt(const std::string& name,
                                      std::shared_ptr<std::function<bool()>> connect,
                                      int attempt) {
  if (config_.max_reconnect_attempts > 0 &&
      attempt >= config_.max_reconnect_attempts) {
    ++stats_.reconnects_abandoned;
    DFI_WARN << "health: reconnect of " << name << " abandoned after " << attempt
             << " attempts";
    exit_degraded("reconnect:" + name);
    return;
  }
  sim_.schedule_after(
      backoff_delay(attempt), [this, alive = alive_, name, connect, attempt] {
        if (!*alive) return;
        ++stats_.backoff_retries;
        if ((*connect)()) {
          exit_degraded("reconnect:" + name);
          return;
        }
        reconnect_attempt(name, connect, attempt + 1);
      });
}

void HealthMonitor::enable_failover(ReplicaRole role,
                                    std::function<void()> on_promote) {
  failover_enabled_ = true;
  on_promote_ = std::move(on_promote);
  set_role(role);
}

void HealthMonitor::set_role(ReplicaRole role) {
  if (role_ == ReplicaRole::kPrimary && role != ReplicaRole::kPrimary) {
    ++stats_.demotions;
    DFI_WARN << "health: primary demoted to " << to_string(role);
  }
  role_ = role;
  // (Re)arm the peer-staleness clock: a primary that never shows up is as
  // dead as one that stopped beating.
  if (role_ == ReplicaRole::kStandby) last_peer_beat_ = sim_.now();
  poll();
}

void HealthMonitor::peer_heartbeat() {
  if (!failover_enabled_ || role_ != ReplicaRole::kStandby) return;
  ++stats_.heartbeats;
  last_peer_beat_ = sim_.now();
  poll();
}

void HealthMonitor::promote_now() {
  if (!failover_enabled_ || role_ != ReplicaRole::kStandby) return;
  if (in_poll_) {
    run_promotion();
    return;
  }
  in_poll_ = true;
  run_promotion();
  in_poll_ = false;
  poll();  // settle the state machine through the post-handover conditions
}

bool HealthMonitor::peer_stale() const {
  return failover_enabled_ && role_ == ReplicaRole::kStandby &&
         sim_.now() - last_peer_beat_ > config_.failover_deadline;
}

void HealthMonitor::run_promotion() {
  role_ = ReplicaRole::kPromoting;
  DFI_WARN << "health: replication peer stale, promoting standby";
  // The handover runs inside an explicit degraded window: between the
  // peer's death and the promoted node's Table-0 resync no decision is
  // trustworthy. Refs are touched directly (not enter/exit_degraded) —
  // this already runs under the in_poll_ guard.
  ++degraded_refs_;
  if (state_ == HealthState::kHealthy) transition_to(HealthState::kDegraded);
  if (on_promote_) on_promote_();
  if (degraded_refs_ > 0) --degraded_refs_;
  role_ = ReplicaRole::kPrimary;
  ++stats_.promotions;
}

void HealthMonitor::poll() {
  if (in_poll_) return;  // transition callbacks may mutate; don't recurse
  in_poll_ = true;

  // Failover first: the handover changes the conditions the state machine
  // below evaluates (the stale peer is the standby's problem to inherit,
  // not to stay degraded over forever).
  if (peer_stale()) run_promotion();

  const std::size_t dead = dead_shards_ ? dead_shards_() : 0;
  const bool bad = conditions_bad(dead);

  switch (state_) {
    case HealthState::kHealthy:
      if (bad) transition_to(HealthState::kDegraded);
      break;
    case HealthState::kDegraded:
      if (!bad) {
        recovering_since_ = sim_.now();
        transition_to(HealthState::kRecovering);
        // A zero hold recovers in the same evaluation.
        if (sim_.now() - recovering_since_ >= config_.recovering_hold) {
          transition_to(HealthState::kHealthy);
        }
      }
      break;
    case HealthState::kRecovering:
      if (bad) {
        transition_to(HealthState::kDegraded);
      } else if (sim_.now() - recovering_since_ >= config_.recovering_hold) {
        transition_to(HealthState::kHealthy);
      }
      break;
  }

  // Respawn only after the evaluation above: a dead worker degrades the
  // plane for at least one window before the supervisor replaces it.
  if (dead > 0 && respawn_shards_) {
    stats_.shard_respawns += respawn_shards_();
  }
  in_poll_ = false;
}

bool HealthMonitor::conditions_bad(std::size_t dead_shards) {
  if (degraded_refs_ > 0) return true;
  if (dead_shards > 0) return true;
  const SimTime now = sim_.now();
  for (const auto& [component, beat] : last_beat_) {
    if (now - beat > config_.heartbeat_deadline) {
      ++stats_.deadline_misses;
      return true;
    }
  }
  return false;
}

void HealthMonitor::transition_to(HealthState next) {
  const HealthState from = state_;
  if (from == next) return;
  state_ = next;
  if (next == HealthState::kDegraded) ++stats_.degraded_entries;
  if (next == HealthState::kHealthy) ++stats_.degraded_exits;
  DFI_DEBUG << "health: " << to_string(from) << " -> " << to_string(next);
  for (const auto& callback : transition_callbacks_) callback(from, next);
}

bool HealthMonitor::gating() {
  if (!config_.enabled) return false;
  poll();
  return state_ != HealthState::kHealthy;
}

void HealthMonitor::on_transition(TransitionCallback callback) {
  transition_callbacks_.push_back(std::move(callback));
}

void HealthMonitor::start() {
  if (ticking_) return;
  ticking_ = true;
  schedule_tick();
}

void HealthMonitor::stop() { ticking_ = false; }

void HealthMonitor::schedule_tick() {
  sim_.schedule_after(config_.check_interval, [this, alive = alive_] {
    if (!*alive || !ticking_) return;
    poll();
    schedule_tick();
  });
}

}  // namespace dfi
