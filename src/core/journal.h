// Durable write-ahead log for the control-plane state (DESIGN.md §6).
//
// The paper backs the Policy Manager and ERM with MySQL so the control
// plane survives restarts. This is the surrogate's crash-safe layer: every
// PolicyManager insert/revoke and every ERM binding event appends one
// length-prefixed, CRC-checksummed record to a JournalStore *before* the
// mutation takes effect (classic WAL ordering — if the append did not
// complete, the operation never happened). Startup replays the log with
// torn-tail tolerance: the first record whose length prefix or checksum
// does not hold marks the crash point, and everything from there on is
// truncated. Periodic snapshot+compaction rewrites the store down to one
// snapshot record reusing the save_policies/save_bindings text format
// (core/persistence.h) plus a header carrying what that format does not:
// the rule ids, the next id, and both epochs — so recovery restores not
// just the rule/binding *sets* but the exact PolicyRuleIds (Table-0
// cookies cite them) and epoch counters (decision caches stamp entries
// with them; see load_policies' epoch_floor rationale).
//
// Record grammar (one text payload per framed record):
//   p+|<id>|<epoch_after>|policy|<pdp>|<priority>|...   rule inserted
//   p-|<id>|<epoch_after>                               rule revoked
//   b|+|binding|...                                     binding asserted
//   b|-|binding|...                                     binding retracted
//   f|<epoch>                                           fencing epoch set
//   snapshot|v1|next_id=..|policy_epoch=..|binding_epoch=..|ids=..
//   <save_policies text>
//   ---
//   <save_bindings text>                                compaction record
//
// Fencing (DESIGN.md §6.3): a replicated pair stamps every shipped record
// with the shipping journal's fencing epoch. Promotion bumps the epoch (a
// durable `f|` record), and a deposed primary that *observes* a higher
// epoch — from the survivor's stream or a fence-reject — refuses every
// further append (FencedException, fail-secure): whatever it would write
// can no longer become authoritative.
//
// Crash injection: the store is where a process dies, so the fault
// substrate arms it with a seeded CrashPoint (src/fault/fault_plan.h).
// When the kill fires the store throws CrashException out of the durable
// operation; the crash-recovery fuzzer treats that as the process boundary
// and restarts from the bytes that survived.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/entity_resolution.h"
#include "core/policy_manager.h"
#include "fault/fault_plan.h"

namespace dfi {

class HealthMonitor;

// Thrown by a JournalStore when an armed CrashPoint fires mid-operation.
// Models the process dying: whatever the store persisted before the throw
// is what a restart will find.
struct CrashException {};

// Thrown by Journal::append_* on a journal that has observed a higher
// fencing epoch than its own: the owner was deposed, and a mutation it
// durably applied could silently diverge from the promoted survivor.
// Fail-secure means the mutation must not happen at all.
struct FencedException {};

// Durable byte store under the journal: an append-only live image plus an
// atomically-committed rewrite area for compaction. The in-memory
// implementation is the fuzzer's crash target; the file implementation
// maps the same contract onto a real file (append/fsync/rename).
class JournalStore {
 public:
  virtual ~JournalStore() = default;

  // Append bytes to the live image. May persist a prefix and throw
  // CrashException (torn write).
  virtual void append(const std::uint8_t* data, std::size_t size) = 0;

  // Durability barrier (fsync). A crash here loses nothing already
  // appended in this model, but is a distinct kill site.
  virtual void sync() = 0;

  // The complete live image, as a restart would read it.
  virtual std::vector<std::uint8_t> read_all() const = 0;

  // Discard everything past `size` (torn-tail truncation on recovery).
  virtual void truncate(std::size_t size) = 0;

  // Compaction: stage a replacement image, then swap it in atomically.
  // A crash inside commit_rewrite leaves either the old image or the new
  // one, never a mix.
  virtual void begin_rewrite() = 0;
  virtual void append_rewrite(const std::uint8_t* data, std::size_t size) = 0;
  virtual void commit_rewrite() = 0;
};

// In-memory store with seeded crash injection. arm_crash() loads one
// CrashPoint; each durable operation (append, sync, commit_rewrite)
// decrements its countdown and the operation it lands on dies mid-way:
// append keeps only tear_fraction of the record's bytes, commit_rewrite
// either never swaps or swaps completely (commit_survives).
class InMemoryJournalStore final : public JournalStore {
 public:
  void append(const std::uint8_t* data, std::size_t size) override;
  void sync() override;
  std::vector<std::uint8_t> read_all() const override { return live_; }
  void truncate(std::size_t size) override;
  void begin_rewrite() override;
  void append_rewrite(const std::uint8_t* data, std::size_t size) override;
  void commit_rewrite() override;

  void arm_crash(const CrashPoint& point) { crash_ = point; }
  void disarm() { crash_.armed = false; }
  bool armed() const { return crash_.armed; }
  std::size_t size() const { return live_.size(); }

 private:
  // True when the armed crash lands on the current operation.
  bool crash_fires();

  std::vector<std::uint8_t> live_;
  std::optional<std::vector<std::uint8_t>> rewrite_;
  CrashPoint crash_;
};

// Real-file store: append+fsync on the live path, write-temp+rename+
// parent-directory-fsync on commit_rewrite (the rename alone orders the
// swap but does not make it durable — the directory entry must be synced
// too). Every fsync/rename return value is checked; a failure is surfaced
// through the attached HealthMonitor as a `journal-io` degraded window
// (fail-secure: decisions must not trust a database whose durability
// barrier is failing) that closes on the next fully-successful durable
// operation. Crash injection is the in-memory store's job.
class FileJournalStore final : public JournalStore {
 public:
  explicit FileJournalStore(std::string path);
  ~FileJournalStore() override;

  void append(const std::uint8_t* data, std::size_t size) override;
  void sync() override;
  std::vector<std::uint8_t> read_all() const override;
  void truncate(std::size_t size) override;
  void begin_rewrite() override;
  void append_rewrite(const std::uint8_t* data, std::size_t size) override;
  void commit_rewrite() override;

  // Surface IO failures as a ref-counted degraded window on `health`
  // instead of a log line. The monitor must outlive this store (or be
  // detached with nullptr first).
  void attach_health(HealthMonitor* health);

  const std::string& path() const { return path_; }
  bool io_degraded() const { return io_degraded_; }
  std::uint64_t io_failures() const { return io_failures_; }

 private:
  void io_failure(const char* what);
  void io_recovered();
  // fsync the directory holding path_ (rename durability).
  bool sync_parent_dir();

  std::string path_;
  int fd_ = -1;
  int rewrite_fd_ = -1;
  HealthMonitor* health_ = nullptr;
  bool io_degraded_ = false;
  std::uint64_t io_failures_ = 0;
};

struct JournalStats {
  std::uint64_t appends = 0;            // records appended (WAL mutations)
  std::uint64_t bytes_appended = 0;
  std::uint64_t replays = 0;            // recover() calls
  std::uint64_t records_replayed = 0;
  std::uint64_t torn_tails_truncated = 0;
  std::uint64_t torn_bytes_discarded = 0;
  std::uint64_t compactions = 0;
  std::uint64_t snapshots_loaded = 0;
  std::uint64_t fence_bumps = 0;         // f| records written
  std::uint64_t fenced_appends = 0;      // appends refused while fenced out
};

struct JournalRecovery {
  std::size_t records_replayed = 0;
  bool snapshot_loaded = false;
  bool tail_truncated = false;
  std::size_t bytes_discarded = 0;
};

class Journal {
 public:
  explicit Journal(JournalStore& store) : store_(store) {}

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // WAL appends, called by PolicyManager/ERM *before* mutating (no-ops
  // while recover() is replaying — replayed operations are already in the
  // log). `epoch_after` is the epoch the mutation will establish. Throw
  // FencedException on a fenced-out journal (see fencing, above).
  void append_policy_insert(PolicyRuleId id, const StoredPolicyRule& stored,
                            std::uint64_t epoch_after);
  void append_policy_revoke(PolicyRuleId id, std::uint64_t epoch_after);
  void append_binding(const BindingEvent& event);

  // ------------------------------------------------- fencing (replication)
  // This journal's own fencing epoch; every record a replica ships is
  // stamped with it. 0 until a pair has ever failed over.
  std::uint64_t fence_epoch() const { return fence_epoch_; }
  // Highest epoch seen anywhere (own writes or observe_fence).
  std::uint64_t observed_fence() const { return observed_fence_; }
  // Fenced out: a higher epoch than our own has been observed — the owner
  // was deposed, and every append_* refuses with FencedException.
  bool fenced_out() const { return observed_fence_ > fence_epoch_; }

  // Durably set this journal's fencing epoch (an `f|` record; must not
  // regress). A standby adopting its primary's epoch passes it verbatim;
  // promotion passes observed_fence()+1, which also clears fenced_out().
  Status set_fence_epoch(std::uint64_t epoch);
  // Learn of a peer's epoch (from a shipped record header or a fence
  // reject). Higher than our own => fenced out from here on.
  void observe_fence(std::uint64_t epoch);

  // Observe every record append (after it is durable): the replication
  // primary ships records from here. Not invoked during replay or for
  // fence records (the stream header carries the fence).
  void set_append_observer(std::function<void(const std::string& payload)> fn) {
    append_observer_ = std::move(fn);
  }

  // Replay the store into `manager`/`erm`, which must be freshly
  // constructed (recovery restores absolute state, it does not merge).
  // Truncates the torn tail at the first bad record, loads the snapshot
  // record if present, then replays the WAL tail — restoring rule ids,
  // next_id, both epochs and the fencing epoch exactly as they were when
  // the last completed append returned.
  Result<JournalRecovery> recover(PolicyManager& manager,
                                  EntityResolutionManager& erm);

  // -------------------------------------------- replication ingest (standby)
  // Durably append one record payload produced by a peer journal's append
  // path, then apply it through the same replay machinery recovery uses
  // (restore_* hooks; no re-journaling, no flush side effects). The store
  // may throw CrashException mid-append — the standby process boundary.
  Status ingest_replicated(const std::string& payload, PolicyManager& manager,
                           EntityResolutionManager& erm);

  // Bootstrap: atomically replace the whole store with one snapshot record
  // (plus the peer's fence epoch) and apply it into the expected-fresh
  // managers — the standby-side mirror of compact().
  Status install_snapshot(const std::string& snapshot_payload,
                          std::uint64_t fence_epoch, PolicyManager& manager,
                          EntityResolutionManager& erm);

  // Snapshot+compact: atomically replace the log with one snapshot record
  // of the current state. The store's commit is the atomicity boundary; a
  // crash before it leaves the old log, after it the new one.
  Status compact(const PolicyManager& manager, const EntityResolutionManager& erm);

  // True while recover() is replaying (appends are suppressed).
  bool replaying() const { return replaying_; }

  const JournalStats& stats() const { return stats_; }
  JournalStore& store() { return store_; }

  // Frame one payload exactly as the store persists it (tests and the
  // replication stream share the format).
  static std::string frame(const std::string& payload);

  // The snapshot record payload compact() would write for this state — the
  // replication primary ships it for standby bootstrap.
  static std::string snapshot_payload(const PolicyManager& manager,
                                      const EntityResolutionManager& erm);

 private:
  void append_record(const std::string& payload);
  // Append bypassing the fenced_out gate (fence records themselves).
  void append_raw(const std::string& payload);

  Status apply_record(const std::string& payload, PolicyManager& manager,
                      EntityResolutionManager& erm, bool first_record);
  Status apply_snapshot(const std::string& payload, PolicyManager& manager,
                        EntityResolutionManager& erm);

  JournalStore& store_;
  bool replaying_ = false;
  std::uint64_t fence_epoch_ = 0;
  std::uint64_t observed_fence_ = 0;
  std::function<void(const std::string&)> append_observer_;
  JournalStats stats_;
};

}  // namespace dfi
