// Wildcard rule caching extension (paper Section III-B, future work).
//
// The baseline PCP installs one exact-match rule per flow, so every new
// flow — even between the same pair of endpoints — costs a control-plane
// round trip. The paper points at reactive wildcard caching (CAB-ACME) as
// the extension, and names the key challenge: a cached wildcard rule must
// never cover a packet for which a different, higher-priority policy rule
// (or a future binding state) would decide differently.
//
// This module compiles a *safe generalization* of the deciding policy rule:
//   * each policy-spec field that is concrete at the low level (IP, port,
//     MAC, switch port) is copied into the match;
//   * high-level fields (user/host) are narrowed to the identifiers
//     observed in the triggering flow (a safe subset of the policy scope);
//   * unspecified fields stay wildcarded — that is the generalization.
//
// Safety gates (compile_wildcard returns nullopt and the caller falls back
// to exact-match):
//   * some other policy rule with priority >= the deciding rule's and a
//     different action overlaps the deciding rule — a covered packet could
//     be decided differently;
//   * the decision is a default deny (there is no policy scope to
//     generalize);
//   * the deciding rule names high-level identifiers and the flow view
//     carries several bindings for them (ambiguous narrowing).
//
// Staleness: a cached rule derived from a user/host-naming policy depends
// on the bindings used to narrow it. The PCP (when caching is enabled)
// subscribes to binding retractions and flushes identity-derived cached
// rules by cookie, reusing the normal consistency path.
#pragma once

#include <optional>

#include "core/policy.h"
#include "core/policy_manager.h"
#include "openflow/match.h"

namespace dfi {

struct WildcardCompileResult {
  Match match;
  // True if the match was narrowed using user/host bindings and must be
  // flushed when bindings change.
  bool identity_derived = false;
};

// Compile a wildcard match for `flow`, decided by `decision` against the
// frozen `policy` snapshot. Pure — safe to call from PCP shard threads.
// Returns nullopt when no safe generalization exists (caller installs the
// exact-match rule instead).
std::optional<WildcardCompileResult> compile_wildcard(
    const PolicySnapshot& policy, const PolicyDecision& decision, const FlowView& flow);

// Convenience overload over the live manager: freezes a snapshot and
// delegates (the snapshot is cached inside the manager, so repeated calls
// at one epoch share it).
std::optional<WildcardCompileResult> compile_wildcard(
    const PolicyManager& policy, const PolicyDecision& decision, const FlowView& flow);

}  // namespace dfi
