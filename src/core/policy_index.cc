#include "core/policy_index.h"

#include <algorithm>

namespace dfi {
namespace {

// Probe one posting map with one observed key (already packed to the map's
// integer key type by the caller).
template <typename Map, typename Fn>
void probe_key(const Map& map, typename Map::key_type key,
               const std::vector<const StoredPolicyRule*>& slots, Fn&& fn) {
  const auto it = map.find(key);
  if (it == map.end()) return;
  for (const std::uint32_t ref : it->second) fn(slots[ref]);
}

template <typename Map, typename Fn>
void probe_all(const Map& map, const std::vector<const StoredPolicyRule*>& slots,
               Fn&& fn) {
  for (const auto& [key, list] : map) {
    for (const std::uint32_t ref : list) fn(slots[ref]);
  }
}

// Pack a concrete spec value to its posting-map key.
std::uint32_t key_of(Ipv4Address ip) { return ip.value(); }
std::uint64_t key_of(MacAddress mac) { return mac.to_u64(); }
std::uint64_t key_of(Dpid dpid) { return dpid.value; }

}  // namespace

PolicyRuleIndex::RuleList& PolicyRuleIndex::posting_list(Bucket& bucket,
                                                         const PolicyRule& rule) {
  const EndpointSpec& src = rule.source;
  const EndpointSpec& dst = rule.destination;
  if (src.ip) return bucket.src_ip[src.ip->value()];
  if (dst.ip) return bucket.dst_ip[dst.ip->value()];
  if (src.mac) return bucket.src_mac[src.mac->to_u64()];
  if (dst.mac) return bucket.dst_mac[dst.mac->to_u64()];
  if (src.user) return bucket.src_user[users_.intern(src.user->value).value];
  if (dst.user) return bucket.dst_user[users_.intern(dst.user->value).value];
  if (src.host) return bucket.src_host[hosts_.intern(src.host->value).value];
  if (dst.host) return bucket.dst_host[hosts_.intern(dst.host->value).value];
  if (src.dpid) return bucket.src_dpid[src.dpid->value];
  if (dst.dpid) return bucket.dst_dpid[dst.dpid->value];
  return bucket.wildcard;
}

void PolicyRuleIndex::insert(const StoredPolicyRule* stored) {
  RuleRef ref;
  if (!free_refs_.empty()) {
    ref = free_refs_.back();
    free_refs_.pop_back();
    slots_[ref] = stored;
  } else {
    ref = static_cast<RuleRef>(slots_.size());
    slots_.push_back(stored);
  }
  Bucket& bucket = buckets_[stored->priority.value];
  posting_list(bucket, stored->rule).push_back(ref);
  ++bucket.size;
  ++size_;
}

void PolicyRuleIndex::remove(const StoredPolicyRule* stored) {
  const auto bucket_it = buckets_.find(stored->priority.value);
  if (bucket_it == buckets_.end()) return;
  Bucket& bucket = bucket_it->second;
  RuleList& list = posting_list(bucket, stored->rule);
  const auto it = std::find_if(list.begin(), list.end(), [&](RuleRef ref) {
    return slots_[ref] == stored;
  });
  if (it == list.end()) return;
  slots_[*it] = nullptr;
  free_refs_.push_back(*it);
  list.erase(it);
  --bucket.size;
  --size_;
  if (bucket.size == 0) buckets_.erase(bucket_it);
}

void PolicyRuleIndex::clear() {
  buckets_.clear();
  slots_.clear();
  free_refs_.clear();
  size_ = 0;
}

const StoredPolicyRule* PolicyRuleIndex::best_match(const FlowView& flow) const {
  // Resolve the flow's user/host names to index-local ids once, outside the
  // bucket walk. A name no rule ever pivoted on has no id — drop it here
  // rather than hashing the string once per bucket.
  std::vector<std::uint32_t> src_users, dst_users, src_hosts, dst_hosts;
  const auto resolve = [](const StringInterner& names, const auto& observed,
                          std::vector<std::uint32_t>& out) {
    for (const auto& name : observed) {
      const EntityId id = names.find(name.value);
      if (id.valid()) out.push_back(id.value);
    }
  };
  resolve(users_, flow.src.usernames, src_users);
  resolve(users_, flow.dst.usernames, dst_users);
  resolve(hosts_, flow.src.hostnames, src_hosts);
  resolve(hosts_, flow.dst.hostnames, dst_hosts);

  for (const auto& [priority, bucket] : buckets_) {
    if (stats_enabled_) ++stats_.buckets_visited;
    const StoredPolicyRule* best = nullptr;
    const auto consider = [&](const StoredPolicyRule* stored) {
      if (stats_enabled_) ++stats_.match_candidates;
      if (!stored->rule.matches(flow)) return;
      if (best == nullptr) {
        best = stored;
      } else if (best->rule.action == PolicyAction::kAllow &&
                 stored->rule.action == PolicyAction::kDeny) {
        best = stored;  // equal-priority conflict: Deny wins
      }
    };
    if (flow.src.ip) probe_key(bucket.src_ip, flow.src.ip->value(), slots_, consider);
    if (flow.dst.ip) probe_key(bucket.dst_ip, flow.dst.ip->value(), slots_, consider);
    if (flow.src.mac) probe_key(bucket.src_mac, flow.src.mac->to_u64(), slots_, consider);
    if (flow.dst.mac) probe_key(bucket.dst_mac, flow.dst.mac->to_u64(), slots_, consider);
    for (const std::uint32_t id : src_users) probe_key(bucket.src_user, id, slots_, consider);
    for (const std::uint32_t id : dst_users) probe_key(bucket.dst_user, id, slots_, consider);
    for (const std::uint32_t id : src_hosts) probe_key(bucket.src_host, id, slots_, consider);
    for (const std::uint32_t id : dst_hosts) probe_key(bucket.dst_host, id, slots_, consider);
    if (flow.src.dpid) probe_key(bucket.src_dpid, flow.src.dpid->value, slots_, consider);
    if (flow.dst.dpid) probe_key(bucket.dst_dpid, flow.dst.dpid->value, slots_, consider);
    for (const std::uint32_t ref : bucket.wildcard) consider(slots_[ref]);
    if (best != nullptr) return best;  // no lower bucket can outrank this one
  }
  return nullptr;
}

void PolicyRuleIndex::for_each_overlap_candidate(
    const PolicyRule& rule, PdpPriority below,
    const std::function<void(const StoredPolicyRule&)>& fn) const {
  const auto visit = [&](const StoredPolicyRule* stored) {
    if (stats_enabled_) ++stats_.overlap_candidates;
    fn(*stored);
  };
  // Overlap probing: a rule pivoted on field f with value v overlaps the
  // new rule on f iff the new rule wildcards f or names the same v — so a
  // concrete spec costs one probe, a wildcard spec visits the whole map.
  // A concretely named user/host that no indexed rule ever pivoted on has
  // no index-local id and therefore an empty candidate set for that map.
  const auto sweep_value = [&](const auto& map, const auto& spec) {
    if (!spec.has_value()) {
      probe_all(map, slots_, visit);
    } else {
      probe_key(map, key_of(*spec), slots_, visit);
    }
  };
  const auto sweep_name = [&](const auto& map, const auto& spec,
                              const StringInterner& names) {
    if (!spec.has_value()) {
      probe_all(map, slots_, visit);
      return;
    }
    const EntityId id = names.find(spec->value);
    if (id.valid()) probe_key(map, id.value, slots_, visit);
  };
  // greater<> ordering: upper_bound yields the first bucket with priority
  // strictly below the new rule's.
  for (auto it = buckets_.upper_bound(below.value); it != buckets_.end(); ++it) {
    const Bucket& bucket = it->second;
    sweep_value(bucket.src_ip, rule.source.ip);
    sweep_value(bucket.dst_ip, rule.destination.ip);
    sweep_value(bucket.src_mac, rule.source.mac);
    sweep_value(bucket.dst_mac, rule.destination.mac);
    sweep_name(bucket.src_user, rule.source.user, users_);
    sweep_name(bucket.dst_user, rule.destination.user, users_);
    sweep_name(bucket.src_host, rule.source.host, hosts_);
    sweep_name(bucket.dst_host, rule.destination.host, hosts_);
    sweep_value(bucket.src_dpid, rule.source.dpid);
    sweep_value(bucket.dst_dpid, rule.destination.dpid);
    for (const std::uint32_t ref : bucket.wildcard) visit(slots_[ref]);
  }
}

}  // namespace dfi
