#include "core/policy_index.h"

#include <algorithm>

namespace dfi {
namespace {

// Probe one posting map with one observed value.
template <typename Map, typename Key, typename Fn>
void probe(const Map& map, const std::optional<Key>& observed, Fn&& fn) {
  if (!observed.has_value()) return;
  const auto it = map.find(*observed);
  if (it == map.end()) return;
  for (const StoredPolicyRule* stored : it->second) fn(stored);
}

// Probe one posting map with every enriched identifier bound to the
// endpoint (user/host fields are sets under late binding).
template <typename Map, typename Key, typename Fn>
void probe_each(const Map& map, const std::vector<Key>& observed, Fn&& fn) {
  if (map.empty()) return;
  for (const Key& key : observed) {
    const auto it = map.find(key);
    if (it == map.end()) continue;
    for (const StoredPolicyRule* stored : it->second) fn(stored);
  }
}

// Overlap probing: a rule pivoted on field f with value v overlaps the new
// rule on f iff the new rule wildcards f or names the same v — so a
// concrete spec costs one probe, a wildcard spec visits the whole map.
template <typename Map, typename Key, typename Fn>
void probe_overlap(const Map& map, const std::optional<Key>& spec, Fn&& fn) {
  if (spec.has_value()) {
    const auto it = map.find(*spec);
    if (it == map.end()) return;
    for (const StoredPolicyRule* stored : it->second) fn(stored);
    return;
  }
  for (const auto& [key, list] : map) {
    for (const StoredPolicyRule* stored : list) fn(stored);
  }
}

}  // namespace

PolicyRuleIndex::RuleList& PolicyRuleIndex::posting_list(Bucket& bucket,
                                                         const PolicyRule& rule) {
  const EndpointSpec& src = rule.source;
  const EndpointSpec& dst = rule.destination;
  if (src.ip) return bucket.src_ip[*src.ip];
  if (dst.ip) return bucket.dst_ip[*dst.ip];
  if (src.mac) return bucket.src_mac[*src.mac];
  if (dst.mac) return bucket.dst_mac[*dst.mac];
  if (src.user) return bucket.src_user[*src.user];
  if (dst.user) return bucket.dst_user[*dst.user];
  if (src.host) return bucket.src_host[*src.host];
  if (dst.host) return bucket.dst_host[*dst.host];
  if (src.dpid) return bucket.src_dpid[*src.dpid];
  if (dst.dpid) return bucket.dst_dpid[*dst.dpid];
  return bucket.wildcard;
}

void PolicyRuleIndex::insert(const StoredPolicyRule* stored) {
  Bucket& bucket = buckets_[stored->priority.value];
  posting_list(bucket, stored->rule).push_back(stored);
  ++bucket.size;
  ++size_;
}

void PolicyRuleIndex::remove(const StoredPolicyRule* stored) {
  const auto bucket_it = buckets_.find(stored->priority.value);
  if (bucket_it == buckets_.end()) return;
  Bucket& bucket = bucket_it->second;
  RuleList& list = posting_list(bucket, stored->rule);
  const auto it = std::find(list.begin(), list.end(), stored);
  if (it == list.end()) return;
  list.erase(it);
  --bucket.size;
  --size_;
  if (bucket.size == 0) buckets_.erase(bucket_it);
}

void PolicyRuleIndex::clear() {
  buckets_.clear();
  size_ = 0;
}

const StoredPolicyRule* PolicyRuleIndex::best_match(const FlowView& flow) const {
  for (const auto& [priority, bucket] : buckets_) {
    if (stats_enabled_) ++stats_.buckets_visited;
    const StoredPolicyRule* best = nullptr;
    const auto consider = [&](const StoredPolicyRule* stored) {
      if (stats_enabled_) ++stats_.match_candidates;
      if (!stored->rule.matches(flow)) return;
      if (best == nullptr) {
        best = stored;
      } else if (best->rule.action == PolicyAction::kAllow &&
                 stored->rule.action == PolicyAction::kDeny) {
        best = stored;  // equal-priority conflict: Deny wins
      }
    };
    probe(bucket.src_ip, flow.src.ip, consider);
    probe(bucket.dst_ip, flow.dst.ip, consider);
    probe(bucket.src_mac, flow.src.mac, consider);
    probe(bucket.dst_mac, flow.dst.mac, consider);
    probe_each(bucket.src_user, flow.src.usernames, consider);
    probe_each(bucket.dst_user, flow.dst.usernames, consider);
    probe_each(bucket.src_host, flow.src.hostnames, consider);
    probe_each(bucket.dst_host, flow.dst.hostnames, consider);
    probe(bucket.src_dpid, flow.src.dpid, consider);
    probe(bucket.dst_dpid, flow.dst.dpid, consider);
    for (const StoredPolicyRule* stored : bucket.wildcard) consider(stored);
    if (best != nullptr) return best;  // no lower bucket can outrank this one
  }
  return nullptr;
}

void PolicyRuleIndex::for_each_overlap_candidate(
    const PolicyRule& rule, PdpPriority below,
    const std::function<void(const StoredPolicyRule&)>& fn) const {
  const auto visit = [&](const StoredPolicyRule* stored) {
    if (stats_enabled_) ++stats_.overlap_candidates;
    fn(*stored);
  };
  // greater<> ordering: upper_bound yields the first bucket with priority
  // strictly below the new rule's.
  for (auto it = buckets_.upper_bound(below.value); it != buckets_.end(); ++it) {
    const Bucket& bucket = it->second;
    probe_overlap(bucket.src_ip, rule.source.ip, visit);
    probe_overlap(bucket.dst_ip, rule.destination.ip, visit);
    probe_overlap(bucket.src_mac, rule.source.mac, visit);
    probe_overlap(bucket.dst_mac, rule.destination.mac, visit);
    probe_overlap(bucket.src_user, rule.source.user, visit);
    probe_overlap(bucket.dst_user, rule.destination.user, visit);
    probe_overlap(bucket.src_host, rule.source.host, visit);
    probe_overlap(bucket.dst_host, rule.destination.host, visit);
    probe_overlap(bucket.src_dpid, rule.source.dpid, visit);
    probe_overlap(bucket.dst_dpid, rule.destination.dpid, visit);
    for (const StoredPolicyRule* stored : bucket.wildcard) visit(stored);
  }
}

}  // namespace dfi
