#include "core/pdp.h"

#include <algorithm>

namespace dfi {

Pdp::~Pdp() = default;

PolicyRuleId Pdp::emit_rule(PolicyRule rule) {
  const PolicyRuleId id = policy_.insert(std::move(rule), priority_, name_);
  emitted_.push_back(id);
  return id;
}

void Pdp::revoke_rule(PolicyRuleId id) {
  const auto it = std::find(emitted_.begin(), emitted_.end(), id);
  if (it == emitted_.end()) return;
  emitted_.erase(it);
  policy_.revoke(id);
}

void Pdp::revoke_all() {
  for (PolicyRuleId id : emitted_) policy_.revoke(id);
  emitted_.clear();
}

}  // namespace dfi
