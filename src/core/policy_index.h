// Priority-bucketed posting-list index over policy rules.
//
// The Policy Manager must return the highest-PDP-priority rule matching an
// enriched flow, resolving equal-priority Allow/Deny conflicts toward Deny
// (paper Section III-B). The reference implementation scans every stored
// rule per query — O(n) on the Packet-in hot path. This index buckets
// rules by PDP priority (kept in descending order) and, within a bucket,
// files each rule under exactly ONE concrete "pivot" field — the first
// concrete one of src/dst IP, MAC, user, host, DPID in that order. Rules
// with none of those fields concrete (wildcard-only rules, or rules
// constrained solely by ports / flow properties) live on the bucket's
// wildcard list.
//
// Compact entity plane (DESIGN.md §8): posting lists hold packed 32-bit
// rule refs into a slot registry, not 8-byte rule pointers, and the posting
// maps are keyed on raw integer values — IPs as u32, MACs/DPIDs as u64,
// user/host names as ids from index-local interners — so a 100k-rule store
// costs a fraction of the string-keyed layout and every probe hashes a
// machine word. A queried name that was never named by any rule maps to no
// id and is skipped without touching a bucket.
//
// Query: walk buckets from the highest priority down. A bucket's candidate
// set is its wildcard list plus, for each pivot field, the posting list
// keyed by the flow's observed value for that field (enriched user/host
// fields contribute one probe per bound identifier). Skipping rules whose
// pivot value is absent from the flow is exact, not heuristic: a concrete
// spec field only matches when the observed value is present and equal
// (core/policy.cc, field_matches), so such rules cannot match the flow.
// Because each rule lives in exactly one posting list, no candidate is
// visited twice and the Deny-wins tie-break inspects every equal-priority
// match exactly as the linear scan does. The first bucket containing any
// match decides (early exit).
//
// The same structure serves the insert-time consistency sweep (Section
// III-B): overlap candidates for a new rule are, per strictly-lower
// priority bucket, the wildcard list plus — for each pivot field — either
// one posting list (the new rule names that field concretely; overlap
// requires equality) or the field's entire map (the new rule wildcards the
// field, which overlaps every value).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/intern.h"
#include "common/types.h"
#include "core/policy.h"

namespace dfi {

// A rule as stored by the Policy Manager. Defined here (rather than in
// policy_manager.h, which includes this header) so the index can file
// pointers to stored rules; the Policy Manager's node-based storage
// guarantees pointer stability for the lifetime of each rule.
struct StoredPolicyRule {
  PolicyRuleId id{};
  PolicyRule rule;
  PdpPriority priority{};
  std::string pdp_name;
};

struct PolicyIndexStats {
  std::uint64_t buckets_visited = 0;      // priority buckets walked by queries
  std::uint64_t match_candidates = 0;     // rules tested with matches()
  std::uint64_t overlap_candidates = 0;   // rules tested by the insert sweep
};

class PolicyRuleIndex {
 public:
  PolicyRuleIndex() = default;
  // The index-local interners are append-only and address-stable; the index
  // itself is built in place wherever it lives (PolicyManager member,
  // PolicySnapshot member) and never copied.
  PolicyRuleIndex(const PolicyRuleIndex&) = delete;
  PolicyRuleIndex& operator=(const PolicyRuleIndex&) = delete;

  // `stored` must outlive its presence in the index and keep (rule,
  // priority) unchanged while indexed.
  void insert(const StoredPolicyRule* stored);
  void remove(const StoredPolicyRule* stored);
  void clear();

  // Stop maintaining the (mutable) query counters. A frozen index inside a
  // PolicySnapshot (core/policy_snapshot.h) is queried concurrently from
  // PCP shard threads; with stats disabled best_match touches no mutable
  // state at all, so concurrent queries are data-race free.
  void disable_stats() { stats_enabled_ = false; }

  // Highest-priority rule matching `flow`, Deny winning equal-priority
  // conflicts; nullptr when nothing matches (default deny).
  const StoredPolicyRule* best_match(const FlowView& flow) const;

  // Invoke `fn` on every indexed rule with priority strictly below `below`
  // that could field-wise overlap `rule`. The candidate set is a superset
  // of the truly overlapping rules; callers re-check with
  // PolicyRule::overlaps. Each rule is visited at most once.
  void for_each_overlap_candidate(
      const PolicyRule& rule, PdpPriority below,
      const std::function<void(const StoredPolicyRule&)>& fn) const;

  std::size_t size() const { return size_; }
  const PolicyIndexStats& stats() const { return stats_; }

 private:
  // Packed reference into slots_; posting lists hold these, not pointers.
  using RuleRef = std::uint32_t;
  using RuleList = std::vector<RuleRef>;

  struct Bucket {
    std::unordered_map<std::uint32_t, RuleList> src_ip, dst_ip;    // IP value
    std::unordered_map<std::uint64_t, RuleList> src_mac, dst_mac;  // MAC u48
    std::unordered_map<std::uint32_t, RuleList> src_user, dst_user;  // user id
    std::unordered_map<std::uint32_t, RuleList> src_host, dst_host;  // host id
    std::unordered_map<std::uint64_t, RuleList> src_dpid, dst_dpid;
    RuleList wildcard;
    std::size_t size = 0;
  };

  // The posting list `rule` belongs to within `bucket` (pivot selection is
  // a pure function of the rule, so insert and remove agree). Interns any
  // pivot name, so only the insert/remove path may call it.
  RuleList& posting_list(Bucket& bucket, const PolicyRule& rule);

  // Buckets in descending PDP priority: queries early-exit on the first
  // bucket containing a match.
  std::map<std::uint32_t, Bucket, std::greater<std::uint32_t>> buckets_;

  // Rule-ref registry: refs index slots_, freed refs are recycled so the
  // registry stays dense under rule churn.
  std::vector<const StoredPolicyRule*> slots_;
  std::vector<RuleRef> free_refs_;

  // Index-local name namespaces for user/host pivots. Append-only: a
  // removed rule's names stay interned (bounded by distinct names ever
  // seen, which the 100k-rule plane is sized for).
  StringInterner users_;
  StringInterner hosts_;

  std::size_t size_ = 0;
  bool stats_enabled_ = true;
  mutable PolicyIndexStats stats_;
};

}  // namespace dfi
