// Policy Manager (paper Section III-B).
//
// Receives policy rules and revocations from PDPs, performs the consistency
// checks that keep switch-cached flow rules in sync with the policy
// database, stores the current global policy, and answers match queries
// from the Policy Compilation Point.
//
// Consistency (Section III-B): when a rule is inserted, every existing rule
// that (1) overlaps it field-wise, (2) has the opposite action, and (3) has
// *lower* priority may have derived now-stale flow rules in switches; the
// Policy Manager publishes flush directives for those rules (the rules stay
// in the database — only their cached derivations are flushed, forcing
// re-evaluation of ongoing flows). Explicit revocation flushes the revoked
// rule's derivations. Inserting an Allow rule additionally flushes
// default-deny derivations, since flows previously denied by default may
// now be allowed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "common/snapshot.h"
#include "common/types.h"
#include "core/policy.h"
#include "core/policy_index.h"
#include "core/policy_snapshot.h"
#include "services/events.h"

namespace dfi {

class Journal;

// kDefaultDenyCookie and PolicyDecision live in core/policy_snapshot.h (the
// snapshot is the layer below the manager and both share them).

// Directive to the PCP: flush all switch flow rules derived from `policy`.
struct FlushDirective {
  PolicyRuleId policy{};
};

struct PolicyManagerStats {
  std::uint64_t inserts = 0;
  std::uint64_t revocations = 0;
  std::uint64_t queries = 0;
  std::uint64_t linear_queries = 0;  // reference-scan queries (tests/bench)
  std::uint64_t conflict_flushes = 0;
  std::uint64_t snapshot_rebuilds = 0;
};

class PolicyManager {
 public:
  explicit PolicyManager(MessageBus& bus);

  // Insert a rule on behalf of a PDP; returns the unique id the PDP must
  // use to revoke it later. Triggers consistency flushes as described above.
  PolicyRuleId insert(PolicyRule rule, PdpPriority priority, std::string pdp_name);

  // Revoke a previously inserted rule. Returns false if unknown.
  bool revoke(PolicyRuleId id);

  // Highest-priority rule matching the flow. PDP priority orders rules; on
  // a same-priority Allow/Deny conflict the Deny wins ("err on the side of
  // stopping unauthorized flows"). No match -> default deny. Served from
  // the posting-list index (core/policy_index.h); O(candidates), not O(n).
  PolicyDecision query(const FlowView& flow) const;

  // Reference implementation of query(): the original full linear scan.
  // Retained as the differential-test oracle and the scan baseline for
  // bench_micro_policy_index; semantically identical to query() up to the
  // choice among equally-ranked same-action rules.
  PolicyDecision query_linear(const FlowView& flow) const;

  std::optional<StoredPolicyRule> find(PolicyRuleId id) const;
  std::vector<StoredPolicyRule> rules() const;
  std::size_t size() const { return rules_.size(); }
  const PolicyManagerStats& stats() const { return stats_; }
  const PolicyIndexStats& index_stats() const { return index_.stats(); }

  // Monotonic version of the policy database, bumped on every successful
  // insert/revoke. Decision caches (core/decision_cache.h) stamp entries
  // with this epoch; a mismatch forces a full re-decision.
  std::uint64_t epoch() const { return epoch_; }

  // Immutable, epoch-stamped snapshot of the rule database for the PCP
  // decision path (DESIGN.md §5). Rebuilt lazily — at most once per
  // insert/revoke, no matter how many decisions run in between; repeated
  // calls at the same epoch share one frozen object.
  std::shared_ptr<const PolicySnapshot> snapshot_view() const;

  // ------------------------------------------------- durability (WAL)
  // Attach a write-ahead log (core/journal.h): every subsequent
  // insert/revoke appends its record — and becomes durable — before any
  // effect (conflict flushes included) escapes. Pass nullptr to detach.
  void attach_journal(Journal* journal) { journal_ = journal; }

  // Recovery hooks, used only by Journal::recover. They rebuild state
  // *as recorded*: restore_rule keeps the stored id (and advances next_id_
  // past it), restore_revoke removes without publishing a flush (switches
  // are resynced wholesale after recovery), and neither bumps the epoch —
  // the journal replays the recorded epoch via advance_epoch_to so the
  // counter lands exactly where the pre-crash process left it.
  void restore_rule(StoredPolicyRule stored);
  bool restore_revoke(PolicyRuleId id);
  void restore_next_id(std::uint64_t next_id);
  void advance_epoch_to(std::uint64_t epoch);

  // The id the next insert will assign (journal snapshot header).
  std::uint64_t next_id() const { return next_id_; }

 private:
  void publish_flush(PolicyRuleId id);

  MessageBus& bus_;
  // Node-based storage: the index holds pointers into this map, which stay
  // valid across unrelated inserts/erases.
  std::map<PolicyRuleId, StoredPolicyRule> rules_;
  PolicyRuleIndex index_;
  std::uint64_t next_id_ = kDefaultDenyCookie.value + 1;
  std::uint64_t epoch_ = 0;
  Journal* journal_ = nullptr;
  mutable SnapshotCache<PolicySnapshot> snapshot_cache_;
  mutable PolicyManagerStats stats_;
};

}  // namespace dfi
