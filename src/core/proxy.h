// DFI Proxy (paper Sections III-B and IV-B).
//
// Interposes transparently on the OpenFlow byte stream between each switch
// and the SDN controller. Two jobs:
//
//  * Isolation via table shifting: Table 0 of every switch is reserved for
//    DFI's access-control rules. Every table_id reference in messages from
//    the controller (FLOW_MOD including goto-table instructions, flow-stats
//    requests) is incremented; every table reference toward the controller
//    (PACKET_IN, FLOW_REMOVED, flow-stats replies) is decremented, and
//    entries describing Table 0 are filtered out entirely. FEATURES_REPLY
//    advertises one fewer table. The controller cannot observe, modify, or
//    even learn of DFI's table.
//
//  * Packet-in routing: a table-miss in Table 0 means the flow has no DFI
//    decision yet; the proxy hands it to the PCP *first*. Denied flows are
//    never forwarded to the controller, so a malicious/faulty controller or
//    app never sees (and cannot be poisoned by) traffic DFI rejects.
//
// The proxy is deliberately stateless across sessions: per-session state is
// only the datapath id and table count learned from the handshake, so
// multiple proxies can run in parallel (paper: not a single point of
// failure).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/frame_buffer_pool.h"
#include "common/rng.h"
#include "core/pcp.h"
#include "openflow/wire.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace dfi {

class HealthMonitor;
class Journal;

struct ProxyConfig {
  // Per-message proxy processing time (paper Table II: 0.16 ms ± 0.72 ms).
  double latency_mean_ms = 0.16;
  double latency_sd_ms = 0.72;
  bool zero_latency = false;

  // Batched datapath (DESIGN.md §5). Both default off: batching coalesces
  // per-delivery latency draws and defers switch-bound writes, so the
  // paper-calibrated reproduction and every pre-existing test keep exact
  // per-message behavior unless a caller opts in.
  //
  // batch_packet_ins: hand each maximal run of consecutive table-0
  // Packet-ins in a chunk to the PCP as one handle_packet_in_batch call
  // (one snapshot capture per run instead of per packet). Runs never span
  // a chunk or another message type, so submission order is unchanged.
  bool batch_packet_ins = false;
  // coalesce_egress: append switch-bound messages into one pooled buffer
  // per session and deliver them as a single multi-frame write when the
  // watermark is crossed or DfiProxy::flush_egress() runs (OpenFlow frames
  // are self-delimiting, so concatenation is valid framing).
  bool coalesce_egress = false;
  std::size_t egress_watermark_bytes = 16 * 1024;
};

struct ProxyStats {
  std::uint64_t from_switch = 0;
  std::uint64_t from_controller = 0;
  std::uint64_t packet_ins_to_pcp = 0;
  std::uint64_t packet_ins_forwarded = 0;
  std::uint64_t packet_ins_suppressed = 0;  // denied or PCP overloaded
  std::uint64_t flow_mods_shifted = 0;
  std::uint64_t stats_entries_hidden = 0;   // Table-0 rows filtered
  std::uint64_t controller_errors = 0;      // bad table id from controller
  std::uint64_t malformed = 0;

  // Wire fast path (DESIGN.md §5): frames forwarded verbatim or dropped
  // without decode, frames table-shifted in place, and frames that needed
  // the full decode->re-encode slow path.
  std::uint64_t frames_fast_path = 0;
  std::uint64_t frames_patched = 0;
  std::uint64_t frames_decoded = 0;
  // FrameBufferPool counters, mirrored by DfiProxy::stats().
  std::uint64_t pool_acquires = 0;
  std::uint64_t pool_reuses = 0;

  // Recovery behavior (DESIGN.md §6). The first two are counted by the
  // proxy's degraded-mode gate; the rest are mirrored by DfiProxy::stats()
  // from the attached HealthMonitor, Journal and PCP so one struct tells
  // the whole failure-time story (harness recovery_report).
  std::uint64_t degraded_suppressed = 0;  // fail-secure: denied while degraded
  std::uint64_t degraded_forwarded = 0;   // fail-open: undecided, to controller
  std::uint64_t degraded_entries = 0;
  std::uint64_t degraded_exits = 0;
  std::uint64_t backoff_retries = 0;
  std::uint64_t resync_clears = 0;
  std::uint64_t journal_replays = 0;
  std::uint64_t journal_records_replayed = 0;
  std::uint64_t journal_torn_tails = 0;

  double pool_hit_rate() const {
    return pool_acquires == 0 ? 1.0
                              : static_cast<double>(pool_reuses) /
                                    static_cast<double>(pool_acquires);
  }
};

class DfiProxy {
 public:
  using SendFn = std::function<void(const std::vector<std::uint8_t>&)>;

  // One proxied switch<->controller connection pair.
  class Session {
   public:
    Session(DfiProxy& proxy, SendFn to_switch, SendFn to_controller);

    // Bytes arriving from the switch side / the controller side.
    void from_switch(const std::vector<std::uint8_t>& chunk);
    void from_controller(const std::vector<std::uint8_t>& chunk);

    // Socket-transport entry points (src/net/asyncio): a Connection owns
    // its FrameDecoder and readv()s into it directly, so complete frames
    // arrive here with no intermediate chunk copy. *_frame processes one
    // frame; *_batch_end flushes the Packet-in run and coalesced egress
    // exactly where from_switch/from_controller would at chunk end;
    // *_stream_corrupt records the transport hitting unrecoverable framing
    // (length < 8). from_switch/from_controller are thin wrappers over
    // these, so both transports share one code path.
    void switch_frame(const FrameView& view);
    void controller_frame(const FrameView& view);
    void switch_batch_end();
    void controller_batch_end();
    void switch_stream_corrupt();
    void controller_stream_corrupt();

    std::optional<Dpid> dpid() const { return dpid_; }

   private:
    friend class DfiProxy;

    // Wire fast path: pass-through / in-place patch / decode fallback for
    // one complete frame (DESIGN.md §5 classification table).
    void fast_path_from_switch(const FrameView& view);
    void fast_path_from_controller(const FrameView& view);
    void handle_switch_message(OfMessage message);
    void handle_controller_message(OfMessage message);
    void send_to_switch(const OfMessage& message);
    void send_to_controller(const OfMessage& message);
    // Queue a message for delivery after the proxy processing delay. The
    // delivery no-ops if the session is destroyed in the meantime (the
    // pooled buffer still returns to the pool). Messages are encoded into
    // pooled buffers at defer time; the byte variants take an
    // already-encoded (pooled) frame and return it to the pool after
    // delivery. With coalesce_egress the switch-bound variants append to
    // the pending egress buffer instead of deferring one frame each.
    void defer_to_switch(OfMessage message);
    void defer_to_controller(OfMessage message);
    void defer_bytes_to_switch(std::vector<std::uint8_t> frame);
    void defer_bytes_to_controller(std::vector<std::uint8_t> frame);
    // Coalesced egress: append raw frame bytes to the pending switch-bound
    // buffer (acquiring it lazily), flushing at the watermark.
    void append_switch_bytes(const std::uint8_t* data, std::size_t size);
    // Deliver the pending coalesced buffer as one multi-frame write.
    void flush_switch_egress();
    // The single deferred-delivery path every switch-bound (pooled) frame
    // or coalesced buffer funnels through.
    void defer_frame_to_switch(std::vector<std::uint8_t> frame);
    // Packet-in batching: submit the pending run to the PCP as one batch.
    void flush_packet_ins();

    DfiProxy& proxy_;
    SendFn to_switch_;
    SendFn to_controller_;
    FrameDecoder switch_decoder_;
    FrameDecoder controller_decoder_;
    std::optional<Dpid> dpid_;
    std::uint8_t switch_num_tables_ = 0;
    // Coalesced egress state (coalesce_egress only): the pending pooled
    // buffer, valid while pending_egress_active_, plus a reused encode
    // scratch so appends allocate nothing in steady state.
    std::vector<std::uint8_t> pending_egress_;
    bool pending_egress_active_ = false;
    std::vector<std::uint8_t> encode_scratch_;
    // Packet-in batching state (batch_packet_ins only): the current run of
    // consecutive table-0 Packet-ins, flushed before any other message and
    // at the end of every chunk — never carried across either boundary.
    std::vector<PolicyCompilationPoint::BatchItem> pending_pins_;
    // Liveness token: deferred deliveries and in-flight PCP decision
    // callbacks capture this instead of trusting `this` to outlive them.
    // destroy_session() flips it, turning every outstanding closure into a
    // no-op — tearing a session down mid-Packet-in must not touch freed
    // memory.
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  };

  DfiProxy(Simulator& sim, PolicyCompilationPoint& pcp, ProxyConfig config, Rng rng);
  ~DfiProxy();

  DfiProxy(const DfiProxy&) = delete;
  DfiProxy& operator=(const DfiProxy&) = delete;

  Session& create_session(SendFn to_switch, SendFn to_controller);

  // Tear a session down immediately: its switch is unregistered from the
  // PCP and every outstanding deferred delivery or in-flight decision
  // callback becomes a no-op. Models the control channel dying mid-flight.
  // Call before re-creating a session for the same switch — the new
  // session's PCP registration must come after the old one is gone.
  void destroy_session(Session& session);

  std::size_t session_count() const { return sessions_.size(); }

  // Coalesced egress only: deliver every session's pending switch-bound
  // buffer. Owners of the event loop call this at batch boundaries (the
  // bench after a submission burst, the fuzz harness inside drain); the
  // watermark bounds how much can ever be pending between calls.
  void flush_egress();

  // Degraded-mode gate (DESIGN.md §6). While the attached HealthMonitor
  // reports a non-healthy plane, undecided table-0 Packet-ins are not
  // handed to the PCP: fail-secure suppresses them (invariant I1 holds by
  // construction — nothing reaches the controller), fail-open forwards
  // them to the controller undecided. Detached (nullptr) or disabled
  // monitoring leaves the pre-existing behavior untouched.
  void attach_health(HealthMonitor* health) { health_ = health; }
  // Observe a journal's recovery counters through stats() (read-only).
  void attach_journal_stats(const Journal* journal) { journal_ = journal; }

  const ProxyStats& stats() const;
  const SampleStats& latency_ms() const { return latency_ms_; }
  const FrameBufferPool& buffer_pool() const { return pool_; }
  // Mutable access for transports that acquire/release pooled frames around
  // the wire (src/net/asyncio) — same control-thread-only discipline as the
  // proxy itself.
  FrameBufferPool& buffer_pool() { return pool_; }

 private:
  friend class Session;

  // Schedule `deliver` after the sampled proxy processing delay.
  void after_proxy_delay(std::function<void()> deliver);

  Simulator& sim_;
  PolicyCompilationPoint& pcp_;
  HealthMonitor* health_ = nullptr;
  const Journal* journal_ = nullptr;
  ProxyConfig config_;
  Rng rng_;
  // Table II proxy latency distribution, derived once from the configured
  // moments instead of per message.
  LogNormalParams latency_{};
  std::vector<std::unique_ptr<Session>> sessions_;
  // Frame buffers shared by every session: forwarding reuses capacity
  // instead of allocating per message.
  FrameBufferPool pool_;
  // Proxy-level liveness token, flipped in the destructor: a deferred
  // delivery whose session died can still return its pooled buffer as long
  // as the proxy (and so the pool) is alive — pool accounting must reach
  // zero outstanding at quiesce, severed sessions included.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  mutable ProxyStats stats_;
  SampleStats latency_ms_;
};

}  // namespace dfi
