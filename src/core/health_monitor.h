// Supervised component health + fail-secure degradation (DESIGN.md §6).
//
// The paper's core guarantee — denied packets never reach the controller —
// must hold *especially* while the control plane is failing or recovering:
// a wedged sensor feed means bindings may be stale, a dead PCP shard means
// decisions may never complete, a store mid-replay means the policy
// database is not yet authoritative. The HealthMonitor makes those
// conditions explicit instead of undefined:
//
//   * components (sensor feeds, PDPs, shard-worker watchdogs) emit
//     heartbeats — directly or over the `health.heartbeats` bus topic; a
//     beat older than the configured deadline degrades the plane;
//   * subsystems hold explicit degraded windows (ref-counted) around
//     operations during which decisions must not be trusted: journal
//     replay, dead-shard recovery;
//   * supervised reconnects retry with capped, jittered exponential
//     backoff (thundering-herd hygiene even in a simulator).
//
// State machine:  kHealthy -> kDegraded -> kRecovering -> kHealthy
//
//   kHealthy     all deadlines met, no degraded windows, no dead shards.
//   kDegraded    some condition holds. The proxy stops trusting the PCP:
//                in kFailSecure mode new flows are denied outright (the
//                paper's default-deny, extended to component failure); in
//                kFailOpen mode they are forwarded to the controller
//                undecided (the paper discusses this stance and rejects
//                it; it is implemented for the ablation, not the default).
//   kRecovering  conditions cleared; a dwell period guards against flapping.
//                Gating continues — a decision made from state that was
//                degraded a tick ago is not yet trustworthy.
//
// On the kRecovering -> kHealthy transition the DfiSystem resyncs Table 0
// on every switch (PolicyCompilationPoint::resync_all): rules installed or
// flushes missed across the degraded window cannot be trusted, so flows
// re-enter via Packet-in and are re-decided against current state.
//
// The monitor never schedules simulator events on its own unless start()
// is called (and stop() cancels): existing experiments drain the DES with
// run(), and a self-rescheduling watchdog would keep it alive forever.
// State is re-evaluated lazily on every mutation and on every gating
// query, which is exactly the set of points where staleness could matter.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "services/events.h"
#include "sim/simulator.h"

namespace dfi {

enum class HealthState { kHealthy, kDegraded, kRecovering };

inline const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kRecovering: return "recovering";
  }
  return "?";
}

// What the proxy does with undecided table-0 Packet-ins while degraded.
enum class DegradedMode { kFailSecure, kFailOpen };

// Warm-standby pair role (DESIGN.md §6.3). kNone: replication disabled —
// the monitor behaves exactly as before. A standby whose peer heartbeat
// goes stale past failover_deadline runs the handover:
//
//   kStandby -> kPromoting -> kPrimary
//
// kPromoting is entered inside a degraded window (decisions during the
// handover are gated fail-secure) and exits once the promotion callback —
// fence-epoch bump, journal finalize, Table-0 resync — returns.
enum class ReplicaRole { kNone, kPrimary, kStandby, kPromoting };

inline const char* to_string(ReplicaRole role) {
  switch (role) {
    case ReplicaRole::kNone: return "none";
    case ReplicaRole::kPrimary: return "primary";
    case ReplicaRole::kStandby: return "standby";
    case ReplicaRole::kPromoting: return "promoting";
  }
  return "?";
}

struct HealthConfig {
  bool enabled = false;  // default off: existing experiments unperturbed
  DegradedMode degraded_mode = DegradedMode::kFailSecure;

  // A watched component whose last beat is older than this degrades the
  // plane.
  SimDuration heartbeat_deadline = seconds(3.0);
  // Dwell in kRecovering before declaring kHealthy (anti-flap).
  SimDuration recovering_hold = seconds(1.0);
  // Periodic re-evaluation interval used by start().
  SimDuration check_interval = seconds(1.0);

  // Capped jittered exponential backoff for supervised reconnects.
  SimDuration backoff_base = milliseconds(100);
  SimDuration backoff_cap = seconds(30.0);
  double backoff_jitter = 0.5;  // uniform in [1-j, 1+j] applied to the delay
  int max_reconnect_attempts = 20;  // 0 = unlimited (caller bounds the sim)

  // A standby whose peer heartbeat is older than this starts promotion.
  // Deliberately separate from heartbeat_deadline: the replication stream
  // beats at its own cadence, and failover should not be coupled to local
  // component liveness.
  SimDuration failover_deadline = seconds(2.0);
};

struct HealthStats {
  std::uint64_t heartbeats = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t degraded_entries = 0;  // transitions into kDegraded
  std::uint64_t degraded_exits = 0;    // transitions into kHealthy
  std::uint64_t backoff_retries = 0;
  std::uint64_t reconnects_abandoned = 0;
  std::uint64_t shard_respawns = 0;
  std::uint64_t promotions = 0;   // kStandby -> kPrimary handovers completed
  std::uint64_t demotions = 0;    // set_role away from kPrimary (fenced out)
};

class HealthMonitor {
 public:
  using TransitionCallback = std::function<void(HealthState from, HealthState to)>;

  HealthMonitor(Simulator& sim, MessageBus& bus, HealthConfig config, Rng rng);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  const HealthConfig& config() const { return config_; }
  DegradedMode mode() const { return config_.degraded_mode; }

  // ----------------------------------------------------------- heartbeats
  // Start tracking a component (its deadline clock starts now). Heartbeats
  // for unwatched components implicitly watch them.
  void watch(const std::string& component);
  void heartbeat(const std::string& component);
  void unwatch(const std::string& component);

  // ------------------------------------------------- explicit degradation
  // Ref-counted degraded windows around operations whose outputs must not
  // be trusted (journal replay, dead-shard recovery).
  void enter_degraded(const std::string& reason);
  void exit_degraded(const std::string& reason);

  // ---------------------------------------------------------- shard watch
  // Supervise a shard pool through two probes: how many workers are dead,
  // and how to respawn them. Dead workers degrade the plane for at least
  // one evaluation, then are respawned.
  void watch_shards(std::function<std::size_t()> dead,
                    std::function<std::size_t()> respawn);

  // ------------------------------------------------------------ reconnect
  // Attempt `connect` now; while it returns false, retry after
  // backoff_delay(attempt). Gives up (and counts reconnects_abandoned)
  // after max_reconnect_attempts.
  void supervise_reconnect(const std::string& name, std::function<bool()> connect);

  // Capped jittered exponential backoff delay for the given 0-based
  // attempt number.
  SimDuration backoff_delay(int attempt);

  // Wall-clock reconnect supervisors (src/net/asyncio/conman.cc) mirror
  // supervise_reconnect on the event-loop timer wheel instead of the
  // simulator; they account their attempts here so HealthStats stays the
  // single ledger of reconnect activity regardless of transport.
  void count_backoff_retry() { ++stats_.backoff_retries; }
  void count_reconnect_abandoned() { ++stats_.reconnects_abandoned; }

  // ------------------------------------------------------------- failover
  // Place this node in a warm-standby pair (DESIGN.md §6.3). `on_promote`
  // runs synchronously inside the promotion's degraded window; it is the
  // embedder's handover: bump the journal fence epoch, finalize replication
  // state, resync Table 0. A standby promotes when its peer heartbeat goes
  // stale past failover_deadline (evaluated on every poll), or immediately
  // via promote_now() — e.g. on a peer RST/FIN from the replication link.
  void enable_failover(ReplicaRole role, std::function<void()> on_promote);
  // Reassign the role without a handover: a freshly (re)connected replica
  // adopting standby, or a deposed primary standing down after observing a
  // higher fence. Demoting away from kPrimary counts stats().demotions and
  // (re)arms the peer-staleness clock.
  void set_role(ReplicaRole role);
  ReplicaRole role() const { return role_; }
  // Liveness beat from the replication peer (stream heartbeat or any
  // received record). Only meaningful for a standby.
  void peer_heartbeat();
  // Run the handover now (peer declared dead out-of-band). No-op unless
  // failover is enabled and the role is kStandby.
  void promote_now();

  // ----------------------------------------------------------- evaluation
  // Re-evaluate conditions, run transitions (and their callbacks), respawn
  // dead shards. Called internally by every mutator and by gating().
  void poll();

  // Should the proxy treat the plane as degraded right now? True whenever
  // monitoring is enabled and the state is not kHealthy (kRecovering still
  // gates — see the header comment).
  bool gating();

  HealthState state() const { return state_; }
  std::uint64_t degraded_refs() const { return degraded_refs_; }

  // Observe state transitions (e.g. the DfiSystem's Table-0 resync on the
  // transition to kHealthy). Callbacks run synchronously inside poll().
  void on_transition(TransitionCallback callback);

  // Periodic polling for closed-loop runs: start() schedules a repeating
  // poll every check_interval until stop(). Never started implicitly.
  void start();
  void stop();

  const HealthStats& stats() const { return stats_; }

 private:
  void transition_to(HealthState next);
  bool conditions_bad(std::size_t dead_shards);
  // The handover itself: kPromoting + degraded window around on_promote_.
  void run_promotion();
  bool peer_stale() const;
  void schedule_tick();
  void reconnect_attempt(const std::string& name,
                         std::shared_ptr<std::function<bool()>> connect,
                         int attempt);

  Simulator& sim_;
  MessageBus& bus_;
  HealthConfig config_;
  Rng rng_;
  Subscription heartbeat_subscription_;

  std::map<std::string, SimTime> last_beat_;
  std::uint64_t degraded_refs_ = 0;
  std::function<std::size_t()> dead_shards_;
  std::function<std::size_t()> respawn_shards_;

  ReplicaRole role_ = ReplicaRole::kNone;
  bool failover_enabled_ = false;
  std::function<void()> on_promote_;
  SimTime last_peer_beat_{};

  HealthState state_ = HealthState::kHealthy;
  SimTime recovering_since_{};
  std::vector<TransitionCallback> transition_callbacks_;
  bool ticking_ = false;
  bool in_poll_ = false;
  // Scheduled retries/ticks capture this token instead of trusting `this`
  // to outlive the simulator queue (same pattern as DfiProxy sessions).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  HealthStats stats_;
};

}  // namespace dfi
