// Policy Compilation Point (paper Section III-B).
//
// The PCP turns Packet-in events into installed Table-0 flow rules:
//   1. parse the packet and collect all low-level identifiers present
//      (MAC/IP addresses, L4 ports, ingress switch and port);
//   2. validate them against authoritative bindings (spoofed -> deny);
//   3. query the Entity Resolution Manager to enrich with hostnames and
//      usernames (late binding, at decision time);
//   4. query the Policy Manager for the highest-priority matching rule
//      (default deny);
//   5. compile an exact-match flow rule — every identifier available in the
//      packet is specified — tagged with the deciding policy's id as the
//      OpenFlow cookie, and install it in the ingress switch's Table 0.
//
// The PCP also hosts the MAC<->switch-port binding sensor (Section IV-A)
// and executes flush directives from the Policy Manager by issuing
// cookie-masked FLOW_MOD deletes to every registered switch.
//
// Capacity model: requests are served by a bounded worker pool (paper
// Section V-A: saturation at ~1350 flows/sec, bounded queue, drops past
// saturation). Component latencies are sampled from log-normal
// distributions calibrated to Table II.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <optional>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "core/decision_cache.h"
#include "core/entity_resolution.h"
#include "core/policy_manager.h"
#include "openflow/messages.h"
#include "sim/service_station.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace dfi {

struct PcpConfig {
  // Capacity (paper Section V-A calibration — see DESIGN.md §5): 7 workers
  // at ~5.3 ms mean service time saturate near the paper's ~1350 flows/sec.
  std::size_t workers = 7;
  std::size_t queue_capacity = 32;

  // Flow-rule shape.
  std::uint16_t rule_priority = 100;
  std::uint8_t controller_first_table = 1;  // allow -> goto this table

  // Component service times in ms (paper Table II). Set zero_latency for
  // functional tests where timing is irrelevant.
  double binding_query_mean_ms = 2.41;
  double binding_query_sd_ms = 0.97;
  double policy_query_mean_ms = 2.52;
  double policy_query_sd_ms = 0.85;
  double other_mean_ms = 0.39;
  double other_sd_ms = 0.27;
  bool zero_latency = false;

  // Extension (paper Section III-B future work, CAB-ACME): install safe
  // wildcard generalizations of the deciding policy instead of one
  // exact-match rule per flow. See core/rule_cache.h for the safety gates.
  bool wildcard_caching = false;

  // Decision cache (core/decision_cache.h): replay a prior decision for an
  // identical flow tuple when neither the policy epoch nor the binding
  // epoch has moved since it was derived. 0 disables. This trims real CPU
  // from the hot path only; the *simulated* Table II service times above
  // are sampled regardless, so calibrated latency/throughput shapes
  // (Table I, Fig. 4) are unchanged.
  std::size_t decision_cache_capacity = 8192;
};

struct PcpStats {
  std::uint64_t packet_ins = 0;
  std::uint64_t allowed = 0;
  std::uint64_t denied = 0;           // policy Deny
  std::uint64_t default_denied = 0;   // no matching rule
  std::uint64_t spoof_denied = 0;
  std::uint64_t dropped_overload = 0;
  std::uint64_t rules_installed = 0;
  std::uint64_t flush_directives = 0;
  std::uint64_t mac_moves = 0;
  std::uint64_t unparsable = 0;
  std::uint64_t wildcard_rules_installed = 0;  // caching extension
  std::uint64_t wildcard_fallbacks = 0;        // safety gate fired
  std::uint64_t binding_invalidations = 0;     // identity caches flushed
  std::uint64_t decision_cache_hits = 0;       // decisions replayed from cache
};

// Outcome of one access-control decision.
struct PcpDecision {
  bool allow = false;
  bool spoofed = false;
  PolicyDecision policy;
  FlowView flow;            // the enriched view the decision was made on
  FlowModMsg installed_rule;
};

class PolicyCompilationPoint {
 public:
  using SwitchWriter = std::function<void(const OfMessage&)>;
  using DecisionCallback = std::function<void(const PcpDecision&)>;

  PolicyCompilationPoint(Simulator& sim, MessageBus& bus,
                         EntityResolutionManager& erm, PolicyManager& policy,
                         PcpConfig config, Rng rng);

  // The proxy registers a direct writer to each switch's control channel.
  void register_switch(Dpid dpid, SwitchWriter writer);
  void unregister_switch(Dpid dpid);

  // Queue a Packet-in for processing. Returns false when the bounded queue
  // rejects it (control-plane saturation): the packet is dropped and the
  // flow must re-enter on retransmission. On completion the compiled rule
  // has been written to the switch and `done` is invoked.
  bool handle_packet_in(Dpid dpid, PacketInMsg msg, DecisionCallback done);

  // Synchronous decision core (no queueing/latency). Used internally, by
  // tests, and by the insert-time-binding ablation.
  PcpDecision decide(Dpid dpid, const PacketInMsg& msg);

  const PcpStats& stats() const { return stats_; }
  const DecisionCacheStats& decision_cache_stats() const {
    return decision_cache_.stats();
  }
  std::size_t decision_cache_size() const { return decision_cache_.size(); }
  std::size_t queue_depth() const { return station_.queue_depth(); }

  // Per-component simulated latency, for the Table II reproduction.
  const SampleStats& binding_latency_ms() const { return binding_latency_ms_; }
  const SampleStats& policy_latency_ms() const { return policy_latency_ms_; }
  const SampleStats& other_latency_ms() const { return other_latency_ms_; }
  const SampleStats& total_latency_ms() const { return total_latency_ms_; }

 private:
  void observe_mac_location(Dpid dpid, PortNo port, const MacAddress& mac);
  void flush(const FlushDirective& directive);
  FlowModMsg compile_rule(const Packet& packet, PortNo in_port, bool allow,
                          Cookie cookie) const;
  void install(Dpid dpid, const FlowModMsg& rule);
  void on_binding_changed(const BindingEvent& event);
  void count_outcome(const PcpDecision& decision);

  Simulator& sim_;
  MessageBus& bus_;
  EntityResolutionManager& erm_;
  PolicyManager& policy_;
  PcpConfig config_;
  Rng rng_;
  // Table II service-time distributions, derived once from the configured
  // moments instead of per Packet-in.
  LogNormalParams binding_service_{};
  LogNormalParams policy_service_{};
  LogNormalParams other_service_{};
  ServiceStation station_;
  DecisionCache<PcpDecision> decision_cache_;
  Subscription flush_subscription_;
  Subscription binding_subscription_;  // active only with wildcard_caching
  std::map<Dpid, SwitchWriter> switches_;
  // Policies whose cached wildcard rules were narrowed using identity
  // bindings; flushed when bindings are retracted.
  std::set<PolicyRuleId> identity_cached_policies_;
  PcpStats stats_;

  SampleStats binding_latency_ms_;
  SampleStats policy_latency_ms_;
  SampleStats other_latency_ms_;
  SampleStats total_latency_ms_;
};

}  // namespace dfi
