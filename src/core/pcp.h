// Policy Compilation Point (paper Section III-B).
//
// The PCP turns Packet-in events into installed Table-0 flow rules:
//   1. parse the packet and collect all low-level identifiers present
//      (MAC/IP addresses, L4 ports, ingress switch and port);
//   2. validate them against authoritative bindings (spoofed -> deny);
//   3. query the Entity Resolution Manager to enrich with hostnames and
//      usernames (late binding, at decision time);
//   4. query the Policy Manager for the highest-priority matching rule
//      (default deny);
//   5. compile an exact-match flow rule — every identifier available in the
//      packet is specified — tagged with the deciding policy's id as the
//      OpenFlow cookie, and install it in the ingress switch's Table 0.
//
// The PCP also hosts the MAC<->switch-port binding sensor (Section IV-A)
// and executes flush directives from the Policy Manager by issuing
// cookie-masked FLOW_MOD deletes to every registered switch.
//
// Snapshot-isolated split (DESIGN.md §5): steps 2-5's decision logic is the
// pure decide_on_snapshots() (core/pcp_decide.h), running against immutable
// ErmSnapshot/PolicySnapshot pairs on a PcpShardPool
// (core/pcp_shard_pool.h) that partitions Packet-ins by flow-tuple hash.
// This class is the stateful shell: it owns the per-shard decision caches,
// captures snapshots, runs the location sensor, applies decision effects
// (stats, bus publishes, rule installation, callbacks) on the control
// thread, and preserves the pre-split public API.
//
// Capacity model: requests are served by bounded worker pools (paper
// Section V-A: saturation at ~1350 flows/sec, bounded queue, drops past
// saturation). Component latencies are sampled from log-normal
// distributions calibrated to Table II. With the default
// shards=1/kSimulated backend this is exactly the paper's single PCP.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <optional>
#include <vector>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "core/decision_cache.h"
#include "core/entity_resolution.h"
#include "core/pcp_decide.h"
#include "core/pcp_shard_pool.h"
#include "core/policy_manager.h"
#include "openflow/messages.h"
#include "sim/service_station.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace dfi {

struct PcpStats {
  std::uint64_t packet_ins = 0;
  std::uint64_t allowed = 0;
  std::uint64_t denied = 0;           // policy Deny
  std::uint64_t default_denied = 0;   // no matching rule
  std::uint64_t spoof_denied = 0;
  std::uint64_t dropped_overload = 0;
  std::uint64_t rules_installed = 0;
  std::uint64_t flush_directives = 0;
  std::uint64_t mac_moves = 0;
  std::uint64_t unparsable = 0;
  std::uint64_t wildcard_rules_installed = 0;  // caching extension
  std::uint64_t wildcard_fallbacks = 0;        // safety gate fired
  std::uint64_t binding_invalidations = 0;     // identity caches flushed
  std::uint64_t decision_cache_hits = 0;       // decisions replayed from cache
  // Threaded backend: a finished decision reached the control thread after
  // the policy or binding epoch moved past its snapshots and was re-decided
  // on fresh state before its effects ran (DESIGN.md §6, invariant I3).
  std::uint64_t stale_redecides = 0;
  // A switch re-registered after a session loss and had its Table 0 cleared
  // wholesale: flushes issued while it was unreachable never arrived.
  std::uint64_t resync_clears = 0;
};

class PolicyCompilationPoint {
 public:
  using SwitchWriter = std::function<void(const OfMessage&)>;
  using DecisionCallback = std::function<void(const PcpDecision&)>;

  PolicyCompilationPoint(Simulator& sim, MessageBus& bus,
                         EntityResolutionManager& erm, PolicyManager& policy,
                         PcpConfig config, Rng rng);

  // The proxy registers a direct writer to each switch's control channel.
  void register_switch(Dpid dpid, SwitchWriter writer);
  void unregister_switch(Dpid dpid);

  // Clear Table 0 wholesale on every currently-registered switch. Called by
  // the DfiSystem when the HealthMonitor declares the plane healthy again:
  // rules installed or flushes missed across a degraded window cannot be
  // trusted, so flows re-enter via Packet-in and are re-decided against
  // current state. Counts one resync_clear per switch.
  void resync_all();

  // Queue a Packet-in for processing. Returns false when the bounded shard
  // queue rejects it (control-plane saturation): the packet is dropped and
  // the flow must re-enter on retransmission. On completion the compiled
  // rule has been written to the switch and `done` is invoked — in the DES
  // for the simulated backend, during poll_completions()/wait_idle() for
  // the threaded one.
  bool handle_packet_in(Dpid dpid, PacketInMsg msg, DecisionCallback done);

  // One Packet-in of a batch submission (handle_packet_in_batch). The PCP
  // sets `accepted` per item; a rejected item's packet is dropped exactly
  // like a rejected handle_packet_in (the caller counts it).
  struct BatchItem {
    Dpid dpid{};
    PacketInMsg msg;
    DecisionCallback done;
    bool accepted = false;
  };

  // Submit a batch of Packet-ins. Byte-identical outcome to calling
  // handle_packet_in per item back-to-back (no poll in between); the
  // difference is cost: the threaded backend captures the ERM/policy
  // snapshot pair ONCE for the whole batch and workers borrow it by plain
  // pointer for the batch lifetime, so the per-packet shared_ptr refcount
  // bumps disappear from the submit loop (DESIGN.md §5, batched datapath).
  // The simulated backend loops the per-item path — batching is a no-op
  // there by construction, keeping Table I bit-for-bit. Returns how many
  // items were accepted.
  std::size_t handle_packet_in_batch(std::vector<BatchItem>& items);

  // Synchronous decision core (no queueing/latency): capture snapshots,
  // decide, apply effects, all inline on the calling thread. The
  // single-threaded oracle the sharded backends are differential-tested
  // against; also used by tests and the insert-time-binding ablation.
  PcpDecision decide(Dpid dpid, const PacketInMsg& msg);

  // Threaded backend only: release finished decisions' effects on the
  // calling (control) thread, in submission order. No-ops for kSimulated.
  // Also retires batch snapshot contexts whose last borrower has applied.
  std::size_t poll_completions();
  void wait_idle();

  // Fault injection (DESIGN.md §6): forwarded to the shard pool. Threaded
  // backend only.
  void set_worker_fault_probe(PcpShardPool::WorkerFaultProbe probe) {
    pool_.set_worker_fault_probe(std::move(probe));
  }
  std::size_t respawn_dead_workers() { return pool_.respawn_dead_workers(); }

  const PcpStats& stats() const { return stats_; }

  // Decision-cache stats of one shard (default: shard 0 — the only shard
  // in the paper configuration, so existing callers keep PR-1 semantics).
  const DecisionCacheStats& decision_cache_stats(std::size_t shard = 0) const {
    return caches_[shard]->stats();
  }
  // Sum over all shards. Threaded backend: call only when idle.
  DecisionCacheStats aggregate_decision_cache_stats() const;
  std::size_t decision_cache_size() const;

  std::size_t shard_count() const { return pool_.shards(); }
  std::size_t queue_depth() const { return pool_.queue_depth(); }
  const PcpShardPool& pool() const { return pool_; }

  // Per-component simulated latency, for the Table II reproduction.
  const SampleStats& binding_latency_ms() const { return binding_latency_ms_; }
  const SampleStats& policy_latency_ms() const { return policy_latency_ms_; }
  const SampleStats& other_latency_ms() const { return other_latency_ms_; }
  const SampleStats& total_latency_ms() const { return total_latency_ms_; }

 private:
  // Snapshot pair shared by every job of one threaded batch. Workers
  // borrow it by raw pointer; the context outlives its borrowers because
  // it is retired only once the pool's applied seq has passed the batch's
  // last submitted seq (abandoned jobs advance that seq too, so worker
  // death cannot leak a context).
  struct BatchContext {
    DecisionSnapshots snapshots;
    std::uint64_t policy_epoch = 0;
    std::uint64_t binding_epoch = 0;
  };
  struct PendingBatch {
    std::uint64_t end_seq = 0;
    std::unique_ptr<BatchContext> context;
  };

  // Threaded submission of `count` items sharing one BatchContext; sets
  // each item's `accepted`, returns how many were accepted.
  std::size_t submit_threaded_batch(BatchItem* items, std::size_t count);
  // Simulated per-item submission (the pre-batching handle_packet_in body).
  bool submit_simulated_one(Dpid dpid, PacketInMsg msg, DecisionCallback done);
  // Free batch contexts whose jobs have all applied or been abandoned.
  void retire_batches();

  // Decision-time context + pure decide, in oracle order: sensor first,
  // then snapshot capture, then decide_on_snapshots against the shard's
  // cache. Shared by decide() and the simulated backend's completions.
  DecisionEffects decide_from_input(DecisionInput& input);

  // Apply a finished decision's side effects on the control thread: stats,
  // identity-cache tracking, spoof logging, rule installation, callback.
  void apply_effects(Dpid dpid, const DecisionEffects& effects,
                     const DecisionCallback& done);

  void observe_mac_location(Dpid dpid, PortNo port, const MacAddress& mac);
  void flush(const FlushDirective& directive);
  void install(Dpid dpid, const FlowModMsg& rule);
  void on_binding_changed(const BindingEvent& event);
  void count_outcome(const PcpDecision& decision);
  DecisionSnapshots capture_snapshots() const;

  Simulator& sim_;
  MessageBus& bus_;
  EntityResolutionManager& erm_;
  PolicyManager& policy_;
  PcpConfig config_;
  Rng rng_;
  // Table II service-time distributions, derived once from the configured
  // moments instead of per Packet-in.
  LogNormalParams binding_service_{};
  LogNormalParams policy_service_{};
  LogNormalParams other_service_{};
  // Live batch contexts in submission order (front retires first).
  // Declared before pool_ on purpose: members destroy in reverse order, so
  // the pool joins its workers — the only other readers of a context —
  // before any context is freed.
  std::deque<PendingBatch> batches_;
  PcpShardPool pool_;
  // One decision cache per shard; a flow's hash pins it to one shard, so
  // each cache is touched only by that shard's execution context (the DES
  // thread for kSimulated, the shard's worker for kThreads).
  std::vector<std::unique_ptr<DecisionCache<PcpDecision>>> caches_;
  // Control-thread-only scratch cache (capacity 0: lookups miss, stores are
  // dropped) for re-deciding stale threaded completions without touching a
  // shard's cache from the wrong thread.
  DecisionCache<PcpDecision> redecide_cache_{0};
  Subscription flush_subscription_;
  Subscription binding_subscription_;  // active only with wildcard_caching
  std::map<Dpid, SwitchWriter> switches_;
  // Every dpid ever registered: a re-registration is a reconnect and
  // triggers a Table-0 resync clear (flushes may have missed the switch).
  std::set<Dpid> known_dpids_;
  // Policies whose cached wildcard rules were narrowed using identity
  // bindings; flushed when bindings are retracted.
  std::set<PolicyRuleId> identity_cached_policies_;
  PcpStats stats_;

  SampleStats binding_latency_ms_;
  SampleStats policy_latency_ms_;
  SampleStats other_latency_ms_;
  SampleStats total_latency_ms_;
};

}  // namespace dfi
