// Policy Decision Point framework (paper Section III-B).
//
// A PDP evaluates the conditions of one event-driven access-control policy
// and emits/revokes policy rules in the Policy Manager accordingly. PDPs
// subscribe to sensor feeds on the message bus (data plane services, end
// hosts, control plane, or off-network sources) and carry a unique
// administrator-assigned priority that their rules inherit.
#pragma once

#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "common/types.h"
#include "core/policy_manager.h"

namespace dfi {

class Pdp {
 public:
  Pdp(std::string name, PdpPriority priority, PolicyManager& policy)
      : name_(std::move(name)), priority_(priority), policy_(policy) {}

  virtual ~Pdp();

  Pdp(const Pdp&) = delete;
  Pdp& operator=(const Pdp&) = delete;

  const std::string& name() const { return name_; }
  PdpPriority priority() const { return priority_; }

  // Rules this PDP currently has inserted.
  const std::vector<PolicyRuleId>& emitted() const { return emitted_; }

 protected:
  // Insert a rule with this PDP's priority; the id is remembered so the PDP
  // can revoke it later.
  PolicyRuleId emit_rule(PolicyRule rule);

  // Revoke one previously emitted rule.
  void revoke_rule(PolicyRuleId id);

  // Revoke everything this PDP emitted.
  void revoke_all();

  PolicyManager& policy() { return policy_; }

 private:
  std::string name_;
  PdpPriority priority_;
  PolicyManager& policy_;
  std::vector<PolicyRuleId> emitted_;
};

}  // namespace dfi
