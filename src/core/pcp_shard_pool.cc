#include "core/pcp_shard_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace dfi {

PcpShardPool::PcpShardPool(Simulator& sim, const PcpConfig& config)
    : backend_(config.backend),
      shards_(std::max<std::size_t>(1, config.shards)),
      queue_capacity_(config.queue_capacity),
      pin_workers_(config.pin_workers) {
  if (backend_ == PcpBackend::kSimulated) {
    stations_.reserve(shards_);
    for (std::size_t i = 0; i < shards_; ++i) {
      stations_.push_back(std::make_unique<ServiceStation>(
          sim, config.workers, config.queue_capacity));
    }
  } else {
    thread_shards_.reserve(shards_);
    for (std::size_t i = 0; i < shards_; ++i) {
      thread_shards_.push_back(std::make_unique<ThreadShard>(i, queue_capacity_));
    }
    // Start workers only after every shard exists: a worker never touches
    // the vector, but symmetry with the destructor keeps this obvious.
    for (auto& shard : thread_shards_) spawn_worker(*shard);
  }
}

PcpShardPool::~PcpShardPool() {
  for (auto& shard : thread_shards_) {
    shard->stop.store(true);
    {
      std::lock_guard<std::mutex> lock(shard->mu);
    }
    shard->cv.notify_all();
  }
  for (auto& shard : thread_shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void PcpShardPool::spawn_worker(ThreadShard& shard) {
  shard.worker = std::thread([this, &shard] {
#ifdef __linux__
    if (pin_workers_) {
      // Optional affinity (PcpConfig.pin_workers): shard i on core
      // i mod hw_concurrency. Best effort — a failed set is ignored.
      const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(shard.index % cores, &set);
      pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }
#endif
    worker_loop(shard);
  });
}

bool PcpShardPool::submit_simulated(std::size_t shard,
                                    ServiceStation::ServiceTimeFn service_time,
                                    ServiceStation::DoneFn on_done) {
  return stations_[shard]->submit(std::move(service_time), std::move(on_done));
}

bool PcpShardPool::submit_threaded(std::size_t shard, ThreadWork work) {
  ThreadShard& target = *thread_shards_[shard];
  // A dead shard has no worker to run the job; reject like a full queue
  // (the caller counts the drop) until respawn_dead_workers revives it.
  if (target.dead.load()) return false;
  // The sequence number is allocated only for accepted jobs, so drops
  // leave no hole in the apply order.
  IngressJob job{next_submit_seq_, std::move(work)};
  if (!target.ingress.try_push(std::move(job))) return false;
  ++next_submit_seq_;
  wake_worker(target);
  return true;
}

void PcpShardPool::set_worker_fault_probe(WorkerFaultProbe probe) {
  std::lock_guard<std::mutex> lock(probe_mu_);
  fault_probe_ = std::move(probe);
  has_probe_.store(fault_probe_ != nullptr);
}

void PcpShardPool::wake_worker(ThreadShard& shard) {
  // Armed-sleeper handshake: the push above published seq_cst; if the
  // worker's flag is not visible yet, the worker is mid-recheck and will
  // see the push instead (spsc_ring.h's ordering notes). The empty lock
  // serializes with the flag-set-to-wait window so the notify cannot fall
  // between the worker's predicate check and its park.
  if (!shard.sleeping.load()) return;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
  }
  shard.cv.notify_all();
}

void PcpShardPool::wake_control() {
  if (!control_waiting_.load()) return;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
  }
  done_cv_.notify_all();
}

bool PcpShardPool::push_completion(ThreadShard& shard, Completion completion) {
  while (!shard.done.try_push(std::move(completion))) {
    // Done ring full: the control thread has not drained in a long while.
    // Park until it does (it wakes us after popping) — unless the pool is
    // being torn down, in which case the completion will never be drained
    // and the worker must not wedge the destructor.
    if (shard.stop.load()) return false;
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.sleeping.store(true);
    shard.cv.wait(lock, [&] { return shard.stop.load() || !shard.done.full(); });
    shard.sleeping.store(false);
  }
  wake_control();
  return true;
}

void PcpShardPool::kill_worker(ThreadShard& shard, std::uint64_t seq) {
  // Die mid-decision: the job in hand is abandoned (a null completion
  // keeps the reorder buffer advancing past its seq) and everything still
  // queued on this shard's ingress ring is left for the control thread's
  // recovery path. The shard stops accepting work until respawned.
  //
  // Order matters: dead is published before the null completion, so any
  // control thread that drained the completion also observes dead — and a
  // dead worker never touches its rings again, which is what makes the
  // control thread's inline takeover of the ingress ring safe.
  shard.dead.store(true);
  jobs_abandoned_.fetch_add(1);
  push_completion(shard, Completion{seq, nullptr});
}

void PcpShardPool::worker_loop(ThreadShard& shard) {
  for (;;) {
    IngressJob job;
    if (!shard.ingress.try_pop(job)) {
      if (shard.stop.load()) return;
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.sleeping.store(true);
      shard.cv.wait(lock,
                    [&] { return shard.stop.load() || !shard.ingress.empty(); });
      shard.sleeping.store(false);
      continue;
    }
    WorkerFault fault = WorkerFault::kNone;
    if (has_probe_.load()) {
      std::lock_guard<std::mutex> lock(probe_mu_);
      if (fault_probe_) fault = fault_probe_(shard.index, job.seq);
    }
    if (fault == WorkerFault::kStall) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    } else if (fault == WorkerFault::kKill) {
      kill_worker(shard, job.seq);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    std::function<void()> apply = job.work();
    const auto end = std::chrono::steady_clock::now();
    shard.latency_us.add(
        std::chrono::duration<double, std::micro>(end - start).count());
    if (fault == WorkerFault::kKillAfterDecide) {
      // The decision ran (the shard's cache may have stored it) but the
      // completion is never published: crash in the publish window.
      kill_worker(shard, job.seq);
      return;
    }
    if (!push_completion(shard, Completion{job.seq, std::move(apply)})) return;
  }
}

std::size_t PcpShardPool::drain_completion_rings() {
  std::size_t drained = 0;
  for (auto& shard : thread_shards_) {
    Completion completion;
    bool popped = false;
    while (shard->done.try_pop(completion)) {
      completed_.emplace(completion.seq, std::move(completion.apply));
      popped = true;
      ++drained;
    }
    // Freed done-ring space: a worker parked on a full ring can continue.
    if (popped) wake_worker(*shard);
  }
  return drained;
}

void PcpShardPool::recover_dead_shards() {
  for (auto& shard : thread_shards_) {
    if (!shard->dead.load()) continue;
    // The worker is gone (it published dead on its way out and never
    // touches its rings again), so the control thread may safely become
    // the ingress ring's consumer and run the stranded jobs — including
    // their touches of the shard's decision cache — without racing anyone.
    IngressJob job;
    while (shard->ingress.try_pop(job)) {
      completed_.emplace(job.seq, job.work());
    }
  }
}

std::size_t PcpShardPool::respawn_dead_workers() {
  recover_dead_shards();
  std::size_t respawned = 0;
  for (auto& shard : thread_shards_) {
    if (!shard->dead.load()) continue;
    // A killed worker can still be parked publishing its abandoning null
    // completion on a full done ring; free space and wake it so the join
    // cannot deadlock. One drain suffices — nothing else pushes to this
    // ring between here and the worker's exit.
    drain_completion_rings();
    wake_worker(*shard);
    if (shard->worker.joinable()) shard->worker.join();
    shard->dead.store(false);
    spawn_worker(*shard);
    ++respawned;
  }
  return respawned;
}

std::size_t PcpShardPool::dead_workers() const {
  std::size_t dead = 0;
  for (const auto& shard : thread_shards_) {
    if (shard->dead.load()) ++dead;
  }
  return dead;
}

std::size_t PcpShardPool::poll_completions() {
  drain_completion_rings();
  recover_dead_shards();
  std::size_t applied = 0;
  for (;;) {
    const auto it = completed_.find(next_apply_seq_);
    if (it == completed_.end()) {
      // The next-in-order job may have completed while applies ran above;
      // re-drain before giving up so a pipelined caller never stalls on a
      // completion that is already sitting in a ring.
      if (drain_completion_rings() == 0) break;
      continue;
    }
    std::function<void()> apply = std::move(it->second);
    completed_.erase(it);
    ++next_apply_seq_;
    if (!apply) continue;  // killed mid-decision: effects never existed
    // Applies publish on the bus, install rules, and may re-enter the pool
    // via callbacks — all single-threaded here on the control thread.
    apply();
    ++applied;
  }
  return applied;
}

bool PcpShardPool::completions_pending() const {
  for (const auto& shard : thread_shards_) {
    if (!shard->done.empty()) return true;
    // A killed shard's stranded jobs never complete on their own — the
    // recovery pass inside poll_completions runs them inline instead, so
    // waiting only on the completion rings would wedge forever.
    if (shard->dead.load() && !shard->ingress.empty()) return true;
  }
  return false;
}

void PcpShardPool::wait_idle() {
  while (next_apply_seq_ < next_submit_seq_) {
    poll_completions();
    if (next_apply_seq_ >= next_submit_seq_) break;
    std::unique_lock<std::mutex> lock(done_mu_);
    control_waiting_.store(true);
    done_cv_.wait(lock, [&] { return completions_pending(); });
    control_waiting_.store(false);
  }
}

std::size_t PcpShardPool::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& station : stations_) depth += station->queue_depth();
  for (const auto& shard : thread_shards_) depth += shard->ingress.size();
  return depth;
}

}  // namespace dfi
