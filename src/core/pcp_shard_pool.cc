#include "core/pcp_shard_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace dfi {

PcpShardPool::PcpShardPool(Simulator& sim, const PcpConfig& config)
    : backend_(config.backend),
      shards_(std::max<std::size_t>(1, config.shards)),
      queue_capacity_(config.queue_capacity) {
  if (backend_ == PcpBackend::kSimulated) {
    stations_.reserve(shards_);
    for (std::size_t i = 0; i < shards_; ++i) {
      stations_.push_back(std::make_unique<ServiceStation>(
          sim, config.workers, config.queue_capacity));
    }
  } else {
    thread_shards_.reserve(shards_);
    for (std::size_t i = 0; i < shards_; ++i) {
      thread_shards_.push_back(std::make_unique<ThreadShard>());
      thread_shards_.back()->index = i;
    }
    // Start workers only after every shard exists: a worker never touches
    // the vector, but symmetry with the destructor keeps this obvious.
    for (auto& shard : thread_shards_) {
      shard->worker = std::thread([this, &shard = *shard] { worker_loop(shard); });
    }
  }
}

PcpShardPool::~PcpShardPool() {
  for (auto& shard : thread_shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stop = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : thread_shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

bool PcpShardPool::submit_simulated(std::size_t shard,
                                    ServiceStation::ServiceTimeFn service_time,
                                    ServiceStation::DoneFn on_done) {
  return stations_[shard]->submit(std::move(service_time), std::move(on_done));
}

bool PcpShardPool::submit_threaded(std::size_t shard, ThreadWork work) {
  ThreadShard& target = *thread_shards_[shard];
  {
    std::lock_guard<std::mutex> lock(target.mu);
    // A dead shard has no worker to run the job; reject like a full queue
    // (the caller counts the drop) until respawn_dead_workers revives it.
    if (target.dead) return false;
    if (target.queue.size() >= queue_capacity_) return false;
    // The sequence number is allocated only for accepted jobs, so drops
    // leave no hole in the apply order.
    target.queue.emplace_back(next_submit_seq_++, std::move(work));
  }
  target.cv.notify_one();
  return true;
}

void PcpShardPool::set_worker_fault_probe(WorkerFaultProbe probe) {
  std::lock_guard<std::mutex> lock(done_mu_);
  fault_probe_ = std::move(probe);
}

void PcpShardPool::worker_loop(ThreadShard& shard) {
  for (;;) {
    std::pair<std::uint64_t, ThreadWork> job;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] { return shard.stop || !shard.queue.empty(); });
      if (shard.queue.empty()) return;  // stop requested and drained
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    WorkerFault fault = WorkerFault::kNone;
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      if (fault_probe_) fault = fault_probe_(shard.index, job.first);
    }
    if (fault == WorkerFault::kStall) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    } else if (fault == WorkerFault::kKill) {
      // Die mid-decision: the job in hand is abandoned (a null completion
      // keeps the reorder buffer advancing past its seq) and everything
      // still queued on this shard is left for the control thread's
      // recovery path. The shard stops accepting work until respawned.
      std::uint64_t stranded = 0;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.dead = true;
        stranded = shard.queue.size();
      }
      stranded_jobs_.fetch_add(stranded);
      jobs_abandoned_.fetch_add(1);
      {
        std::lock_guard<std::mutex> lock(done_mu_);
        completed_.emplace(job.first, nullptr);
      }
      done_cv_.notify_all();
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    std::function<void()> apply = job.second();
    const auto end = std::chrono::steady_clock::now();
    shard.latency_us.add(
        std::chrono::duration<double, std::micro>(end - start).count());
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      completed_.emplace(job.first, std::move(apply));
    }
    done_cv_.notify_all();
  }
}

void PcpShardPool::recover_dead_shards() {
  if (stranded_jobs_.load() == 0) return;
  for (auto& shard : thread_shards_) {
    std::deque<std::pair<std::uint64_t, ThreadWork>> stranded;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (!shard->dead || shard->queue.empty()) continue;
      stranded.swap(shard->queue);
    }
    stranded_jobs_.fetch_sub(stranded.size());
    // The worker is gone (it marked the shard dead on its way out), so the
    // control thread may safely run the jobs — including their touches of
    // the shard's decision cache — without racing anyone.
    for (auto& [seq, work] : stranded) {
      std::function<void()> apply = work();
      std::lock_guard<std::mutex> lock(done_mu_);
      completed_.emplace(seq, std::move(apply));
    }
  }
}

std::size_t PcpShardPool::respawn_dead_workers() {
  recover_dead_shards();
  std::size_t respawned = 0;
  for (auto& shard : thread_shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (!shard->dead) continue;
      shard->dead = false;
    }
    if (shard->worker.joinable()) shard->worker.join();
    shard->worker = std::thread([this, &shard = *shard] { worker_loop(shard); });
    ++respawned;
  }
  return respawned;
}

std::size_t PcpShardPool::dead_workers() const {
  std::size_t dead = 0;
  for (const auto& shard : thread_shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->dead) ++dead;
  }
  return dead;
}

std::size_t PcpShardPool::poll_completions() {
  recover_dead_shards();
  std::size_t applied = 0;
  for (;;) {
    std::function<void()> apply;
    bool abandoned = false;
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      const auto it = completed_.find(next_apply_seq_);
      if (it == completed_.end()) break;
      abandoned = it->second == nullptr;
      apply = std::move(it->second);
      completed_.erase(it);
    }
    ++next_apply_seq_;
    if (abandoned) continue;  // killed mid-decision: effects never existed
    // Run outside the lock: applies publish on the bus, install rules, and
    // may re-enter the pool via callbacks.
    apply();
    ++applied;
  }
  return applied;
}

void PcpShardPool::wait_idle() {
  while (next_apply_seq_ < next_submit_seq_) {
    poll_completions();
    if (next_apply_seq_ >= next_submit_seq_) break;
    std::unique_lock<std::mutex> lock(done_mu_);
    // Wake on the next in-order completion OR on worker death: a killed
    // shard's stranded jobs will never complete on their own — the
    // recovery pass inside poll_completions runs them inline instead, so
    // waiting only on completed_ would wedge forever.
    done_cv_.wait(lock, [&] {
      return completed_.contains(next_apply_seq_) || stranded_jobs_.load() > 0;
    });
  }
}

std::size_t PcpShardPool::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& station : stations_) depth += station->queue_depth();
  for (const auto& shard : thread_shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    depth += shard->queue.size();
  }
  return depth;
}

}  // namespace dfi
