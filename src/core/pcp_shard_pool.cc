#include "core/pcp_shard_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace dfi {

PcpShardPool::PcpShardPool(Simulator& sim, const PcpConfig& config)
    : backend_(config.backend),
      shards_(std::max<std::size_t>(1, config.shards)),
      queue_capacity_(config.queue_capacity) {
  if (backend_ == PcpBackend::kSimulated) {
    stations_.reserve(shards_);
    for (std::size_t i = 0; i < shards_; ++i) {
      stations_.push_back(std::make_unique<ServiceStation>(
          sim, config.workers, config.queue_capacity));
    }
  } else {
    thread_shards_.reserve(shards_);
    for (std::size_t i = 0; i < shards_; ++i) {
      thread_shards_.push_back(std::make_unique<ThreadShard>());
    }
    // Start workers only after every shard exists: a worker never touches
    // the vector, but symmetry with the destructor keeps this obvious.
    for (auto& shard : thread_shards_) {
      shard->worker = std::thread([this, &shard = *shard] { worker_loop(shard); });
    }
  }
}

PcpShardPool::~PcpShardPool() {
  for (auto& shard : thread_shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stop = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : thread_shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

bool PcpShardPool::submit_simulated(std::size_t shard,
                                    ServiceStation::ServiceTimeFn service_time,
                                    ServiceStation::DoneFn on_done) {
  return stations_[shard]->submit(std::move(service_time), std::move(on_done));
}

bool PcpShardPool::submit_threaded(std::size_t shard, ThreadWork work) {
  ThreadShard& target = *thread_shards_[shard];
  {
    std::lock_guard<std::mutex> lock(target.mu);
    if (target.queue.size() >= queue_capacity_) return false;
    // The sequence number is allocated only for accepted jobs, so drops
    // leave no hole in the apply order.
    target.queue.emplace_back(next_submit_seq_++, std::move(work));
  }
  target.cv.notify_one();
  return true;
}

void PcpShardPool::worker_loop(ThreadShard& shard) {
  for (;;) {
    std::pair<std::uint64_t, ThreadWork> job;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] { return shard.stop || !shard.queue.empty(); });
      if (shard.queue.empty()) return;  // stop requested and drained
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    std::function<void()> apply = job.second();
    const auto end = std::chrono::steady_clock::now();
    shard.latency_us.add(
        std::chrono::duration<double, std::micro>(end - start).count());
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      completed_.emplace(job.first, std::move(apply));
    }
    done_cv_.notify_all();
  }
}

std::size_t PcpShardPool::poll_completions() {
  std::size_t applied = 0;
  for (;;) {
    std::function<void()> apply;
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      const auto it = completed_.find(next_apply_seq_);
      if (it == completed_.end()) break;
      apply = std::move(it->second);
      completed_.erase(it);
    }
    ++next_apply_seq_;
    // Run outside the lock: applies publish on the bus, install rules, and
    // may re-enter the pool via callbacks.
    apply();
    ++applied;
  }
  return applied;
}

void PcpShardPool::wait_idle() {
  while (next_apply_seq_ < next_submit_seq_) {
    poll_completions();
    if (next_apply_seq_ >= next_submit_seq_) break;
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] { return completed_.contains(next_apply_seq_); });
  }
}

std::size_t PcpShardPool::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& station : stations_) depth += station->queue_depth();
  for (const auto& shard : thread_shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    depth += shard->queue.size();
  }
  return depth;
}

}  // namespace dfi
