// Immutable snapshot of the Policy Manager's rule database.
//
// The PCP decision path queries policy through a frozen PolicySnapshot —
// a deep copy of every stored rule plus a PolicyRuleIndex built over the
// copies with its counters disabled — instead of the Policy Manager's live
// index (DESIGN.md §5). A snapshot is therefore safe to query from any
// number of PCP shards concurrently while PDPs keep inserting and revoking
// rules against the live manager on the control thread.
//
// Query equivalence: the frozen index files its rules in ascending-id
// order, which is exactly the surviving-insertion order of the live
// index's posting lists (inserts append, revokes erase in place), so
// query() here returns bit-identical decisions to PolicyManager::query()
// at the epoch the snapshot was taken — including the choice among
// equally-ranked same-action rules.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/policy.h"
#include "core/policy_index.h"

namespace dfi {

// Cookie value reserved for flow rules the PCP installs for the default
// Deny decision (no matching policy rule). PolicyRuleIds start above it.
inline constexpr Cookie kDefaultDenyCookie{1};

// Outcome of a policy query for one flow.
struct PolicyDecision {
  PolicyAction action = PolicyAction::kDeny;
  // Id of the deciding rule; kDefaultDenyCookie.value when no rule matched
  // (default deny).
  PolicyRuleId rule_id{kDefaultDenyCookie.value};
  bool default_deny = false;
};

class PolicySnapshot {
 public:
  // Freeze `rules` (presented in ascending-id order) at `epoch`.
  PolicySnapshot(std::vector<StoredPolicyRule> rules, std::uint64_t epoch);

  // Highest-priority rule matching the flow; PDP priority orders rules,
  // equal-priority Allow/Deny conflicts resolve to Deny, no match is the
  // default deny. Pure: touches no mutable state.
  PolicyDecision query(const FlowView& flow) const;

  const StoredPolicyRule* find(PolicyRuleId id) const;

  // Every frozen rule, ascending id. Iteration without the per-call copy
  // PolicyManager::rules() makes.
  const std::deque<StoredPolicyRule>& rules() const { return rules_; }

  std::size_t size() const { return rules_.size(); }

  // The Policy Manager epoch in force when this snapshot was taken;
  // decision-cache entries derived from it are stamped with this value.
  std::uint64_t epoch() const { return epoch_; }

 private:
  // Deque: stable element addresses while building, required because the
  // index holds pointers to the stored rules.
  std::deque<StoredPolicyRule> rules_;
  std::unordered_map<std::uint64_t, const StoredPolicyRule*> by_id_;
  PolicyRuleIndex index_;
  std::uint64_t epoch_ = 0;
};

}  // namespace dfi
