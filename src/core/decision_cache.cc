#include "core/decision_cache.h"

#include "common/hash.h"

namespace dfi {

FlowKey FlowKey::from_packet(Dpid dpid, PortNo in_port, const Packet& packet) {
  FlowKey key;
  key.dpid = dpid.value;
  key.in_port = in_port.value;
  key.src_mac = packet.eth.src.to_u64();
  key.dst_mac = packet.eth.dst.to_u64();
  key.ether_type = packet.eth.ether_type;
  if (packet.ipv4.has_value()) {
    key.has_ipv4 = true;
    key.src_ip = packet.ipv4->src.value();
    key.dst_ip = packet.ipv4->dst.value();
    key.ip_proto = packet.ipv4->protocol;
  }
  // The PCP collects L4 ports from whichever transport header is present;
  // the protocol field already disambiguates TCP from UDP.
  if (packet.tcp.has_value()) {
    key.has_l4 = true;
    key.src_l4 = packet.tcp->src_port;
    key.dst_l4 = packet.tcp->dst_port;
  } else if (packet.udp.has_value()) {
    key.has_l4 = true;
    key.src_l4 = packet.udp->src_port;
    key.dst_l4 = packet.udp->dst_port;
  }
  return key;
}

std::size_t FlowKeyHash::operator()(const FlowKey& key) const noexcept {
  std::uint64_t h = mix64(key.dpid ^ (std::uint64_t{key.in_port} << 32));
  h ^= mix64(key.src_mac + 0x9e3779b97f4a7c15ull);
  h ^= mix64(key.dst_mac + 0x3c6ef372fe94f82bull);
  h ^= mix64((std::uint64_t{key.ether_type} << 48) |
           (std::uint64_t{key.has_ipv4} << 40) |
           (std::uint64_t{key.ip_proto} << 32) |
           (std::uint64_t{key.has_l4} << 31) | key.src_ip);
  h ^= mix64((std::uint64_t{key.dst_ip} << 32) |
           (std::uint64_t{key.src_l4} << 16) | key.dst_l4);
  return static_cast<std::size_t>(h);
}

}  // namespace dfi
