#include "core/policy_manager.h"

#include "common/logging.h"
#include "core/journal.h"

namespace dfi {

PolicyManager::PolicyManager(MessageBus& bus) : bus_(bus) {}

PolicyRuleId PolicyManager::insert(PolicyRule rule, PdpPriority priority,
                                   std::string pdp_name) {
  const PolicyRuleId id{next_id_};
  if (journal_ != nullptr) {
    // WAL ordering: the record is durable before any effect of the insert
    // escapes — including the conflict flush publishes below. If the
    // append dies mid-write (CrashException), the insert never happened:
    // next_id_, the epoch and the rule map are all untouched.
    journal_->append_policy_insert(id, StoredPolicyRule{id, rule, priority, pdp_name},
                                   epoch_ + 1);
  }
  ++next_id_;
  ++stats_.inserts;

  // Consistency check: flush switch rules derived from existing
  // lower-priority rules with the opposite action that overlap the new one.
  // The index narrows the sweep to field-wise overlap candidates.
  index_.for_each_overlap_candidate(
      rule, priority, [&](const StoredPolicyRule& stored) {
        if (stored.rule.action == rule.action) return;
        if (!stored.rule.overlaps(rule)) return;
        ++stats_.conflict_flushes;
        publish_flush(stored.id);
      });
  // A new Allow rule may override previous default-deny decisions whose
  // exact-match deny rules are cached in switches; flush those too.
  if (rule.action == PolicyAction::kAllow) {
    publish_flush(PolicyRuleId{kDefaultDenyCookie.value});
  }

  const auto [it, inserted] = rules_.emplace(
      id, StoredPolicyRule{id, std::move(rule), priority, std::move(pdp_name)});
  index_.insert(&it->second);
  ++epoch_;
  snapshot_cache_.invalidate();
  return id;
}

bool PolicyManager::revoke(PolicyRuleId id) {
  const auto it = rules_.find(id);
  if (it == rules_.end()) return false;
  if (journal_ != nullptr) journal_->append_policy_revoke(id, epoch_ + 1);
  ++stats_.revocations;
  index_.remove(&it->second);
  rules_.erase(it);
  ++epoch_;
  snapshot_cache_.invalidate();
  // Flush every switch rule derived from the revoked policy so ongoing
  // flows are re-evaluated against the remaining policy (Section III-B).
  publish_flush(id);
  return true;
}

PolicyDecision PolicyManager::query(const FlowView& flow) const {
  ++stats_.queries;
  const StoredPolicyRule* best = index_.best_match(flow);
  if (best == nullptr) {
    return PolicyDecision{PolicyAction::kDeny, PolicyRuleId{kDefaultDenyCookie.value},
                          /*default_deny=*/true};
  }
  return PolicyDecision{best->rule.action, best->id, /*default_deny=*/false};
}

PolicyDecision PolicyManager::query_linear(const FlowView& flow) const {
  ++stats_.linear_queries;
  const StoredPolicyRule* best = nullptr;
  for (const auto& [id, stored] : rules_) {
    if (!stored.rule.matches(flow)) continue;
    if (best == nullptr || stored.priority > best->priority) {
      best = &stored;
    } else if (stored.priority == best->priority &&
               stored.rule.action == PolicyAction::kDeny &&
               best->rule.action == PolicyAction::kAllow) {
      best = &stored;  // equal-priority conflict: Deny wins
    }
  }
  if (best == nullptr) {
    return PolicyDecision{PolicyAction::kDeny, PolicyRuleId{kDefaultDenyCookie.value},
                          /*default_deny=*/true};
  }
  return PolicyDecision{best->rule.action, best->id, /*default_deny=*/false};
}

std::optional<StoredPolicyRule> PolicyManager::find(PolicyRuleId id) const {
  const auto it = rules_.find(id);
  if (it == rules_.end()) return std::nullopt;
  return it->second;
}

std::vector<StoredPolicyRule> PolicyManager::rules() const {
  std::vector<StoredPolicyRule> out;
  out.reserve(rules_.size());
  for (const auto& [id, stored] : rules_) out.push_back(stored);
  return out;
}

void PolicyManager::restore_rule(StoredPolicyRule stored) {
  const PolicyRuleId id = stored.id;
  const auto [it, inserted] = rules_.emplace(id, std::move(stored));
  if (!inserted) return;  // replay is idempotent against duplicate records
  index_.insert(&it->second);
  if (id.value >= next_id_) next_id_ = id.value + 1;
  snapshot_cache_.invalidate();
}

bool PolicyManager::restore_revoke(PolicyRuleId id) {
  const auto it = rules_.find(id);
  if (it == rules_.end()) return false;
  index_.remove(&it->second);
  rules_.erase(it);
  snapshot_cache_.invalidate();
  return true;
}

void PolicyManager::restore_next_id(std::uint64_t next_id) {
  if (next_id > next_id_) next_id_ = next_id;
}

void PolicyManager::advance_epoch_to(std::uint64_t epoch) {
  if (epoch > epoch_) {
    epoch_ = epoch;
    snapshot_cache_.invalidate();
  }
}

std::shared_ptr<const PolicySnapshot> PolicyManager::snapshot_view() const {
  return snapshot_cache_.get([this]() {
    ++stats_.snapshot_rebuilds;
    // rules_ is an ordered map keyed by id, so this is ascending-id order —
    // the order PolicySnapshot requires for tie-break equivalence.
    return std::make_shared<const PolicySnapshot>(rules(), epoch_);
  });
}

void PolicyManager::publish_flush(PolicyRuleId id) {
  DFI_DEBUG << "PolicyManager: flush derivations of " << to_string(id);
  bus_.publish(topics::kRuleFlush, FlushDirective{id});
}

}  // namespace dfi
