#include "core/entity_resolution.h"

#include "common/logging.h"

namespace dfi {
namespace {

template <typename K, typename V>
void insert_pair(std::map<K, std::set<V>>& forward, const K& key, const V& value) {
  forward[key].insert(value);
}

template <typename K, typename V>
void erase_pair(std::map<K, std::set<V>>& forward, const K& key, const V& value) {
  const auto it = forward.find(key);
  if (it == forward.end()) return;
  it->second.erase(value);
  if (it->second.empty()) forward.erase(it);
}

template <typename K, typename V>
std::vector<V> values_of(const std::map<K, std::set<V>>& forward, const K& key) {
  const auto it = forward.find(key);
  if (it == forward.end()) return {};
  return {it->second.begin(), it->second.end()};
}

}  // namespace

EntityResolutionManager::EntityResolutionManager(MessageBus& bus)
    : bus_(bus),
      subscription_(bus.subscribe<BindingEvent>(
          topics::kErmBindings,
          [this](const BindingEvent& event) { apply(event); })) {}

void EntityResolutionManager::apply(const BindingEvent& event) {
  ++stats_.binding_updates;
  switch (event.kind) {
    case BindingKind::kUserHost:
      if (event.retracted) {
        erase_pair(user_to_hosts_, event.user, event.host);
        erase_pair(host_to_users_, event.host, event.user);
      } else {
        insert_pair(user_to_hosts_, event.user, event.host);
        insert_pair(host_to_users_, event.host, event.user);
      }
      break;
    case BindingKind::kHostIp:
      if (event.retracted) {
        erase_pair(host_to_ips_, event.host, event.ip);
        erase_pair(ip_to_hosts_, event.ip, event.host);
      } else {
        insert_pair(host_to_ips_, event.host, event.ip);
        insert_pair(ip_to_hosts_, event.ip, event.host);
      }
      break;
    case BindingKind::kIpMac:
      if (event.retracted) {
        ip_to_mac_.erase(event.ip);
        erase_pair(mac_to_ips_, event.mac, event.ip);
      } else {
        // DHCP is authoritative: a lease replaces any prior MAC for the IP.
        if (const auto prev = ip_to_mac_.find(event.ip);
            prev != ip_to_mac_.end() && prev->second != event.mac) {
          erase_pair(mac_to_ips_, prev->second, event.ip);
        }
        ip_to_mac_[event.ip] = event.mac;
        insert_pair(mac_to_ips_, event.mac, event.ip);
      }
      break;
    case BindingKind::kMacLocation: {
      const auto key = std::make_pair(event.dpid, event.mac);
      if (event.retracted) {
        mac_location_.erase(key);
      } else {
        mac_location_[key] = event.port;  // at most one port per switch
      }
      break;
    }
  }
}

EndpointView EntityResolutionManager::enrich(EndpointView view) const {
  ++stats_.queries;
  if (view.ip.has_value()) {
    view.hostnames = hosts_of_ip(*view.ip);
    for (const auto& host : view.hostnames) {
      for (const auto& user : users_of_host(host)) {
        view.usernames.push_back(user);
      }
    }
  }
  return view;
}

SpoofCheck EntityResolutionManager::validate(const std::optional<MacAddress>& mac,
                                             const std::optional<Ipv4Address>& ip,
                                             const std::optional<Dpid>& dpid,
                                             const std::optional<PortNo>& port) const {
  if (ip.has_value() && mac.has_value()) {
    const auto bound = ip_to_mac_.find(*ip);
    if (bound != ip_to_mac_.end() && bound->second != *mac) {
      ++stats_.spoof_rejections;
      return {true, "IP " + ip->to_string() + " is bound to MAC " +
                        bound->second.to_string() + ", not " + mac->to_string()};
    }
  }
  if (mac.has_value() && dpid.has_value() && port.has_value()) {
    const auto located = mac_location_.find({*dpid, *mac});
    if (located != mac_location_.end() && located->second != *port) {
      ++stats_.spoof_rejections;
      return {true, "MAC " + mac->to_string() + " is located at port " +
                        std::to_string(located->second.value) + " of " +
                        to_string(*dpid) + ", not port " +
                        std::to_string(port->value)};
    }
  }
  return {false, ""};
}

std::vector<Hostname> EntityResolutionManager::hosts_of_ip(Ipv4Address ip) const {
  return values_of(ip_to_hosts_, ip);
}

std::vector<Ipv4Address> EntityResolutionManager::ips_of_host(const Hostname& host) const {
  return values_of(host_to_ips_, host);
}

std::vector<Username> EntityResolutionManager::users_of_host(const Hostname& host) const {
  return values_of(host_to_users_, host);
}

std::vector<Hostname> EntityResolutionManager::hosts_of_user(const Username& user) const {
  return values_of(user_to_hosts_, user);
}

std::optional<MacAddress> EntityResolutionManager::mac_of_ip(Ipv4Address ip) const {
  const auto it = ip_to_mac_.find(ip);
  if (it == ip_to_mac_.end()) return std::nullopt;
  return it->second;
}

std::vector<Ipv4Address> EntityResolutionManager::ips_of_mac(MacAddress mac) const {
  return values_of(mac_to_ips_, mac);
}

std::optional<PortNo> EntityResolutionManager::location_of_mac(Dpid dpid,
                                                               MacAddress mac) const {
  const auto it = mac_location_.find({dpid, mac});
  if (it == mac_location_.end()) return std::nullopt;
  return it->second;
}

std::vector<BindingEvent> EntityResolutionManager::snapshot() const {
  std::vector<BindingEvent> out;
  for (const auto& [user, hosts] : user_to_hosts_) {
    for (const auto& host : hosts) {
      BindingEvent event;
      event.kind = BindingKind::kUserHost;
      event.user = user;
      event.host = host;
      out.push_back(std::move(event));
    }
  }
  for (const auto& [host, ips] : host_to_ips_) {
    for (const auto& ip : ips) {
      BindingEvent event;
      event.kind = BindingKind::kHostIp;
      event.host = host;
      event.ip = ip;
      out.push_back(std::move(event));
    }
  }
  for (const auto& [ip, mac] : ip_to_mac_) {
    BindingEvent event;
    event.kind = BindingKind::kIpMac;
    event.ip = ip;
    event.mac = mac;
    out.push_back(std::move(event));
  }
  for (const auto& [key, port] : mac_location_) {
    BindingEvent event;
    event.kind = BindingKind::kMacLocation;
    event.dpid = key.first;
    event.mac = key.second;
    event.port = port;
    out.push_back(std::move(event));
  }
  return out;
}

std::size_t EntityResolutionManager::binding_count() const {
  std::size_t count = mac_location_.size() + ip_to_mac_.size();
  for (const auto& [user, hosts] : user_to_hosts_) count += hosts.size();
  for (const auto& [host, ips] : host_to_ips_) count += ips.size();
  return count;
}

}  // namespace dfi
