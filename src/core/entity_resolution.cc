#include "core/entity_resolution.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "core/journal.h"

namespace dfi {
namespace {

template <typename Map, typename K, typename V>
bool insert_pair(Map& forward, const K& key, const V& value) {
  return forward[key].insert(value).second;
}

template <typename Map, typename K, typename V>
bool erase_pair(Map& forward, const K& key, const V& value) {
  const auto it = forward.find(key);
  if (it == forward.end()) return false;
  const bool erased = it->second.erase(value) > 0;
  if (it->second.empty()) forward.erase(it);
  return erased;
}

template <typename Map, typename K>
auto values_of(const Map& forward, const K& key)
    -> std::vector<typename Map::mapped_type::value_type> {
  const auto it = forward.find(key);
  if (it == forward.end()) return {};
  return {it->second.begin(), it->second.end()};
}

// Deterministic snapshot order over a hash map: keys sorted ascending.
template <typename Map>
auto sorted_keys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

EntityResolutionManager::EntityResolutionManager(MessageBus& bus)
    : bus_(bus),
      subscription_(bus.subscribe<BindingEvent>(
          topics::kErmBindings,
          [this](const BindingEvent& event) { apply(event); })) {}

void EntityResolutionManager::apply(const BindingEvent& event) {
  // WAL ordering: the event is durable before it mutates the tables. A
  // crash inside the append means the binding change never happened.
  // Redundant events are journaled too — replaying them is a no-op with
  // the same (zero) epoch delta, which keeps recovery deterministic
  // without the journal knowing the dedup rules.
  if (journal_ != nullptr) journal_->append_binding(event);
  ++stats_.binding_updates;
  // `changed` tracks whether the event mutated state: redundant
  // re-assertions and retractions of absent bindings must not bump the
  // epoch (they cannot alter any decision) or they would needlessly flush
  // the PCP's decision cache.
  bool changed = false;
  switch (event.kind) {
    case BindingKind::kUserHost:
      if (event.retracted) {
        changed |= erase_pair(identity_.user_to_hosts, event.user, event.host);
        changed |= erase_pair(identity_.host_to_users, event.host, event.user);
      } else {
        changed |= insert_pair(identity_.user_to_hosts, event.user, event.host);
        changed |= insert_pair(identity_.host_to_users, event.host, event.user);
      }
      break;
    case BindingKind::kHostIp:
      if (event.retracted) {
        changed |= erase_pair(identity_.host_to_ips, event.host, event.ip);
        changed |= erase_pair(identity_.ip_to_hosts, event.ip, event.host);
      } else {
        changed |= insert_pair(identity_.host_to_ips, event.host, event.ip);
        changed |= insert_pair(identity_.ip_to_hosts, event.ip, event.host);
      }
      break;
    case BindingKind::kIpMac:
      if (event.retracted) {
        changed |= identity_.ip_to_mac.erase(event.ip) > 0;
        changed |= erase_pair(identity_.mac_to_ips, event.mac, event.ip);
      } else {
        // DHCP is authoritative: a lease replaces any prior MAC for the IP.
        if (const auto prev = identity_.ip_to_mac.find(event.ip);
            prev != identity_.ip_to_mac.end() && prev->second != event.mac) {
          erase_pair(identity_.mac_to_ips, prev->second, event.ip);
          changed = true;
        }
        changed |= insert_pair(identity_.mac_to_ips, event.mac, event.ip);
        if (changed) identity_.ip_to_mac[event.ip] = event.mac;
      }
      break;
    case BindingKind::kMacLocation: {
      const auto key = std::make_pair(event.dpid, event.mac);
      if (event.retracted) {
        changed = mac_location_.erase(key) > 0;
      } else {
        const auto [it, inserted] = mac_location_.emplace(key, event.port);
        if (inserted) {
          // First sighting of this (switch, MAC). Deliberately NOT an
          // epoch bump: validate() passes on missing location bindings and
          // the PCP asserts every packet's own location before deciding,
          // so no cached decision can be contradicted by a first
          // assertion (see epoch() in the header).
        } else if (it->second != event.port) {
          it->second = event.port;  // the MAC moved: replaces the binding
          changed = true;
        }
      }
      break;
    }
  }
  if (changed) {
    ++epoch_;
    // Any epoch bump must reach the next published snapshot, even when the
    // identity tables themselves are untouched (a MAC move): decision
    // caches compare against the snapshot's epoch stamp.
    snapshot_cache_.invalidate();
  }
}

void EntityResolutionManager::advance_epoch_to(std::uint64_t epoch) {
  if (epoch > epoch_) {
    epoch_ = epoch;
    snapshot_cache_.invalidate();
  }
}

ErmSnapshot EntityResolutionManager::snapshot_view() const {
  const auto tables = snapshot_cache_.get([this]() {
    ++stats_.snapshot_rebuilds;
    return std::make_shared<const ErmIdentityTables>(identity_);
  });
  return ErmSnapshot(tables, epoch_);
}

EndpointView EntityResolutionManager::enrich(EndpointView view) const {
  ++stats_.queries;
  return identity_.enrich(std::move(view));
}

SpoofCheck EntityResolutionManager::validate(const std::optional<MacAddress>& mac,
                                             const std::optional<Ipv4Address>& ip,
                                             const std::optional<Dpid>& dpid,
                                             const std::optional<PortNo>& port) const {
  SpoofCheck identity = identity_.validate_identity(mac, ip);
  if (identity.spoofed) {
    ++stats_.spoof_rejections;
    return identity;
  }
  if (mac.has_value() && dpid.has_value() && port.has_value()) {
    const auto located = mac_location_.find({*dpid, *mac});
    if (located != mac_location_.end() && located->second != *port) {
      ++stats_.spoof_rejections;
      return {true, "MAC " + mac->to_string() + " is located at port " +
                        std::to_string(located->second.value) + " of " +
                        to_string(*dpid) + ", not port " +
                        std::to_string(port->value)};
    }
  }
  return {false, ""};
}

std::vector<Hostname> EntityResolutionManager::hosts_of_ip(Ipv4Address ip) const {
  return values_of(identity_.ip_to_hosts, ip);
}

std::vector<Ipv4Address> EntityResolutionManager::ips_of_host(const Hostname& host) const {
  return values_of(identity_.host_to_ips, host);
}

std::vector<Username> EntityResolutionManager::users_of_host(const Hostname& host) const {
  return values_of(identity_.host_to_users, host);
}

std::vector<Hostname> EntityResolutionManager::hosts_of_user(const Username& user) const {
  return values_of(identity_.user_to_hosts, user);
}

std::optional<MacAddress> EntityResolutionManager::mac_of_ip(Ipv4Address ip) const {
  const auto it = identity_.ip_to_mac.find(ip);
  if (it == identity_.ip_to_mac.end()) return std::nullopt;
  return it->second;
}

std::vector<Ipv4Address> EntityResolutionManager::ips_of_mac(MacAddress mac) const {
  return values_of(identity_.mac_to_ips, mac);
}

std::optional<PortNo> EntityResolutionManager::location_of_mac(Dpid dpid,
                                                               MacAddress mac) const {
  const auto it = mac_location_.find({dpid, mac});
  if (it == mac_location_.end()) return std::nullopt;
  return it->second;
}

std::vector<BindingEvent> EntityResolutionManager::snapshot() const {
  std::vector<BindingEvent> out;
  out.reserve(binding_count());
  for (const auto& user : sorted_keys(identity_.user_to_hosts)) {
    for (const auto& host : identity_.user_to_hosts.at(user)) {
      BindingEvent event;
      event.kind = BindingKind::kUserHost;
      event.user = user;
      event.host = host;
      out.push_back(std::move(event));
    }
  }
  for (const auto& host : sorted_keys(identity_.host_to_ips)) {
    for (const auto& ip : identity_.host_to_ips.at(host)) {
      BindingEvent event;
      event.kind = BindingKind::kHostIp;
      event.host = host;
      event.ip = ip;
      out.push_back(std::move(event));
    }
  }
  for (const auto& ip : sorted_keys(identity_.ip_to_mac)) {
    BindingEvent event;
    event.kind = BindingKind::kIpMac;
    event.ip = ip;
    event.mac = identity_.ip_to_mac.at(ip);
    out.push_back(std::move(event));
  }
  for (const auto& key : sorted_keys(mac_location_)) {
    BindingEvent event;
    event.kind = BindingKind::kMacLocation;
    event.dpid = key.first;
    event.mac = key.second;
    event.port = mac_location_.at(key);
    out.push_back(std::move(event));
  }
  return out;
}

std::size_t EntityResolutionManager::binding_count() const {
  std::size_t count = mac_location_.size() + identity_.ip_to_mac.size();
  for (const auto& [user, hosts] : identity_.user_to_hosts) count += hosts.size();
  for (const auto& [host, ips] : identity_.host_to_ips) count += ips.size();
  return count;
}

}  // namespace dfi
