#include "core/entity_resolution.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "core/journal.h"

namespace dfi {
namespace {

// Copy-on-write sorted-posting-list edits. The list order is the
// *presentation* order of the entities (lexicographic for names, numeric
// for addresses) so enrichment and persistence output need no sorting;
// `less` supplies that order. Both return whether the list changed —
// redundant edits must not bump the ERM epoch.
template <typename Less>
bool posting_insert(CowTable<PostingListPtr>& table, EntityId key, EntityId id,
                    Less&& less) {
  const PostingListPtr* slot = table.find(key.value);
  const PostingListPtr current = slot != nullptr ? *slot : nullptr;
  if (current == nullptr || current->empty()) {
    table.mutate(key.value) =
        std::make_shared<const std::vector<EntityId>>(1, id);
    return true;
  }
  const auto pos = std::lower_bound(current->begin(), current->end(), id, less);
  if (pos != current->end() && *pos == id) return false;
  std::vector<EntityId> next;
  next.reserve(current->size() + 1);
  next.insert(next.end(), current->begin(), pos);
  next.push_back(id);
  next.insert(next.end(), pos, current->end());
  table.mutate(key.value) =
      std::make_shared<const std::vector<EntityId>>(std::move(next));
  return true;
}

template <typename Less>
bool posting_erase(CowTable<PostingListPtr>& table, EntityId key, EntityId id,
                   Less&& less) {
  const PostingListPtr* slot = table.find(key.value);
  const PostingListPtr current = slot != nullptr ? *slot : nullptr;
  if (current == nullptr || current->empty()) return false;
  const auto pos = std::lower_bound(current->begin(), current->end(), id, less);
  if (pos == current->end() || *pos != id) return false;
  if (current->size() == 1) {
    table.mutate(key.value) = nullptr;  // empty list == absent key
    return true;
  }
  std::vector<EntityId> next;
  next.reserve(current->size() - 1);
  next.insert(next.end(), current->begin(), pos);
  next.insert(next.end(), pos + 1, current->end());
  table.mutate(key.value) =
      std::make_shared<const std::vector<EntityId>>(std::move(next));
  return true;
}

const std::vector<EntityId>* list_of(const CowTable<PostingListPtr>& table,
                                     EntityId key) {
  if (!key.valid()) return nullptr;
  const PostingListPtr* slot = table.find(key.value);
  if (slot == nullptr || *slot == nullptr || (*slot)->empty()) return nullptr;
  return slot->get();
}

// Deterministic snapshot order over the location map: keys sorted ascending.
template <typename Map>
auto sorted_keys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

EntityResolutionManager::EntityResolutionManager(MessageBus& bus)
    : bus_(bus),
      subscription_(bus.subscribe<BindingEvent>(
          topics::kErmBindings,
          [this](const BindingEvent& event) { apply(event); })) {}

void EntityResolutionManager::apply(const BindingEvent& event) {
  // WAL ordering: the event is durable before it mutates the tables. A
  // crash inside the append means the binding change never happened.
  // Redundant events are journaled too — replaying them is a no-op with
  // the same (zero) epoch delta, which keeps recovery deterministic
  // without the journal knowing the dedup rules.
  if (journal_ != nullptr) journal_->append_binding(event);
  ++stats_.binding_updates;

  EntityInterner& interner = *identity_.interner;
  const auto by_user = [&](EntityId a, EntityId b) {
    return interner.users().view(a) < interner.users().view(b);
  };
  const auto by_host = [&](EntityId a, EntityId b) {
    return interner.hosts().view(a) < interner.hosts().view(b);
  };
  const auto by_ip = [&](EntityId a, EntityId b) {
    return interner.ips().key(a) < interner.ips().key(b);
  };

  // `changed` tracks whether the event mutated state: redundant
  // re-assertions and retractions of absent bindings must not bump the
  // epoch (they cannot alter any decision) or they would needlessly flush
  // the PCP's decision cache.
  bool changed = false;
  switch (event.kind) {
    case BindingKind::kUserHost: {
      const EntityId user = interner.users().intern(event.user.value);
      const EntityId host = interner.hosts().intern(event.host.value);
      if (event.retracted) {
        const bool fwd = posting_erase(identity_.user_to_hosts, user, host, by_host);
        changed = posting_erase(identity_.host_to_users, host, user, by_user) || fwd;
        if (fwd) --user_host_bindings_;
      } else {
        const bool fwd = posting_insert(identity_.user_to_hosts, user, host, by_host);
        changed = posting_insert(identity_.host_to_users, host, user, by_user) || fwd;
        if (fwd) ++user_host_bindings_;
      }
      break;
    }
    case BindingKind::kHostIp: {
      const EntityId host = interner.hosts().intern(event.host.value);
      const EntityId ip = interner.ips().intern(event.ip.value());
      if (event.retracted) {
        const bool fwd = posting_erase(identity_.host_to_ips, host, ip, by_ip);
        changed = posting_erase(identity_.ip_to_hosts, ip, host, by_host) || fwd;
        if (fwd) --host_ip_bindings_;
      } else {
        const bool fwd = posting_insert(identity_.host_to_ips, host, ip, by_ip);
        changed = posting_insert(identity_.ip_to_hosts, ip, host, by_host) || fwd;
        if (fwd) ++host_ip_bindings_;
      }
      break;
    }
    case BindingKind::kIpMac: {
      const EntityId ip = interner.ips().intern(event.ip.value());
      const EntityId mac = interner.macs().intern(event.mac.to_u64());
      const std::uint64_t* slot = identity_.ip_to_mac.find(ip.value);
      const std::uint64_t bound = slot != nullptr ? *slot : 0;
      const std::uint64_t packed = event.mac.to_u64() + 1;
      if (event.retracted) {
        if (bound != 0) {
          identity_.ip_to_mac.mutate(ip.value) = 0;
          --ip_mac_bindings_;
          changed = true;
        }
        changed |= posting_erase(identity_.mac_to_ips, mac, ip, by_ip);
      } else {
        // DHCP is authoritative: a lease replaces any prior MAC for the IP.
        if (bound != 0 && bound != packed) {
          const EntityId prev = interner.macs().find(bound - 1);
          posting_erase(identity_.mac_to_ips, prev, ip, by_ip);
          changed = true;
        }
        changed |= posting_insert(identity_.mac_to_ips, mac, ip, by_ip);
        if (changed) {
          if (bound == 0) ++ip_mac_bindings_;
          identity_.ip_to_mac.mutate(ip.value) = packed;
        }
      }
      break;
    }
    case BindingKind::kMacLocation: {
      const auto key = std::make_pair(event.dpid, event.mac);
      if (event.retracted) {
        changed = mac_location_.erase(key) > 0;
      } else {
        const auto [it, inserted] = mac_location_.emplace(key, event.port);
        if (inserted) {
          // First sighting of this (switch, MAC). Deliberately NOT an
          // epoch bump: validate() passes on missing location bindings and
          // the PCP asserts every packet's own location before deciding,
          // so no cached decision can be contradicted by a first
          // assertion (see epoch() in the header).
        } else if (it->second != event.port) {
          it->second = event.port;  // the MAC moved: replaces the binding
          changed = true;
        }
      }
      break;
    }
  }
  // Keep the reader-side IP lookup current: any IP this event named is now
  // interned and must be findable by the live validate/enrich path (reader
  // threads use the capture taken at their snapshot's publication).
  identity_.ip_lookup = identity_.interner->ips().reader();
  if (changed) {
    ++epoch_;
    // Any epoch bump must reach the next published snapshot, even when the
    // identity tables themselves are untouched (a MAC move): decision
    // caches compare against the snapshot's epoch stamp.
    snapshot_cache_.invalidate();
  }
}

void EntityResolutionManager::advance_epoch_to(std::uint64_t epoch) {
  if (epoch > epoch_) {
    epoch_ = epoch;
    snapshot_cache_.invalidate();
  }
}

ErmSnapshot EntityResolutionManager::snapshot_view() const {
  const auto tables = snapshot_cache_.get([this]() {
    ++stats_.snapshot_rebuilds;
    // O(changed), not O(total): freeze marks the paged tables shared and
    // the struct copy is six root pointers plus the interner handle. The
    // deep work — cloning the pages a future mutation dirties — happens
    // lazily, per page, on the control thread.
    identity_.freeze_all();
    return std::make_shared<const ErmIdentityTables>(identity_);
  });
  return ErmSnapshot(tables, epoch_);
}

EndpointView EntityResolutionManager::enrich(EndpointView view) const {
  ++stats_.queries;
  return identity_.enrich(std::move(view));
}

SpoofCheck EntityResolutionManager::validate(const std::optional<MacAddress>& mac,
                                             const std::optional<Ipv4Address>& ip,
                                             const std::optional<Dpid>& dpid,
                                             const std::optional<PortNo>& port) const {
  SpoofCheck identity = identity_.validate_identity(mac, ip);
  if (identity.spoofed) {
    ++stats_.spoof_rejections;
    return identity;
  }
  if (mac.has_value() && dpid.has_value() && port.has_value()) {
    const auto located = mac_location_.find({*dpid, *mac});
    if (located != mac_location_.end() && located->second != *port) {
      ++stats_.spoof_rejections;
      return {true, "MAC " + mac->to_string() + " is located at port " +
                        std::to_string(located->second.value) + " of " +
                        to_string(*dpid) + ", not port " +
                        std::to_string(port->value)};
    }
  }
  return {false, ""};
}

std::vector<Hostname> EntityResolutionManager::hosts_of_ip(Ipv4Address ip) const {
  const EntityInterner& interner = *identity_.interner;
  std::vector<Hostname> out;
  if (const auto* list = list_of(identity_.ip_to_hosts, interner.ips().find(ip.value()))) {
    out.reserve(list->size());
    for (const EntityId host : *list) {
      out.push_back(Hostname{std::string(interner.hosts().view(host))});
    }
  }
  return out;
}

std::vector<Ipv4Address> EntityResolutionManager::ips_of_host(const Hostname& host) const {
  const EntityInterner& interner = *identity_.interner;
  std::vector<Ipv4Address> out;
  if (const auto* list = list_of(identity_.host_to_ips, interner.hosts().find(host.value))) {
    out.reserve(list->size());
    for (const EntityId ip : *list) {
      out.push_back(Ipv4Address(static_cast<std::uint32_t>(interner.ips().key(ip))));
    }
  }
  return out;
}

std::vector<Username> EntityResolutionManager::users_of_host(const Hostname& host) const {
  const EntityInterner& interner = *identity_.interner;
  std::vector<Username> out;
  if (const auto* list = list_of(identity_.host_to_users, interner.hosts().find(host.value))) {
    out.reserve(list->size());
    for (const EntityId user : *list) {
      out.push_back(Username{std::string(interner.users().view(user))});
    }
  }
  return out;
}

std::vector<Hostname> EntityResolutionManager::hosts_of_user(const Username& user) const {
  const EntityInterner& interner = *identity_.interner;
  std::vector<Hostname> out;
  if (const auto* list = list_of(identity_.user_to_hosts, interner.users().find(user.value))) {
    out.reserve(list->size());
    for (const EntityId host : *list) {
      out.push_back(Hostname{std::string(interner.hosts().view(host))});
    }
  }
  return out;
}

std::optional<MacAddress> EntityResolutionManager::mac_of_ip(Ipv4Address ip) const {
  const EntityId id = identity_.interner->ips().find(ip.value());
  if (!id.valid()) return std::nullopt;
  const std::uint64_t* slot = identity_.ip_to_mac.find(id.value);
  if (slot == nullptr || *slot == 0) return std::nullopt;
  return MacAddress::from_u64(*slot - 1);
}

std::vector<Ipv4Address> EntityResolutionManager::ips_of_mac(MacAddress mac) const {
  const EntityInterner& interner = *identity_.interner;
  std::vector<Ipv4Address> out;
  if (const auto* list =
          list_of(identity_.mac_to_ips, interner.macs().find(mac.to_u64()))) {
    out.reserve(list->size());
    for (const EntityId ip : *list) {
      out.push_back(Ipv4Address(static_cast<std::uint32_t>(interner.ips().key(ip))));
    }
  }
  return out;
}

std::optional<PortNo> EntityResolutionManager::location_of_mac(Dpid dpid,
                                                               MacAddress mac) const {
  const auto it = mac_location_.find({dpid, mac});
  if (it == mac_location_.end()) return std::nullopt;
  return it->second;
}

std::vector<BindingEvent> EntityResolutionManager::snapshot() const {
  const EntityInterner& interner = *identity_.interner;
  std::vector<BindingEvent> out;
  out.reserve(binding_count());

  // Presentation order matches the old ordered-set layout exactly: outer
  // entities ascending by name/address, inner lists already sorted.
  const auto sorted_by_name = [](const StringInterner& names,
                                 const CowTable<PostingListPtr>& table) {
    std::vector<EntityId> ids;
    for (std::uint32_t i = 0; i < names.size(); ++i) {
      const PostingListPtr* slot = table.find(i);
      if (slot != nullptr && *slot != nullptr && !(*slot)->empty()) {
        ids.push_back(EntityId{i});
      }
    }
    std::sort(ids.begin(), ids.end(), [&](EntityId a, EntityId b) {
      return names.view(a) < names.view(b);
    });
    return ids;
  };

  for (const EntityId user : sorted_by_name(interner.users(), identity_.user_to_hosts)) {
    for (const EntityId host : **identity_.user_to_hosts.find(user.value)) {
      BindingEvent event;
      event.kind = BindingKind::kUserHost;
      event.user = Username{std::string(interner.users().view(user))};
      event.host = Hostname{std::string(interner.hosts().view(host))};
      out.push_back(std::move(event));
    }
  }
  for (const EntityId host : sorted_by_name(interner.hosts(), identity_.host_to_ips)) {
    for (const EntityId ip : **identity_.host_to_ips.find(host.value)) {
      BindingEvent event;
      event.kind = BindingKind::kHostIp;
      event.host = Hostname{std::string(interner.hosts().view(host))};
      event.ip = Ipv4Address(static_cast<std::uint32_t>(interner.ips().key(ip)));
      out.push_back(std::move(event));
    }
  }
  {
    std::vector<EntityId> bound_ips;
    for (std::uint32_t i = 0; i < interner.ips().size(); ++i) {
      const std::uint64_t* slot = identity_.ip_to_mac.find(i);
      if (slot != nullptr && *slot != 0) bound_ips.push_back(EntityId{i});
    }
    std::sort(bound_ips.begin(), bound_ips.end(), [&](EntityId a, EntityId b) {
      return interner.ips().key(a) < interner.ips().key(b);
    });
    for (const EntityId ip : bound_ips) {
      BindingEvent event;
      event.kind = BindingKind::kIpMac;
      event.ip = Ipv4Address(static_cast<std::uint32_t>(interner.ips().key(ip)));
      event.mac = MacAddress::from_u64(*identity_.ip_to_mac.find(ip.value) - 1);
      out.push_back(std::move(event));
    }
  }
  for (const auto& key : sorted_keys(mac_location_)) {
    BindingEvent event;
    event.kind = BindingKind::kMacLocation;
    event.dpid = key.first;
    event.mac = key.second;
    event.port = mac_location_.at(key);
    out.push_back(std::move(event));
  }
  return out;
}

std::size_t EntityResolutionManager::binding_count() const {
  return user_host_bindings_ + host_ip_bindings_ + ip_mac_bindings_ +
         mac_location_.size();
}

}  // namespace dfi
