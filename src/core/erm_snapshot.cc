#include "core/erm_snapshot.h"

#include <algorithm>
#include <vector>

namespace dfi {

EndpointView ErmIdentityTables::enrich(EndpointView view) const {
  if (!view.ip.has_value()) return view;
  const auto hosts = ip_to_hosts.find(*view.ip);
  if (hosts == ip_to_hosts.end()) return view;
  view.hostnames.assign(hosts->second.begin(), hosts->second.end());

  // Gather each bound host's user set without copying it, then fill the
  // output in one reserved pass. A user logged on to a host reachable via
  // several hostname bindings must appear once, so multi-host enrichments
  // are deduplicated (each individual set is already sorted and unique).
  std::size_t total_users = 0;
  std::vector<const std::set<Username>*> user_sets;
  user_sets.reserve(view.hostnames.size());
  for (const auto& host : view.hostnames) {
    const auto users = host_to_users.find(host);
    if (users == host_to_users.end() || users->second.empty()) continue;
    user_sets.push_back(&users->second);
    total_users += users->second.size();
  }
  view.usernames.reserve(total_users);
  for (const auto* users : user_sets) {
    view.usernames.insert(view.usernames.end(), users->begin(), users->end());
  }
  if (user_sets.size() > 1) {
    std::sort(view.usernames.begin(), view.usernames.end());
    view.usernames.erase(
        std::unique(view.usernames.begin(), view.usernames.end()),
        view.usernames.end());
  }
  return view;
}

SpoofCheck ErmIdentityTables::validate_identity(
    const std::optional<MacAddress>& mac, const std::optional<Ipv4Address>& ip) const {
  if (ip.has_value() && mac.has_value()) {
    const auto bound = ip_to_mac.find(*ip);
    if (bound != ip_to_mac.end() && bound->second != *mac) {
      return {true, "IP " + ip->to_string() + " is bound to MAC " +
                        bound->second.to_string() + ", not " + mac->to_string()};
    }
  }
  return {false, ""};
}

}  // namespace dfi
