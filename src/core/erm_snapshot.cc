#include "core/erm_snapshot.h"

#include <algorithm>
#include <vector>

namespace dfi {
namespace {

// Scratch bitmap for alias-expansion dedup (one bit per user id).
//
// A host reachable via several hostname bindings must contribute each
// logged-on user once. The old layout deduplicated with sort+unique over
// freshly copied strings (and before that, repeated std::set inserts — the
// FrameDecoder-style quadratic risk); here membership is one test-and-set
// per candidate id. The bitmap is thread_local so concurrent snapshot
// readers each get their own, grow-only so steady state allocates nothing,
// and cleared by unsetting exactly the bits just collected — O(output),
// not O(id space).
class ScratchIdBitmap {
 public:
  bool test_and_set(EntityId id) {
    const std::size_t word = id.value >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    const std::uint64_t bit = 1ull << (id.value & 63);
    if ((words_[word] & bit) != 0) return false;
    words_[word] |= bit;
    return true;
  }

  void clear(const std::vector<EntityId>& set_ids) {
    for (const EntityId id : set_ids) {
      words_[id.value >> 6] &= ~(1ull << (id.value & 63));
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

const std::vector<EntityId>* list_of(const CowTable<PostingListPtr>& table,
                                     EntityId id) {
  const PostingListPtr* slot = table.find(id.value);
  if (slot == nullptr || *slot == nullptr || (*slot)->empty()) return nullptr;
  return slot->get();
}

}  // namespace

EndpointView ErmIdentityTables::enrich(EndpointView view) const {
  if (!view.ip.has_value()) return view;
  const EntityId ip = ip_lookup.find(view.ip->value());
  if (!ip.valid()) return view;
  const std::vector<EntityId>* hosts = list_of(ip_to_hosts, ip);
  if (hosts == nullptr) return view;

  const StringInterner& host_names = interner->hosts();
  const StringInterner& user_names = interner->users();
  view.hostnames.clear();
  view.hostnames.reserve(hosts->size());
  for (const EntityId host : *hosts) {
    view.hostnames.push_back(Hostname{std::string(host_names.view(host))});
  }

  if (hosts->size() == 1) {
    // Single-host fast path: its user list is already sorted and unique.
    if (const std::vector<EntityId>* users = list_of(host_to_users, (*hosts)[0])) {
      view.usernames.reserve(users->size());
      for (const EntityId user : *users) {
        view.usernames.push_back(Username{std::string(user_names.view(user))});
      }
    }
    return view;
  }

  // Multi-host enrichment: a user logged on to a host reachable via several
  // hostname bindings must appear once. Collect ids through the scratch
  // bitmap, then order the survivors lexicographically — the presentation
  // order every per-host list already uses, so output matches the old
  // ordered-set layout byte for byte.
  thread_local ScratchIdBitmap scratch;
  std::vector<EntityId> user_ids;
  for (const EntityId host : *hosts) {
    const std::vector<EntityId>* users = list_of(host_to_users, host);
    if (users == nullptr) continue;
    user_ids.reserve(user_ids.size() + users->size());
    for (const EntityId user : *users) {
      if (scratch.test_and_set(user)) user_ids.push_back(user);
    }
  }
  scratch.clear(user_ids);
  std::sort(user_ids.begin(), user_ids.end(), [&](EntityId a, EntityId b) {
    return user_names.view(a) < user_names.view(b);
  });
  view.usernames.reserve(user_ids.size());
  for (const EntityId user : user_ids) {
    view.usernames.push_back(Username{std::string(user_names.view(user))});
  }
  return view;
}

SpoofCheck ErmIdentityTables::validate_identity(
    const std::optional<MacAddress>& mac, const std::optional<Ipv4Address>& ip) const {
  if (ip.has_value() && mac.has_value()) {
    const EntityId ip_id = ip_lookup.find(ip->value());
    if (ip_id.valid()) {
      const std::uint64_t* slot = ip_to_mac.find(ip_id.value);
      if (slot != nullptr && *slot != 0) {
        const MacAddress bound = MacAddress::from_u64(*slot - 1);
        if (bound != *mac) {
          return {true, "IP " + ip->to_string() + " is bound to MAC " +
                            bound.to_string() + ", not " + mac->to_string()};
        }
      }
    }
  }
  return {false, ""};
}

}  // namespace dfi
