// Persistence (paper Section IV: "Both the Policy Manager and the Entity
// Resolution Manager are backed by MySQL databases that maintain a record
// of current policy rules and current identifier bindings").
//
// The surrogate is a line-oriented text snapshot: deterministic to write,
// strict to parse (any malformed line fails with its line number), and
// sufficient to restart a DFI control plane with the policy database and
// binding state it had before. PolicyRuleIds are not preserved by a plain
// load_policies — they are runtime handles; PDP ownership (name +
// priority) is. The write-ahead log (core/journal.h) layers id and epoch
// preservation on top of this format: its snapshot records embed exactly
// the text save_policies/save_bindings emit, plus a header carrying the
// ids and epochs the plain loaders do not.
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "core/entity_resolution.h"
#include "core/policy_manager.h"

namespace dfi {

// ------------------------------------------------------------- policies

// One line per rule:
//   policy|<pdp>|<priority>|allow/deny|ether=..|proto=..|SRC|DST
// where SRC/DST are comma-joined key=value pairs ("*" for none).
std::string save_policies(const PolicyManager& manager);

// Insert every rule from `snapshot` into `manager`. Returns the number of
// rules loaded, or a parse error naming the offending line.
//
// `epoch_floor` guards decision-cache consistency across a reload: caches
// stamp entries with the policy epoch, and a freshly loaded manager
// restarts its epoch from the insert count — typically *behind* the
// pre-restart value. Without the floor, later mutations could land the
// epoch exactly on a value that pre-restart cache entries were stamped
// with while the rule set differs, validating a stale verdict. Pass the
// pre-restart epoch (the journal records it; ad-hoc callers can persist
// PolicyManager::epoch() beside the snapshot) and the loaded manager
// resumes at least there, keeping the epoch monotonic across the restart.
Result<std::size_t> load_policies(PolicyManager& manager, const std::string& snapshot,
                                  std::uint64_t epoch_floor = 0);

// ------------------------------------------------------------- bindings

// One line per binding:
//   binding|user-host|<user>|<host>
//   binding|host-ip|<host>|<ip>
//   binding|ip-mac|<ip>|<mac>
//   binding|mac-location|<mac>|<dpid>|<port>
std::string save_bindings(const EntityResolutionManager& erm);

// Apply every binding from `snapshot` to `erm` (as assertions).
// `epoch_floor` has the same role as in load_policies: replaying the
// snapshot's assertions into a fresh ERM bumps the epoch at most once per
// binding, which can be far behind the pre-restart epoch after churn.
Result<std::size_t> load_bindings(EntityResolutionManager& erm,
                                  const std::string& snapshot,
                                  std::uint64_t epoch_floor = 0);

// -------------------------------------------------- line-level primitives
//
// The journal reuses the snapshot format one record at a time: a WAL
// policy record embeds exactly the line save_policies would write for the
// rule, a WAL binding record the line save_bindings would write.

// The "policy|..." line for one stored rule (no trailing newline). The
// rule id is deliberately not encoded; the journal carries it separately.
std::string policy_rule_line(const StoredPolicyRule& stored);

// Parse one policy line. The returned StoredPolicyRule has id 0 (the line
// does not carry one).
Result<StoredPolicyRule> parse_policy_rule_line(const std::string& line);

// The "binding|..." line for one binding event (no trailing newline).
// `retracted` and `at` are not encoded — snapshot lines are current
// assertions; the journal records retraction separately.
std::string binding_event_line(const BindingEvent& event);

// Parse one binding line into an assertion event.
Result<BindingEvent> parse_binding_event_line(const std::string& line);

}  // namespace dfi
