// Persistence (paper Section IV: "Both the Policy Manager and the Entity
// Resolution Manager are backed by MySQL databases that maintain a record
// of current policy rules and current identifier bindings").
//
// The surrogate is a line-oriented text snapshot: deterministic to write,
// strict to parse (any malformed line fails with its line number), and
// sufficient to restart a DFI control plane with the policy database and
// binding state it had before. PolicyRuleIds are not preserved across a
// reload — they are runtime handles; PDP ownership (name + priority) is.
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "core/entity_resolution.h"
#include "core/policy_manager.h"

namespace dfi {

// ------------------------------------------------------------- policies

// One line per rule:
//   policy|<pdp>|<priority>|allow/deny|ether=..|proto=..|SRC|DST
// where SRC/DST are comma-joined key=value pairs ("*" for none).
std::string save_policies(const PolicyManager& manager);

// Insert every rule from `snapshot` into `manager`. Returns the number of
// rules loaded, or a parse error naming the offending line.
Result<std::size_t> load_policies(PolicyManager& manager, const std::string& snapshot);

// ------------------------------------------------------------- bindings

// One line per binding:
//   binding|user-host|<user>|<host>
//   binding|host-ip|<host>|<ip>
//   binding|ip-mac|<ip>|<mac>
//   binding|mac-location|<mac>|<dpid>|<port>
std::string save_bindings(const EntityResolutionManager& erm);

// Apply every binding from `snapshot` to `erm` (as assertions).
Result<std::size_t> load_bindings(EntityResolutionManager& erm,
                                  const std::string& snapshot);

}  // namespace dfi
