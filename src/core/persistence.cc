#include "core/persistence.h"

#include <sstream>
#include <vector>

namespace dfi {
namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

Result<std::size_t> fail_line(std::size_t line, const std::string& what) {
  return Result<std::size_t>::Fail(
      ErrorCode::kMalformed, "line " + std::to_string(line) + ": " + what);
}

// ---------------------------------------------------------- endpoint spec

std::string spec_to_text(const EndpointSpec& spec) {
  std::string out;
  const auto append = [&out](const std::string& field) {
    if (!out.empty()) out += ",";
    out += field;
  };
  if (spec.user) append("user=" + spec.user->value);
  if (spec.host) append("host=" + spec.host->value);
  if (spec.ip) append("ip=" + spec.ip->to_string());
  if (spec.l4_port) append("port=" + std::to_string(*spec.l4_port));
  if (spec.mac) append("mac=" + spec.mac->to_string());
  if (spec.switch_port) append("swport=" + std::to_string(spec.switch_port->value));
  if (spec.dpid) append("dpid=" + std::to_string(spec.dpid->value));
  return out.empty() ? "*" : out;
}

bool spec_from_text(const std::string& text, EndpointSpec& spec) {
  if (text == "*") return true;
  for (const std::string& field : split(text, ',')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "user") {
      spec.user = Username{value};
    } else if (key == "host") {
      spec.host = Hostname{value};
    } else if (key == "ip") {
      const auto ip = Ipv4Address::parse(value);
      if (!ip.ok()) return false;
      spec.ip = ip.value();
    } else if (key == "port") {
      spec.l4_port = static_cast<std::uint16_t>(std::stoul(value));
    } else if (key == "mac") {
      const auto mac = MacAddress::parse(value);
      if (!mac.ok()) return false;
      spec.mac = mac.value();
    } else if (key == "swport") {
      spec.switch_port = PortNo{static_cast<std::uint32_t>(std::stoul(value))};
    } else if (key == "dpid") {
      spec.dpid = Dpid{std::stoull(value)};
    } else {
      return false;
    }
  }
  return true;
}

template <typename T>
Result<T> fail_parse(const std::string& what) {
  return Result<T>::Fail(ErrorCode::kMalformed, what);
}

}  // namespace

std::string policy_rule_line(const StoredPolicyRule& stored) {
  std::ostringstream out;
  out << "policy|" << stored.pdp_name << "|" << stored.priority.value << "|"
      << (stored.rule.action == PolicyAction::kAllow ? "allow" : "deny") << "|";
  out << (stored.rule.properties.ether_type
              ? "ether=" + std::to_string(*stored.rule.properties.ether_type)
              : std::string("ether=*"))
      << "|";
  out << (stored.rule.properties.ip_proto
              ? "proto=" + std::to_string(*stored.rule.properties.ip_proto)
              : std::string("proto=*"))
      << "|";
  out << spec_to_text(stored.rule.source) << "|"
      << spec_to_text(stored.rule.destination);
  return out.str();
}

Result<StoredPolicyRule> parse_policy_rule_line(const std::string& line) {
  const auto parts = split(line, '|');
  if (parts.size() != 8 || parts[0] != "policy") {
    return fail_parse<StoredPolicyRule>("expected 8 '|'-separated policy fields");
  }
  StoredPolicyRule stored;
  stored.pdp_name = parts[1];
  try {
    stored.priority.value = static_cast<std::uint32_t>(std::stoul(parts[2]));
  } catch (...) {
    return fail_parse<StoredPolicyRule>("bad priority: " + parts[2]);
  }
  if (parts[3] == "allow") {
    stored.rule.action = PolicyAction::kAllow;
  } else if (parts[3] == "deny") {
    stored.rule.action = PolicyAction::kDeny;
  } else {
    return fail_parse<StoredPolicyRule>("bad action: " + parts[3]);
  }
  try {
    if (parts[4] != "ether=*") {
      if (parts[4].rfind("ether=", 0) != 0) {
        return fail_parse<StoredPolicyRule>("bad ether field");
      }
      stored.rule.properties.ether_type =
          static_cast<std::uint16_t>(std::stoul(parts[4].substr(6)));
    }
    if (parts[5] != "proto=*") {
      if (parts[5].rfind("proto=", 0) != 0) {
        return fail_parse<StoredPolicyRule>("bad proto field");
      }
      stored.rule.properties.ip_proto =
          static_cast<std::uint8_t>(std::stoul(parts[5].substr(6)));
    }
    if (!spec_from_text(parts[6], stored.rule.source)) {
      return fail_parse<StoredPolicyRule>("bad source spec: " + parts[6]);
    }
    if (!spec_from_text(parts[7], stored.rule.destination)) {
      return fail_parse<StoredPolicyRule>("bad destination spec: " + parts[7]);
    }
  } catch (...) {
    return fail_parse<StoredPolicyRule>("bad numeric field");
  }
  return stored;
}

std::string binding_event_line(const BindingEvent& event) {
  std::ostringstream out;
  switch (event.kind) {
    case BindingKind::kUserHost:
      out << "binding|user-host|" << event.user.value << "|" << event.host.value;
      break;
    case BindingKind::kHostIp:
      out << "binding|host-ip|" << event.host.value << "|" << event.ip.to_string();
      break;
    case BindingKind::kIpMac:
      out << "binding|ip-mac|" << event.ip.to_string() << "|"
          << event.mac.to_string();
      break;
    case BindingKind::kMacLocation:
      out << "binding|mac-location|" << event.mac.to_string() << "|"
          << event.dpid.value << "|" << event.port.value;
      break;
  }
  return out.str();
}

Result<BindingEvent> parse_binding_event_line(const std::string& line) {
  const auto parts = split(line, '|');
  if (parts.size() < 4 || parts[0] != "binding") {
    return fail_parse<BindingEvent>("expected binding line");
  }
  BindingEvent event;
  if (parts[1] == "user-host") {
    event.kind = BindingKind::kUserHost;
    event.user = Username{parts[2]};
    event.host = Hostname{parts[3]};
  } else if (parts[1] == "host-ip") {
    event.kind = BindingKind::kHostIp;
    event.host = Hostname{parts[2]};
    const auto ip = Ipv4Address::parse(parts[3]);
    if (!ip.ok()) return fail_parse<BindingEvent>("bad ip: " + parts[3]);
    event.ip = ip.value();
  } else if (parts[1] == "ip-mac") {
    event.kind = BindingKind::kIpMac;
    const auto ip = Ipv4Address::parse(parts[2]);
    if (!ip.ok()) return fail_parse<BindingEvent>("bad ip: " + parts[2]);
    event.ip = ip.value();
    const auto mac = MacAddress::parse(parts[3]);
    if (!mac.ok()) return fail_parse<BindingEvent>("bad mac: " + parts[3]);
    event.mac = mac.value();
  } else if (parts[1] == "mac-location") {
    if (parts.size() != 5) {
      return fail_parse<BindingEvent>("mac-location needs 5 fields");
    }
    event.kind = BindingKind::kMacLocation;
    const auto mac = MacAddress::parse(parts[2]);
    if (!mac.ok()) return fail_parse<BindingEvent>("bad mac: " + parts[2]);
    event.mac = mac.value();
    try {
      event.dpid = Dpid{std::stoull(parts[3])};
      event.port = PortNo{static_cast<std::uint32_t>(std::stoul(parts[4]))};
    } catch (...) {
      return fail_parse<BindingEvent>("bad dpid/port");
    }
  } else {
    return fail_parse<BindingEvent>("unknown binding kind: " + parts[1]);
  }
  return event;
}

std::string save_policies(const PolicyManager& manager) {
  std::ostringstream out;
  for (const auto& stored : manager.rules()) {
    out << policy_rule_line(stored) << "\n";
  }
  return out.str();
}

Result<std::size_t> load_policies(PolicyManager& manager, const std::string& snapshot,
                                  std::uint64_t epoch_floor) {
  std::istringstream in(snapshot);
  std::string line;
  std::size_t line_number = 0;
  std::size_t loaded = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    auto parsed = parse_policy_rule_line(line);
    if (!parsed.ok()) return fail_line(line_number, parsed.error().message);
    StoredPolicyRule stored = std::move(parsed).value();
    manager.insert(std::move(stored.rule), stored.priority, std::move(stored.pdp_name));
    ++loaded;
  }
  manager.advance_epoch_to(epoch_floor);
  return loaded;
}

std::string save_bindings(const EntityResolutionManager& erm) {
  std::ostringstream out;
  for (const BindingEvent& event : erm.snapshot()) {
    out << binding_event_line(event) << "\n";
  }
  return out.str();
}

Result<std::size_t> load_bindings(EntityResolutionManager& erm,
                                  const std::string& snapshot,
                                  std::uint64_t epoch_floor) {
  std::istringstream in(snapshot);
  std::string line;
  std::size_t line_number = 0;
  std::size_t loaded = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    auto parsed = parse_binding_event_line(line);
    if (!parsed.ok()) return fail_line(line_number, parsed.error().message);
    erm.apply(parsed.value());
    ++loaded;
  }
  erm.advance_epoch_to(epoch_floor);
  return loaded;
}

}  // namespace dfi
