// DfiSystem: facade wiring the complete DFI control plane.
//
// Owns the message bus, Entity Resolution Manager, Policy Manager, Policy
// Compilation Point, DFI Proxy, data-plane binding sensors and the health
// monitor, in the topology of paper Figure 1. PDPs are created by the
// application (they embody specific policies) against `policy_manager()`
// and `bus()`.
//
// Durability (DESIGN.md §6): the system does not own a Journal — storage
// lifetime belongs to the deployment — but enable_durability() attaches
// one so every policy/binding mutation is journaled before it takes
// effect, and recover_from() replays one into the empty managers inside an
// explicit degraded window (fail-secure while the store is not yet
// authoritative).
#pragma once

#include <memory>

#include "bus/message_bus.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/entity_resolution.h"
#include "core/health_monitor.h"
#include "core/pcp.h"
#include "core/policy_manager.h"
#include "core/proxy.h"
#include "services/sensors.h"
#include "sim/simulator.h"

namespace dfi {

class Journal;
class FileJournalStore;
struct JournalRecovery;

struct DfiConfig {
  PcpConfig pcp;
  ProxyConfig proxy;
  HealthConfig health;
  std::uint64_t seed = 0xdf1df1df1ull;

  // Convenience: zero out all modeled latencies (functional tests).
  static DfiConfig functional() {
    DfiConfig config;
    config.pcp.zero_latency = true;
    config.proxy.zero_latency = true;
    return config;
  }
};

class DfiSystem {
 public:
  // `bus` is the deployment's message bus, shared with the data-plane
  // services whose sensors feed the ERM; it must outlive this object.
  DfiSystem(Simulator& sim, MessageBus& bus, DfiConfig config = {});

  DfiSystem(const DfiSystem&) = delete;
  DfiSystem& operator=(const DfiSystem&) = delete;

  Simulator& sim() { return sim_; }
  MessageBus& bus() { return bus_; }
  EntityResolutionManager& erm() { return erm_; }
  PolicyManager& policy_manager() { return policy_manager_; }
  PolicyCompilationPoint& pcp() { return pcp_; }
  DfiProxy& proxy() { return proxy_; }
  SensorSuite& sensors() { return sensors_; }
  HealthMonitor& health() { return health_; }

  // Drain everything that is ready to run right now: deliver deferred
  // proxy frames, wait out in-flight PCP decisions, then flush coalesced
  // egress and deliver what that produced. The socket frontend
  // (src/net/asyncio/frontend.cc) calls this at read-batch boundaries so a
  // wall-clock transport drives the simulated control plane exactly the
  // way the in-process drain loop does.
  void pump();

  // Attach `journal` as the durable write-ahead log: every PolicyManager
  // insert/revoke and ERM binding event is appended (and synced) before it
  // takes effect, and the proxy's stats() mirror its recovery counters.
  // The journal must outlive this object.
  void enable_durability(Journal& journal);

  // Replay `journal` into the (expected-empty) managers, holding an
  // explicit degraded window for the duration: while the store is not yet
  // authoritative, the proxy's gate applies (fail-secure suppresses new
  // flows). Attaches the journal afterwards, so post-recovery mutations
  // are journaled. Returns the replay summary or the first corruption
  // beyond the torn tail.
  Result<JournalRecovery> recover_from(Journal& journal);

  // Route `store`'s durable-IO failures (failed fsync/rename) into this
  // system's HealthMonitor as a `journal-io` degraded window: a database
  // whose durability barrier is failing must not back trusted decisions.
  void attach_store_health(FileJournalStore& store);

 private:
  Simulator& sim_;
  MessageBus& bus_;
  EntityResolutionManager erm_;
  PolicyManager policy_manager_;
  PolicyCompilationPoint pcp_;
  DfiProxy proxy_;
  SensorSuite sensors_;
  HealthMonitor health_;
};

}  // namespace dfi
