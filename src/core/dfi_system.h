// DfiSystem: facade wiring the complete DFI control plane.
//
// Owns the message bus, Entity Resolution Manager, Policy Manager, Policy
// Compilation Point, DFI Proxy and the data-plane binding sensors, in the
// topology of paper Figure 1. PDPs are created by the application (they
// embody specific policies) against `policy_manager()` and `bus()`.
#pragma once

#include <memory>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "core/entity_resolution.h"
#include "core/pcp.h"
#include "core/policy_manager.h"
#include "core/proxy.h"
#include "services/sensors.h"
#include "sim/simulator.h"

namespace dfi {

struct DfiConfig {
  PcpConfig pcp;
  ProxyConfig proxy;
  std::uint64_t seed = 0xdf1df1df1ull;

  // Convenience: zero out all modeled latencies (functional tests).
  static DfiConfig functional() {
    DfiConfig config;
    config.pcp.zero_latency = true;
    config.proxy.zero_latency = true;
    return config;
  }
};

class DfiSystem {
 public:
  // `bus` is the deployment's message bus, shared with the data-plane
  // services whose sensors feed the ERM; it must outlive this object.
  DfiSystem(Simulator& sim, MessageBus& bus, DfiConfig config = {});

  DfiSystem(const DfiSystem&) = delete;
  DfiSystem& operator=(const DfiSystem&) = delete;

  Simulator& sim() { return sim_; }
  MessageBus& bus() { return bus_; }
  EntityResolutionManager& erm() { return erm_; }
  PolicyManager& policy_manager() { return policy_manager_; }
  PolicyCompilationPoint& pcp() { return pcp_; }
  DfiProxy& proxy() { return proxy_; }
  SensorSuite& sensors() { return sensors_; }

 private:
  Simulator& sim_;
  MessageBus& bus_;
  EntityResolutionManager erm_;
  PolicyManager policy_manager_;
  PolicyCompilationPoint pcp_;
  DfiProxy proxy_;
  SensorSuite sensors_;
};

}  // namespace dfi
