// Pure half of the Policy Compilation Point (DESIGN.md §5).
//
// PR 1 made the Packet-in decision cheap; this layer makes it *pure*:
// decide_on_snapshots() maps a DecisionInput plus an immutable
// (ErmSnapshot, PolicySnapshot) pair to a verdict, a compiled Table-0 rule,
// and a list of deferred effects — without touching live component state,
// publishing on the bus, writing to switches, or logging. Everything
// stateful (the MAC-location sensor, stats counters, rule installation, the
// done callback) is described by the returned DecisionEffects and applied
// by the stateful PCP shell, which lets the same decision function run
//   * synchronously on the control thread (the single-PCP oracle),
//   * inside deterministic-simulator shard stations, and
//   * on real worker threads (core/pcp_shard_pool.h),
// with byte-identical verdicts and rules.
//
// The one stateful concession is the per-shard DecisionCache: it is passed
// in by reference and each shard's cache is only ever touched by that
// shard's execution context, so the function stays data-race free without
// locks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/decision_cache.h"
#include "core/erm_snapshot.h"
#include "core/policy_snapshot.h"
#include "net/packet.h"
#include "openflow/messages.h"

namespace dfi {

// Which execution backend the PCP shard pool runs decisions on.
enum class PcpBackend {
  // Shards are parallel deterministic-simulator service stations; service
  // times are sampled from the Table II distributions. shards=1 is exactly
  // the paper's single-PCP capacity model.
  kSimulated,
  // Shards are real std::thread workers measuring wall-clock decision
  // latency; simulated service times do not apply.
  kThreads,
};

struct PcpConfig {
  // Capacity (paper Section V-A calibration — see DESIGN.md §5): 7 workers
  // at ~5.3 ms mean service time saturate near the paper's ~1350 flows/sec.
  std::size_t workers = 7;
  std::size_t queue_capacity = 32;

  // Scale-out (DESIGN.md §5): Packet-ins are partitioned across this many
  // logical PCP shards by canonical-flow-tuple hash. Each shard is a full
  // capacity unit (its own worker pool / thread, bounded queue, and
  // decision cache). 1 reproduces the paper's single-PCP behavior exactly.
  std::size_t shards = 1;
  PcpBackend backend = PcpBackend::kSimulated;

  // Flow-rule shape.
  std::uint16_t rule_priority = 100;
  std::uint8_t controller_first_table = 1;  // allow -> goto this table

  // Component service times in ms (paper Table II). Set zero_latency for
  // functional tests where timing is irrelevant.
  double binding_query_mean_ms = 2.41;
  double binding_query_sd_ms = 0.97;
  double policy_query_mean_ms = 2.52;
  double policy_query_sd_ms = 0.85;
  double other_mean_ms = 0.39;
  double other_sd_ms = 0.27;
  bool zero_latency = false;

  // Extension (paper Section III-B future work, CAB-ACME): install safe
  // wildcard generalizations of the deciding policy instead of one
  // exact-match rule per flow. See core/rule_cache.h for the safety gates.
  bool wildcard_caching = false;

  // Decision cache (core/decision_cache.h): replay a prior decision for an
  // identical flow tuple when neither the policy epoch nor the binding
  // epoch has moved since it was derived. 0 disables. This trims real CPU
  // from the hot path only; the *simulated* Table II service times above
  // are sampled regardless, so calibrated latency/throughput shapes
  // (Table I, Fig. 4) are unchanged.
  std::size_t decision_cache_capacity = 8192;

  // kThreads only: pin each shard's worker to core (shard mod
  // hw_concurrency). Off by default — pinning helps steady-state
  // throughput benches but hurts oversubscribed CI machines.
  bool pin_workers = false;
};

// Outcome of one access-control decision.
struct PcpDecision {
  bool allow = false;
  bool spoofed = false;
  PolicyDecision policy;
  FlowView flow;            // the enriched view the decision was made on
  FlowModMsg installed_rule;
};

// Everything the pure decision function reads about one Packet-in, fixed
// before the decision runs.
struct DecisionInput {
  Dpid dpid{};
  PortNo in_port{};
  // Parsed packet; nullopt when the frame was unparsable (default deny, no
  // compilable rule).
  std::optional<Packet> packet;
  // Canonical flow tuple (valid iff `packet`): decision-cache key and shard
  // router.
  FlowKey flow_key{};
  // The ERM's (dpid, src MAC) location binding as of input capture. The MAC
  // location map is deliberately outside ErmSnapshot (core/erm_snapshot.h);
  // the location spoof check only bites for multicast source MACs — for
  // unicast sources the PCP's own sensor asserts the observed location
  // before deciding, making the check a tautology — so one scalar suffices.
  std::optional<PortNo> prior_src_location;
};

// The immutable state pair one decision is a function of.
struct DecisionSnapshots {
  ErmSnapshot erm;
  std::shared_ptr<const PolicySnapshot> policy;
};

// What the stateful shell must do with a finished decision. Produced on the
// deciding context, applied on the control thread.
struct DecisionEffects {
  PcpDecision decision;
  bool unparsable = false;
  bool cache_hit = false;        // replayed from the shard's decision cache
  bool has_rule = false;         // install decision.installed_rule
  bool wildcard_installed = false;
  bool wildcard_fallback = false;
  // The wildcard match was narrowed with identity bindings; the shell must
  // track decision.policy.rule_id for retraction-driven flushes.
  bool identity_derived = false;
  std::string spoof_reason;      // non-empty: log the spoof denial
};

// Parse + canonicalize one Packet-in into a DecisionInput (without
// prior_src_location, which the caller captures from the live ERM at the
// point in time its backend requires).
DecisionInput make_decision_input(Dpid dpid, const PacketInMsg& msg);

// Compile the exact-match Table-0 rule for `packet` (every identifier
// available in the packet is specified — Section III-B).
FlowModMsg compile_exact_rule(const Packet& packet, PortNo in_port, bool allow,
                              Cookie cookie, const PcpConfig& config);

// The pure access-control decision: spoof validation, enrichment (late
// binding), policy query (default deny), rule compilation — all against the
// snapshot pair. `cache` is the executing shard's decision cache.
DecisionEffects decide_on_snapshots(const DecisionInput& input,
                                    const DecisionSnapshots& snapshots,
                                    DecisionCache<PcpDecision>& cache,
                                    const PcpConfig& config);

}  // namespace dfi
