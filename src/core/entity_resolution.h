// Entity Resolution Manager (paper Section III-B).
//
// Maintains the current many-to-many identifier bindings
//   username <-> hostname <-> IP <-> MAC <-> (switch, port)
// fed by authoritative sensors over the `erm.bindings` bus topic, and
// answers enrichment queries from the PCP at access-control decision time
// (low-level identifiers observed in the packet are mapped *up*; policies
// are never compiled down at insert time).
//
// It also performs spoof validation: identifiers present in a packet must
// agree with the authoritative bindings (e.g. a source IP bound by DHCP to
// a different MAC marks the packet spoofed, and the PCP denies it).
//
// Compact entity plane (DESIGN.md §8): every user/host/IP/MAC named in a
// binding is interned once into a per-kind namespace (common/intern.h) and
// the identity tables are paged copy-on-write structures keyed by the
// resulting dense 32-bit ids (core/erm_snapshot.h). Strings exist only at
// the boundaries — sensor events in, enrichment output and persistence
// text out — so memory per binding and decision latency stay flat as the
// entity population grows.
//
// Snapshot isolation (DESIGN.md §5): the manager publishes immutable,
// epoch-stamped ErmSnapshot views on demand. The PCP decision path reads
// only snapshots; the live tables are mutated exclusively on the control
// thread. Publication is O(1) — a root-pointer capture — and the next
// mutation after a publication path-copies only the dirty page, so the
// per-event publication cost is O(changed), not O(total bindings).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bus/message_bus.h"
#include "common/snapshot.h"
#include "core/erm_snapshot.h"
#include "core/policy.h"
#include "services/events.h"

namespace dfi {

class Journal;

struct ErmStats {
  std::uint64_t binding_updates = 0;
  std::uint64_t queries = 0;
  std::uint64_t spoof_rejections = 0;
  std::uint64_t snapshot_rebuilds = 0;
};

class EntityResolutionManager {
 public:
  explicit EntityResolutionManager(MessageBus& bus);

  // Apply one binding assertion/retraction (also invoked via the bus).
  void apply(const BindingEvent& event);

  // Enrich the low-level identifiers of one endpoint: returns the input
  // plus all hostnames bound to the IP and all usernames bound to those
  // hostnames (deduplicated — a user logged on to a host reachable via
  // several hostname bindings appears once). `view.dpid`/`switch_port`
  // pass through untouched.
  EndpointView enrich(EndpointView view) const;

  // Validate that packet-observed identifiers agree with authoritative
  // bindings. Missing bindings are not spoofing (the host may simply be
  // unknown — it will match no identity-based policy); a *conflicting*
  // binding is.
  SpoofCheck validate(const std::optional<MacAddress>& mac,
                      const std::optional<Ipv4Address>& ip,
                      const std::optional<Dpid>& dpid,
                      const std::optional<PortNo>& port) const;

  // ------------------------------------------------------------- queries
  std::vector<Hostname> hosts_of_ip(Ipv4Address ip) const;
  std::vector<Ipv4Address> ips_of_host(const Hostname& host) const;
  std::vector<Username> users_of_host(const Hostname& host) const;
  std::vector<Hostname> hosts_of_user(const Username& user) const;
  std::optional<MacAddress> mac_of_ip(Ipv4Address ip) const;
  std::vector<Ipv4Address> ips_of_mac(MacAddress mac) const;
  std::optional<PortNo> location_of_mac(Dpid dpid, MacAddress mac) const;

  const ErmStats& stats() const { return stats_; }
  std::size_t binding_count() const;

  // The shared id<->name store; ids are stable for the manager's lifetime.
  const EntityInterner& interner() const { return *identity_.interner; }

  // Aggregate copy-on-write counters of the identity tables — how many
  // pages/roots mutations had to clone because a published snapshot shared
  // them. The erm_scale bench reports these to prove publication is
  // O(changed).
  CowTableStats cow_stats() const { return identity_.cow_stats(); }

  // Monotonic version of the binding state, bumped on every applied event
  // that could change an enrichment or spoof-validation result. Decision
  // caches (core/decision_cache.h) stamp entries with this epoch; a
  // mismatch forces a full re-decision, which is what keeps cached
  // decisions consistent with late binding (paper Section III-B).
  //
  // One deliberate exception: a *first* MAC-location assertion (no prior
  // port for that (switch, MAC)) does not bump the epoch. validate()
  // treats a missing location binding as a pass, and the PCP asserts the
  // observed location of every packet's source before deciding, so any
  // cached decision for that (switch, MAC, port) already reflects a
  // binding at that very port — a brand-new assertion can only originate
  // from a different flow it cannot retroactively contradict. Without this
  // exception every first packet of a new host would flush the cache.
  std::uint64_t epoch() const { return epoch_; }

  // Immutable snapshot of the identity bindings at the current epoch.
  // O(1): the paged tables are captured by root pointer and marked frozen;
  // later mutations path-copy only what they touch. At most one capture
  // per epoch-bumping mutation, no matter how many decisions run in
  // between; first MAC-location sightings (see epoch()) reuse the cached
  // capture untouched.
  ErmSnapshot snapshot_view() const;

  // Every current binding, as assertion events (persistence snapshots and
  // diagnostics; replaying them into a fresh ERM reproduces this state).
  // Deterministically ordered regardless of interning order.
  std::vector<BindingEvent> snapshot() const;

  // ------------------------------------------------- durability (WAL)
  // Attach a write-ahead log: every subsequent apply() appends its event
  // record before mutating. Pass nullptr to detach.
  void attach_journal(Journal* journal) { journal_ = journal; }

  // Never move the epoch backwards across a reload: a freshly loaded ERM
  // replays only the surviving assertions and lands *behind* the
  // pre-restart epoch, and decision caches stamped with the old epoch
  // values must never see them recur with different binding state (see
  // load_bindings' epoch_floor). The journal calls this with the recorded
  // epoch after replaying a snapshot.
  void advance_epoch_to(std::uint64_t epoch);

 private:
  // Hash for the (dpid, mac) location key.
  struct LocationKeyHash {
    std::size_t operator()(const std::pair<Dpid, MacAddress>& key) const noexcept {
      return std::hash<std::uint64_t>{}(key.first.value * 0x9e3779b97f4a7c15ull ^
                                        key.second.to_u64());
    }
  };

  MessageBus& bus_;
  Subscription subscription_;

  // Live identity bindings: interned, paged copy-on-write tables (see
  // core/erm_snapshot.h for layout and ordering invariants). Mutated only
  // via apply(); published to the decision path by frozen capture.
  // `mutable` because publication-from-const (snapshot_view) must mark the
  // tables frozen — a bookkeeping write, not a logical mutation.
  mutable ErmIdentityTables identity_;
  // (dpid, mac) -> port. At most one port per MAC per switch; the PCP's
  // location sensor replaces the binding when a MAC legitimately moves.
  // Deliberately outside the snapshot (see core/erm_snapshot.h).
  std::unordered_map<std::pair<Dpid, MacAddress>, PortNo, LocationKeyHash> mac_location_;

  // Incremental binding tallies (binding_count() must not walk the paged
  // tables at million-entity scale).
  std::size_t user_host_bindings_ = 0;
  std::size_t host_ip_bindings_ = 0;
  std::size_t ip_mac_bindings_ = 0;

  std::uint64_t epoch_ = 0;
  Journal* journal_ = nullptr;
  mutable SnapshotCache<ErmIdentityTables> snapshot_cache_;
  mutable ErmStats stats_;
};

}  // namespace dfi
