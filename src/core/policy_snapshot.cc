#include "core/policy_snapshot.h"

#include <utility>

namespace dfi {

PolicySnapshot::PolicySnapshot(std::vector<StoredPolicyRule> rules,
                               std::uint64_t epoch)
    : epoch_(epoch) {
  // Queries from shard threads must not touch the index's mutable counters.
  index_.disable_stats();
  by_id_.reserve(rules.size());
  // `rules` arrive in ascending-id order; inserting in that order makes
  // every frozen posting list a subsequence-identical copy of the live
  // index's (inserts append, revokes erase in place), which is what keeps
  // equal-priority tie-breaks bit-identical to the live query path.
  for (StoredPolicyRule& rule : rules) {
    rules_.push_back(std::move(rule));
    const StoredPolicyRule* stored = &rules_.back();
    by_id_.emplace(stored->id.value, stored);
    index_.insert(stored);
  }
}

PolicyDecision PolicySnapshot::query(const FlowView& flow) const {
  const StoredPolicyRule* best = index_.best_match(flow);
  if (best == nullptr) {
    return PolicyDecision{PolicyAction::kDeny,
                          PolicyRuleId{kDefaultDenyCookie.value},
                          /*default_deny=*/true};
  }
  return PolicyDecision{best->rule.action, best->id, /*default_deny=*/false};
}

const StoredPolicyRule* PolicySnapshot::find(PolicyRuleId id) const {
  const auto it = by_id_.find(id.value);
  if (it == by_id_.end()) return nullptr;
  return it->second;
}

}  // namespace dfi
