#include "core/policy.h"

#include <algorithm>
#include <sstream>

namespace dfi {
namespace spec_detail {
namespace {

// Concrete spec field vs. single observed value: wildcard always matches;
// a concrete field requires the value to be present and equal. A rule that
// names a TCP port cannot match a flow with no transport header.
template <typename T>
bool field_matches(const std::optional<T>& spec, const std::optional<T>& observed) {
  if (!spec.has_value()) return true;
  return observed.has_value() && *observed == *spec;
}

// Concrete spec field vs. set of enriched identifiers: matches if the named
// identifier is among those bound to the endpoint ("any machine that Alice
// is using" — paper Section III-B).
template <typename T>
bool field_matches_any(const std::optional<T>& spec, const std::vector<T>& observed) {
  if (!spec.has_value()) return true;
  return std::find(observed.begin(), observed.end(), *spec) != observed.end();
}

// Two spec fields overlap unless both are concrete and different.
template <typename T>
bool fields_overlap(const std::optional<T>& a, const std::optional<T>& b) {
  if (!a.has_value() || !b.has_value()) return true;
  return *a == *b;
}

}  // namespace

bool endpoint_matches(const EndpointSpec& spec, const EndpointView& view) {
  return field_matches_any(spec.user, view.usernames) &&
         field_matches_any(spec.host, view.hostnames) &&
         field_matches(spec.ip, view.ip) &&
         field_matches(spec.l4_port, view.l4_port) &&
         field_matches(spec.mac, view.mac) &&
         field_matches(spec.switch_port, view.switch_port) &&
         field_matches(spec.dpid, view.dpid);
}

bool endpoints_overlap(const EndpointSpec& a, const EndpointSpec& b) {
  return fields_overlap(a.user, b.user) && fields_overlap(a.host, b.host) &&
         fields_overlap(a.ip, b.ip) && fields_overlap(a.l4_port, b.l4_port) &&
         fields_overlap(a.mac, b.mac) &&
         fields_overlap(a.switch_port, b.switch_port) &&
         fields_overlap(a.dpid, b.dpid);
}

}  // namespace spec_detail

bool PolicyRule::matches(const FlowView& flow) const {
  if (properties.ether_type.has_value() && *properties.ether_type != flow.ether_type) {
    return false;
  }
  if (properties.ip_proto.has_value()) {
    if (!flow.ip_proto.has_value() || *flow.ip_proto != *properties.ip_proto) {
      return false;
    }
  }
  return spec_detail::endpoint_matches(source, flow.src) &&
         spec_detail::endpoint_matches(destination, flow.dst);
}

bool PolicyRule::overlaps(const PolicyRule& other) const {
  const auto props_overlap = [](const FlowProperties& a, const FlowProperties& b) {
    const auto field = [](const auto& x, const auto& y) {
      return !x.has_value() || !y.has_value() || *x == *y;
    };
    return field(a.ether_type, b.ether_type) && field(a.ip_proto, b.ip_proto);
  };
  return props_overlap(properties, other.properties) &&
         spec_detail::endpoints_overlap(source, other.source) &&
         spec_detail::endpoints_overlap(destination, other.destination);
}

std::string EndpointSpec::to_string() const {
  std::ostringstream out;
  out << "(" << (user ? user->value : "*") << ", " << (host ? host->value : "*")
      << ", " << (ip ? ip->to_string() : "*") << ", "
      << (l4_port ? std::to_string(*l4_port) : "*") << ", "
      << (mac ? mac->to_string() : "*") << ", "
      << (switch_port ? std::to_string(switch_port->value) : "*") << ", "
      << (dpid ? std::to_string(dpid->value) : "*") << ")";
  return out.str();
}

std::string EndpointView::to_string() const {
  std::ostringstream out;
  out << "{";
  if (mac) out << "mac=" << mac->to_string() << " ";
  if (ip) out << "ip=" << ip->to_string() << " ";
  if (l4_port) out << "port=" << *l4_port << " ";
  for (const auto& host : hostnames) out << "host=" << host.value << " ";
  for (const auto& user : usernames) out << "user=" << user.value << " ";
  out << "}";
  return out.str();
}

std::string PolicyRule::to_string() const {
  std::ostringstream out;
  out << "(" << dfi::to_string(action) << ", (";
  out << (properties.ether_type ? "0x" + [&] {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%04x", *properties.ether_type);
    return std::string(buf);
  }() : std::string("*"));
  out << ", "
      << (properties.ip_proto ? std::to_string(*properties.ip_proto) : std::string("*"))
      << "), " << source.to_string() << ", " << destination.to_string() << ")";
  return out.str();
}

}  // namespace dfi
