#include "core/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/crc32.h"
#include "common/logging.h"
#include "core/health_monitor.h"
#include "core/persistence.h"

namespace dfi {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v & 0xff);
  out += static_cast<char>((v >> 8) & 0xff);
  out += static_cast<char>((v >> 16) & 0xff);
  out += static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

Status malformed(const std::string& what) {
  return Status::Fail(ErrorCode::kMalformed, "journal: " + what);
}

// Parse "key=value" where the value is a decimal u64.
bool parse_kv_u64(const std::string& field, const std::string& key,
                  std::uint64_t& out) {
  const std::string prefix = key + "=";
  if (field.rfind(prefix, 0) != 0) return false;
  try {
    out = std::stoull(field.substr(prefix.size()));
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

// --------------------------------------------------- InMemoryJournalStore

bool InMemoryJournalStore::crash_fires() {
  if (!crash_.armed) return false;
  if (crash_.ops_remaining > 0) {
    --crash_.ops_remaining;
    return false;
  }
  crash_.armed = false;  // the process dies once
  return true;
}

void InMemoryJournalStore::append(const std::uint8_t* data, std::size_t size) {
  if (crash_fires()) {
    // Torn write: only a prefix of the record reaches the platters.
    const auto kept = static_cast<std::size_t>(
        static_cast<double>(size) * std::clamp(crash_.tear_fraction, 0.0, 1.0));
    live_.insert(live_.end(), data, data + kept);
    throw CrashException{};
  }
  live_.insert(live_.end(), data, data + size);
}

void InMemoryJournalStore::sync() {
  if (crash_fires()) throw CrashException{};
}

void InMemoryJournalStore::truncate(std::size_t size) {
  if (size < live_.size()) live_.resize(size);
}

void InMemoryJournalStore::begin_rewrite() { rewrite_.emplace(); }

void InMemoryJournalStore::append_rewrite(const std::uint8_t* data,
                                          std::size_t size) {
  if (!rewrite_.has_value()) rewrite_.emplace();
  if (crash_fires()) {
    // The staged image dies with the process; the live image is untouched.
    rewrite_.reset();
    throw CrashException{};
  }
  rewrite_->insert(rewrite_->end(), data, data + size);
}

void InMemoryJournalStore::commit_rewrite() {
  if (!rewrite_.has_value()) return;
  if (crash_fires()) {
    // The atomic-swap race: the rename either happened or it did not.
    if (crash_.commit_survives) live_ = std::move(*rewrite_);
    rewrite_.reset();
    throw CrashException{};
  }
  live_ = std::move(*rewrite_);
  rewrite_.reset();
}

// ------------------------------------------------------- FileJournalStore

FileJournalStore::FileJournalStore(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    DFI_WARN << "journal: cannot open " << path_;
  }
}

FileJournalStore::~FileJournalStore() {
  if (fd_ >= 0) ::close(fd_);
  if (rewrite_fd_ >= 0) ::close(rewrite_fd_);
  // Balance an open degraded window: the store's failure condition dies
  // with it, and the monitor's refcount must not leak.
  if (io_degraded_ && health_ != nullptr) health_->exit_degraded("journal-io");
}

void FileJournalStore::attach_health(HealthMonitor* health) {
  if (health == nullptr && io_degraded_ && health_ != nullptr) {
    health_->exit_degraded("journal-io");
    io_degraded_ = false;
  }
  health_ = health;
}

void FileJournalStore::io_failure(const char* what) {
  ++io_failures_;
  DFI_WARN << "journal: " << what << " failed on " << path_;
  if (io_degraded_) return;
  io_degraded_ = true;
  // Fail-secure: a durability barrier that is failing means decisions made
  // against this database must not be trusted — hold a degraded window
  // until a durable operation fully succeeds again.
  if (health_ != nullptr) health_->enter_degraded("journal-io");
}

void FileJournalStore::io_recovered() {
  if (!io_degraded_) return;
  io_degraded_ = false;
  if (health_ != nullptr) health_->exit_degraded("journal-io");
}

bool FileJournalStore::sync_parent_dir() {
  const auto slash = path_.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path_.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) return false;
  const bool ok = ::fsync(dfd) == 0;
  ::close(dfd);
  return ok;
}

void FileJournalStore::append(const std::uint8_t* data, std::size_t size) {
  if (fd_ < 0) {
    io_failure("append (store not open)");
    return;
  }
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd_, data + written, size - written);
    if (n <= 0) {
      io_failure("write");
      return;
    }
    written += static_cast<std::size_t>(n);
  }
}

void FileJournalStore::sync() {
  if (fd_ < 0) return;
  if (::fsync(fd_) != 0) {
    io_failure("fsync");
    return;
  }
  io_recovered();
}

std::vector<std::uint8_t> FileJournalStore::read_all() const {
  std::vector<std::uint8_t> out;
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return out;
  std::uint8_t buffer[4096];
  ::ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    out.insert(out.end(), buffer, buffer + n);
  }
  ::close(fd);
  return out;
}

void FileJournalStore::truncate(std::size_t size) {
  if (fd_ >= 0 && ::ftruncate(fd_, static_cast<::off_t>(size)) != 0) {
    io_failure("ftruncate");
  }
}

void FileJournalStore::begin_rewrite() {
  if (rewrite_fd_ >= 0) ::close(rewrite_fd_);
  const std::string tmp = path_ + ".rewrite";
  rewrite_fd_ = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (rewrite_fd_ < 0) {
    DFI_WARN << "journal: cannot open " << tmp;
  }
}

void FileJournalStore::append_rewrite(const std::uint8_t* data, std::size_t size) {
  if (rewrite_fd_ < 0) return;
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(rewrite_fd_, data + written, size - written);
    if (n <= 0) {
      io_failure("rewrite write");
      return;
    }
    written += static_cast<std::size_t>(n);
  }
}

void FileJournalStore::commit_rewrite() {
  if (rewrite_fd_ < 0) return;
  const bool staged_ok = ::fsync(rewrite_fd_) == 0;
  ::close(rewrite_fd_);
  rewrite_fd_ = -1;
  if (!staged_ok) {
    // Committing an unsynced staging file could swap in a hole where the
    // log was; keep the old image.
    io_failure("rewrite fsync");
    return;
  }
  const std::string tmp = path_ + ".rewrite";
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    io_failure("rename");
    return;
  }
  // The rename orders the swap but only a parent-directory fsync makes the
  // new directory entry durable: without it a power cut can resurrect the
  // pre-compaction image.
  const bool dir_ok = sync_parent_dir();
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND);
  if (fd_ < 0) {
    io_failure("reopen");
    return;
  }
  if (!dir_ok) {
    io_failure("parent-dir fsync");
    return;
  }
  io_recovered();
}

// ---------------------------------------------------------------- Journal

std::string Journal::frame(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 8);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(reinterpret_cast<const std::uint8_t*>(payload.data()),
                     payload.size()));
  out += payload;
  return out;
}

void Journal::append_raw(const std::string& payload) {
  const std::string framed = frame(payload);
  store_.append(reinterpret_cast<const std::uint8_t*>(framed.data()),
                framed.size());
  store_.sync();
  ++stats_.appends;
  stats_.bytes_appended += framed.size();
}

void Journal::append_record(const std::string& payload) {
  if (replaying_) return;
  if (fenced_out()) {
    // Deposed: a higher fencing epoch exists somewhere. Nothing this
    // journal writes can become authoritative again, so the mutation must
    // not happen (fail-secure).
    ++stats_.fenced_appends;
    throw FencedException{};
  }
  append_raw(payload);
  if (append_observer_) append_observer_(payload);
}

Status Journal::set_fence_epoch(std::uint64_t epoch) {
  if (epoch < fence_epoch_) {
    return Status::Fail(ErrorCode::kInvalidArgument,
                        "journal: fence epoch may not regress");
  }
  if (epoch == fence_epoch_) return Status::Ok();
  if (!replaying_) append_raw("f|" + std::to_string(epoch));
  fence_epoch_ = epoch;
  if (epoch > observed_fence_) observed_fence_ = epoch;
  ++stats_.fence_bumps;
  return Status::Ok();
}

void Journal::observe_fence(std::uint64_t epoch) {
  if (epoch > observed_fence_) observed_fence_ = epoch;
}

void Journal::append_policy_insert(PolicyRuleId id, const StoredPolicyRule& stored,
                                   std::uint64_t epoch_after) {
  append_record("p+|" + std::to_string(id.value) + "|" +
                std::to_string(epoch_after) + "|" + policy_rule_line(stored));
}

void Journal::append_policy_revoke(PolicyRuleId id, std::uint64_t epoch_after) {
  append_record("p-|" + std::to_string(id.value) + "|" +
                std::to_string(epoch_after));
}

void Journal::append_binding(const BindingEvent& event) {
  append_record(std::string("b|") + (event.retracted ? "-" : "+") + "|" +
                binding_event_line(event));
}

Result<JournalRecovery> Journal::recover(PolicyManager& manager,
                                         EntityResolutionManager& erm) {
  const std::vector<std::uint8_t> bytes = store_.read_all();

  // Frame scan with torn-tail tolerance: a record whose length prefix runs
  // past the image or whose checksum fails marks where the crash cut the
  // log; everything before it is intact (appends are sequential).
  std::vector<std::string> records;
  std::size_t offset = 0;
  while (bytes.size() - offset >= 8) {
    const std::uint32_t length = read_u32(bytes.data() + offset);
    const std::uint32_t stored_crc = read_u32(bytes.data() + offset + 4);
    if (length > bytes.size() - offset - 8) break;  // cut short
    const std::uint8_t* payload = bytes.data() + offset + 8;
    if (crc32(payload, length) != stored_crc) break;  // torn or corrupt
    records.emplace_back(reinterpret_cast<const char*>(payload), length);
    offset += 8u + length;
  }

  JournalRecovery recovery;
  if (offset < bytes.size()) {
    recovery.tail_truncated = true;
    recovery.bytes_discarded = bytes.size() - offset;
    store_.truncate(offset);
    ++stats_.torn_tails_truncated;
    stats_.torn_bytes_discarded += recovery.bytes_discarded;
  }

  replaying_ = true;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Status status = apply_record(records[i], manager, erm, i == 0);
    if (!status.ok()) {
      replaying_ = false;
      return Result<JournalRecovery>::Fail(status.error().code,
                                           status.error().message +
                                               " (record " + std::to_string(i) +
                                               ")");
    }
    if (records[i].rfind("snapshot|", 0) == 0) recovery.snapshot_loaded = true;
  }
  replaying_ = false;

  recovery.records_replayed = records.size();
  ++stats_.replays;
  stats_.records_replayed += records.size();
  return recovery;
}

Status Journal::apply_record(const std::string& payload, PolicyManager& manager,
                             EntityResolutionManager& erm, bool first_record) {
  if (payload.rfind("snapshot|", 0) == 0) {
    // Compaction rewrites the whole store down to one snapshot record, so
    // a snapshot can only ever be the first thing a restart reads.
    if (!first_record) return malformed("snapshot record not at log head");
    return apply_snapshot(payload, manager, erm);
  }
  if (payload.rfind("p+|", 0) == 0) {
    const std::string rest = payload.substr(3);
    const auto id_end = rest.find('|');
    if (id_end == std::string::npos) return malformed("bad p+ record");
    const auto epoch_end = rest.find('|', id_end + 1);
    if (epoch_end == std::string::npos) return malformed("bad p+ record");
    std::uint64_t id = 0;
    std::uint64_t epoch_after = 0;
    try {
      id = std::stoull(rest.substr(0, id_end));
      epoch_after = std::stoull(rest.substr(id_end + 1, epoch_end - id_end - 1));
    } catch (...) {
      return malformed("bad p+ numerics");
    }
    auto parsed = parse_policy_rule_line(rest.substr(epoch_end + 1));
    if (!parsed.ok()) return malformed(parsed.error().message);
    StoredPolicyRule stored = std::move(parsed).value();
    stored.id = PolicyRuleId{id};
    manager.restore_rule(std::move(stored));
    manager.advance_epoch_to(epoch_after);
    return Status::Ok();
  }
  if (payload.rfind("p-|", 0) == 0) {
    const auto parts = split(payload, '|');
    if (parts.size() != 3) return malformed("bad p- record");
    std::uint64_t id = 0;
    std::uint64_t epoch_after = 0;
    try {
      id = std::stoull(parts[1]);
      epoch_after = std::stoull(parts[2]);
    } catch (...) {
      return malformed("bad p- numerics");
    }
    if (!manager.restore_revoke(PolicyRuleId{id})) {
      return malformed("p- cites unknown rule " + parts[1]);
    }
    manager.advance_epoch_to(epoch_after);
    return Status::Ok();
  }
  if (payload.rfind("f|", 0) == 0) {
    std::uint64_t epoch = 0;
    try {
      epoch = std::stoull(payload.substr(2));
    } catch (...) {
      return malformed("bad fence record");
    }
    if (epoch > fence_epoch_) fence_epoch_ = epoch;
    if (epoch > observed_fence_) observed_fence_ = epoch;
    return Status::Ok();
  }
  if (payload.rfind("b|", 0) == 0) {
    if (payload.size() < 4 || (payload[2] != '+' && payload[2] != '-') ||
        payload[3] != '|') {
      return malformed("bad binding record");
    }
    auto parsed = parse_binding_event_line(payload.substr(4));
    if (!parsed.ok()) return malformed(parsed.error().message);
    BindingEvent event = std::move(parsed).value();
    event.retracted = payload[2] == '-';
    // Replaying the same events against the same prior state reproduces
    // the same epoch deltas, so the binding epoch lands exactly where the
    // pre-crash process left it.
    erm.apply(event);
    return Status::Ok();
  }
  return malformed("unknown record type");
}

Status Journal::apply_snapshot(const std::string& payload, PolicyManager& manager,
                               EntityResolutionManager& erm) {
  std::istringstream in(payload);
  std::string header;
  if (!std::getline(in, header)) return malformed("empty snapshot");
  const auto fields = split(header, '|');
  if (fields.size() != 6 || fields[0] != "snapshot" || fields[1] != "v1") {
    return malformed("bad snapshot header");
  }
  std::uint64_t next_id = 0;
  std::uint64_t policy_epoch = 0;
  std::uint64_t binding_epoch = 0;
  if (!parse_kv_u64(fields[2], "next_id", next_id) ||
      !parse_kv_u64(fields[3], "policy_epoch", policy_epoch) ||
      !parse_kv_u64(fields[4], "binding_epoch", binding_epoch)) {
    return malformed("bad snapshot header numerics");
  }
  if (fields[5].rfind("ids=", 0) != 0) return malformed("bad snapshot ids");
  std::vector<std::uint64_t> ids;
  const std::string ids_csv = fields[5].substr(4);
  if (!ids_csv.empty()) {
    for (const std::string& id_text : split(ids_csv, ',')) {
      try {
        ids.push_back(std::stoull(id_text));
      } catch (...) {
        return malformed("bad snapshot id: " + id_text);
      }
    }
  }

  // Policy section: the k-th line is the k-th id. save_policies emits rules
  // in ascending-id order, so the pairing is well-defined.
  std::string line;
  std::size_t rule_index = 0;
  bool saw_separator = false;
  while (std::getline(in, line)) {
    if (line == "---") {
      saw_separator = true;
      break;
    }
    if (line.empty()) continue;
    if (rule_index >= ids.size()) return malformed("more rules than ids");
    auto parsed = parse_policy_rule_line(line);
    if (!parsed.ok()) return malformed(parsed.error().message);
    StoredPolicyRule stored = std::move(parsed).value();
    stored.id = PolicyRuleId{ids[rule_index]};
    manager.restore_rule(std::move(stored));
    ++rule_index;
  }
  if (rule_index != ids.size()) return malformed("fewer rules than ids");
  if (!saw_separator) return malformed("snapshot missing section separator");
  manager.restore_next_id(next_id);
  manager.advance_epoch_to(policy_epoch);

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = parse_binding_event_line(line);
    if (!parsed.ok()) return malformed(parsed.error().message);
    erm.apply(parsed.value());
  }
  erm.advance_epoch_to(binding_epoch);
  ++stats_.snapshots_loaded;
  return Status::Ok();
}

std::string Journal::snapshot_payload(const PolicyManager& manager,
                                      const EntityResolutionManager& erm) {
  std::string ids_csv;
  for (const StoredPolicyRule& stored : manager.rules()) {
    if (!ids_csv.empty()) ids_csv += ",";
    ids_csv += std::to_string(stored.id.value);
  }
  std::string payload = "snapshot|v1|next_id=" + std::to_string(manager.next_id()) +
                        "|policy_epoch=" + std::to_string(manager.epoch()) +
                        "|binding_epoch=" + std::to_string(erm.epoch()) +
                        "|ids=" + ids_csv + "\n";
  payload += save_policies(manager);
  payload += "---\n";
  payload += save_bindings(erm);
  return payload;
}

Status Journal::compact(const PolicyManager& manager,
                        const EntityResolutionManager& erm) {
  if (replaying_) {
    return Status::Fail(ErrorCode::kInvalidArgument,
                        "journal: compact during replay");
  }
  const std::string payload = snapshot_payload(manager, erm);
  const std::string framed = frame(payload);
  store_.begin_rewrite();
  store_.append_rewrite(reinterpret_cast<const std::uint8_t*>(framed.data()),
                        framed.size());
  if (fence_epoch_ > 0) {
    // The fencing epoch survives compaction: a deposed-then-compacted
    // journal must still recover knowing which epoch it wrote under.
    const std::string fence = frame("f|" + std::to_string(fence_epoch_));
    store_.append_rewrite(reinterpret_cast<const std::uint8_t*>(fence.data()),
                          fence.size());
  }
  store_.commit_rewrite();
  ++stats_.compactions;
  return Status::Ok();
}

Status Journal::ingest_replicated(const std::string& payload,
                                  PolicyManager& manager,
                                  EntityResolutionManager& erm) {
  if (replaying_) {
    return Status::Fail(ErrorCode::kInvalidArgument,
                        "journal: ingest during replay");
  }
  // WAL ordering holds on the standby too: the record is durable in the
  // local store before its effects land in the managers.
  append_raw(payload);
  replaying_ = true;  // restore_* path; suppress re-journaling via apply()
  const Status status = apply_record(payload, manager, erm, false);
  replaying_ = false;
  return status;
}

Status Journal::install_snapshot(const std::string& snapshot_payload,
                                 std::uint64_t fence_epoch, PolicyManager& manager,
                                 EntityResolutionManager& erm) {
  if (replaying_) {
    return Status::Fail(ErrorCode::kInvalidArgument,
                        "journal: install_snapshot during replay");
  }
  const std::string framed = frame(snapshot_payload);
  store_.begin_rewrite();
  store_.append_rewrite(reinterpret_cast<const std::uint8_t*>(framed.data()),
                        framed.size());
  if (fence_epoch > 0) {
    const std::string fence = frame("f|" + std::to_string(fence_epoch));
    store_.append_rewrite(reinterpret_cast<const std::uint8_t*>(fence.data()),
                          fence.size());
  }
  store_.commit_rewrite();
  replaying_ = true;
  const Status status = apply_snapshot(snapshot_payload, manager, erm);
  replaying_ = false;
  if (!status.ok()) return status;
  if (fence_epoch > fence_epoch_) fence_epoch_ = fence_epoch;
  if (fence_epoch > observed_fence_) observed_fence_ = fence_epoch;
  return Status::Ok();
}

}  // namespace dfi
