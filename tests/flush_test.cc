// Cookie-flush completeness (paper Section III-A, "Policy-Switch
// Consistency"): revoking a policy must delete every switch rule compiled
// from it — on every switch, for exact-match and wildcard-cached rules, and
// even when the revoke races Packet-in decisions still in flight on the
// threaded shard pool (the stale-completion re-decide, DESIGN.md §6 / I3).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bus/message_bus.h"
#include "core/pcp.h"
#include "net/packet.h"
#include "openflow/switch_device.h"
#include "openflow/wire.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

MacAddress mac_of(std::size_t i) { return MacAddress::from_u64(0xa0 + i); }
Ipv4Address ip_of(std::size_t i) {
  return Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1));
}

PcpConfig base_config() {
  PcpConfig config;
  config.zero_latency = true;
  config.queue_capacity = 512;
  return config;
}

// PCP wired to real switch devices, so flush completeness is asserted
// against actual Table-0 contents rather than a recorded message stream.
struct FlushWorld {
  explicit FlushWorld(const PcpConfig& config)
      : erm(bus), policy(bus), pcp(sim, bus, erm, policy, config, Rng(11)) {
    for (std::uint64_t d : {std::uint64_t{1}, std::uint64_t{2}}) {
      devices.push_back(std::make_unique<SwitchDevice>(
          SwitchConfig{Dpid{d}, 4, 4096}, [this] { return sim.now(); }));
      SwitchDevice& device = *devices.back();
      device.connect_control([](const std::vector<std::uint8_t>&) {});
      pcp.register_switch(Dpid{d}, [&device](const OfMessage& message) {
        device.receive_control(encode(message));
      });
    }
  }

  void packet_in(std::uint64_t dpid, std::size_t src, std::size_t dst,
                 std::uint16_t dport) {
    PacketInMsg msg;
    msg.table_id = 0;
    msg.in_port = PortNo{1};
    msg.data = make_tcp_packet(mac_of(src), mac_of(dst), ip_of(src), ip_of(dst),
                               1000, dport)
                   .serialize();
    pcp.handle_packet_in(Dpid{dpid}, std::move(msg), [](const PcpDecision&) {});
  }

  void drain() {
    pcp.wait_idle();
    sim.run();
  }

  std::size_t count_cookie(std::size_t device_index, std::uint64_t cookie) const {
    std::size_t n = 0;
    devices[device_index]->pipeline().table(0).for_each(
        [&](const FlowRule& rule) {
          if (rule.cookie.value == cookie) ++n;
        });
    return n;
  }

  std::size_t table0_rules(std::size_t device_index) const {
    std::size_t n = 0;
    devices[device_index]->pipeline().table(0).for_each(
        [&](const FlowRule&) { ++n; });
    return n;
  }

  Simulator sim;
  MessageBus bus;
  EntityResolutionManager erm;
  PolicyManager policy;
  PolicyCompilationPoint pcp;
  std::vector<std::unique_ptr<SwitchDevice>> devices;
};

PolicyRule allow_from(std::size_t src) {
  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  rule.source.ip = ip_of(src);
  return rule;
}

TEST(FlushTest, RevokeDeletesEveryCompiledRuleOnEverySwitch) {
  FlushWorld world(base_config());
  const PolicyRuleId revoked = world.policy.insert(allow_from(1), PdpPriority{5}, "t");
  const PolicyRuleId kept = world.policy.insert(allow_from(2), PdpPriority{5}, "t");

  for (std::uint64_t dpid : {std::uint64_t{1}, std::uint64_t{2}}) {
    world.packet_in(dpid, 1, 3, 445);
    world.packet_in(dpid, 1, 4, 80);
    world.packet_in(dpid, 2, 3, 445);
  }
  world.drain();
  ASSERT_EQ(world.count_cookie(0, revoked.value), 2u);
  ASSERT_EQ(world.count_cookie(1, revoked.value), 2u);
  ASSERT_EQ(world.count_cookie(0, kept.value), 1u);

  ASSERT_TRUE(world.policy.revoke(revoked));
  world.drain();
  EXPECT_EQ(world.count_cookie(0, revoked.value), 0u);
  EXPECT_EQ(world.count_cookie(1, revoked.value), 0u);
  // Unrelated policies' rules survive the cookie-masked delete.
  EXPECT_EQ(world.count_cookie(0, kept.value), 1u);
  EXPECT_EQ(world.count_cookie(1, kept.value), 1u);
}

TEST(FlushTest, AllowInsertFlushesCachedDefaultDenyRules) {
  FlushWorld world(base_config());
  world.packet_in(1, 1, 2, 445);
  world.packet_in(1, 3, 4, 80);
  world.drain();
  ASSERT_EQ(world.count_cookie(0, kDefaultDenyCookie.value), 2u);

  // A new Allow may now cover flows the cached default-deny rules pinned
  // down; the Policy Manager flushes the default-deny cookie on insert.
  world.policy.insert(allow_from(1), PdpPriority{5}, "t");
  world.drain();
  EXPECT_EQ(world.count_cookie(0, kDefaultDenyCookie.value), 0u);
}

TEST(FlushTest, RevokeRacingInFlightThreadedDecisionLeavesNoResidue) {
  PcpConfig config = base_config();
  config.backend = PcpBackend::kThreads;
  config.shards = 2;
  FlushWorld world(config);
  const PolicyRuleId id = world.policy.insert(allow_from(1), PdpPriority{5}, "t");

  // A burst of distinct flows, all matching the allow rule, submitted but
  // not yet applied: their snapshots predate the revoke below.
  for (std::uint16_t i = 0; i < 16; ++i) {
    world.packet_in(1, 1, 2, static_cast<std::uint16_t>(2000 + i));
  }
  // Revoke while the decisions are in flight. The flush DELETE reaches the
  // switch immediately; without the stale-completion re-decide the 16
  // in-flight allows would install *after* it and stay forever.
  ASSERT_TRUE(world.policy.revoke(id));
  world.drain();

  EXPECT_EQ(world.count_cookie(0, id.value), 0u);
  // Every completion was stale (submit-epoch != apply-epoch) and was
  // re-decided on fresh snapshots, landing as default-deny rules.
  EXPECT_EQ(world.pcp.stats().stale_redecides, 16u);
  EXPECT_EQ(world.count_cookie(0, kDefaultDenyCookie.value), 16u);
}

TEST(FlushTest, RevokeRacingInFlightSimulatedDecisionLeavesNoResidue) {
  PcpConfig config = base_config();
  config.shards = 2;
  FlushWorld world(config);
  const PolicyRuleId id = world.policy.insert(allow_from(1), PdpPriority{5}, "t");

  for (std::uint16_t i = 0; i < 16; ++i) {
    world.packet_in(1, 1, 2, static_cast<std::uint16_t>(2000 + i));
  }
  // The simulated backend decides at service time, inside sim.run(), so
  // these decisions already see the post-revoke database — no re-decide
  // needed, and no revoked-cookie rule may appear.
  ASSERT_TRUE(world.policy.revoke(id));
  world.drain();

  EXPECT_EQ(world.count_cookie(0, id.value), 0u);
  EXPECT_EQ(world.pcp.stats().stale_redecides, 0u);
  EXPECT_EQ(world.count_cookie(0, kDefaultDenyCookie.value), 16u);
}

TEST(FlushTest, WildcardCachedRulesFlushOnRevoke) {
  PcpConfig config = base_config();
  config.wildcard_caching = true;
  FlushWorld world(config);
  const PolicyRuleId id = world.policy.insert(allow_from(1), PdpPriority{5}, "t");

  world.packet_in(1, 1, 2, 445);
  world.packet_in(1, 1, 3, 80);
  world.drain();
  ASSERT_GT(world.pcp.stats().wildcard_rules_installed, 0u);
  ASSERT_GT(world.count_cookie(0, id.value), 0u);

  ASSERT_TRUE(world.policy.revoke(id));
  world.drain();
  EXPECT_EQ(world.count_cookie(0, id.value), 0u);
}

}  // namespace
}  // namespace dfi
