// Tests for the TLS-surrogate secure control channel.
#include <gtest/gtest.h>

#include "common/frame_buffer_pool.h"
#include "common/rng.h"
#include "openflow/secure_channel.h"
#include "openflow/switch_device.h"
#include "openflow/wire.h"

namespace dfi {
namespace {

TEST(SecureChannel, SealOpenRoundTrip) {
  SecureChannel sender(0xdeadbeef);
  SecureChannel receiver(0xdeadbeef);
  const std::vector<std::uint8_t> message = {1, 2, 3, 4, 5};
  const auto sealed = sender.seal(message);
  EXPECT_NE(std::search(sealed.begin(), sealed.end(), message.begin(), message.end()),
            sealed.begin() + 8);  // ciphertext differs from plaintext
  const auto opened = receiver.open(sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), message);
}

TEST(SecureChannel, EmptyPayloadRoundTrip) {
  SecureChannel sender(1), receiver(1);
  const auto opened = receiver.open(sender.seal({}));
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().empty());
}

TEST(SecureChannel, OrderedStreamOfRecords) {
  SecureChannel sender(9), receiver(9);
  for (std::uint8_t i = 0; i < 50; ++i) {
    const auto opened = receiver.open(sender.seal({i}));
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(opened.value()[0], i);
  }
  EXPECT_EQ(sender.records_sealed(), 50u);
  EXPECT_EQ(receiver.rejected(), 0u);
}

TEST(SecureChannel, TamperDetected) {
  SecureChannel sender(7), receiver(7);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    auto sealed = sender.seal({10, 20, 30, 40});
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sealed.size()) - 1));
    sealed[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    const auto opened = receiver.open(sealed);
    // Flipping a record-number bit may still fail as replay; any flip must
    // be rejected one way or another.
    EXPECT_FALSE(opened.ok()) << "trial " << trial << " pos " << pos;
  }
  EXPECT_EQ(receiver.rejected(), 200u);
}

TEST(SecureChannel, WrongKeyRejected) {
  SecureChannel sender(100);
  SecureChannel receiver(101);
  EXPECT_FALSE(receiver.open(sender.seal({1, 2, 3})).ok());
}

TEST(SecureChannel, ReplayRejected) {
  SecureChannel sender(55), receiver(55);
  const auto sealed = sender.seal({9});
  ASSERT_TRUE(receiver.open(sealed).ok());
  const auto replay = receiver.open(sealed);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, ErrorCode::kPermissionDenied);
}

TEST(SecureChannel, ReorderRejected) {
  SecureChannel sender(56), receiver(56);
  const auto first = sender.seal({1});
  const auto second = sender.seal({2});
  ASSERT_TRUE(receiver.open(second).ok());
  EXPECT_FALSE(receiver.open(first).ok());
}

TEST(SecureChannel, TruncationRejected) {
  SecureChannel sender(57), receiver(57);
  auto sealed = sender.seal({1, 2, 3});
  sealed.resize(10);
  const auto opened = receiver.open(sealed);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error().code, ErrorCode::kMalformed);
}

TEST(SecureChannel, CarriesOpenFlowFrames) {
  // The intended use: sealing whole OpenFlow records on the proxy's legs.
  SecureChannel switch_side(0x5ec), proxy_side(0x5ec);
  FlowModMsg mod;
  mod.priority = 100;
  mod.match.tcp_dst = 445;
  const auto frame = encode(OfMessage{9, mod});
  const auto opened = proxy_side.open(switch_side.seal(frame));
  ASSERT_TRUE(opened.ok());
  const auto decoded = decode(opened.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<FlowModMsg>(decoded.value().payload).match.tcp_dst, 445);
}

TEST(SecureChannel, IntoVariantsMatchAllocatingApi) {
  SecureChannel sealer(0xfeed);
  SecureChannel sealer_copy(0xfeed);
  SecureChannel opener(0xfeed);
  const std::vector<std::uint8_t> plaintext = {1, 2, 3, 4, 5, 6, 7, 8, 9};

  std::vector<std::uint8_t> record;
  sealer.seal_into(plaintext.data(), plaintext.size(), record);
  EXPECT_EQ(record, sealer_copy.seal(plaintext));  // same counter, same bytes

  std::vector<std::uint8_t> opened;
  const auto result = opener.open_into(record.data(), record.size(), opened);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), plaintext.size());
  EXPECT_EQ(opened, plaintext);
}

TEST(SecureChannel, PooledBuffersForwardWithoutSteadyStateAllocation) {
  // The intended deployment shape: one pool on each side of the channel,
  // seal_into/open_into reusing pooled capacity for every record.
  FrameBufferPool pool;
  SecureChannel tx(0xabc);
  SecureChannel rx(0xabc);
  const auto frame = encode(OfMessage{7, EchoRequestMsg{{0x11, 0x22, 0x33}}});

  // Warm-up pass sizes the buffers.
  for (int i = 0; i < 2; ++i) {
    auto sealed = pool.acquire();
    tx.seal_into(frame.data(), frame.size(), sealed);
    auto opened = pool.acquire();
    ASSERT_TRUE(rx.open_into(sealed.data(), sealed.size(), opened).ok());
    EXPECT_EQ(opened, frame);
    pool.release(std::move(sealed));
    pool.release(std::move(opened));
  }
  const auto warm = pool.stats();
  for (int i = 0; i < 100; ++i) {
    auto sealed = pool.acquire();
    tx.seal_into(frame.data(), frame.size(), sealed);
    auto opened = pool.acquire();
    ASSERT_TRUE(rx.open_into(sealed.data(), sealed.size(), opened).ok());
    pool.release(std::move(sealed));
    pool.release(std::move(opened));
  }
  // Every post-warm-up acquire was served from the free list.
  EXPECT_EQ(pool.stats().allocations, warm.allocations);
  EXPECT_EQ(pool.stats().reuses, warm.reuses + 200);
}

// --------------------------------------------------------------------------
// SwitchDevice::secure_control: the switch's control channel fronted by the
// TLS surrogate, egress through the pooled seal_into path (DESIGN.md §9).

class SecuredSwitchTest : public ::testing::Test {
 protected:
  SecuredSwitchTest()
      : device_(SwitchConfig{Dpid{7}, 4, 256}, [] { return SimTime{}; }),
        device_side_(0x515ull),
        proxy_side_(0x515ull) {
    device_.secure_control(&device_side_);
    device_.connect_control([this](const std::vector<std::uint8_t>& chunk) {
      raw_chunks_.push_back(chunk);
      const auto opened = proxy_side_.open(chunk);
      ASSERT_TRUE(opened.ok()) << opened.error().message;
      decoder_.feed(opened.value());
      for (auto& result : decoder_.drain()) {
        ASSERT_TRUE(result.ok());
        control_out_.push_back(std::move(result).value());
      }
    });
  }

  void send_sealed(const OfMessage& message) {
    device_.receive_control(proxy_side_.seal(encode(message)));
  }

  SwitchDevice device_;
  SecureChannel device_side_;
  SecureChannel proxy_side_;
  FrameDecoder decoder_;
  std::vector<std::vector<std::uint8_t>> raw_chunks_;
  std::vector<OfMessage> control_out_;
};

TEST_F(SecuredSwitchTest, ControlEgressIsSealedAndRoundTrips) {
  // The HELLO emitted on connect already traveled sealed.
  ASSERT_FALSE(control_out_.empty());
  EXPECT_EQ(control_out_[0].type(), OfType::kHello);
  // Every raw chunk carries the record overhead, not bare OpenFlow: the
  // record number prefix means the first byte is never an OF version.
  for (const auto& chunk : raw_chunks_) {
    ASSERT_GE(chunk.size(), 24u);  // 8B record number + 16B tag
    EXPECT_NE(chunk[0], 0x01);
  }
  send_sealed(OfMessage{5, FeaturesRequestMsg{}});
  ASSERT_EQ(control_out_.size(), 2u);
  const auto* reply = std::get_if<FeaturesReplyMsg>(&control_out_[1].payload);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->datapath_id, Dpid{7});
}

TEST_F(SecuredSwitchTest, TamperedIngressRecordIsDroppedNotParsed) {
  auto record = proxy_side_.seal(encode(OfMessage{5, FeaturesRequestMsg{}}));
  record[record.size() / 2] ^= 0x40;
  const auto before = control_out_.size();
  device_.receive_control(record);
  EXPECT_EQ(control_out_.size(), before);  // no reply, no error frame
  EXPECT_EQ(device_side_.rejected(), 1u);
}

TEST_F(SecuredSwitchTest, SealedEgressAllocatesNothingAtSteadyState) {
  // Warm the control pool: ingress open_into plus egress encode+seal each
  // size their pooled buffers on the first few messages.
  for (std::uint32_t i = 0; i < 4; ++i) {
    send_sealed(OfMessage{i + 10, EchoRequestMsg{{0xab, 0xcd}}});
  }
  const auto warm = device_.control_buffer_pool().stats();
  for (std::uint32_t i = 0; i < 100; ++i) {
    send_sealed(OfMessage{i + 100, EchoRequestMsg{{0xab, 0xcd}}});
  }
  EXPECT_EQ(control_out_.size(), 105u);  // HELLO + 4 warm + 100 measured
  // The secured egress path reused pooled capacity for every record.
  EXPECT_EQ(device_.control_buffer_pool().stats().allocations, warm.allocations);
}

}  // namespace
}  // namespace dfi
