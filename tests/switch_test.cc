// Unit tests for the OpenFlow switch device (OVS surrogate).
#include <gtest/gtest.h>

#include <memory>

#include "openflow/switch_device.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

class SwitchTest : public ::testing::Test {
 protected:
  SwitchTest()
      : device_(SwitchConfig{Dpid{42}, 4, 1024}, [this]() { return sim_.now(); }) {
    device_.add_port(PortNo{1}, [this](PortNo, const std::vector<std::uint8_t>& bytes) {
      port1_out_.push_back(bytes);
    });
    device_.add_port(PortNo{2}, [this](PortNo, const std::vector<std::uint8_t>& bytes) {
      port2_out_.push_back(bytes);
    });
    device_.connect_control([this](const std::vector<std::uint8_t>& bytes) {
      FrameDecoder decoder;
      decoder.feed(bytes);
      for (auto& result : decoder.drain()) {
        ASSERT_TRUE(result.ok());
        control_out_.push_back(std::move(result).value());
      }
    });
  }

  void send_control(const OfMessage& message) {
    device_.receive_control(encode(message));
  }

  Packet sample_packet() const {
    return make_tcp_packet(MacAddress::from_u64(0xa), MacAddress::from_u64(0xb),
                           Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1000, 80);
  }

  // Messages of a given type received on the control channel.
  template <typename T>
  std::vector<T> control_of_type() const {
    std::vector<T> out;
    for (const auto& message : control_out_) {
      if (const T* typed = std::get_if<T>(&message.payload)) out.push_back(*typed);
    }
    return out;
  }

  Simulator sim_;
  SwitchDevice device_;
  std::vector<std::vector<std::uint8_t>> port1_out_;
  std::vector<std::vector<std::uint8_t>> port2_out_;
  std::vector<OfMessage> control_out_;
};

TEST_F(SwitchTest, SendsHelloOnConnect) {
  ASSERT_FALSE(control_out_.empty());
  EXPECT_EQ(control_out_[0].type(), OfType::kHello);
}

TEST_F(SwitchTest, AnswersFeaturesRequest) {
  send_control(OfMessage{5, FeaturesRequestMsg{}});
  const auto replies = control_of_type<FeaturesReplyMsg>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].datapath_id, Dpid{42});
  EXPECT_EQ(replies[0].n_tables, 4);
}

TEST_F(SwitchTest, AnswersEchoWithSamePayload) {
  send_control(OfMessage{6, EchoRequestMsg{{1, 2, 3}}});
  const auto replies = control_of_type<EchoReplyMsg>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].data, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(SwitchTest, AnswersBarrier) {
  send_control(OfMessage{7, BarrierRequestMsg{}});
  EXPECT_EQ(control_of_type<BarrierReplyMsg>().size(), 1u);
}

TEST_F(SwitchTest, TableMissRaisesPacketIn) {
  const auto bytes = sample_packet().serialize();
  device_.receive_packet(PortNo{1}, bytes);
  const auto packet_ins = control_of_type<PacketInMsg>();
  ASSERT_EQ(packet_ins.size(), 1u);
  EXPECT_EQ(packet_ins[0].in_port, PortNo{1});
  EXPECT_EQ(packet_ins[0].table_id, 0);
  EXPECT_EQ(packet_ins[0].reason, PacketInReason::kNoMatch);
  EXPECT_EQ(packet_ins[0].data, bytes);
  EXPECT_EQ(device_.counters().packet_in_events, 1u);
}

TEST_F(SwitchTest, FlowModAddThenForward) {
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.table_id = 0;
  mod.priority = 10;
  mod.instructions = Instructions::output(PortNo{2});
  send_control(OfMessage{8, mod});

  device_.receive_packet(PortNo{1}, sample_packet().serialize());
  EXPECT_EQ(port2_out_.size(), 1u);
  EXPECT_TRUE(control_of_type<PacketInMsg>().empty());
  EXPECT_EQ(device_.counters().packets_forwarded, 1u);
}

TEST_F(SwitchTest, DropRuleDiscards) {
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.instructions = Instructions::drop();
  send_control(OfMessage{9, mod});

  device_.receive_packet(PortNo{1}, sample_packet().serialize());
  EXPECT_TRUE(port1_out_.empty());
  EXPECT_TRUE(port2_out_.empty());
  EXPECT_TRUE(control_of_type<PacketInMsg>().empty());
  EXPECT_EQ(device_.counters().packets_dropped, 1u);
}

TEST_F(SwitchTest, PacketOutFlood) {
  PacketOutMsg out;
  out.in_port = PortNo{1};
  out.actions = {OutputAction{kPortFlood}};
  out.data = sample_packet().serialize();
  send_control(OfMessage{10, out});
  EXPECT_TRUE(port1_out_.empty());  // flood excludes ingress
  EXPECT_EQ(port2_out_.size(), 1u);
}

TEST_F(SwitchTest, PacketOutSpecificPort) {
  PacketOutMsg out;
  out.in_port = PortNo{2};
  out.actions = {OutputAction{PortNo{1}}};
  out.data = sample_packet().serialize();
  send_control(OfMessage{11, out});
  EXPECT_EQ(port1_out_.size(), 1u);
}

TEST_F(SwitchTest, FlowModBadTableIdErrors) {
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.table_id = 9;  // only 4 tables
  send_control(OfMessage{12, mod});
  const auto errors = control_of_type<ErrorMsg>();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].type, 5);  // FLOW_MOD_FAILED
}

TEST_F(SwitchTest, TableFullErrors) {
  for (int i = 0; i < 1025; ++i) {
    FlowModMsg mod;
    mod.command = FlowModCommand::kAdd;
    mod.priority = 1;
    mod.match.tcp_dst = static_cast<std::uint16_t>(i % 65536);
    mod.match.tcp_src = static_cast<std::uint16_t>(i / 65536 + 1);
    send_control(OfMessage{static_cast<std::uint32_t>(i), mod});
  }
  const auto errors = control_of_type<ErrorMsg>();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, 1);  // TABLE_FULL
}

TEST_F(SwitchTest, DeleteWithFlowRemovedFlag) {
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.priority = 7;
  mod.cookie = Cookie{123};
  mod.flags = 0x1;  // OFPFF_SEND_FLOW_REM
  mod.match.tcp_dst = 80;
  send_control(OfMessage{13, mod});

  FlowModMsg del;
  del.command = FlowModCommand::kDelete;
  del.table_id = 0;
  del.cookie = Cookie{123};
  del.cookie_mask = Cookie{~0ull};
  send_control(OfMessage{14, del});

  const auto removed = control_of_type<FlowRemovedMsg>();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].cookie, Cookie{123});
  EXPECT_EQ(removed[0].reason, FlowRemovedReason::kDelete);
  EXPECT_EQ(removed[0].priority, 7);
}

TEST_F(SwitchTest, DeleteAllTables) {
  for (std::uint8_t table = 0; table < 3; ++table) {
    FlowModMsg mod;
    mod.command = FlowModCommand::kAdd;
    mod.table_id = table;
    send_control(OfMessage{table, mod});
  }
  EXPECT_EQ(device_.pipeline().total_rules(), 3u);
  FlowModMsg del;
  del.command = FlowModCommand::kDelete;
  del.table_id = 0xff;  // OFPTT_ALL
  send_control(OfMessage{20, del});
  EXPECT_EQ(device_.pipeline().total_rules(), 0u);
}

TEST_F(SwitchTest, FlowStatsReplyFiltersByCookie) {
  int port = 1;
  for (std::uint64_t cookie : {1ull, 1ull, 2ull}) {
    FlowModMsg mod;
    mod.command = FlowModCommand::kAdd;
    mod.cookie = Cookie{cookie};
    mod.match.tcp_dst = static_cast<std::uint16_t>(port++);
    send_control(OfMessage{30, mod});
  }
  MultipartRequestMsg request;
  request.flow_request.table_id = 0xff;
  request.flow_request.cookie = Cookie{1};
  request.flow_request.cookie_mask = Cookie{~0ull};
  send_control(OfMessage{31, request});

  const auto replies = control_of_type<MultipartReplyMsg>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].flow_stats.size(), 2u);
  for (const auto& entry : replies[0].flow_stats) EXPECT_EQ(entry.cookie, Cookie{1});
}

TEST_F(SwitchTest, ExpireFlowsEmitsFlowRemoved) {
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.idle_timeout = 1;
  mod.flags = 0x1;
  send_control(OfMessage{40, mod});
  sim_.schedule_at(SimTime{} + seconds(5), []() {});
  sim_.run();
  device_.expire_flows();
  const auto removed = control_of_type<FlowRemovedMsg>();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].reason, FlowRemovedReason::kIdleTimeout);
}

TEST_F(SwitchTest, UnparsablePacketDropped) {
  device_.receive_packet(PortNo{1}, {0x01, 0x02});
  EXPECT_EQ(device_.counters().packets_dropped, 1u);
  EXPECT_TRUE(control_of_type<PacketInMsg>().empty());
}

TEST_F(SwitchTest, MalformedControlFrameAnswersError) {
  device_.receive_control({0x04, 0x63, 0x00, 0x08, 0, 0, 0, 1});  // unknown type 99
  const auto errors = control_of_type<ErrorMsg>();
  EXPECT_EQ(errors.size(), 1u);
}

}  // namespace
}  // namespace dfi
