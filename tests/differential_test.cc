// Differential and fuzz property tests.
//
//  * FlowTable: the hash-indexed implementation must behave exactly like a
//    naive priority-ordered scan over random operation sequences.
//  * PolicyManager: query() must agree with a brute-force reference over
//    random policy sets and flows.
//  * Wire codec: arbitrary byte blobs and bit-flipped valid frames must
//    never crash the decoder, and whatever decodes must re-encode.
#include <gtest/gtest.h>

#include <vector>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "core/policy_manager.h"
#include "openflow/flow_table.h"
#include "openflow/wire.h"

namespace dfi {
namespace {

// ------------------------------------------------- FlowTable differential

// Minimal reference implementation: ordered linear scan.
class ReferenceTable {
 public:
  void add(FlowRule rule, SimTime now) {
    rule.installed_at = now;
    for (auto& existing : rules_) {
      if (existing.priority == rule.priority && existing.match == rule.match) {
        rule.counters = existing.counters;
        rule.installed_at = existing.installed_at;
        existing = std::move(rule);
        return;
      }
    }
    rules_.push_back(std::move(rule));
  }

  std::size_t remove(const Match& match, Cookie cookie, Cookie mask) {
    const auto before = rules_.size();
    rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                                [&](const FlowRule& rule) {
                                  return (rule.cookie.value & mask.value) ==
                                             (cookie.value & mask.value) &&
                                         match.covers(rule.match);
                                }),
                 rules_.end());
    return before - rules_.size();
  }

  const FlowRule* lookup(const Packet& packet, PortNo port) const {
    const FlowRule* best = nullptr;
    for (const auto& rule : rules_) {
      if (!rule.match.matches(packet, port)) continue;
      if (best == nullptr) {
        best = &rule;
        continue;
      }
      const bool wins =
          rule.priority > best->priority ||
          (rule.priority == best->priority &&
           (rule.match.specified_fields() > best->match.specified_fields() ||
            (rule.match.specified_fields() == best->match.specified_fields() &&
             rule.installed_at < best->installed_at)));
      if (wins) best = &rule;
    }
    return best;
  }

  std::size_t size() const { return rules_.size(); }

 private:
  std::vector<FlowRule> rules_;
};

class FlowTableDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableDifferential, IndexedMatchesReference) {
  Rng rng(GetParam());
  FlowTable table(0, 1 << 16);
  ReferenceTable reference;

  const auto random_packet = [&rng]() {
    return make_tcp_packet(
        MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 4))),
        MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 4))),
        Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(1, 6))),
        Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(1, 6))),
        static_cast<std::uint16_t>(rng.uniform_int(1, 3)),
        static_cast<std::uint16_t>(rng.uniform_int(1, 3)));
  };

  std::int64_t tick = 0;
  for (int step = 0; step < 3000; ++step) {
    const SimTime now{++tick};
    const double op = rng.next_double();
    if (op < 0.45) {
      // Insert: a mix of exact rules and partial wildcards.
      FlowRule rule;
      rule.priority = static_cast<std::uint16_t>(rng.uniform_int(1, 4) * 10);
      rule.cookie = Cookie{static_cast<std::uint64_t>(rng.uniform_int(1, 5))};
      const Packet packet = random_packet();
      if (rng.chance(0.6)) {
        rule.match = Match::exact_from_packet(
            packet, PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 3))});
      } else {
        if (rng.chance(0.5)) rule.match.ipv4_dst = packet.ipv4->dst;
        if (rng.chance(0.5)) rule.match.eth_src = packet.eth.src;
        if (rng.chance(0.3)) rule.match.tcp_dst = packet.tcp->dst_port;
      }
      rule.instructions = Instructions::drop();
      FlowRule copy = rule;
      (void)table.add(std::move(rule), now);
      reference.add(std::move(copy), now);
    } else if (op < 0.6) {
      // Cookie-masked delete (the DFI flush pattern).
      const Cookie cookie{static_cast<std::uint64_t>(rng.uniform_int(1, 5))};
      const auto removed = table.remove(Match{}, cookie, Cookie{~0ull});
      const std::size_t reference_removed = reference.remove(Match{}, cookie, Cookie{~0ull});
      ASSERT_EQ(removed.size(), reference_removed);
    } else {
      // Lookup.
      const Packet packet = random_packet();
      const PortNo port{static_cast<std::uint32_t>(rng.uniform_int(1, 3))};
      FlowRule* indexed = table.lookup(packet, port, 64, now);
      const FlowRule* reference_hit = reference.lookup(packet, port);
      ASSERT_EQ(indexed != nullptr, reference_hit != nullptr) << "step " << step;
      if (indexed != nullptr) {
        ASSERT_EQ(indexed->priority, reference_hit->priority);
        ASSERT_EQ(indexed->match, reference_hit->match) << "step " << step;
      }
    }
    ASSERT_EQ(table.size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableDifferential,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull, 9999ull));

// --------------------------------------------- PolicyManager differential

class PolicyDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyDifferential, QueryMatchesBruteForce) {
  Rng rng(GetParam());
  MessageBus bus;
  PolicyManager manager(bus);

  const auto hostname = [](int i) { return Hostname{"h" + std::to_string(i)}; };
  std::vector<StoredPolicyRule> reference;
  for (int i = 0; i < 60; ++i) {
    PolicyRule rule;
    rule.action = rng.chance(0.5) ? PolicyAction::kAllow : PolicyAction::kDeny;
    if (rng.chance(0.7)) rule.source.host = hostname(static_cast<int>(rng.uniform_int(0, 5)));
    if (rng.chance(0.7)) rule.destination.host = hostname(static_cast<int>(rng.uniform_int(0, 5)));
    if (rng.chance(0.3)) rule.destination.l4_port = static_cast<std::uint16_t>(rng.uniform_int(1, 3));
    const PdpPriority priority{static_cast<std::uint32_t>(rng.uniform_int(1, 4) * 10)};
    const PolicyRuleId id = manager.insert(rule, priority, "diff");
    reference.push_back(StoredPolicyRule{id, rule, priority, "diff"});
  }

  for (int probe = 0; probe < 500; ++probe) {
    FlowView flow;
    flow.ether_type = 0x0800;
    flow.ip_proto = 6;
    flow.src.hostnames = {hostname(static_cast<int>(rng.uniform_int(0, 5)))};
    flow.dst.hostnames = {hostname(static_cast<int>(rng.uniform_int(0, 5)))};
    flow.src.l4_port = 50000;
    flow.dst.l4_port = static_cast<std::uint16_t>(rng.uniform_int(1, 3));

    // Brute force: highest priority; Deny beats Allow on ties.
    const StoredPolicyRule* best = nullptr;
    for (const auto& stored : reference) {
      if (!stored.rule.matches(flow)) continue;
      if (best == nullptr || stored.priority > best->priority ||
          (stored.priority == best->priority &&
           stored.rule.action == PolicyAction::kDeny &&
           best->rule.action == PolicyAction::kAllow)) {
        best = &stored;
      }
    }

    const PolicyDecision decision = manager.query(flow);
    if (best == nullptr) {
      ASSERT_TRUE(decision.default_deny);
    } else {
      ASSERT_FALSE(decision.default_deny);
      ASSERT_EQ(decision.action, best->rule.action) << "probe " << probe;
      // The deciding rule id may differ among equally-ranked same-action
      // rules; action equality is the contract.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyDifferential,
                         ::testing::Values(3ull, 33ull, 333ull, 3333ull));

// -------------------------------------------------------- wire codec fuzz

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, RandomBlobsNeverCrash) {
  Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 120));
    std::vector<std::uint8_t> blob(len);
    for (auto& byte : blob) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto decoded = decode(blob);  // must not crash
    if (decoded.ok()) {
      (void)encode(decoded.value());  // and re-encoding must not crash
    }
  }
}

TEST_P(WireFuzz, MutatedValidFramesNeverCrash) {
  Rng rng(GetParam() ^ 0xf00dull);
  FlowModMsg mod;
  mod.match = Match::exact_from_packet(
      make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                      Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1000, 80),
      PortNo{3});
  mod.instructions = Instructions::to_table(1);
  const auto base = encode(OfMessage{1, mod});

  for (int i = 0; i < 3000; ++i) {
    auto mutated = base;
    const int flips = static_cast<int>(rng.uniform_int(1, 6));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    // Keep the outer frame length consistent so the body parser is hit.
    mutated[2] = static_cast<std::uint8_t>(mutated.size() >> 8);
    mutated[3] = static_cast<std::uint8_t>(mutated.size());
    const auto decoded = decode(mutated);
    if (decoded.ok()) (void)encode(decoded.value());
  }
}

TEST_P(WireFuzz, StreamDecoderSurvivesGarbageInterleaving) {
  Rng rng(GetParam() ^ 0xbeefull);
  FrameDecoder decoder;
  int valid_decoded = 0;
  for (int i = 0; i < 200; ++i) {
    if (rng.chance(0.5)) {
      decoder.feed(encode(OfMessage{static_cast<std::uint32_t>(i), HelloMsg{}}));
    } else {
      const auto len = static_cast<std::size_t>(rng.uniform_int(1, 30));
      std::vector<std::uint8_t> garbage(len);
      for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      decoder.feed(garbage);
    }
    for (auto& result : decoder.drain()) {
      if (result.ok()) ++valid_decoded;
    }
  }
  // At least some valid frames decoded; no crash is the real assertion.
  EXPECT_GE(valid_decoded, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(11ull, 22ull, 33ull));

}  // namespace
}  // namespace dfi
