// Unit tests for the Policy Manager: storage, priority resolution,
// default deny, and the consistency-check flush behaviour (paper §III-B).
#include <gtest/gtest.h>

#include "bus/message_bus.h"
#include "core/policy_manager.h"

namespace dfi {
namespace {

FlowView flow_from_user(const char* user) {
  FlowView flow;
  flow.ether_type = 0x0800;
  flow.src.usernames = {Username{user}};
  flow.src.ip = Ipv4Address(10, 0, 0, 1);
  flow.dst.ip = Ipv4Address(10, 0, 0, 2);
  return flow;
}

PolicyRule allow_from(const char* user) {
  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  rule.source.user = Username{user};
  return rule;
}

PolicyRule deny_from(const char* user) {
  PolicyRule rule = allow_from(user);
  rule.action = PolicyAction::kDeny;
  return rule;
}

class PolicyManagerTest : public ::testing::Test {
 protected:
  PolicyManagerTest()
      : manager_(bus_),
        flush_sub_(bus_.subscribe<FlushDirective>(
            topics::kRuleFlush,
            [this](const FlushDirective& d) { flushes_.push_back(d.policy); })) {}

  MessageBus bus_;
  PolicyManager manager_;
  Subscription flush_sub_;
  std::vector<PolicyRuleId> flushes_;
};

TEST_F(PolicyManagerTest, DefaultDenyWhenEmpty) {
  const PolicyDecision decision = manager_.query(flow_from_user("alice"));
  EXPECT_EQ(decision.action, PolicyAction::kDeny);
  EXPECT_TRUE(decision.default_deny);
  EXPECT_EQ(decision.rule_id.value, kDefaultDenyCookie.value);
}

TEST_F(PolicyManagerTest, InsertAndQuery) {
  const PolicyRuleId id = manager_.insert(allow_from("alice"), PdpPriority{10}, "test");
  const PolicyDecision decision = manager_.query(flow_from_user("alice"));
  EXPECT_EQ(decision.action, PolicyAction::kAllow);
  EXPECT_EQ(decision.rule_id, id);
  EXPECT_FALSE(decision.default_deny);
  // Unmatched user still default-denied.
  EXPECT_TRUE(manager_.query(flow_from_user("bob")).default_deny);
}

TEST_F(PolicyManagerTest, IdsAreUniqueAndAboveReserved) {
  const PolicyRuleId a = manager_.insert(allow_from("a"), PdpPriority{1}, "t");
  const PolicyRuleId b = manager_.insert(allow_from("b"), PdpPriority{1}, "t");
  EXPECT_NE(a, b);
  EXPECT_GT(a.value, kDefaultDenyCookie.value);
  EXPECT_GT(b.value, kDefaultDenyCookie.value);
}

TEST_F(PolicyManagerTest, HigherPriorityWins) {
  manager_.insert(allow_from("alice"), PdpPriority{10}, "low");
  const PolicyRuleId deny_id =
      manager_.insert(deny_from("alice"), PdpPriority{20}, "high");
  const PolicyDecision decision = manager_.query(flow_from_user("alice"));
  EXPECT_EQ(decision.action, PolicyAction::kDeny);
  EXPECT_EQ(decision.rule_id, deny_id);
}

TEST_F(PolicyManagerTest, EqualPriorityDenyWins) {
  manager_.insert(allow_from("alice"), PdpPriority{10}, "a");
  manager_.insert(deny_from("alice"), PdpPriority{10}, "b");
  EXPECT_EQ(manager_.query(flow_from_user("alice")).action, PolicyAction::kDeny);
}

TEST_F(PolicyManagerTest, RevokeRemovesRuleAndFlushes) {
  const PolicyRuleId id = manager_.insert(deny_from("alice"), PdpPriority{10}, "t");
  flushes_.clear();
  EXPECT_TRUE(manager_.revoke(id));
  EXPECT_FALSE(manager_.revoke(id));  // double revoke is a no-op
  EXPECT_TRUE(manager_.query(flow_from_user("alice")).default_deny);
  ASSERT_EQ(flushes_.size(), 1u);
  EXPECT_EQ(flushes_[0], id);
}

TEST_F(PolicyManagerTest, ConflictingInsertFlushesLowerPriorityOpposite) {
  const PolicyRuleId allow_id =
      manager_.insert(allow_from("alice"), PdpPriority{10}, "rbac");
  flushes_.clear();

  // Higher-priority Deny overlapping the allow: the allow's cached switch
  // rules must be flushed so ongoing flows are re-evaluated.
  manager_.insert(deny_from("alice"), PdpPriority{20}, "quarantine");
  ASSERT_FALSE(flushes_.empty());
  EXPECT_NE(std::find(flushes_.begin(), flushes_.end(), allow_id), flushes_.end());
  // The conflicting rule itself stays in the database.
  EXPECT_TRUE(manager_.find(allow_id).has_value());
}

TEST_F(PolicyManagerTest, NonOverlappingInsertDoesNotFlush) {
  manager_.insert(allow_from("alice"), PdpPriority{10}, "t");
  flushes_.clear();
  manager_.insert(deny_from("bob"), PdpPriority{20}, "t");  // disjoint users
  // Only the default-deny flush may appear for Allow inserts; a Deny insert
  // of a non-overlapping rule publishes nothing.
  EXPECT_TRUE(flushes_.empty());
}

TEST_F(PolicyManagerTest, LowerPriorityConflictingInsertDoesNotFlushExisting) {
  manager_.insert(deny_from("alice"), PdpPriority{30}, "high");
  flushes_.clear();
  manager_.insert(allow_from("alice"), PdpPriority{10}, "low");
  // The existing deny outranks the new allow; its switch rules stay. Only
  // the default-deny flush (for the Allow insert) is expected.
  for (const PolicyRuleId id : flushes_) {
    EXPECT_EQ(id.value, kDefaultDenyCookie.value);
  }
}

TEST_F(PolicyManagerTest, AllowInsertFlushesDefaultDenyRules) {
  flushes_.clear();
  manager_.insert(allow_from("alice"), PdpPriority{10}, "t");
  ASSERT_EQ(flushes_.size(), 1u);
  EXPECT_EQ(flushes_[0].value, kDefaultDenyCookie.value);

  flushes_.clear();
  manager_.insert(deny_from("carol"), PdpPriority{10}, "t");
  EXPECT_TRUE(flushes_.empty());  // deny inserts don't free default-denied flows
}

TEST_F(PolicyManagerTest, SamePriorityConflictNotFlushed) {
  // Flush requires strictly lower priority (paper III-B condition 3).
  manager_.insert(allow_from("alice"), PdpPriority{10}, "a");
  flushes_.clear();
  manager_.insert(deny_from("alice"), PdpPriority{10}, "b");
  EXPECT_TRUE(flushes_.empty());
}

TEST_F(PolicyManagerTest, FindAndListRules) {
  const PolicyRuleId id = manager_.insert(allow_from("alice"), PdpPriority{10}, "pdp-x");
  const auto stored = manager_.find(id);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->pdp_name, "pdp-x");
  EXPECT_EQ(stored->priority, PdpPriority{10});
  EXPECT_EQ(manager_.rules().size(), 1u);
  EXPECT_EQ(manager_.size(), 1u);
  EXPECT_FALSE(manager_.find(PolicyRuleId{9999}).has_value());
}

TEST_F(PolicyManagerTest, StatsTrackOperations) {
  const PolicyRuleId id = manager_.insert(allow_from("a"), PdpPriority{1}, "t");
  manager_.query(flow_from_user("a"));
  manager_.revoke(id);
  EXPECT_EQ(manager_.stats().inserts, 1u);
  EXPECT_EQ(manager_.stats().queries, 1u);
  EXPECT_EQ(manager_.stats().revocations, 1u);
}

}  // namespace
}  // namespace dfi
