// Unit tests for the arena interner (common/intern.h): id stability,
// per-kind namespace isolation, rehash behavior under volume, and the
// concurrent-reader contract (exercised under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/intern.h"

namespace dfi {
namespace {

TEST(StringInterner, DenseStableIds) {
  StringInterner interner;
  const EntityId a = interner.intern("alice");
  const EntityId b = interner.intern("bob");
  EXPECT_EQ(a.value, 0u);
  EXPECT_EQ(b.value, 1u);
  // Re-interning returns the same id forever.
  EXPECT_EQ(interner.intern("alice"), a);
  EXPECT_EQ(interner.intern("bob"), b);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.view(a), "alice");
  EXPECT_EQ(interner.view(b), "bob");
}

TEST(StringInterner, FindWithoutInterning) {
  StringInterner interner;
  EXPECT_FALSE(interner.find("ghost").valid());
  const EntityId id = interner.intern("ghost");
  EXPECT_EQ(interner.find("ghost"), id);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInterner, EmptyStringIsAnEntity) {
  StringInterner interner;
  const EntityId id = interner.intern("");
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(interner.view(id), "");
  EXPECT_EQ(interner.find(""), id);
}

TEST(StringInterner, ViewsSurviveArenaAndTableGrowth) {
  StringInterner interner;
  const EntityId first = interner.intern("user0000000");
  const std::string_view first_view = interner.view(first);
  const char* first_data = first_view.data();
  // Push far past the initial 1024-slot table and across several 64KB
  // arena blocks; the first entry's character data must never move.
  for (int i = 1; i < 50000; ++i) {
    interner.intern("user" + std::to_string(i));
  }
  EXPECT_EQ(interner.view(first).data(), first_data);
  EXPECT_EQ(interner.view(first), "user0000000");
  EXPECT_EQ(interner.find("user0000000"), first);
}

TEST(StringInterner, IdsStayDenseAndDistinctAtVolume) {
  // Rehash/collision soak: 1M+ distinct strings, ids must come out 0..N-1
  // in interning order and every lookup must still land on its own id.
  constexpr std::uint32_t kCount = 1u << 20;  // 1,048,576
  StringInterner interner;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const EntityId id = interner.intern("entity-" + std::to_string(i));
    ASSERT_EQ(id.value, i);
  }
  EXPECT_EQ(interner.size(), kCount);
  // Spot-check across the range (full re-find of 1M strings is covered by
  // the interning loop above — intern() re-finds before assigning).
  for (std::uint32_t i = 0; i < kCount; i += 4097) {
    ASSERT_EQ(interner.find("entity-" + std::to_string(i)).value, i);
    ASSERT_EQ(interner.view(EntityId{i}), "entity-" + std::to_string(i));
  }
}

TEST(ValueInterner, DenseStableIdsIncludingZeroKey) {
  ValueInterner interner;
  const EntityId zero = interner.intern(0);  // 0.0.0.0 / all-zero MAC
  const EntityId one = interner.intern(1);
  EXPECT_EQ(zero.value, 0u);
  EXPECT_EQ(one.value, 1u);
  EXPECT_EQ(interner.intern(0), zero);
  EXPECT_EQ(interner.key(zero), 0u);
  EXPECT_EQ(interner.key(one), 1u);
  EXPECT_FALSE(interner.find(2).valid());
}

TEST(ValueInterner, VolumeRehash) {
  constexpr std::uint32_t kCount = 1u << 18;
  ValueInterner interner;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(interner.intern(0xa0000000ull + i).value, i);
  }
  for (std::uint32_t i = 0; i < kCount; i += 1009) {
    ASSERT_EQ(interner.find(0xa0000000ull + i).value, i);
    ASSERT_EQ(interner.key(EntityId{i}), 0xa0000000ull + i);
  }
}

TEST(EntityInterner, NamespacesAreIsolated) {
  EntityInterner interner;
  const EntityId user = interner.users().intern("alice");
  const EntityId host = interner.hosts().intern("alice");
  // Same spelling, unrelated namespaces: both get id 0 of their own kind.
  EXPECT_EQ(user.value, 0u);
  EXPECT_EQ(host.value, 0u);
  interner.users().intern("bob");
  EXPECT_EQ(interner.users().size(), 2u);
  EXPECT_EQ(interner.hosts().size(), 1u);
  // IP and MAC namespaces are independent of each other too.
  EXPECT_EQ(interner.ips().intern(42).value, 0u);
  EXPECT_EQ(interner.macs().intern(42).value, 0u);
}

TEST(StringInterner, ReaderCaptureMissesOnlyNewerEntries) {
  StringInterner interner;
  const EntityId early = interner.intern("early");
  const StringInterner::Reader reader = interner.reader();
  interner.intern("late");
  EXPECT_EQ(reader.find("early"), early);
  // "late" may or may not be visible through an old capture in general;
  // with no growth in between it is, but the contract only promises
  // entries interned before the capture. Assert just the guaranteed part.
  EXPECT_TRUE(interner.find("late").valid());
}

TEST(StringInterner, DefaultReaderFindsNothing) {
  StringInterner::Reader reader;
  EXPECT_FALSE(reader.find("anything").valid());
}

// Single-writer / multi-reader soak (the TSan target): readers resolve
// through captures and view() while the writer keeps interning — across
// table growth — and every answer a reader gets must be correct.
TEST(StringInterner, ConcurrentReadersDuringGrowth) {
  constexpr std::uint32_t kPrefill = 2000;
  constexpr std::uint32_t kTotal = 60000;
  StringInterner interner;
  for (std::uint32_t i = 0; i < kPrefill; ++i) {
    interner.intern("name-" + std::to_string(i));
  }
  const StringInterner::Reader capture = interner.reader();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      std::uint32_t i = static_cast<std::uint32_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        const std::string name = "name-" + std::to_string(i % kPrefill);
        const EntityId id = capture.find(name);
        EXPECT_TRUE(id.valid());
        EXPECT_EQ(interner.view(id), name);
        ++i;
      }
    });
  }
  for (std::uint32_t i = kPrefill; i < kTotal; ++i) {
    interner.intern("name-" + std::to_string(i));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(interner.size(), kTotal);
}

}  // namespace
}  // namespace dfi
