// Unit tests for the DFI Proxy: table-id shifting in both directions,
// Table-0 concealment, and packet-in interposition (paper Section IV-B).
#include <gtest/gtest.h>

#include "bus/message_bus.h"
#include "core/proxy.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest()
      : erm_(bus_),
        manager_(bus_),
        pcp_(sim_, bus_, erm_, manager_, zero_latency_pcp(), Rng(1)),
        proxy_(sim_, pcp_, ProxyConfig{0, 0, true}, Rng(2)),
        session_(proxy_.create_session(
            [this](const std::vector<std::uint8_t>& bytes) { collect(bytes, to_switch_); },
            [this](const std::vector<std::uint8_t>& bytes) {
              collect(bytes, to_controller_);
            })) {}

  static PcpConfig zero_latency_pcp() {
    PcpConfig config;
    config.zero_latency = true;
    return config;
  }

  void collect(const std::vector<std::uint8_t>& bytes, std::vector<OfMessage>& sink) {
    FrameDecoder decoder;
    decoder.feed(bytes);
    for (auto& result : decoder.drain()) {
      ASSERT_TRUE(result.ok());
      sink.push_back(std::move(result).value());
    }
  }

  void complete_handshake(std::uint8_t n_tables = 4) {
    FeaturesReplyMsg features;
    features.datapath_id = Dpid{9};
    features.n_tables = n_tables;
    session_.from_switch(encode(OfMessage{1, features}));
    sim_.run();
  }

  PacketInMsg table0_miss() {
    PacketInMsg msg;
    msg.table_id = 0;
    msg.in_port = PortNo{3};
    msg.data = make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                               Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                               1000, 80)
                   .serialize();
    return msg;
  }

  template <typename T>
  std::vector<T> of_type(const std::vector<OfMessage>& sink) const {
    std::vector<T> out;
    for (const auto& message : sink) {
      if (const T* typed = std::get_if<T>(&message.payload)) out.push_back(*typed);
    }
    return out;
  }

  Simulator sim_;
  MessageBus bus_;
  EntityResolutionManager erm_;
  PolicyManager manager_;
  PolicyCompilationPoint pcp_;
  DfiProxy proxy_;
  DfiProxy::Session& session_;
  std::vector<OfMessage> to_switch_;
  std::vector<OfMessage> to_controller_;
};

TEST_F(ProxyTest, FeaturesReplyHidesDfiTable) {
  complete_handshake(4);
  const auto features = of_type<FeaturesReplyMsg>(to_controller_);
  ASSERT_EQ(features.size(), 1u);
  EXPECT_EQ(features[0].n_tables, 3);  // one table hidden
  EXPECT_EQ(session_.dpid(), Dpid{9});
}

TEST_F(ProxyTest, ControllerFlowModShiftedUp) {
  complete_handshake();
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.table_id = 0;  // controller's first table
  mod.instructions = Instructions::to_table(1);
  session_.from_controller(encode(OfMessage{5, mod}));
  sim_.run();

  const auto mods = of_type<FlowModMsg>(to_switch_);
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].table_id, 1);                 // shifted +1
  EXPECT_EQ(mods[0].instructions.goto_table, 2);  // goto shifted too
}

TEST_F(ProxyTest, ControllerCannotAddressBeyondShiftedRange) {
  complete_handshake(4);  // controller sees 3 tables: valid ids 0..2
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.table_id = 3;  // would land on switch table 4 — out of range
  session_.from_controller(encode(OfMessage{6, mod}));
  sim_.run();
  EXPECT_TRUE(of_type<FlowModMsg>(to_switch_).empty());
  const auto errors = of_type<ErrorMsg>(to_controller_);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, 2);  // BAD_TABLE_ID
}

TEST_F(ProxyTest, DeleteAllExpandsToControllerTablesOnly) {
  complete_handshake(4);
  FlowModMsg del;
  del.command = FlowModCommand::kDelete;
  del.table_id = 0xff;
  session_.from_controller(encode(OfMessage{7, del}));
  sim_.run();
  const auto mods = of_type<FlowModMsg>(to_switch_);
  ASSERT_EQ(mods.size(), 3u);  // tables 1, 2, 3 — never table 0
  for (std::size_t i = 0; i < mods.size(); ++i) {
    EXPECT_EQ(mods[i].table_id, i + 1);
    EXPECT_NE(mods[i].table_id, 0);
  }
}

TEST_F(ProxyTest, AddToAllTablesRejected) {
  complete_handshake();
  FlowModMsg mod;
  mod.command = FlowModCommand::kAdd;
  mod.table_id = 0xff;
  session_.from_controller(encode(OfMessage{8, mod}));
  sim_.run();
  EXPECT_TRUE(of_type<FlowModMsg>(to_switch_).empty());
  EXPECT_EQ(of_type<ErrorMsg>(to_controller_).size(), 1u);
}

TEST_F(ProxyTest, Table0PacketInGoesToPcpDeniedSuppressed) {
  complete_handshake();
  // Default deny: the controller must never see this packet.
  session_.from_switch(encode(OfMessage{9, table0_miss()}));
  sim_.run();
  EXPECT_TRUE(of_type<PacketInMsg>(to_controller_).empty());
  // But the deny rule was installed in the switch.
  const auto mods = of_type<FlowModMsg>(to_switch_);
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].table_id, 0);
  EXPECT_TRUE(mods[0].instructions.apply_actions.empty());
  EXPECT_EQ(proxy_.stats().packet_ins_suppressed, 1u);
}

TEST_F(ProxyTest, Table0PacketInAllowedForwardedToController) {
  complete_handshake();
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  manager_.insert(allow, PdpPriority{5}, "t");

  session_.from_switch(encode(OfMessage{10, table0_miss()}));
  sim_.run();
  const auto packet_ins = of_type<PacketInMsg>(to_controller_);
  ASSERT_EQ(packet_ins.size(), 1u);
  EXPECT_EQ(packet_ins[0].table_id, 0);  // controller-view table id
  // Allow rule (goto table 1) installed. (The Allow policy insert also
  // produced a default-deny flush DELETE; look at ADDs only.)
  std::vector<FlowModMsg> mods;
  for (const auto& mod : of_type<FlowModMsg>(to_switch_)) {
    if (mod.command == FlowModCommand::kAdd) mods.push_back(mod);
  }
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].instructions.goto_table, 1);
  EXPECT_EQ(proxy_.stats().packet_ins_forwarded, 1u);
}

TEST_F(ProxyTest, LaterTablePacketInBypassesPcpAndShiftsDown) {
  complete_handshake();
  PacketInMsg msg = table0_miss();
  msg.table_id = 2;  // miss in a controller table
  session_.from_switch(encode(OfMessage{11, msg}));
  sim_.run();
  const auto packet_ins = of_type<PacketInMsg>(to_controller_);
  ASSERT_EQ(packet_ins.size(), 1u);
  EXPECT_EQ(packet_ins[0].table_id, 1);  // decremented
  EXPECT_TRUE(of_type<FlowModMsg>(to_switch_).empty());  // no DFI decision
}

TEST_F(ProxyTest, PacketInBeforeHandshakeDropped) {
  session_.from_switch(encode(OfMessage{12, table0_miss()}));
  sim_.run();
  EXPECT_TRUE(to_controller_.empty());
  EXPECT_EQ(proxy_.stats().packet_ins_suppressed, 1u);
}

TEST_F(ProxyTest, FlowRemovedTable0Swallowed) {
  complete_handshake();
  FlowRemovedMsg removed;
  removed.table_id = 0;
  session_.from_switch(encode(OfMessage{13, removed}));
  sim_.run();
  EXPECT_TRUE(of_type<FlowRemovedMsg>(to_controller_).empty());

  removed.table_id = 2;
  session_.from_switch(encode(OfMessage{14, removed}));
  sim_.run();
  const auto forwarded = of_type<FlowRemovedMsg>(to_controller_);
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0].table_id, 1);
}

TEST_F(ProxyTest, FlowStatsHideTable0AndShiftRest) {
  complete_handshake();
  MultipartReplyMsg reply;
  FlowStatsEntry dfi_entry;
  dfi_entry.table_id = 0;
  FlowStatsEntry ctrl_entry;
  ctrl_entry.table_id = 1;
  ctrl_entry.instructions.goto_table = 2;
  reply.flow_stats = {dfi_entry, ctrl_entry};
  session_.from_switch(encode(OfMessage{15, reply}));
  sim_.run();

  const auto replies = of_type<MultipartReplyMsg>(to_controller_);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].flow_stats.size(), 1u);  // DFI row hidden
  EXPECT_EQ(replies[0].flow_stats[0].table_id, 0);
  EXPECT_EQ(replies[0].flow_stats[0].instructions.goto_table, 1);
  EXPECT_EQ(proxy_.stats().stats_entries_hidden, 1u);
}

TEST_F(ProxyTest, FlowStatsRequestShifted) {
  complete_handshake();
  MultipartRequestMsg request;
  request.flow_request.table_id = 1;
  session_.from_controller(encode(OfMessage{16, request}));
  sim_.run();
  const auto requests = of_type<MultipartRequestMsg>(to_switch_);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].flow_request.table_id, 2);

  // OFPTT_ALL passes through (the reply is filtered instead).
  to_switch_.clear();
  request.flow_request.table_id = 0xff;
  session_.from_controller(encode(OfMessage{17, request}));
  sim_.run();
  EXPECT_EQ(of_type<MultipartRequestMsg>(to_switch_)[0].flow_request.table_id, 0xff);
}

TEST_F(ProxyTest, EchoAndPacketOutPassThrough) {
  complete_handshake();
  session_.from_controller(encode(OfMessage{18, EchoRequestMsg{{1}}}));
  PacketOutMsg out;
  out.actions = {OutputAction{kPortFlood}};
  session_.from_controller(encode(OfMessage{19, out}));
  sim_.run();
  EXPECT_EQ(of_type<EchoRequestMsg>(to_switch_).size(), 1u);
  EXPECT_EQ(of_type<PacketOutMsg>(to_switch_).size(), 1u);

  session_.from_switch(encode(OfMessage{20, EchoReplyMsg{{1}}}));
  sim_.run();
  EXPECT_EQ(of_type<EchoReplyMsg>(to_controller_).size(), 1u);
}

TEST_F(ProxyTest, MalformedFramesCountedNotFatal) {
  complete_handshake();
  session_.from_switch({0x04, 0x63, 0x00, 0x08, 0, 0, 0, 1});  // unknown type
  sim_.run();
  EXPECT_EQ(proxy_.stats().malformed, 1u);
  // Session still functional.
  session_.from_switch(encode(OfMessage{21, EchoReplyMsg{{}}}));
  sim_.run();
  EXPECT_EQ(of_type<EchoReplyMsg>(to_controller_).size(), 1u);
}

// Property: whatever the controller sends, no FLOW_MOD addressing Table 0
// ever reaches the switch; whatever the switch sends, no message revealing
// Table 0 ever reaches the controller.
TEST_F(ProxyTest, Table0IsolationInvariantUnderRandomTraffic) {
  complete_handshake(4);
  Rng rng(0x150);

  for (int i = 0; i < 400; ++i) {
    if (rng.chance(0.5)) {
      // Random controller flow-mod at a random (possibly invalid) table.
      FlowModMsg mod;
      mod.command = rng.chance(0.7) ? FlowModCommand::kAdd : FlowModCommand::kDelete;
      const std::int64_t table = rng.uniform_int(0, 5);
      mod.table_id = table == 5 ? 0xff : static_cast<std::uint8_t>(table);
      if (rng.chance(0.5)) {
        mod.instructions.goto_table = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
      }
      mod.priority = static_cast<std::uint16_t>(rng.uniform_int(0, 1000));
      session_.from_controller(encode(OfMessage{static_cast<std::uint32_t>(i), mod}));
    } else {
      // Random switch-side report touching a random table.
      const auto table = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
      if (rng.chance(0.5)) {
        FlowRemovedMsg removed;
        removed.table_id = table;
        session_.from_switch(encode(OfMessage{static_cast<std::uint32_t>(i), removed}));
      } else {
        MultipartReplyMsg reply;
        FlowStatsEntry entry;
        entry.table_id = table;
        if (rng.chance(0.5)) entry.instructions.goto_table = static_cast<std::uint8_t>(table + 1);
        reply.flow_stats.push_back(entry);
        session_.from_switch(encode(OfMessage{static_cast<std::uint32_t>(i), reply}));
      }
    }
  }
  sim_.run();

  for (const auto& message : to_switch_) {
    if (const auto* mod = std::get_if<FlowModMsg>(&message.payload)) {
      EXPECT_NE(mod->table_id, 0) << "controller flow-mod reached DFI's table";
      EXPECT_NE(mod->table_id, 0xff) << "unexpanded OFPTT_ALL reached the switch";
      if (mod->instructions.goto_table.has_value()) {
        EXPECT_GE(*mod->instructions.goto_table, 1);
      }
    }
  }
  for (const auto& message : to_controller_) {
    if (const auto* removed = std::get_if<FlowRemovedMsg>(&message.payload)) {
      // Shifted view: the controller only ever sees its own tables 0..2,
      // and what it sees as 0 is really switch table 1.
      EXPECT_LE(removed->table_id, 2);
    }
    if (const auto* reply = std::get_if<MultipartReplyMsg>(&message.payload)) {
      for (const auto& entry : reply->flow_stats) {
        EXPECT_LE(entry.table_id, 2);
      }
    }
  }
}

// ---------------------------------------------------- teardown regressions
//
// Pinned regressions for the session-teardown use-after-free the invariant
// fuzzer surfaced (tests/fuzz_invariants_test.cc, FuzzRegression seed 3301):
// a session destroyed while a Packet-in decision is still in flight must
// drop the decision's deferred deliveries instead of writing through freed
// session state. The Session's liveness token (proxy.cc) is what these pin.

TEST_F(ProxyTest, SessionTornDownWithPacketInInFlight) {
  complete_handshake();
  session_.from_switch(encode(OfMessage{7, table0_miss()}));
  // The PCP decision and its deliveries are queued in the simulator; tear
  // the session down before any of them run.
  const std::size_t switch_msgs = to_switch_.size();
  const std::size_t controller_msgs = to_controller_.size();
  proxy_.destroy_session(session_);
  EXPECT_EQ(proxy_.session_count(), 0u);
  sim_.run();  // pre-fix: wrote through the freed Session (ASan heap-UAF)
  EXPECT_EQ(to_switch_.size(), switch_msgs);
  EXPECT_EQ(to_controller_.size(), controller_msgs);
}

TEST(ProxyTeardown, ThreadedDecisionsInFlightAtDestroy) {
  Simulator sim;
  MessageBus bus;
  EntityResolutionManager erm(bus);
  PolicyManager manager(bus);
  PcpConfig config;
  config.zero_latency = true;
  config.backend = PcpBackend::kThreads;
  config.shards = 2;
  PolicyCompilationPoint pcp(sim, bus, erm, manager, config, Rng(1));
  DfiProxy proxy(sim, pcp, ProxyConfig{0, 0, true}, Rng(2));

  std::size_t switch_bytes = 0;
  std::size_t controller_bytes = 0;
  auto& session = proxy.create_session(
      [&switch_bytes](const std::vector<std::uint8_t>& b) {
        switch_bytes += b.size();
      },
      [&controller_bytes](const std::vector<std::uint8_t>& b) {
        controller_bytes += b.size();
      });
  FeaturesReplyMsg features;
  features.datapath_id = Dpid{9};
  features.n_tables = 4;
  session.from_switch(encode(OfMessage{1, features}));
  sim.run();

  // A burst of distinct table-0 misses, all handed to shard workers, then
  // teardown before a single completion is applied.
  for (std::uint16_t i = 0; i < 8; ++i) {
    PacketInMsg msg;
    msg.table_id = 0;
    msg.in_port = PortNo{3};
    msg.data = make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                               Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                               1000, static_cast<std::uint16_t>(80 + i))
                   .serialize();
    session.from_switch(encode(OfMessage{static_cast<std::uint32_t>(10 + i), msg}));
  }
  const std::size_t switch_before = switch_bytes;
  const std::size_t controller_before = controller_bytes;
  proxy.destroy_session(session);
  EXPECT_EQ(proxy.session_count(), 0u);
  // Completions apply here against the destroyed session: every delivery
  // must hit the dead liveness token and drop.
  pcp.wait_idle();
  sim.run();
  EXPECT_EQ(switch_bytes, switch_before);
  EXPECT_EQ(controller_bytes, controller_before);
}

TEST_F(ProxyTest, FastPathCountersClassifyTraffic) {
  complete_handshake();  // FEATURES_REPLY itself needs the decode path
  const auto decoded_baseline = proxy_.stats().frames_decoded;

  // Echo: canonical pass-through, forwarded without decode.
  session_.from_switch(encode(OfMessage{10, EchoRequestMsg{{0xaa}}}));
  // Packet-in from a controller table: patched in place.
  PacketInMsg packet_in;
  packet_in.table_id = 2;
  packet_in.in_port = PortNo{1};
  packet_in.data = {1, 2, 3};
  session_.from_switch(encode(OfMessage{11, packet_in}));
  // Flow-mod from the controller: patched in place, counted as shifted.
  FlowModMsg mod;
  mod.table_id = 1;
  mod.match.in_port = PortNo{1};
  mod.instructions = Instructions::output(PortNo{2});
  session_.from_controller(encode(OfMessage{12, mod}));
  sim_.run();

  const ProxyStats& stats = proxy_.stats();
  EXPECT_EQ(stats.frames_fast_path, 1u);
  EXPECT_EQ(stats.frames_patched, 2u);
  EXPECT_EQ(stats.frames_decoded, decoded_baseline);
  EXPECT_EQ(stats.flow_mods_shifted, 1u);

  // The patched bytes decoded back out with shifted table ids.
  const auto packet_ins = of_type<PacketInMsg>(to_controller_);
  ASSERT_EQ(packet_ins.size(), 1u);
  EXPECT_EQ(packet_ins[0].table_id, 1);
  const auto mods = of_type<FlowModMsg>(to_switch_);
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].table_id, 2);
}

TEST_F(ProxyTest, SteadyStateForwardingReusesPooledBuffers) {
  complete_handshake();
  // Warm the pool, then verify a long pass-through burst allocates nothing.
  for (int i = 0; i < 4; ++i) {
    session_.from_switch(encode(OfMessage{static_cast<std::uint32_t>(i),
                                          EchoRequestMsg{{0x55}}}));
    sim_.run();
  }
  const auto warm = proxy_.buffer_pool().stats();
  for (int i = 0; i < 200; ++i) {
    session_.from_switch(encode(OfMessage{static_cast<std::uint32_t>(100 + i),
                                          EchoRequestMsg{{0x55}}}));
    sim_.run();
  }
  const auto stats = proxy_.buffer_pool().stats();
  EXPECT_EQ(stats.allocations, warm.allocations);
  EXPECT_EQ(stats.reuses, warm.reuses + 200);
  EXPECT_GT(proxy_.stats().pool_hit_rate(), 0.5);
}

}  // namespace
}  // namespace dfi
