// Tests for the wildcard rule-caching extension (core/rule_cache.h):
// safe generalization, safety-gate fallbacks, PCP integration, and
// binding-invalidation flushing.
#include <gtest/gtest.h>

#include "bus/message_bus.h"
#include "core/pcp.h"
#include "core/rule_cache.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

FlowView tcp_flow(Ipv4Address src, Ipv4Address dst, std::uint16_t dst_port,
                  const char* src_host = nullptr) {
  FlowView flow;
  flow.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  flow.ip_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  flow.src.ip = src;
  flow.src.l4_port = 50000;
  flow.dst.ip = dst;
  flow.dst.l4_port = dst_port;
  if (src_host != nullptr) flow.src.hostnames = {Hostname{src_host}};
  return flow;
}

class RuleCacheTest : public ::testing::Test {
 protected:
  RuleCacheTest() : manager_(bus_) {}

  PolicyDecision decide(const FlowView& flow) { return manager_.query(flow); }

  MessageBus bus_;
  PolicyManager manager_;
};

TEST_F(RuleCacheTest, IpPolicyGeneralizesToIpPair) {
  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  rule.source.ip = Ipv4Address(10, 0, 0, 1);
  rule.destination.ip = Ipv4Address(10, 0, 0, 2);
  manager_.insert(rule, PdpPriority{10}, "t");

  const FlowView flow = tcp_flow(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 80);
  const auto cached = compile_wildcard(manager_, decide(flow), flow);
  ASSERT_TRUE(cached.has_value());
  EXPECT_FALSE(cached->identity_derived);
  EXPECT_EQ(cached->match.ipv4_src, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(cached->match.ipv4_dst, Ipv4Address(10, 0, 0, 2));
  // Ports stay wildcarded: the one rule covers every flow between the pair.
  EXPECT_FALSE(cached->match.tcp_src.has_value());
  EXPECT_FALSE(cached->match.tcp_dst.has_value());
  // Covers another flow between the same endpoints, other ports.
  const Packet probe =
      make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                      Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 61000, 22);
  EXPECT_TRUE(cached->match.matches(probe, PortNo{4}));
}

TEST_F(RuleCacheTest, IdentityPolicyNarrowsToObservedIp) {
  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  rule.source.host = Hostname{"h1"};
  manager_.insert(rule, PdpPriority{10}, "t");

  FlowView flow = tcp_flow(Ipv4Address(10, 0, 0, 7), Ipv4Address(10, 0, 0, 9), 445, "h1");
  const auto cached = compile_wildcard(manager_, decide(flow), flow);
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->identity_derived);
  EXPECT_EQ(cached->match.ipv4_src, Ipv4Address(10, 0, 0, 7));
  EXPECT_FALSE(cached->match.ipv4_dst.has_value());
}

TEST_F(RuleCacheTest, PortScopedPolicyPinsProtoAndPort) {
  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  rule.destination.l4_port = 445;
  manager_.insert(rule, PdpPriority{10}, "t");

  const FlowView flow = tcp_flow(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 445);
  const auto cached = compile_wildcard(manager_, decide(flow), flow);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->match.ip_proto, static_cast<std::uint8_t>(IpProto::kTcp));
  EXPECT_EQ(cached->match.tcp_dst, 445);
  EXPECT_FALSE(cached->match.ipv4_src.has_value());
}

TEST_F(RuleCacheTest, DefaultDenyNeverCached) {
  const FlowView flow = tcp_flow(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 80);
  EXPECT_FALSE(compile_wildcard(manager_, decide(flow), flow).has_value());
}

TEST_F(RuleCacheTest, OverlappingHigherPriorityOppositeRuleFallsBack) {
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  allow.source.ip = Ipv4Address(10, 0, 0, 1);
  manager_.insert(allow, PdpPriority{10}, "t");

  // Higher-priority deny scoped to one destination port overlaps the allow.
  PolicyRule deny;
  deny.action = PolicyAction::kDeny;
  deny.source.ip = Ipv4Address(10, 0, 0, 1);
  deny.destination.l4_port = 22;
  manager_.insert(deny, PdpPriority{20}, "t");

  // A port-80 flow is allowed, but the generalization (all ports between
  // the pair) would cover the denied port 22 — must fall back.
  const FlowView flow = tcp_flow(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 80);
  const PolicyDecision decision = decide(flow);
  EXPECT_EQ(decision.action, PolicyAction::kAllow);
  EXPECT_FALSE(compile_wildcard(manager_, decision, flow).has_value());
}

TEST_F(RuleCacheTest, EqualPriorityConflictAlsoFallsBack) {
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  allow.source.ip = Ipv4Address(10, 0, 0, 1);
  manager_.insert(allow, PdpPriority{10}, "a");
  PolicyRule deny;
  deny.action = PolicyAction::kDeny;
  deny.destination.l4_port = 22;
  manager_.insert(deny, PdpPriority{10}, "b");

  const FlowView flow = tcp_flow(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 80);
  EXPECT_FALSE(compile_wildcard(manager_, decide(flow), flow).has_value());
}

TEST_F(RuleCacheTest, DestinationSwitchPortFallsBack) {
  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  rule.destination.switch_port = PortNo{3};
  manager_.insert(rule, PdpPriority{10}, "t");

  FlowView flow = tcp_flow(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 80);
  flow.dst.switch_port = PortNo{3};
  EXPECT_FALSE(compile_wildcard(manager_, decide(flow), flow).has_value());
}

TEST_F(RuleCacheTest, DenyPolicyCachesToo) {
  PolicyRule deny;
  deny.action = PolicyAction::kDeny;
  deny.source.ip = Ipv4Address(10, 0, 0, 66);
  manager_.insert(deny, PdpPriority{10}, "t");

  const FlowView flow = tcp_flow(Ipv4Address(10, 0, 0, 66), Ipv4Address(2, 2, 2, 2), 80);
  const auto cached = compile_wildcard(manager_, decide(flow), flow);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->match.ipv4_src, Ipv4Address(10, 0, 0, 66));
}

// ------------------------------------------------------ PCP integration

class CachingPcpTest : public ::testing::Test {
 protected:
  CachingPcpTest()
      : erm_(bus_), manager_(bus_),
        pcp_(sim_, bus_, erm_, manager_, caching_config(), Rng(1)) {
    pcp_.register_switch(Dpid{1}, [this](const OfMessage& message) {
      if (const auto* mod = std::get_if<FlowModMsg>(&message.payload)) {
        if (mod->command == FlowModCommand::kAdd) adds_.push_back(*mod);
        if (mod->command == FlowModCommand::kDelete) deletes_.push_back(*mod);
      }
    });
  }

  static PcpConfig caching_config() {
    PcpConfig config;
    config.zero_latency = true;
    config.wildcard_caching = true;
    return config;
  }

  PacketInMsg packet_in(std::uint16_t src_port, std::uint16_t dst_port) {
    PacketInMsg msg;
    msg.in_port = PortNo{5};
    msg.data = make_tcp_packet(MacAddress::from_u64(0xa), MacAddress::from_u64(0xb),
                               Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                               src_port, dst_port)
                   .serialize();
    return msg;
  }

  Simulator sim_;
  MessageBus bus_;
  EntityResolutionManager erm_;
  PolicyManager manager_;
  PolicyCompilationPoint pcp_;
  std::vector<FlowModMsg> adds_;
  std::vector<FlowModMsg> deletes_;
};

TEST_F(CachingPcpTest, InstallsWildcardRuleForIpPolicy) {
  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  rule.source.ip = Ipv4Address(10, 0, 0, 1);
  rule.destination.ip = Ipv4Address(10, 0, 0, 2);
  const PolicyRuleId id = manager_.insert(rule, PdpPriority{10}, "t");

  const PcpDecision decision = pcp_.decide(Dpid{1}, packet_in(50000, 80));
  EXPECT_TRUE(decision.allow);
  ASSERT_EQ(adds_.size(), 1u);
  EXPECT_EQ(adds_[0].cookie.value, id.value);
  EXPECT_FALSE(adds_[0].match.tcp_dst.has_value());  // generalized over ports
  EXPECT_EQ(pcp_.stats().wildcard_rules_installed, 1u);
}

TEST_F(CachingPcpTest, DefaultDenyStillExactMatch) {
  pcp_.decide(Dpid{1}, packet_in(50000, 80));
  ASSERT_EQ(adds_.size(), 1u);
  EXPECT_GE(adds_[0].match.specified_fields(), 9);  // exact fallback
  EXPECT_EQ(pcp_.stats().wildcard_fallbacks, 1u);
}

TEST_F(CachingPcpTest, IdentityCacheFlushedOnBindingRetraction) {
  // Bind host h1 to the source IP, with a policy naming h1.
  BindingEvent host_ip;
  host_ip.kind = BindingKind::kHostIp;
  host_ip.host = Hostname{"h1"};
  host_ip.ip = Ipv4Address(10, 0, 0, 1);
  erm_.apply(host_ip);

  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  rule.source.host = Hostname{"h1"};
  const PolicyRuleId id = manager_.insert(rule, PdpPriority{10}, "t");

  const PcpDecision decision = pcp_.decide(Dpid{1}, packet_in(50000, 80));
  ASSERT_TRUE(decision.allow);
  EXPECT_EQ(pcp_.stats().wildcard_rules_installed, 1u);

  // Retract the binding: the identity-derived cached rule must be flushed.
  deletes_.clear();
  BindingEvent retraction = host_ip;
  retraction.retracted = true;
  bus_.publish(topics::kErmBindings, retraction);
  ASSERT_FALSE(deletes_.empty());
  EXPECT_EQ(deletes_[0].cookie.value, id.value);
  EXPECT_EQ(pcp_.stats().binding_invalidations, 1u);
}

TEST_F(CachingPcpTest, DecisionsIdenticalWithAndWithoutCaching) {
  // Differential property: for a grid of flows under a mixed policy set,
  // the decision (allow/deny + deciding rule) is identical whether or not
  // wildcard caching is enabled — caching changes the installed match,
  // never the decision.
  PolicyRule allow_pair;
  allow_pair.action = PolicyAction::kAllow;
  allow_pair.source.ip = Ipv4Address(10, 0, 0, 1);
  allow_pair.destination.ip = Ipv4Address(10, 0, 0, 2);
  manager_.insert(allow_pair, PdpPriority{10}, "t");
  PolicyRule deny_ssh;
  deny_ssh.action = PolicyAction::kDeny;
  deny_ssh.destination.l4_port = 22;
  manager_.insert(deny_ssh, PdpPriority{20}, "t");

  PcpConfig exact_config;
  exact_config.zero_latency = true;
  PolicyCompilationPoint exact_pcp(sim_, bus_, erm_, manager_, exact_config, Rng(2));
  exact_pcp.register_switch(Dpid{1}, [](const OfMessage&) {});

  for (std::uint16_t dst_port : {22, 80, 443, 445}) {
    for (std::uint16_t src_port : {50000, 50001}) {
      const PcpDecision cached = pcp_.decide(Dpid{1}, packet_in(src_port, dst_port));
      const PcpDecision exact = exact_pcp.decide(Dpid{1}, packet_in(src_port, dst_port));
      EXPECT_EQ(cached.allow, exact.allow) << dst_port;
      EXPECT_EQ(cached.policy.rule_id, exact.policy.rule_id) << dst_port;
    }
  }
}

}  // namespace
}  // namespace dfi
