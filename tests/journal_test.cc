// Tests for the durable write-ahead journal (core/journal.h): framing,
// torn-tail recovery, crash-during-append semantics, snapshot+compaction
// atomicity, and exact id/epoch restoration.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "core/health_monitor.h"
#include "core/journal.h"
#include "core/persistence.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

PolicyRule make_rule(std::uint8_t octet, PolicyAction action) {
  PolicyRule rule;
  rule.action = action;
  rule.properties.ether_type = 0x0800;
  rule.source.ip = Ipv4Address(10, 0, 0, octet);
  rule.source.user = Username{"user" + std::to_string(octet)};
  rule.destination.l4_port = static_cast<std::uint16_t>(1000 + octet);
  return rule;
}

BindingEvent make_binding(BindingKind kind, std::uint8_t octet) {
  BindingEvent event;
  event.kind = kind;
  event.user = Username{"user" + std::to_string(octet)};
  event.host = Hostname{"host" + std::to_string(octet)};
  event.ip = Ipv4Address(10, 0, 0, octet);
  event.mac = MacAddress::from_u64(0xa000 + octet);
  event.dpid = Dpid{1};
  event.port = PortNo{octet};
  return event;
}

// A journaled control-plane store: bus + managers wired to one journal.
struct Plane {
  explicit Plane(Journal* journal = nullptr)
      : manager(bus), erm(bus) {
    if (journal != nullptr) {
      manager.attach_journal(journal);
      erm.attach_journal(journal);
    }
  }

  // Byte-exact logical state, for oracle comparison.
  std::string image() const { return save_policies(manager) + "=== " + save_bindings(erm); }

  MessageBus bus;
  PolicyManager manager;
  EntityResolutionManager erm;
};

// Apply a fixed op script; `upto` limits how many ops run (for prefix
// oracles). Returns the number of ops in the script.
std::size_t run_script(Plane& plane, std::size_t upto = SIZE_MAX) {
  std::size_t op = 0;
  std::vector<PolicyRuleId> ids;
  const auto step = [&](auto&& fn) {
    if (op < upto) fn();
    ++op;
  };
  step([&] { ids.push_back(plane.manager.insert(make_rule(1, PolicyAction::kAllow), PdpPriority{10}, "pdp-a")); });
  step([&] { plane.erm.apply(make_binding(BindingKind::kUserHost, 1)); });
  step([&] { ids.push_back(plane.manager.insert(make_rule(2, PolicyAction::kDeny), PdpPriority{20}, "pdp-b")); });
  step([&] { plane.erm.apply(make_binding(BindingKind::kHostIp, 1)); });
  step([&] { ids.push_back(plane.manager.insert(make_rule(3, PolicyAction::kAllow), PdpPriority{20}, "pdp-b")); });
  step([&] {
    if (ids.size() > 1) plane.manager.revoke(ids[1]);
  });
  step([&] { plane.erm.apply(make_binding(BindingKind::kIpMac, 2)); });
  step([&] {
    BindingEvent retract = make_binding(BindingKind::kUserHost, 1);
    retract.retracted = true;
    plane.erm.apply(retract);
  });
  step([&] { ids.push_back(plane.manager.insert(make_rule(4, PolicyAction::kDeny), PdpPriority{5}, "pdp-c")); });
  step([&] { plane.erm.apply(make_binding(BindingKind::kMacLocation, 2)); });
  return op;
}

TEST(Journal, RecoverReproducesStateIdsAndEpochs) {
  InMemoryJournalStore store;
  Journal journal(store);
  Plane sut(&journal);
  run_script(sut);

  Plane oracle;
  run_script(oracle);

  Plane recovered;
  Journal reader(store);
  const auto recovery = reader.recover(recovered.manager, recovered.erm);
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_FALSE(recovery.value().tail_truncated);
  EXPECT_FALSE(recovery.value().snapshot_loaded);
  EXPECT_GT(recovery.value().records_replayed, 0u);

  EXPECT_EQ(recovered.image(), oracle.image());
  EXPECT_EQ(recovered.manager.epoch(), oracle.manager.epoch());
  EXPECT_EQ(recovered.erm.epoch(), oracle.erm.epoch());
  EXPECT_EQ(recovered.manager.next_id(), oracle.manager.next_id());

  // Ids survive exactly (Table-0 cookies cite them).
  const auto sut_rules = sut.manager.rules();
  const auto rec_rules = recovered.manager.rules();
  ASSERT_EQ(sut_rules.size(), rec_rules.size());
  for (std::size_t i = 0; i < sut_rules.size(); ++i) {
    EXPECT_EQ(sut_rules[i].id, rec_rules[i].id);
    EXPECT_EQ(sut_rules[i].pdp_name, rec_rules[i].pdp_name);
  }
}

TEST(Journal, TornTailSweepRecoversLongestValidPrefix) {
  // Build the full log once, note each record boundary, then recover from
  // every possible byte-level cut of the image. The recovered state must
  // equal the oracle that ran exactly the ops whose records fit the cut.
  InMemoryJournalStore full_store;
  Journal full_journal(full_store);
  Plane full(&full_journal);
  const std::size_t op_count = run_script(full);
  const std::vector<std::uint8_t> image = full_store.read_all();

  // Frame boundaries: record k ends at ends[k].
  std::vector<std::size_t> ends;
  std::size_t offset = 0;
  while (image.size() - offset >= 8) {
    const std::uint32_t length = image[offset] |
                                 (image[offset + 1] << 8) |
                                 (image[offset + 2] << 16) |
                                 (static_cast<std::uint32_t>(image[offset + 3]) << 24);
    offset += 8u + length;
    ASSERT_LE(offset, image.size());
    ends.push_back(offset);
  }
  ASSERT_EQ(ends.size(), op_count);  // one record per op in this script

  for (std::size_t cut = 0; cut <= image.size(); ++cut) {
    // How many records survive a cut at this byte?
    std::size_t complete = 0;
    while (complete < ends.size() && ends[complete] <= cut) ++complete;

    InMemoryJournalStore store;
    store.append(image.data(), cut);  // preload the truncated image
    Plane recovered;
    Journal reader(store);
    const auto recovery = reader.recover(recovered.manager, recovered.erm);
    ASSERT_TRUE(recovery.ok()) << "cut " << cut << ": " << recovery.error().message;
    const std::size_t last_end = complete == 0 ? 0 : ends[complete - 1];
    EXPECT_EQ(recovery.value().records_replayed, complete) << "cut " << cut;
    EXPECT_EQ(recovery.value().tail_truncated, cut > last_end) << "cut " << cut;

    Plane oracle;
    run_script(oracle, complete);
    EXPECT_EQ(recovered.image(), oracle.image()) << "cut " << cut;
    EXPECT_EQ(recovered.manager.epoch(), oracle.manager.epoch()) << "cut " << cut;
    EXPECT_EQ(recovered.erm.epoch(), oracle.erm.epoch()) << "cut " << cut;
    EXPECT_EQ(store.size(), last_end) << "cut " << cut;
  }
}

TEST(Journal, CrashMidAppendLosesTheOpUnlessFullyDurable) {
  // The WAL boundary op is ambiguous by design: a crash mid-append loses
  // the op (its record is torn, CRC fails, recovery truncates it) — unless
  // the tear kept 100% of the bytes, in which case the record is durable
  // and recovery correctly replays an op the crashed process never got to
  // apply in memory. Both worlds must be internally consistent.
  for (const double tear : {0.0, 0.3, 0.5, 1.0}) {
    InMemoryJournalStore store;
    Journal journal(store);
    Plane sut(&journal);

    sut.manager.insert(make_rule(1, PolicyAction::kAllow), PdpPriority{10}, "pdp-a");
    sut.erm.apply(make_binding(BindingKind::kUserHost, 1));

    Plane oracle;
    oracle.manager.insert(make_rule(1, PolicyAction::kAllow), PdpPriority{10}, "pdp-a");
    oracle.erm.apply(make_binding(BindingKind::kUserHost, 1));

    CrashPoint point;
    point.armed = true;
    point.ops_remaining = 0;
    point.tear_fraction = tear;
    store.arm_crash(point);

    const std::uint64_t next_before = sut.manager.next_id();
    const std::uint64_t epoch_before = sut.manager.epoch();
    EXPECT_THROW(sut.manager.insert(make_rule(2, PolicyAction::kDeny), PdpPriority{20},
                                    "pdp-b"),
                 CrashException)
        << "tear " << tear;
    // WAL ordering: the append threw, so the crashed process never applied
    // the insert — no id consumed, no epoch moved, no rule stored.
    EXPECT_EQ(sut.manager.next_id(), next_before);
    EXPECT_EQ(sut.manager.epoch(), epoch_before);
    EXPECT_EQ(sut.manager.size(), 1u);

    const bool fully_durable = tear >= 1.0;
    if (fully_durable) {
      // The record made it down intact: recovery must replay the insert,
      // with the id the crashed process would have assigned.
      oracle.manager.insert(make_rule(2, PolicyAction::kDeny), PdpPriority{20},
                            "pdp-b");
    }

    Plane recovered;
    Journal reader(store);
    const auto recovery = reader.recover(recovered.manager, recovered.erm);
    ASSERT_TRUE(recovery.ok()) << recovery.error().message;
    EXPECT_EQ(recovery.value().tail_truncated, tear > 0.0 && tear < 1.0);
    EXPECT_EQ(recovered.image(), oracle.image()) << "tear " << tear;
    EXPECT_EQ(recovered.manager.next_id(), oracle.manager.next_id());
    EXPECT_EQ(recovered.manager.epoch(), oracle.manager.epoch()) << "tear " << tear;
  }
}

TEST(Journal, CrashDuringSyncKeepsTheDurableRecord) {
  // sync() crashing loses no appended bytes in this model: the op's record
  // is already in the image, so recovery replays it even though the
  // crashed process never applied it.
  InMemoryJournalStore store;
  Journal journal(store);
  Plane sut(&journal);
  sut.manager.insert(make_rule(1, PolicyAction::kAllow), PdpPriority{10}, "pdp-a");

  CrashPoint point;
  point.armed = true;
  point.ops_remaining = 1;  // op 0 = append, op 1 = sync
  store.arm_crash(point);
  EXPECT_THROW(
      sut.manager.insert(make_rule(2, PolicyAction::kDeny), PdpPriority{20}, "pdp-b"),
      CrashException);
  EXPECT_EQ(sut.manager.size(), 1u);  // in-memory: never applied

  Plane oracle;
  oracle.manager.insert(make_rule(1, PolicyAction::kAllow), PdpPriority{10}, "pdp-a");
  oracle.manager.insert(make_rule(2, PolicyAction::kDeny), PdpPriority{20}, "pdp-b");

  Plane recovered;
  Journal reader(store);
  const auto recovery = reader.recover(recovered.manager, recovered.erm);
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_FALSE(recovery.value().tail_truncated);
  EXPECT_EQ(recovered.image(), oracle.image());
  EXPECT_EQ(recovered.manager.epoch(), oracle.manager.epoch());
}

TEST(Journal, CompactionRoundTripAndTailReplay) {
  InMemoryJournalStore store;
  Journal journal(store);
  Plane sut(&journal);
  run_script(sut);

  const std::size_t before = store.size();
  ASSERT_TRUE(journal.compact(sut.manager, sut.erm).ok());
  EXPECT_LT(store.size(), before);  // ten records down to one snapshot

  // Post-compaction mutations land as WAL tail after the snapshot.
  sut.manager.insert(make_rule(9, PolicyAction::kAllow), PdpPriority{99}, "pdp-z");
  sut.erm.apply(make_binding(BindingKind::kHostIp, 9));

  Plane recovered;
  Journal reader(store);
  const auto recovery = reader.recover(recovered.manager, recovered.erm);
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_TRUE(recovery.value().snapshot_loaded);
  EXPECT_EQ(recovery.value().records_replayed, 3u);  // snapshot + two ops

  EXPECT_EQ(recovered.image(), sut.image());
  EXPECT_EQ(recovered.manager.epoch(), sut.manager.epoch());
  EXPECT_EQ(recovered.erm.epoch(), sut.erm.epoch());
  EXPECT_EQ(recovered.manager.next_id(), sut.manager.next_id());
  const auto sut_rules = sut.manager.rules();
  const auto rec_rules = recovered.manager.rules();
  ASSERT_EQ(sut_rules.size(), rec_rules.size());
  for (std::size_t i = 0; i < sut_rules.size(); ++i) {
    EXPECT_EQ(sut_rules[i].id, rec_rules[i].id);
  }
}

TEST(Journal, CrashDuringCompactionLeavesOldOrNewImageNeverAMix) {
  for (const bool survives : {false, true}) {
    InMemoryJournalStore store;
    Journal journal(store);
    Plane sut(&journal);
    run_script(sut);

    // Compaction's durable ops: append_rewrite (op 0), commit_rewrite (op 1).
    CrashPoint point;
    point.armed = true;
    point.ops_remaining = 1;
    point.commit_survives = survives;
    store.arm_crash(point);
    EXPECT_THROW(journal.compact(sut.manager, sut.erm), CrashException);

    Plane recovered;
    Journal reader(store);
    const auto recovery = reader.recover(recovered.manager, recovered.erm);
    ASSERT_TRUE(recovery.ok()) << recovery.error().message;
    EXPECT_EQ(recovery.value().snapshot_loaded, survives);
    EXPECT_FALSE(recovery.value().tail_truncated);
    // Either way the logical state is intact.
    EXPECT_EQ(recovered.image(), sut.image());
    EXPECT_EQ(recovered.manager.epoch(), sut.manager.epoch());
    EXPECT_EQ(recovered.erm.epoch(), sut.erm.epoch());
    EXPECT_EQ(recovered.manager.next_id(), sut.manager.next_id());
  }
}

TEST(Journal, CrashDuringRewriteStagingKeepsOldImage) {
  InMemoryJournalStore store;
  Journal journal(store);
  Plane sut(&journal);
  run_script(sut);
  const std::vector<std::uint8_t> before = store.read_all();

  CrashPoint point;
  point.armed = true;
  point.ops_remaining = 0;  // lands on append_rewrite
  store.arm_crash(point);
  EXPECT_THROW(journal.compact(sut.manager, sut.erm), CrashException);
  EXPECT_EQ(store.read_all(), before);  // staged image died with the process
}

TEST(Journal, RejectsCorruptRecordWithPosition) {
  InMemoryJournalStore store;
  Journal journal(store);
  Plane sut(&journal);
  sut.manager.insert(make_rule(1, PolicyAction::kAllow), PdpPriority{10}, "pdp-a");

  // Hand-frame a record that passes the CRC but has an unknown type: this
  // is corruption beyond torn-tail tolerance and must be a hard error.
  const std::string payload = "x|garbage";
  std::string framed;
  const auto put = [&framed](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) framed += static_cast<char>((v >> (8 * i)) & 0xff);
  };
  put(static_cast<std::uint32_t>(payload.size()));
  put(crc32(reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size()));
  framed += payload;
  store.append(reinterpret_cast<const std::uint8_t*>(framed.data()), framed.size());

  Plane recovered;
  Journal reader(store);
  const auto recovery = reader.recover(recovered.manager, recovered.erm);
  ASSERT_FALSE(recovery.ok());
  EXPECT_NE(recovery.error().message.find("record 1"), std::string::npos)
      << recovery.error().message;
}

TEST(Journal, FileStoreRoundTripAndCompaction) {
  const std::string path = ::testing::TempDir() + "dfi_journal_test.wal";
  std::remove(path.c_str());

  Plane oracle;
  run_script(oracle);
  {
    FileJournalStore store(path);
    Journal journal(store);
    Plane sut(&journal);
    run_script(sut);
    ASSERT_TRUE(journal.compact(sut.manager, sut.erm).ok());
    sut.manager.insert(make_rule(9, PolicyAction::kAllow), PdpPriority{99}, "pdp-z");
    oracle.manager.insert(make_rule(9, PolicyAction::kAllow), PdpPriority{99}, "pdp-z");
  }

  // A fresh process: new store object on the same path.
  FileJournalStore store(path);
  Journal reader(store);
  Plane recovered;
  const auto recovery = reader.recover(recovered.manager, recovered.erm);
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_TRUE(recovery.value().snapshot_loaded);
  EXPECT_EQ(recovered.image(), oracle.image());
  EXPECT_EQ(recovered.manager.epoch(), oracle.manager.epoch());
  EXPECT_EQ(recovered.erm.epoch(), oracle.erm.epoch());
  std::remove(path.c_str());
}

TEST(Journal, FileStoreTruncatesTornTailOnDisk) {
  const std::string path = ::testing::TempDir() + "dfi_journal_torn.wal";
  std::remove(path.c_str());
  {
    FileJournalStore store(path);
    Journal journal(store);
    Plane sut(&journal);
    run_script(sut);
    // Simulate a torn final write: append half a garbage frame.
    const std::uint8_t torn[5] = {0xff, 0xff, 0x00, 0x00, 0x42};
    store.append(torn, sizeof(torn));
  }
  FileJournalStore store(path);
  Journal reader(store);
  Plane recovered;
  const auto recovery = reader.recover(recovered.manager, recovered.erm);
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_TRUE(recovery.value().tail_truncated);
  EXPECT_EQ(recovery.value().bytes_discarded, 5u);

  Plane oracle;
  run_script(oracle);
  EXPECT_EQ(recovered.image(), oracle.image());

  // The truncation is durable: a third open sees a clean log.
  FileJournalStore store2(path);
  Journal reader2(store2);
  Plane recovered2;
  const auto recovery2 = reader2.recover(recovered2.manager, recovered2.erm);
  ASSERT_TRUE(recovery2.ok());
  EXPECT_FALSE(recovery2.value().tail_truncated);
  std::remove(path.c_str());
}

TEST(Journal, FenceEpochPersistsAcrossRecoveryAndCompaction) {
  InMemoryJournalStore store;
  Journal journal(store);
  Plane sut(&journal);
  run_script(sut, 4);
  ASSERT_TRUE(journal.set_fence_epoch(3).ok());
  run_script(sut);  // more appends after the fence record
  EXPECT_EQ(journal.fence_epoch(), 3u);
  EXPECT_EQ(journal.stats().fence_bumps, 1u);

  Plane recovered;
  Journal reader(store);
  ASSERT_TRUE(reader.recover(recovered.manager, recovered.erm).ok());
  EXPECT_EQ(reader.fence_epoch(), 3u);
  EXPECT_FALSE(reader.fenced_out());

  // Compaction carries the fence into the rewritten image.
  ASSERT_TRUE(reader.compact(recovered.manager, recovered.erm).ok());
  Plane again;
  Journal reader2(store);
  ASSERT_TRUE(reader2.recover(again.manager, again.erm).ok());
  EXPECT_EQ(reader2.fence_epoch(), 3u);
  EXPECT_EQ(again.image(), recovered.image());
}

TEST(Journal, FencedOutAppendRefusesAndMutatesNothing) {
  InMemoryJournalStore store;
  Journal journal(store);
  Plane sut(&journal);
  run_script(sut, 3);
  const std::string before = sut.image();
  const std::size_t bytes_before = store.size();

  // A higher epoch arrives from the promoted survivor: this journal's
  // owner was deposed. Every mutation must fail closed.
  journal.observe_fence(journal.fence_epoch() + 1);
  ASSERT_TRUE(journal.fenced_out());
  EXPECT_THROW(
      sut.manager.insert(make_rule(7, PolicyAction::kDeny), PdpPriority{7}, "pdp-x"),
      FencedException);
  BindingEvent event = make_binding(BindingKind::kUserHost, 9);
  EXPECT_THROW(sut.erm.apply(event), FencedException);
  EXPECT_EQ(sut.image(), before);
  EXPECT_EQ(store.size(), bytes_before);  // nothing durable either
  EXPECT_EQ(journal.stats().fenced_appends, 2u);

  // Adopting an epoch at or above everything observed clears the fence
  // (this is what promotion does).
  ASSERT_TRUE(journal.set_fence_epoch(journal.observed_fence() + 1).ok());
  EXPECT_FALSE(journal.fenced_out());
  sut.manager.insert(make_rule(7, PolicyAction::kDeny), PdpPriority{7}, "pdp-x");
  EXPECT_NE(sut.image(), before);
}

TEST(Journal, FenceEpochMayNotRegress) {
  InMemoryJournalStore store;
  Journal journal(store);
  ASSERT_TRUE(journal.set_fence_epoch(5).ok());
  EXPECT_FALSE(journal.set_fence_epoch(4).ok());
  EXPECT_TRUE(journal.set_fence_epoch(5).ok());  // idempotent, no new record
  EXPECT_EQ(journal.stats().fence_bumps, 1u);
}

TEST(Journal, IngestReplicatedMirrorsPeerAppends) {
  // Primary: journaled plane whose append observer captures every record.
  InMemoryJournalStore primary_store;
  Journal primary_journal(primary_store);
  std::vector<std::string> shipped;
  primary_journal.set_append_observer(
      [&](const std::string& payload) { shipped.push_back(payload); });
  Plane primary(&primary_journal);
  run_script(primary);
  ASSERT_FALSE(shipped.empty());

  // Standby: fresh plane; ingest each record through the WAL-first path.
  InMemoryJournalStore standby_store;
  Journal standby_journal(standby_store);
  Plane standby;
  for (const std::string& payload : shipped) {
    ASSERT_TRUE(
        standby_journal.ingest_replicated(payload, standby.manager, standby.erm).ok());
  }
  EXPECT_EQ(standby.image(), primary.image());
  EXPECT_EQ(standby.manager.epoch(), primary.manager.epoch());
  EXPECT_EQ(standby.erm.epoch(), primary.erm.epoch());
  EXPECT_EQ(standby.manager.next_id(), primary.manager.next_id());

  // The standby's own journal is a valid WAL: recovery reproduces the
  // same bytes (byte-identical promotion).
  Plane recovered;
  Journal reader(standby_store);
  ASSERT_TRUE(reader.recover(recovered.manager, recovered.erm).ok());
  EXPECT_EQ(recovered.image(), primary.image());
}

TEST(Journal, InstallSnapshotBootstrapsFreshPlane) {
  InMemoryJournalStore primary_store;
  Journal primary_journal(primary_store);
  Plane primary(&primary_journal);
  run_script(primary);
  ASSERT_TRUE(primary_journal.set_fence_epoch(2).ok());
  const std::string snapshot = Journal::snapshot_payload(primary.manager, primary.erm);

  InMemoryJournalStore standby_store;
  Journal standby_journal(standby_store);
  Plane standby;
  ASSERT_TRUE(standby_journal
                  .install_snapshot(snapshot, primary_journal.fence_epoch(),
                                    standby.manager, standby.erm)
                  .ok());
  EXPECT_EQ(standby.image(), primary.image());
  EXPECT_EQ(standby.manager.next_id(), primary.manager.next_id());
  EXPECT_EQ(standby_journal.fence_epoch(), 2u);

  // Restart of the bootstrapped standby lands on the same state.
  Plane recovered;
  Journal reader(standby_store);
  ASSERT_TRUE(reader.recover(recovered.manager, recovered.erm).ok());
  EXPECT_EQ(recovered.image(), primary.image());
  EXPECT_EQ(reader.fence_epoch(), 2u);
}

TEST(Journal, FileStoreIoFailureOpensDegradedWindow) {
  // A store whose file cannot be opened fails every durable op; with a
  // HealthMonitor attached that surfaces as a journal-io degraded window
  // instead of a log line.
  Simulator sim;
  MessageBus bus;
  HealthConfig config;
  config.enabled = true;
  config.recovering_hold = milliseconds(0);
  HealthMonitor health(sim, bus, config, Rng(7));

  const std::string path = ::testing::TempDir() + "no_such_dir_dfi/j.wal";
  FileJournalStore store(path);
  store.attach_health(&health);
  EXPECT_EQ(health.state(), HealthState::kHealthy);

  const std::uint8_t bytes[4] = {1, 2, 3, 4};
  store.append(bytes, sizeof(bytes));
  EXPECT_TRUE(store.io_degraded());
  EXPECT_GE(store.io_failures(), 1u);
  EXPECT_EQ(health.state(), HealthState::kDegraded);

  // Repeated failures keep ONE window open (ref-counted, not stacked).
  store.sync();
  store.append(bytes, sizeof(bytes));
  EXPECT_EQ(health.degraded_refs(), 1u);

  // Detaching (or destruction) balances the window.
  store.attach_health(nullptr);
  EXPECT_EQ(health.degraded_refs(), 0u);
}

TEST(Journal, FileStoreRecoversHealthAfterSuccessfulDurableOp) {
  Simulator sim;
  MessageBus bus;
  HealthConfig config;
  config.enabled = true;
  config.recovering_hold = milliseconds(0);
  HealthMonitor health(sim, bus, config, Rng(7));

  const std::string path = ::testing::TempDir() + "dfi_journal_health.wal";
  std::remove(path.c_str());
  FileJournalStore store(path);
  store.attach_health(&health);

  // Healthy path: append+sync works, no window ever opens.
  const std::uint8_t bytes[4] = {9, 9, 9, 9};
  store.append(bytes, sizeof(bytes));
  store.sync();
  EXPECT_FALSE(store.io_degraded());
  EXPECT_EQ(store.io_failures(), 0u);
  EXPECT_EQ(health.state(), HealthState::kHealthy);
  std::remove(path.c_str());
}

TEST(Journal, LoadersHonorEpochFloor) {
  Plane source;
  run_script(source);
  const std::string policies = save_policies(source.manager);
  const std::string bindings = save_bindings(source.erm);

  // Plain load lands wherever replaying the surviving state lands —
  // behind the live epochs (revocations and retractions are gone).
  Plane plain;
  ASSERT_TRUE(load_policies(plain.manager, policies).ok());
  ASSERT_TRUE(load_bindings(plain.erm, bindings).ok());
  EXPECT_LT(plain.manager.epoch(), source.manager.epoch());

  // With the floor, the epoch can never fall behind the pre-restart value.
  Plane floored;
  ASSERT_TRUE(load_policies(floored.manager, policies, source.manager.epoch()).ok());
  ASSERT_TRUE(load_bindings(floored.erm, bindings, source.erm.epoch()).ok());
  EXPECT_EQ(floored.manager.epoch(), source.manager.epoch());
  EXPECT_EQ(floored.erm.epoch(), source.erm.epoch());
}

}  // namespace
}  // namespace dfi
