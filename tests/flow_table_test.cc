// Unit tests for FlowTable semantics (add/modify/delete/lookup/expiry).
#include <gtest/gtest.h>

#include "openflow/flow_table.h"

namespace dfi {
namespace {

Packet flow_a() {
  return make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                         Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1000, 80);
}

FlowRule make_rule(std::uint16_t priority, Cookie cookie, Match match,
                   Instructions instructions) {
  FlowRule rule;
  rule.priority = priority;
  rule.cookie = cookie;
  rule.match = std::move(match);
  rule.instructions = std::move(instructions);
  return rule;
}

TEST(FlowTable, LookupHitsHighestPriority) {
  FlowTable table(0);
  Match wide;  // matches all
  ASSERT_TRUE(table.add(make_rule(10, Cookie{1}, wide, Instructions::output(PortNo{1})),
                        SimTime{}));
  Match exact = Match::exact_from_packet(flow_a(), PortNo{5});
  ASSERT_TRUE(table.add(make_rule(20, Cookie{2}, exact, Instructions::drop()), SimTime{}));

  FlowRule* hit = table.lookup(flow_a(), PortNo{5}, 64, SimTime{});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, Cookie{2});

  // A different port misses the exact rule and falls to the wildcard.
  hit = table.lookup(flow_a(), PortNo{6}, 64, SimTime{});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, Cookie{1});
}

TEST(FlowTable, SamePrioritySpecificityBreaksTie) {
  FlowTable table(0);
  Match wide;
  Match narrower;
  narrower.ipv4_dst = Ipv4Address(10, 0, 0, 2);
  ASSERT_TRUE(table.add(make_rule(10, Cookie{1}, wide, Instructions::drop()), SimTime{}));
  ASSERT_TRUE(table.add(make_rule(10, Cookie{2}, narrower, Instructions::drop()),
                        SimTime{}));
  FlowRule* hit = table.lookup(flow_a(), PortNo{1}, 64, SimTime{});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, Cookie{2});
}

TEST(FlowTable, IdenticalMatchPriorityReplaces) {
  FlowTable table(0);
  Match match;
  match.tcp_dst = 80;
  ASSERT_TRUE(table.add(make_rule(10, Cookie{1}, match, Instructions::output(PortNo{1})),
                        SimTime{}));
  ASSERT_TRUE(table.add(make_rule(10, Cookie{9}, match, Instructions::drop()), SimTime{}));
  EXPECT_EQ(table.size(), 1u);
  FlowRule* hit = table.lookup(flow_a(), PortNo{1}, 64, SimTime{});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, Cookie{9});
  EXPECT_TRUE(hit->instructions.apply_actions.empty());
}

TEST(FlowTable, CapacityEnforced) {
  FlowTable table(0, 2);
  Match m1, m2, m3;
  m1.tcp_dst = 1;
  m2.tcp_dst = 2;
  m3.tcp_dst = 3;
  EXPECT_TRUE(table.add(make_rule(1, Cookie{1}, m1, Instructions::drop()), SimTime{}));
  EXPECT_TRUE(table.add(make_rule(1, Cookie{2}, m2, Instructions::drop()), SimTime{}));
  const Status full = table.add(make_rule(1, Cookie{3}, m3, Instructions::drop()), SimTime{});
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, ErrorCode::kOutOfRange);
  EXPECT_EQ(table.stats().rejected_full, 1u);
  // Replacement of an existing rule still works at capacity.
  EXPECT_TRUE(table.add(make_rule(1, Cookie{7}, m1, Instructions::drop()), SimTime{}));
}

TEST(FlowTable, NonStrictDeleteByCookie) {
  FlowTable table(0);
  Match m1, m2;
  m1.tcp_dst = 1;
  m2.tcp_dst = 2;
  ASSERT_TRUE(table.add(make_rule(1, Cookie{0xaa}, m1, Instructions::drop()), SimTime{}));
  ASSERT_TRUE(table.add(make_rule(1, Cookie{0xbb}, m2, Instructions::drop()), SimTime{}));

  // Wildcard match + full cookie mask: only cookie 0xaa rules are removed.
  const auto removed = table.remove(Match{}, Cookie{0xaa}, Cookie{~0ull});
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].cookie, Cookie{0xaa});
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, NonStrictDeleteByMatchCover) {
  FlowTable table(0);
  Match exact = Match::exact_from_packet(flow_a(), PortNo{1});
  Match unrelated;
  unrelated.ipv4_dst = Ipv4Address(99, 0, 0, 1);
  ASSERT_TRUE(table.add(make_rule(1, Cookie{1}, exact, Instructions::drop()), SimTime{}));
  ASSERT_TRUE(table.add(make_rule(1, Cookie{1}, unrelated, Instructions::drop()), SimTime{}));

  Match selector;
  selector.ipv4_dst = Ipv4Address(10, 0, 0, 2);
  const auto removed = table.remove(selector, Cookie{}, Cookie{});  // mask 0: all cookies
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].match, exact);
}

TEST(FlowTable, StrictDeleteNeedsExactMatchAndPriority) {
  FlowTable table(0);
  Match match;
  match.tcp_dst = 80;
  ASSERT_TRUE(table.add(make_rule(10, Cookie{1}, match, Instructions::drop()), SimTime{}));

  EXPECT_TRUE(table.remove_strict(match, 11, Cookie{}, Cookie{}).empty());
  EXPECT_TRUE(table.remove_strict(Match{}, 10, Cookie{}, Cookie{}).empty());
  EXPECT_EQ(table.remove_strict(match, 10, Cookie{}, Cookie{}).size(), 1u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, ModifyUpdatesInstructionsKeepsCounters) {
  FlowTable table(0);
  Match match;
  ASSERT_TRUE(table.add(make_rule(1, Cookie{5}, match, Instructions::output(PortNo{1})),
                        SimTime{}));
  table.lookup(flow_a(), PortNo{1}, 100, SimTime{});
  const std::size_t modified =
      table.modify(Match{}, Cookie{5}, Cookie{~0ull}, Instructions::drop());
  EXPECT_EQ(modified, 1u);
  const FlowRule& rule = *table.rules()[0];
  EXPECT_TRUE(rule.instructions.apply_actions.empty());
  EXPECT_EQ(rule.counters.packets, 1u);
  EXPECT_EQ(rule.counters.bytes, 100u);
}

TEST(FlowTable, CountersAccumulateOnLookup) {
  FlowTable table(0);
  ASSERT_TRUE(table.add(make_rule(1, Cookie{1}, Match{}, Instructions::drop()), SimTime{}));
  table.lookup(flow_a(), PortNo{1}, 60, SimTime{});
  table.lookup(flow_a(), PortNo{1}, 40, SimTime{});
  EXPECT_EQ(table.rules()[0]->counters.packets, 2u);
  EXPECT_EQ(table.rules()[0]->counters.bytes, 100u);
  EXPECT_EQ(table.stats().lookups, 2u);
  EXPECT_EQ(table.stats().hits, 2u);
}

TEST(FlowTable, IdleTimeoutExpiry) {
  FlowTable table(0);
  FlowRule rule = make_rule(1, Cookie{1}, Match{}, Instructions::drop());
  rule.idle_timeout_sec = 10;
  ASSERT_TRUE(table.add(std::move(rule), SimTime{}));

  // Activity at t=5 refreshes the idle clock.
  table.lookup(flow_a(), PortNo{1}, 64, SimTime{} + seconds(5));
  EXPECT_TRUE(table.expire(SimTime{} + seconds(14)).empty());
  const auto expired = table.expire(SimTime{} + seconds(15));
  EXPECT_EQ(expired.size(), 1u);
}

TEST(FlowTable, HardTimeoutExpiryIgnoresActivity) {
  FlowTable table(0);
  FlowRule rule = make_rule(1, Cookie{1}, Match{}, Instructions::drop());
  rule.hard_timeout_sec = 10;
  ASSERT_TRUE(table.add(std::move(rule), SimTime{}));
  table.lookup(flow_a(), PortNo{1}, 64, SimTime{} + seconds(9));
  const auto expired = table.expire(SimTime{} + seconds(10));
  EXPECT_EQ(expired.size(), 1u);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable table(0);
  Match match;
  match.tcp_dst = 22;
  ASSERT_TRUE(table.add(make_rule(1, Cookie{1}, match, Instructions::drop()), SimTime{}));
  EXPECT_EQ(table.lookup(flow_a(), PortNo{1}, 64, SimTime{}), nullptr);
  EXPECT_EQ(table.stats().hits, 0u);
}

}  // namespace
}  // namespace dfi
