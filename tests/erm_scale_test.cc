// Scale tests for the compact entity plane: load an enterprise-scale
// binding population (testbed/scale_generator.h) through the ERM and check
// correctness properties that only show up at volume.
//
// Labeled `scale` in CMake. The population is env-bounded so the same
// binary serves PR CI and the nightly full run:
//   DFI_SCALE_ENTITIES=50000    (PR CI; the default here is smaller still)
//   DFI_SCALE_ENTITIES=1000000  (nightly)
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "bus/message_bus.h"
#include "core/entity_resolution.h"
#include "testbed/scale_generator.h"

namespace dfi {
namespace {

std::uint32_t scale_hosts() {
  // Entities ~= 4x hosts. Default keeps the un-parameterized ctest run
  // quick; CI raises it via the environment.
  std::size_t entities = 20000;
  if (const char* env = std::getenv("DFI_SCALE_ENTITIES")) {
    entities = std::strtoull(env, nullptr, 10);
  }
  return static_cast<std::uint32_t>(entities / 4);
}

class ErmScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScaleConfig config;
    config.hosts = scale_hosts();
    gen_ = std::make_unique<ScaleGenerator>(config);
    erm_ = std::make_unique<EntityResolutionManager>(bus_);
    gen_->emit_initial_bindings(
        [&](const BindingEvent& event) { erm_->apply(event); });
  }

  MessageBus bus_;
  std::unique_ptr<ScaleGenerator> gen_;
  std::unique_ptr<EntityResolutionManager> erm_;
};

TEST_F(ErmScaleTest, BindingCountMatchesGenerator) {
  EXPECT_EQ(erm_->binding_count(), gen_->initial_binding_count());
  // Four populated namespaces, sized by the population.
  const EntityInterner& interner = erm_->interner();
  EXPECT_EQ(interner.macs().size(), gen_->config().hosts);
  EXPECT_GE(interner.hosts().size(), gen_->config().hosts);
  EXPECT_EQ(interner.users().size(), gen_->config().hosts);
}

TEST_F(ErmScaleTest, EnrichmentCorrectAcrossThePopulation) {
  const ErmSnapshot snap = erm_->snapshot_view();
  const std::uint32_t hosts = gen_->config().hosts;
  for (std::uint32_t h = 0; h < hosts; h += 997) {
    EndpointView view;
    view.ip = gen_->ip_of(h);
    const EndpointView enriched = snap.enrich(std::move(view));
    ASSERT_FALSE(enriched.hostnames.empty()) << "host " << h;
    EXPECT_EQ(enriched.hostnames.front().value, gen_->host_name(h));
    ASSERT_FALSE(enriched.usernames.empty()) << "host " << h;
    // The host's own primary user is always present.
    bool found = false;
    for (const Username& user : enriched.usernames) {
      found |= user.value == gen_->user_name(h);
    }
    EXPECT_TRUE(found) << "host " << h;
  }
}

TEST_F(ErmScaleTest, SpoofValidationAtScale) {
  const ErmSnapshot snap = erm_->snapshot_view();
  const std::uint32_t hosts = gen_->config().hosts;
  for (std::uint32_t h = 0; h < hosts; h += 1009) {
    // Correct IP<->MAC pairing passes; a neighbor's MAC is spoofing.
    EXPECT_FALSE(
        snap.validate_identity(gen_->mac_of(h), gen_->ip_of(h)).spoofed);
    const std::uint32_t other = (h + 1) % hosts;
    EXPECT_TRUE(
        snap.validate_identity(gen_->mac_of(other), gen_->ip_of(h)).spoofed);
  }
}

TEST_F(ErmScaleTest, IncrementalPublicationIsOChanged) {
  // Hold one snapshot of the loaded state, then run a churn storm with a
  // publication after every event. Each publish may clone at most the few
  // pages the event dirtied — never a table-sized amount.
  (void)erm_->snapshot_view();
  const std::uint64_t pages_at_load = erm_->cow_stats().page_copies;

  constexpr std::uint32_t kEvents = 200;
  std::uint32_t applied = 0;
  gen_->emit_logon_storm(0, kEvents / 2, 1, [&](const BindingEvent& event) {
    erm_->apply(event);
    (void)erm_->snapshot_view();
    ++applied;
  });
  const std::uint64_t pages_churn = erm_->cow_stats().page_copies - pages_at_load;
  // Each user-host event touches 2 tables; with posting-list slots spread
  // across pages, a handful of clones per publish is the ceiling. 8x is
  // generous; O(total) would be thousands of times larger at scale.
  EXPECT_LE(pages_churn, std::uint64_t{applied} * 8);
  EXPECT_GT(applied, 0u);
}

TEST_F(ErmScaleTest, HeldSnapshotUnchangedByChurnStorms) {
  const std::uint32_t hosts = gen_->config().hosts;
  // Odd index: not an alias host, so after the rollover nothing else is
  // bound to its old primary IP.
  const std::uint32_t probe = (hosts / 2) | 1u;
  const ErmSnapshot before = erm_->snapshot_view();
  const std::uint64_t epoch_before = before.epoch();

  // DHCP rollover + mobility + logon churn over the whole population.
  const auto apply = [&](const BindingEvent& event) { erm_->apply(event); };
  gen_->emit_dhcp_rollover(0, hosts, true, apply);
  gen_->emit_logon_storm(0, hosts, 3, apply);
  gen_->emit_host_mobility(0, hosts, 1, apply);

  // The held snapshot still answers from the pre-churn world.
  EXPECT_EQ(before.epoch(), epoch_before);
  EndpointView view;
  view.ip = gen_->ip_of(probe);
  const EndpointView enriched = before.enrich(std::move(view));
  ASSERT_FALSE(enriched.hostnames.empty());
  EXPECT_EQ(enriched.hostnames.front().value, gen_->host_name(probe));
  EXPECT_FALSE(
      before.validate_identity(gen_->mac_of(probe), gen_->ip_of(probe)).spoofed);

  // The live ERM moved on: the primary lease is gone (rolled to the
  // alternate pool), so the old pairing no longer validates as bound.
  const ErmSnapshot after = erm_->snapshot_view();
  EXPECT_GT(after.epoch(), epoch_before);
  EndpointView live_view;
  live_view.ip = gen_->ip_of(probe);
  EXPECT_TRUE(after.enrich(std::move(live_view)).hostnames.empty());
}

TEST_F(ErmScaleTest, RolloverKeepsIdentityConsistent) {
  const std::uint32_t hosts = gen_->config().hosts;
  const auto apply = [&](const BindingEvent& event) { erm_->apply(event); };
  gen_->emit_dhcp_rollover(0, hosts, true, apply);
  const ErmSnapshot snap = erm_->snapshot_view();
  for (std::uint32_t h = 0; h < hosts; h += 1013) {
    // New lease enriches to the same hostname.
    EndpointView view;
    view.ip = Ipv4Address((11u << 24) + h);  // alternate pool
    const EndpointView enriched = snap.enrich(std::move(view));
    ASSERT_FALSE(enriched.hostnames.empty()) << "host " << h;
    EXPECT_EQ(enriched.hostnames.front().value, gen_->host_name(h));
  }
}

}  // namespace
}  // namespace dfi
