#include "support/reference_model.h"

#include "core/policy_snapshot.h"
#include "services/events.h"

namespace dfi::test {

ReferenceModel::ReferenceModel(MessageBus& system_bus)
    : erm_(private_bus_),
      policy_(private_bus_),
      mirror_subscription_(system_bus.subscribe<BindingEvent>(
          topics::kErmBindings, [this](const BindingEvent& event) {
            ++binding_events_seen_;
            erm_.apply(event);
          })) {}

PolicyRuleId ReferenceModel::record_insert(const PolicyRule& rule,
                                           PdpPriority priority) {
  const PolicyRuleId id = policy_.insert(rule, priority, "model");
  issued_.insert(id.value);
  return id;
}

bool ReferenceModel::record_revoke(PolicyRuleId id) {
  if (!policy_.revoke(id)) return false;
  revoked_.insert(id.value);
  return true;
}

std::optional<ModelVerdict> ReferenceModel::expected_verdict(
    Dpid dpid, PortNo in_port, const std::vector<std::uint8_t>& frame) const {
  auto parsed = Packet::parse(frame);
  if (!parsed.ok()) return std::nullopt;
  const Packet& packet = parsed.value();

  // Identifier collection, exactly the set the PCP gathers (pcp_decide.cc).
  EndpointView src;
  src.mac = packet.eth.src;
  src.dpid = dpid;
  src.switch_port = in_port;
  EndpointView dst;
  dst.mac = packet.eth.dst;
  if (packet.ipv4.has_value()) {
    src.ip = packet.ipv4->src;
    dst.ip = packet.ipv4->dst;
  }
  if (packet.tcp.has_value()) {
    src.l4_port = packet.tcp->src_port;
    dst.l4_port = packet.tcp->dst_port;
  } else if (packet.udp.has_value()) {
    src.l4_port = packet.udp->src_port;
    dst.l4_port = packet.udp->dst_port;
  }

  std::optional<std::uint8_t> ip_proto;
  if (packet.ipv4.has_value()) ip_proto = packet.ipv4->protocol;
  return decide(std::move(src), std::move(dst), packet.eth.ether_type, ip_proto);
}

ModelVerdict ReferenceModel::expected_verdict_match(Dpid dpid,
                                                    const Match& match) const {
  EndpointView src;
  src.mac = match.eth_src;
  src.dpid = dpid;
  src.switch_port = match.in_port;
  src.ip = match.ipv4_src;
  src.l4_port = match.tcp_src.has_value() ? match.tcp_src : match.udp_src;
  EndpointView dst;
  dst.mac = match.eth_dst;
  dst.ip = match.ipv4_dst;
  dst.l4_port = match.tcp_dst.has_value() ? match.tcp_dst : match.udp_dst;
  return decide(std::move(src), std::move(dst), match.eth_type.value_or(0),
                match.ip_proto);
}

ModelVerdict ReferenceModel::decide(EndpointView src, EndpointView dst,
                                    std::uint16_t ether_type,
                                    std::optional<std::uint8_t> ip_proto) const {
  ModelVerdict verdict;

  // Source-side spoof validation against the mirrored authoritative
  // bindings. The location check is deliberately omitted: the fuzzer uses
  // unicast source MACs only, for which the PCP's own sensor asserts the
  // observed location before deciding (see DecisionInput::prior_src_location).
  const SpoofCheck spoof =
      erm_.validate(src.mac, src.ip, std::nullopt, std::nullopt);
  if (spoof.spoofed) {
    verdict.spoofed = true;
    verdict.allow = false;
    verdict.default_deny = true;
    return verdict;
  }

  // Late-binding enrichment + linear-scan reference policy query.
  FlowView flow;
  flow.ether_type = ether_type;
  flow.ip_proto = ip_proto;
  flow.src = erm_.enrich(std::move(src));
  flow.dst = erm_.enrich(std::move(dst));

  const PolicyDecision decision = policy_.query_linear(flow);
  verdict.allow = decision.action == PolicyAction::kAllow;
  verdict.default_deny = decision.default_deny;
  return verdict;
}

bool ReferenceModel::cookie_issued(std::uint64_t cookie) const {
  return cookie == kDefaultDenyCookie.value || issued_.contains(cookie);
}

bool ReferenceModel::cookie_revoked(std::uint64_t cookie) const {
  return revoked_.contains(cookie);
}

}  // namespace dfi::test
