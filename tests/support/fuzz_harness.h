// Model-based invariant fuzz harness for the DFI control plane (DESIGN.md
// §6).
//
// One call to run_fuzz_schedule() assembles a complete system under test —
// two OpenFlow switches behind DfiProxy sessions, PCP + shard pool, ERM +
// Policy Manager + binding sensors on a shared bus — alongside a
// ReferenceModel, then replays one seeded fault schedule against it:
// randomized bursts of data-plane packets, sensor events and controller
// traffic pushed through FaultChannels that drop/duplicate/delay/reorder,
// policy churn racing in-flight decisions, proxy sessions severed and
// reconnected mid-flight, and (threaded backend) shard workers stalled or
// killed mid-decision.
//
// After every delivery and at every step boundary the harness checks the
// five safety invariants (DESIGN.md §6 table):
//   I1  no denied (or unparsable) Packet-in is ever forwarded to the
//       controller;
//   I2  no controller-visible message references Table 0 — FEATURES_REPLY
//       always advertises one fewer table, flow-stats rows and
//       FLOW_REMOVED for Table 0 are filtered, DFI cookies never escape;
//   I3  once a revoke has quiesced, no connected switch holds a Table-0
//       rule citing the revoked policy's cookie;
//   I4  cache/snapshot staleness never changes an observable verdict: every
//       installed Table-0 rule's action equals the reference model's
//       verdict at install time;
//   I5  the threaded shard pool applies completion effects in submission
//       order even when workers die mid-job.
//
// Violations are collected (not asserted) so the caller owns the failure
// message — including the seed-replay instructions the fuzz test prints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pcp_decide.h"
#include "fault/fault_plan.h"

namespace dfi::test {

struct FuzzOptions {
  std::uint64_t seed = 1;
  PcpBackend backend = PcpBackend::kSimulated;
  std::size_t shards = 2;
  std::size_t steps = 10;
  // Threaded backend only: arm the deterministic worker kill/stall probe.
  bool worker_faults = false;
  // Exercise the CAB-ACME wildcard-caching extension. Per-install verdict
  // checks (I4) are skipped — a generalized match covers many flows — but
  // the cookie invariants (I2/I3) still apply to every install.
  bool wildcard_caching = false;
  std::size_t decision_cache_capacity = 64;
  // Exercise the batched datapath (DESIGN.md §5): the proxy batches
  // consecutive table-0 Packet-ins into handle_packet_in_batch calls and
  // coalesces switch-bound egress into pooled multi-frame writes; the
  // schedule injects multi-Packet-in chunks so real batches form, and (with
  // worker_faults) the kill probe gains kKillAfterDecide — a crash in the
  // completion-publish window, mid-batch. Default off: every pre-existing
  // variant keeps its exact per-message behavior and byte-identical trace.
  bool batched_datapath = false;
  // Exercise incremental snapshot publication (DESIGN.md §8): the schedule
  // captures ErmSnapshots between binding churn and policy revokes, keeps a
  // window of them alive across steps, and after every drain asserts each
  // held snapshot still answers from the world it was published in (epoch
  // and enrichment byte-stable) while I3/I4 keep holding for live traffic.
  // Default off: every pre-existing variant keeps its exact per-message
  // behavior and byte-identical trace.
  bool incremental_snapshots = false;
  // Run the switch<->proxy byte streams through the real socket-datapath
  // machinery (DESIGN.md §9): each chunk the fault channel delivers is
  // carried over a seeded FaultSocket into a manual-mode Connection —
  // scatter readv into the decoder, bounded-queue writev egress — under a
  // lossless fault spec (short reads/writes, EAGAIN storms, slow drain; no
  // resets). The harness asserts the reassembled stream is byte-identical
  // to the direct path, so I1-I5 and the egress hash must hold unchanged.
  // All socket rng draws are gated on this flag: pre-existing variants keep
  // their byte-identical traces.
  bool socket_transport = false;
};

struct FuzzResult {
  // Empty means the schedule passed. Each entry is one invariant violation
  // with step context.
  std::vector<std::string> violations;
  // The FaultPlan replay trace: byte-identical across runs of the same
  // seed+options. The determinism test compares these directly.
  std::string trace;
  FaultPlanStats fault_stats;

  // Coverage counters, for the campaign-level "the fuzzer actually
  // exercised the machinery" assertions.
  std::uint64_t packet_ins = 0;       // Packet-ins the PCP accepted
  std::uint64_t installs_seen = 0;    // Table-0 ADDs observed at the tap
  std::uint64_t forwards_seen = 0;    // Packet-ins delivered to controller
  std::uint64_t denies = 0;           // denied + default + spoof (system)
  std::uint64_t decision_cache_hits = 0;
  std::uint64_t severs = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t resync_clears = 0;
  std::uint64_t stale_redecides = 0;
  std::uint64_t jobs_abandoned = 0;
  std::uint64_t pool_jobs_checked = 0;  // I5 sub-schedule jobs verified
  std::uint64_t batch_bursts = 0;       // multi-Packet-in chunks injected
  std::uint64_t snapshot_probes = 0;    // held-snapshot captures verified
  // Wire fast-path counters (DESIGN.md §5): the switch<->proxy streams run
  // through classify()/patch_table_refs() + pooled buffers, so a healthy
  // campaign must show pass-through and patched frames, not only decodes.
  std::uint64_t frames_fast_path = 0;
  std::uint64_t frames_patched = 0;
  std::uint64_t frames_decoded = 0;
  double pool_hit_rate = 0.0;
  // Socket-transport variant (DESIGN.md §9): IO calls the FaultSockets
  // served, and how often they forced the retry paths.
  std::uint64_t socket_reads = 0;
  std::uint64_t socket_writes = 0;
  std::uint64_t socket_would_block = 0;
  // FNV-1a over every byte the proxy emitted (both directions, in delivery
  // order). Transport-independent: the same schedule must produce the same
  // hash with socket_transport on or off — the differential proof.
  std::uint64_t egress_hash = 0;
};

// Replay one fault schedule. Deterministic: equal options produce an equal
// FuzzResult, byte-identical trace included.
FuzzResult run_fuzz_schedule(const FuzzOptions& options);

// Human-readable reproduction recipe for a failing seed, printed by the
// fuzz test on violation.
std::string replay_instructions(const FuzzOptions& options);

}  // namespace dfi::test
