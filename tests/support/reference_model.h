// Reference model for the model-based invariant fuzzer (DESIGN.md §6).
//
// The model is an independent, synchronous re-implementation of the DFI
// access-control semantics built from the repo's reference components: a
// private EntityResolutionManager mirror fed exactly the binding events the
// system's ERM *actually received* (post-fault — the mirror subscribes to
// the same `erm.bindings` topic, after the real ERM, so it sees the same
// delivered sequence), plus a private PolicyManager mirror fed the same
// policy inserts/revokes the fuzzer applies to the system. Verdicts come
// from the linear-scan reference query, not the posting-list index, and
// never touch snapshots, decision caches, or the shard pool — everything
// the system under test layers on top of the semantics is absent here, so
// any divergence is a system bug, not a modelling artifact.
//
// The model compares verdict shape only (allow / spoofed / default-deny),
// not the deciding rule id: among equally-ranked same-action rules the
// tie-break is implementation freedom (see PolicyManager::query_linear).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "bus/message_bus.h"
#include "core/entity_resolution.h"
#include "core/policy_manager.h"
#include "net/packet.h"
#include "openflow/match.h"

namespace dfi::test {

// What the model predicts for one Packet-in.
struct ModelVerdict {
  bool allow = false;
  bool spoofed = false;
  bool default_deny = false;
};

class ReferenceModel {
 public:
  // `system_bus` is the bus of the system under test; the model mirrors
  // every BindingEvent delivered on it. Construct the model AFTER the
  // system's EntityResolutionManager so the mirror observes each event
  // after the real ERM has applied it.
  explicit ReferenceModel(MessageBus& system_bus);

  // Mirror one policy insert/revoke the fuzzer applied to the system's
  // PolicyManager. record_insert returns the id the mirror assigned — the
  // same insert sequence must yield the same ids as the system's manager
  // (the harness asserts this).
  PolicyRuleId record_insert(const PolicyRule& rule, PdpPriority priority);
  bool record_revoke(PolicyRuleId id);

  // The verdict the reference semantics assign to this packet right now.
  // nullopt when the frame is unparsable (the system default-denies it and
  // compiles no rule).
  std::optional<ModelVerdict> expected_verdict(
      Dpid dpid, PortNo in_port, const std::vector<std::uint8_t>& frame) const;

  // Same verdict, derived from the identifier fields of an exact-match
  // Table-0 rule instead of raw packet bytes — used to validate installed
  // rules at the proxy→switch tap (invariant I4). Only meaningful for
  // exact_from_packet-shaped matches.
  ModelVerdict expected_verdict_match(Dpid dpid, const Match& match) const;

  // Cookie bookkeeping for the installed-rule invariants. "Issued" ids are
  // every id ever returned by record_insert plus the default-deny cookie;
  // "revoked" ids never leave the revoked set (ids are not reused).
  bool cookie_issued(std::uint64_t cookie) const;
  bool cookie_revoked(std::uint64_t cookie) const;

  const std::set<std::uint64_t>& revoked_cookies() const { return revoked_; }
  std::uint64_t binding_events_seen() const { return binding_events_seen_; }

 private:
  ModelVerdict decide(EndpointView src, EndpointView dst,
                      std::uint16_t ether_type,
                      std::optional<std::uint8_t> ip_proto) const;

  // Private bus: the mirrors' own subscriptions attach here and never fire;
  // the mirror PolicyManager's consistency flushes are published here and
  // discarded.
  MessageBus private_bus_;
  EntityResolutionManager erm_;
  PolicyManager policy_;
  Subscription mirror_subscription_;
  std::set<std::uint64_t> issued_;
  std::set<std::uint64_t> revoked_;
  std::uint64_t binding_events_seen_ = 0;
};

}  // namespace dfi::test
