#include "support/fuzz_harness.h"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bus/message_bus.h"
#include "common/hash.h"
#include "core/erm_snapshot.h"
#include "core/pcp.h"
#include "core/proxy.h"
#include "fault/fault_channel.h"
#include "fault/fault_socket.h"
#include "net/asyncio/connection.h"
#include "net/packet.h"
#include "openflow/switch_device.h"
#include "openflow/wire.h"
#include "services/events.h"
#include "services/sensors.h"
#include "sim/simulator.h"
#include "support/reference_model.h"

namespace dfi::test {
namespace {

// The modeled controller app is deny-only: its catch-all and every rule it
// pushes drop, and it never installs gotos or outputs. Controller tables
// therefore never miss, so every Packet-in reaching the controller tap is a
// Table-0 (PCP-decided) one and I1 can compare it against the model without
// having to attribute higher-table misses to stale-but-legitimate installed
// rules.
constexpr Cookie kControllerCookie{0xC0DEull << 24};

constexpr std::size_t kEntities = 8;

// Unicast source MACs keep the oracle and the model on the same spoof-check
// branch: the location check is multicast-gated (the PCP's own sensor
// asserts a unicast source's location before deciding), so the model's
// identity-only validate() is exact.
MacAddress mac_of(std::size_t i) { return MacAddress::from_u64(0xa0 + i); }
Ipv4Address ip_of(std::size_t i) {
  return Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1));
}
Hostname host_of(std::size_t i) { return Hostname{"h" + std::to_string(i)}; }
Username user_of(std::size_t i) { return Username{"u" + std::to_string(i)}; }

std::uint64_t fnv1a(std::uint64_t h, const std::vector<std::uint8_t>& bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::string describe(const FuzzOptions& options) {
  std::ostringstream os;
  os << "seed=" << options.seed << " backend="
     << (options.backend == PcpBackend::kThreads ? "threads" : "simulated")
     << " shards=" << options.shards << " steps=" << options.steps
     << " worker_faults=" << options.worker_faults
     << " wildcard_caching=" << options.wildcard_caching
     << " cache=" << options.decision_cache_capacity
     << " batched=" << options.batched_datapath
     << " incsnap=" << options.incremental_snapshots
     << " socket=" << options.socket_transport;
  return os.str();
}

// One switch behind the proxy: the device, the session currently bound to
// it (null while severed), the two faulty inbound byte/message streams, and
// wire-level taps on both proxy egress directions.
struct SwitchLink {
  SwitchLink(Dpid id, Simulator& sim)
      : device(SwitchConfig{id, /*num_tables=*/4, /*table_capacity=*/4096},
               [&sim] { return sim.now(); }) {}

  SwitchDevice device;
  DfiProxy::Session* session = nullptr;
  std::unique_ptr<FaultChannel<std::vector<std::uint8_t>>> from_switch;
  std::unique_ptr<FaultChannel<OfMessage>> from_controller;
  FrameDecoder switch_tap;      // proxy -> switch egress
  FrameDecoder controller_tap;  // proxy -> controller egress
  bool connected = false;
  bool ever_connected = false;
  // socket_transport: manual-mode Connections carrying the two switch-side
  // byte streams over seeded FaultSockets (pointers borrowed from the
  // Connections, which own them).
  std::unique_ptr<net::Connection> rx_conn;  // switch -> proxy
  std::unique_ptr<net::Connection> tx_conn;  // proxy -> switch
  FaultSocket* rx_sock = nullptr;
  FaultSocket* tx_sock = nullptr;
  std::vector<std::uint8_t> rx_accum;  // frames reassembled from rx_conn
};

class FuzzWorld {
 public:
  explicit FuzzWorld(const FuzzOptions& options)
      : options_(options),
        plan_(options.seed),
        erm_(bus_),
        policy_(bus_),
        sensors_(bus_),
        model_(bus_),  // after erm_: mirrors each binding event post-apply
        pcp_(sim_, bus_, erm_, policy_, pcp_config(options),
             Rng(options.seed ^ 0xDF1D0C5ull)),
        proxy_(sim_, pcp_, proxy_config(options),
               Rng(options.seed ^ 0xF00DFEEDull)) {
    socket_rng_ = Rng(options.seed ^ 0x50CCE77Aull);
    if (options_.backend == PcpBackend::kThreads && options_.worker_faults) {
      const std::uint64_t seed = options_.seed;
      const bool batched = options_.batched_datapath;
      pcp_.set_worker_fault_probe(
          [seed, batched](std::size_t shard, std::uint64_t seq) {
            const std::uint64_t h =
                mix64(seed ^ 0x5EEDFA017ull ^
                      (static_cast<std::uint64_t>(shard) << 48) ^ seq);
            // Batched schedules only: crash after the decision ran but
            // before its completion publishes — mid-batch, the worker dies
            // in the publish window with cache residue left behind.
            if (batched && h % 29 == 0) return WorkerFault::kKillAfterDecide;
            if (h % 23 == 0) return WorkerFault::kKill;
            if (h % 11 == 0) return WorkerFault::kStall;
            return WorkerFault::kNone;
          });
    }

    for (std::uint64_t d : {std::uint64_t{1}, std::uint64_t{2}}) {
      auto link = std::make_unique<SwitchLink>(Dpid{d}, sim_);
      SwitchLink& ref = *link;
      const std::string tag = "sw" + std::to_string(d);
      link->from_switch = std::make_unique<FaultChannel<std::vector<std::uint8_t>>>(
          tag + "->proxy", draw_spec(), plan_,
          [this, &ref](const std::vector<std::uint8_t>& bytes) {
            if (ref.session == nullptr) return;
            if (ref.rx_conn != nullptr) {
              deliver_via_socket(ref, bytes);
            } else {
              ref.session->from_switch(bytes);
            }
          });
      link->from_controller = std::make_unique<FaultChannel<OfMessage>>(
          "ctl->proxy(" + tag + ")", draw_spec(), plan_,
          [&ref](const OfMessage& message) {
            if (ref.session != nullptr) ref.session->from_controller(encode(message));
          });
      links_.push_back(std::move(link));
    }

    dhcp_ = std::make_unique<FaultChannel<DhcpLeaseEvent>>(
        "dhcp", draw_spec(), plan_,
        [this](const DhcpLeaseEvent& e) { bus_.publish(topics::kDhcpEvents, e); });
    dns_ = std::make_unique<FaultChannel<DnsRecordEvent>>(
        "dns", draw_spec(), plan_,
        [this](const DnsRecordEvent& e) { bus_.publish(topics::kDnsEvents, e); });
    siem_ = std::make_unique<FaultChannel<SessionEvent>>(
        "siem", draw_spec(), plan_,
        [this](const SessionEvent& e) { bus_.publish(topics::kSiemSessions, e); });
    flap_ = std::make_unique<FaultChannel<BindingEvent>>(
        "binding-flap", draw_spec(), plan_,
        [this](const BindingEvent& e) { bus_.publish(topics::kErmBindings, e); });

    for (auto& link : links_) connect(*link);
  }

  void run() {
    for (std::size_t i = 0; i < options_.steps; ++i) {
      step_ = i;
      step();
    }
    final_settle();
    check_pool_order();
  }

  void finish(FuzzResult& result) {
    result.violations = violations_;
    result.trace = plan_.trace();
    result.fault_stats = plan_.stats();
    const PcpStats& stats = pcp_.stats();
    result.packet_ins = stats.packet_ins;
    result.denies = stats.denied + stats.default_denied + stats.spoof_denied;
    result.decision_cache_hits = stats.decision_cache_hits;
    result.stale_redecides = stats.stale_redecides;
    result.resync_clears = stats.resync_clears;
    result.jobs_abandoned = pcp_.pool().jobs_abandoned();
    result.installs_seen = installs_seen_;
    result.forwards_seen = forwards_seen_;
    result.severs = severs_;
    result.reconnects = reconnects_;
    result.pool_jobs_checked = pool_jobs_checked_;
    result.batch_bursts = packet_in_bursts_;
    result.snapshot_probes = snapshot_probes_;
    const ProxyStats& proxy_stats = proxy_.stats();
    result.frames_fast_path = proxy_stats.frames_fast_path;
    result.frames_patched = proxy_stats.frames_patched;
    result.frames_decoded = proxy_stats.frames_decoded;
    result.pool_hit_rate = proxy_stats.pool_hit_rate();
    for (auto& link : links_) detach_sockets(*link);
    result.socket_reads = socket_reads_;
    result.socket_writes = socket_writes_;
    result.socket_would_block = socket_would_block_;
    result.egress_hash = egress_hash_;
  }

 private:
  static PcpConfig pcp_config(const FuzzOptions& options) {
    PcpConfig config;
    config.backend = options.backend;
    config.shards = options.shards;
    config.queue_capacity = 512;
    config.zero_latency = true;
    config.wildcard_caching = options.wildcard_caching;
    config.decision_cache_capacity = options.decision_cache_capacity;
    return config;
  }

  static ProxyConfig proxy_config(const FuzzOptions& options) {
    ProxyConfig config;
    config.latency_mean_ms = 0.0;
    config.latency_sd_ms = 0.0;
    config.zero_latency = true;
    // Batched schedules run Packet-in batching and egress coalescing with a
    // tiny watermark, so mid-step watermark flushes race severs and policy
    // churn instead of everything draining at the step boundary.
    config.batch_packet_ins = options.batched_datapath;
    config.coalesce_egress = options.batched_datapath;
    config.egress_watermark_bytes = 512;
    return config;
  }

  FaultSpec draw_spec() {
    FaultSpec spec;
    spec.drop = static_cast<double>(plan_.rng().uniform_int(0, 12)) / 100.0;
    spec.duplicate = static_cast<double>(plan_.rng().uniform_int(0, 8)) / 100.0;
    spec.delay = static_cast<double>(plan_.rng().uniform_int(0, 20)) / 100.0;
    spec.reorder = static_cast<double>(plan_.rng().uniform_int(0, 30)) / 100.0;
    return spec;
  }

  void violation(const std::string& invariant, const std::string& detail) {
    if (violations_.size() >= 50) return;
    violations_.push_back("step " + std::to_string(step_) + " [" + invariant +
                          "] " + detail);
  }

  // ------------------------------------------------------------- topology

  // (Re)establish a proxy session for this switch. The handshake and the
  // controller's catch-all install ride a reliable direct path — a fresh
  // TCP session delivers its first messages or is not "up" — while all
  // steady-state traffic goes through the fault channels.
  void connect(SwitchLink& link) {
    const std::string tag = "sw" + std::to_string(link.device.dpid().value);
    plan_.note("connect " + tag);
    if (link.ever_connected) ++reconnects_;
    link.ever_connected = true;
    link.session = &proxy_.create_session(
        [this, &link](const std::vector<std::uint8_t>& bytes) {
          on_to_switch(link, bytes);
        },
        [this, &link](const std::vector<std::uint8_t>& bytes) {
          on_to_controller(link, bytes);
        });
    link.device.connect_control([&link](const std::vector<std::uint8_t>& bytes) {
      if (link.session != nullptr) link.session->from_switch(bytes);
    });
    link.session->from_controller(encode(OfMessage{next_xid_++, FeaturesRequestMsg{}}));
    sim_.run();
    // Controller catch-all: drop anything reaching its first table.
    FlowModMsg catch_all;
    catch_all.cookie = kControllerCookie;
    catch_all.table_id = 0;  // controller view; the proxy shifts it to 1
    catch_all.priority = 0;
    catch_all.instructions = Instructions::drop();
    link.session->from_controller(encode(OfMessage{next_xid_++, catch_all}));
    sim_.run();
    // Steady state: switch control egress now rides the fault channel.
    link.device.connect_control([&link](const std::vector<std::uint8_t>& bytes) {
      link.from_switch->offer(bytes);
    });
    link.from_switch->restore();
    link.from_controller->restore();
    if (options_.socket_transport) attach_sockets(link, tag);
    link.connected = true;
  }

  // -------------------------------------------------- socket transport

  // Lossless fault spec: short reads/writes, EAGAIN storms and slow drain
  // reshape the IO-call pattern but never lose, reorder or corrupt bytes —
  // the reassembled streams must be byte-identical to the direct path.
  void attach_sockets(SwitchLink& link, const std::string& tag) {
    FaultSocketSpec spec;
    spec.short_read = 0.7;
    spec.eagain_read = 0.25;
    spec.short_write = 0.7;
    spec.eagain_write = 0.25;
    spec.slow_drain_cap = socket_rng_.chance(0.3) ? 7 : 0;
    auto make_conn = [&](std::unique_ptr<net::Connection>& conn,
                         FaultSocket*& sock) {
      auto fault_sock =
          std::make_unique<FaultSocket>(spec, socket_rng_.next_u64());
      sock = fault_sock.get();
      conn = std::make_unique<net::Connection>(nullptr, std::move(fault_sock),
                                               net::Connection::Config{});
      conn->start();
    };
    make_conn(link.rx_conn, link.rx_sock);
    make_conn(link.tx_conn, link.tx_sock);
    link.rx_conn->on_frame([&link](const FrameView& view) {
      link.rx_accum.insert(link.rx_accum.end(), view.data(),
                           view.data() + view.size());
    });
    link.rx_conn->on_corrupt([this, tag] {
      violation("SOCKET", tag + ": corrupt frame through lossless socket");
    });
    link.rx_conn->on_closed([this, tag](const char* reason) {
      violation("SOCKET", tag + ": rx connection closed: " + reason);
    });
    link.tx_conn->on_closed([this, tag](const char* reason) {
      violation("SOCKET", tag + ": tx connection closed: " + reason);
    });
  }

  // Carry one switch->proxy chunk through the real scatter-read machinery,
  // then deliver it with the original call boundary so downstream batching
  // is transport-independent.
  void deliver_via_socket(SwitchLink& link, const std::vector<std::uint8_t>& bytes) {
    link.rx_sock->peer_write(bytes);
    while (link.rx_conn->open() && link.rx_sock->pending_in() > 0) {
      link.rx_conn->handle_io(/*readable=*/true, /*writable=*/false);
    }
    std::vector<std::uint8_t> chunk;
    chunk.swap(link.rx_accum);
    if (chunk != bytes) {
      violation("SOCKET", "switch->proxy stream diverged through FaultSocket");
    }
    if (link.session != nullptr && !chunk.empty()) {
      link.session->from_switch(chunk);
    }
  }

  void detach_sockets(SwitchLink& link) {
    for (net::Connection* conn : {link.rx_conn.get(), link.tx_conn.get()}) {
      if (conn == nullptr) continue;
      socket_reads_ += conn->stats().reads;
      socket_writes_ += conn->stats().writes;
      socket_would_block_ +=
          conn->stats().would_block_reads + conn->stats().would_block_writes;
    }
    link.rx_conn.reset();
    link.tx_conn.reset();
    link.rx_sock = nullptr;
    link.tx_sock = nullptr;
    link.rx_accum.clear();
  }

  // Channel cut + session teardown while work may still be in flight: the
  // Session-lifetime regression scenario (proxy.cc alive_ token).
  void sever(SwitchLink& link) {
    plan_.note("sever sw" + std::to_string(link.device.dpid().value));
    ++severs_;
    link.from_switch->sever();
    link.from_controller->sever();
    detach_sockets(link);  // frames in the socket pipeline die with the cut
    DfiProxy::Session* session = link.session;
    link.session = nullptr;
    proxy_.destroy_session(*session);
    link.connected = false;
  }

  // ------------------------------------------------------------ the taps

  void on_to_switch(SwitchLink& link, const std::vector<std::uint8_t>& bytes) {
    egress_hash_ = fnv1a(egress_hash_, bytes);
    link.switch_tap.feed(bytes);
    for (auto& result : link.switch_tap.drain()) {
      if (!result.ok()) {
        violation("I2", "malformed proxy->switch frame: " + result.error().message);
        continue;
      }
      const OfMessage message = std::move(result).value();
      if (const auto* mod = std::get_if<FlowModMsg>(&message.payload)) {
        check_switch_flow_mod(link, *mod);
      }
    }
    if (link.tx_conn != nullptr) {
      // Proxy->switch egress rides the bounded-queue writev machinery; the
      // drained byte stream must match what the proxy emitted.
      if (!link.tx_conn->send(std::vector<std::uint8_t>(bytes))) {
        violation("SOCKET", "tx egress queue rejected a frame");
        link.device.receive_control(bytes);
        return;
      }
      while (link.tx_conn->open() && link.tx_conn->pending_egress_bytes() > 0) {
        link.tx_conn->flush();
      }
      const std::vector<std::uint8_t> drained = link.tx_sock->peer_drain();
      if (drained != bytes) {
        violation("SOCKET", "proxy->switch stream diverged through FaultSocket");
      }
      link.device.receive_control(drained);
    } else {
      link.device.receive_control(bytes);
    }
  }

  void check_switch_flow_mod(SwitchLink& link, const FlowModMsg& mod) {
    const std::uint64_t cookie = mod.cookie.value;
    const std::string tag = "sw" + std::to_string(link.device.dpid().value);
    if (mod.command == FlowModCommand::kAdd) {
      if (mod.table_id == 0) {
        ++installs_seen_;
        if (!model_.cookie_issued(cookie)) {
          violation("I2", tag + ": Table-0 install with foreign cookie " +
                              std::to_string(cookie));
        } else if (model_.cookie_revoked(cookie)) {
          violation("I3", tag + ": Table-0 install cites revoked policy " +
                              std::to_string(cookie));
        } else if (!options_.wildcard_caching) {
          // I4: the installed exact-match rule's action must equal the
          // reference verdict for that flow right now. Deliveries happen at
          // drain time, after every control-plane mutation of the step, so
          // "now" is exactly the state a fresh decision would see; the
          // stale-completion re-decide in the PCP is what makes this hold
          // for the threaded backend.
          const ModelVerdict verdict =
              model_.expected_verdict_match(link.device.dpid(), mod.match);
          const bool rule_allows = mod.instructions.goto_table.has_value();
          if (rule_allows != verdict.allow) {
            violation("I4", tag + ": installed rule " +
                                (rule_allows ? "allows" : "denies") +
                                " but model says " +
                                (verdict.allow ? "allow" : "deny") +
                                " (cookie " + std::to_string(cookie) + ")");
          }
        }
      } else if (model_.cookie_issued(cookie)) {
        violation("I2", tag + ": DFI cookie " + std::to_string(cookie) +
                            " escaped into table " + std::to_string(mod.table_id));
      }
      return;
    }
    if (mod.command == FlowModCommand::kDelete ||
        mod.command == FlowModCommand::kDeleteStrict) {
      if (mod.table_id != 0) return;
      const bool cookie_flush =
          mod.cookie_mask.value == ~std::uint64_t{0} && model_.cookie_issued(cookie);
      const bool resync_clear = mod.cookie_mask.value == 0 && cookie == 0;
      if (!cookie_flush && !resync_clear) {
        violation("I2", tag + ": unexpected Table-0 delete (cookie " +
                            std::to_string(cookie) + " mask " +
                            std::to_string(mod.cookie_mask.value) + ")");
      }
    }
  }

  void on_to_controller(SwitchLink& link, const std::vector<std::uint8_t>& bytes) {
    egress_hash_ = fnv1a(egress_hash_, bytes);
    link.controller_tap.feed(bytes);
    const std::string tag = "sw" + std::to_string(link.device.dpid().value);
    for (auto& result : link.controller_tap.drain()) {
      if (!result.ok()) {
        violation("I2", tag + ": malformed proxy->controller frame: " +
                            result.error().message);
        continue;
      }
      const OfMessage message = std::move(result).value();
      if (const auto* packet_in = std::get_if<PacketInMsg>(&message.payload)) {
        ++forwards_seen_;
        const auto verdict = model_.expected_verdict(
            link.device.dpid(), packet_in->in_port, packet_in->data);
        if (!verdict.has_value()) {
          violation("I1", tag + ": unparsable Packet-in forwarded to controller");
        } else if (!verdict->allow) {
          violation("I1", tag + ": " +
                              (verdict->spoofed ? "spoofed" : "denied") +
                              " Packet-in forwarded to controller");
        }
        continue;
      }
      if (const auto* features = std::get_if<FeaturesReplyMsg>(&message.payload)) {
        if (features->n_tables + 1 != link.device.pipeline().num_tables()) {
          violation("I2", tag + ": FEATURES_REPLY advertises " +
                              std::to_string(features->n_tables) +
                              " tables; Table 0 not hidden");
        }
        continue;
      }
      if (const auto* reply = std::get_if<MultipartReplyMsg>(&message.payload)) {
        for (const FlowStatsEntry& entry : reply->flow_stats) {
          if (model_.cookie_issued(entry.cookie.value)) {
            violation("I2", tag + ": DFI rule (cookie " +
                                std::to_string(entry.cookie.value) +
                                ") visible in flow stats");
          }
          if (entry.table_id + 1 >= link.device.pipeline().num_tables()) {
            violation("I2", tag + ": flow-stats row table " +
                                std::to_string(entry.table_id) +
                                " outside shifted range");
          }
        }
        continue;
      }
      if (const auto* removed = std::get_if<FlowRemovedMsg>(&message.payload)) {
        if (model_.cookie_issued(removed->cookie.value)) {
          violation("I2", tag + ": DFI FLOW_REMOVED leaked to controller");
        }
      }
    }
  }

  // ------------------------------------------------------------- stepping

  void step() {
    plan_.note("== step " + std::to_string(step_));
    for (auto& link : links_) {
      if (!link->connected && plan_.chance(0.6)) connect(*link);
    }
    const auto n_policy = plan_.rng().uniform_int(0, 2);
    for (std::int64_t i = 0; i < n_policy; ++i) policy_op("policy");
    const auto n_sensor = plan_.rng().uniform_int(2, 5);
    for (std::int64_t i = 0; i < n_sensor; ++i) sensor_event();
    controller_traffic();
    data_packets();
    flush_channels();
    // Incremental publication: capture a snapshot right after binding churn
    // flushed, so the revokes/severs below race against a held publication.
    if (options_.incremental_snapshots && plan_.chance(0.7)) {
      snapshot_probe("postflush");
    }
    // Races in-flight decisions: the threaded backend has submissions whose
    // snapshots predate this mutation; its stale-completion re-decide is
    // what keeps I3/I4 true.
    if (plan_.chance(0.5)) policy_op("midflight");
    for (auto& link : links_) {
      if (link->connected && plan_.chance(0.10)) sever(*link);
    }
    drain();
    if (options_.incremental_snapshots) {
      // A second capture after the drain (the post-churn world), then every
      // held snapshot — including ones from earlier steps — must still
      // answer from the world it was published in.
      if (plan_.chance(0.7)) snapshot_probe("postdrain");
      check_held_snapshots();
    }
    // The respawn draw must be unconditional and the note count-free: whether
    // a probe kill has landed by end-of-step (and how many workers it took)
    // races the drain, so gating the draw on dead_workers() — or noting the
    // revived count — would make the rng stream and trace timing-dependent.
    if (options_.worker_faults && plan_.chance(0.8)) {
      pcp_.respawn_dead_workers();
      plan_.note("respawn workers");
    }
    sweep_table0();
  }

  void policy_op(const std::string& tag) {
    if (!inserted_.empty() && plan_.chance(0.35)) {
      const auto idx = static_cast<std::size_t>(
          plan_.rng().uniform_int(0, static_cast<std::int64_t>(inserted_.size()) - 1));
      const PolicyRuleId id = inserted_[idx];
      const bool system_ok = policy_.revoke(id);
      const bool model_ok = model_.record_revoke(id);
      if (system_ok != model_ok) {
        violation("model", "revoke id=" + std::to_string(id.value) +
                               " diverged (system=" + std::to_string(system_ok) +
                               ")");
      }
      plan_.note(tag + ": revoke id=" + std::to_string(id.value));
      return;
    }
    PolicyRule rule;
    rule.action = plan_.chance(0.65) ? PolicyAction::kAllow : PolicyAction::kDeny;
    const std::size_t e = entity();
    switch (plan_.rng().uniform_int(0, 5)) {
      case 0: rule.source.user = user_of(e % (kEntities / 2)); break;
      case 1: rule.source.ip = ip_of(e); break;
      case 2: rule.destination.ip = ip_of(e); break;
      case 3:
        rule.destination.l4_port = plan_.chance(0.5) ? std::uint16_t{445}
                                                     : std::uint16_t{80};
        break;
      case 4: rule.properties.ip_proto = plan_.chance(0.5) ? 6 : 17; break;
      default: rule.source.host = host_of(e); break;
    }
    const PdpPriority priority{
        static_cast<std::uint32_t>(1 + plan_.rng().uniform_int(0, 4))};
    const PolicyRuleId system_id = policy_.insert(rule, priority, "fuzz");
    const PolicyRuleId model_id = model_.record_insert(rule, priority);
    if (system_id.value != model_id.value) {
      violation("model", "insert id diverged: system=" +
                             std::to_string(system_id.value) + " model=" +
                             std::to_string(model_id.value));
    }
    inserted_.push_back(system_id);
    plan_.note(tag + ": insert id=" + std::to_string(system_id.value) + " " +
               to_string(rule.action));
  }

  void sensor_event() {
    const std::size_t e = entity();
    switch (plan_.rng().uniform_int(0, 3)) {
      case 0: {
        DhcpLeaseEvent event;
        // Sometimes lease the IP to the "wrong" MAC: packets from the
        // canonical MAC become spoofs until rebound.
        event.mac = mac_of(plan_.chance(0.25) ? (e + 1) % kEntities : e);
        event.ip = ip_of(e);
        event.released = plan_.chance(0.2);
        event.at = sim_.now();
        plan_.note("dhcp e=" + std::to_string(e) +
                   (event.released ? " release" : " lease"));
        dhcp_->offer(event);
        break;
      }
      case 1: {
        DnsRecordEvent event;
        event.host = host_of(e);
        event.ip = ip_of(plan_.chance(0.2) ? (e + 1) % kEntities : e);
        event.removed = plan_.chance(0.2);
        event.at = sim_.now();
        plan_.note("dns e=" + std::to_string(e) +
                   (event.removed ? " removed" : " added"));
        dns_->offer(event);
        break;
      }
      case 2: {
        SessionEvent event;
        event.user = user_of(e % (kEntities / 2));
        event.host = host_of(e);
        event.logged_on = !plan_.chance(0.3);
        event.at = sim_.now();
        plan_.note("siem e=" + std::to_string(e) +
                   (event.logged_on ? " logon" : " logoff"));
        siem_->offer(event);
        break;
      }
      default: {
        BindingEvent event;
        event.kind = BindingKind::kIpMac;
        event.ip = ip_of(e);
        event.mac = mac_of(plan_.chance(0.25) ? (e + 1) % kEntities : e);
        event.retracted = plan_.chance(0.3);
        event.at = sim_.now();
        plan_.note("flap e=" + std::to_string(e) +
                   (event.retracted ? " retract" : " assert"));
        flap_->offer(event);
        break;
      }
    }
  }

  void controller_traffic() {
    SwitchLink& link = *links_[static_cast<std::size_t>(
        plan_.rng().uniform_int(0, static_cast<std::int64_t>(links_.size()) - 1))];
    if (plan_.chance(0.4)) {
      MultipartRequestMsg request;
      request.stats_type = kStatsTypeFlow;
      request.flow_request.table_id = 0xff;
      plan_.note("ctl: flow-stats request");
      link.from_controller->offer(OfMessage{next_xid_++, request});
    }
    if (plan_.chance(0.3)) {
      // Deny-only controller app rule (see kControllerCookie note above).
      FlowModMsg mod;
      mod.cookie = kControllerCookie;
      mod.table_id = static_cast<std::uint8_t>(plan_.rng().uniform_int(0, 2));
      mod.priority = static_cast<std::uint16_t>(10 + plan_.rng().uniform_int(0, 40));
      mod.match.ipv4_dst = ip_of(entity());
      mod.instructions = Instructions::drop();
      plan_.note("ctl: drop rule table=" + std::to_string(mod.table_id));
      link.from_controller->offer(OfMessage{next_xid_++, mod});
    }
    if (plan_.chance(0.15)) {
      // Re-query features mid-stream; a duplicated reply exercises the
      // spurious re-registration / resync path.
      plan_.note("ctl: features re-query");
      link.from_controller->offer(OfMessage{next_xid_++, FeaturesRequestMsg{}});
    }
  }

  // Batched schedules: one chunk carrying several table-0 Packet-in frames
  // back to back, the shape that actually forms multi-item batches (a
  // switch flushing a full TCP segment of misses). Injected straight into
  // the switch->proxy stream like the runt path; an occasional runt rides
  // inside the burst so unparsable frames are decided within a batch too.
  void packet_in_burst() {
    SwitchLink& link = *links_[static_cast<std::size_t>(
        plan_.rng().uniform_int(0, static_cast<std::int64_t>(links_.size()) - 1))];
    const auto n = plan_.rng().uniform_int(3, 8);
    std::vector<std::uint8_t> chunk;
    for (std::int64_t i = 0; i < n; ++i) {
      PacketInMsg msg;
      msg.table_id = 0;
      msg.in_port = PortNo{static_cast<std::uint32_t>(plan_.rng().uniform_int(1, 4))};
      if (plan_.chance(0.08)) {
        msg.data = {0xde, 0xad, 0xbe};
      } else {
        const std::size_t s = entity();
        const std::size_t d = entity();
        const MacAddress src_mac =
            mac_of(plan_.chance(0.2) ? (s + 1) % kEntities : s);
        const auto sport =
            static_cast<std::uint16_t>(1000 + 1000 * plan_.rng().uniform_int(0, 2));
        const std::uint16_t dport = plan_.chance(0.5) ? 445 : 80;
        const Packet packet =
            plan_.chance(0.25)
                ? make_udp_packet(src_mac, mac_of(d), ip_of(s), ip_of(d), sport, dport)
                : make_tcp_packet(src_mac, mac_of(d), ip_of(s), ip_of(d), sport, dport);
        msg.data = packet.serialize();
      }
      const std::vector<std::uint8_t> frame = encode(OfMessage{next_xid_++, msg});
      chunk.insert(chunk.end(), frame.begin(), frame.end());
    }
    plan_.note("packet-in burst n=" + std::to_string(n));
    ++packet_in_bursts_;
    link.from_switch->offer(chunk);
  }

  void data_packets() {
    if (options_.batched_datapath && plan_.chance(0.7)) packet_in_burst();
    const auto n = plan_.rng().uniform_int(8, 24);
    for (std::int64_t i = 0; i < n; ++i) {
      SwitchLink& link = *links_[static_cast<std::size_t>(
          plan_.rng().uniform_int(0, static_cast<std::int64_t>(links_.size()) - 1))];
      const PortNo port{static_cast<std::uint32_t>(plan_.rng().uniform_int(1, 4))};
      if (plan_.chance(0.08)) {
        // Runt: the switch itself drops unparsable frames, so a truncated
        // Packet-in is injected straight into the switch->proxy stream — a
        // buggy or hostile datapath.
        PacketInMsg runt;
        runt.table_id = 0;
        runt.in_port = port;
        runt.data = {0xde, 0xad, 0xbe};
        plan_.note("runt packet-in");
        link.from_switch->offer(encode(OfMessage{next_xid_++, runt}));
        continue;
      }
      const std::size_t s = entity();
      const std::size_t d = entity();
      const MacAddress src_mac =
          mac_of(plan_.chance(0.2) ? (s + 1) % kEntities : s);
      const auto sport =
          static_cast<std::uint16_t>(1000 + 1000 * plan_.rng().uniform_int(0, 2));
      const std::uint16_t dport = plan_.chance(0.5) ? 445 : 80;
      const Packet packet =
          plan_.chance(0.25)
              ? make_udp_packet(src_mac, mac_of(d), ip_of(s), ip_of(d), sport, dport)
              : make_tcp_packet(src_mac, mac_of(d), ip_of(s), ip_of(d), sport, dport);
      link.device.receive_packet(port, packet.serialize());
    }
  }

  void flush_channels() {
    dhcp_->flush();
    dns_->flush();
    siem_->flush();
    flap_->flush();
    for (auto& link : links_) {
      link->from_controller->flush();
      link->from_switch->flush();
    }
  }

  void drain() {
    // flush_egress delivers any coalesced switch-bound buffers below the
    // watermark (a no-op for per-message schedules): applying completions
    // in wait_idle appends installs to the pending buffers, so each flush
    // follows a wait and precedes the sim run that delivers it.
    pcp_.wait_idle();
    proxy_.flush_egress();
    sim_.run();
    pcp_.wait_idle();
    proxy_.flush_egress();
    sim_.run();
  }

  // I3: after the step quiesced, no connected switch's Table 0 cites a
  // revoked cookie (severed switches legitimately hold stale rules until
  // the reconnect resync clears them — so only connected ones are swept).
  void sweep_table0() {
    for (auto& link : links_) {
      if (!link->connected) continue;
      const std::string tag = "sw" + std::to_string(link->device.dpid().value);
      link->device.pipeline().table(0).for_each([&](const FlowRule& rule) {
        if (model_.cookie_revoked(rule.cookie.value)) {
          violation("I3", tag + ": Table 0 retains rule of revoked policy " +
                              std::to_string(rule.cookie.value));
        } else if (!model_.cookie_issued(rule.cookie.value)) {
          violation("I2", tag + ": foreign rule (cookie " +
                              std::to_string(rule.cookie.value) + ") in Table 0");
        }
      });
    }
  }

  void final_settle() {
    plan_.note("== final settle");
    for (auto& link : links_) {
      if (!link->connected) connect(*link);
    }
    flush_channels();
    if (options_.backend == PcpBackend::kThreads) {
      // Count deliberately not noted: how many workers were dead here is
      // timing-dependent (see the respawn draw in step()).
      pcp_.respawn_dead_workers();
    }
    drain();
    sweep_table0();
    // Quiesce accounting: every pooled frame buffer — deferred deliveries,
    // coalesced egress, buffers stranded on severed sessions — must have
    // returned to the pool once nothing is in flight.
    if (proxy_.buffer_pool().in_use() != 0) {
      violation("pool", std::to_string(proxy_.buffer_pool().in_use()) +
                            " pooled buffers outstanding at quiesce");
    }
  }

  // I5: submission-order effect application under worker kills, checked on
  // a raw pool so ordering is observed directly rather than through the
  // PCP's own effects. Runs for every schedule; the kill/stall probe is
  // always armed here.
  void check_pool_order() {
    plan_.note("== pool-order sub-check");
    Simulator pool_sim;
    PcpConfig config;
    config.backend = PcpBackend::kThreads;
    config.shards = 3;
    config.queue_capacity = 64;
    config.zero_latency = true;
    PcpShardPool pool(pool_sim, config);
    const std::uint64_t seed = options_.seed;
    pool.set_worker_fault_probe([seed](std::size_t shard, std::uint64_t seq) {
      const std::uint64_t h =
          mix64(seed ^ 0xDEAD5EEDull ^ (static_cast<std::uint64_t>(shard) << 40) ^
                seq);
      if (h % 13 == 0) return WorkerFault::kKill;
      if (h % 7 == 0) return WorkerFault::kStall;
      return WorkerFault::kNone;
    });

    std::vector<std::uint64_t> applied;
    std::uint64_t tag = 0;
    std::uint64_t accepted = 0;
    for (int round = 0; round < 4; ++round) {
      for (int j = 0; j < 32; ++j) {
        const auto shard = static_cast<std::size_t>(plan_.rng().uniform_int(0, 2));
        const std::uint64_t my_tag = tag++;
        const bool ok = pool.submit_threaded(shard, [my_tag, &applied]() {
          return [my_tag, &applied]() { applied.push_back(my_tag); };
        });
        if (ok) ++accepted;
      }
      pool.poll_completions();
      if (plan_.chance(0.5)) pool.respawn_dead_workers();
    }
    pool.wait_idle();
    pool.respawn_dead_workers();
    pool.wait_idle();

    for (std::size_t i = 1; i < applied.size(); ++i) {
      if (applied[i] <= applied[i - 1]) {
        violation("I5", "pool applied job " + std::to_string(applied[i]) +
                            " after " + std::to_string(applied[i - 1]));
        break;
      }
    }
    if (applied.size() + pool.jobs_abandoned() != accepted) {
      violation("I5", "pool lost jobs: accepted " + std::to_string(accepted) +
                          ", applied " + std::to_string(applied.size()) +
                          ", abandoned " + std::to_string(pool.jobs_abandoned()));
    }
    // Not noted in the trace: *which* submissions a dying shard still
    // accepts races the kill, so the count is not part of the replayable
    // schedule (the order and conservation checks above are what matter).
    pool_jobs_checked_ = accepted;
  }

  // ---------------------------------------- incremental snapshot probes

  // One held publication: the snapshot, the entity probed at capture time,
  // and the answers it gave then. Re-asking later must return the same
  // bytes no matter what the live ERM did since (DESIGN.md §8): an
  // incremental publish clones only the pages it touches, so a stale clone
  // would surface here as a drifted answer or a moved epoch.
  struct HeldSnapshot {
    ErmSnapshot snap;
    std::size_t captured_step;
    Ipv4Address ip;
    std::uint64_t epoch;
    std::vector<Hostname> hostnames;
    std::vector<Username> usernames;
  };

  void snapshot_probe(const std::string& tag) {
    const std::size_t e = entity();
    const Ipv4Address ip = ip_of(e);
    ErmSnapshot snap = erm_.snapshot_view();
    EndpointView view;
    view.ip = ip;
    EndpointView enriched = snap.enrich(std::move(view));
    plan_.note(tag + ": hold snapshot epoch=" + std::to_string(snap.epoch()) +
               " e=" + std::to_string(e) +
               " hosts=" + std::to_string(enriched.hostnames.size()) +
               " users=" + std::to_string(enriched.usernames.size()));
    const std::uint64_t epoch = snap.epoch();
    held_.push_back(HeldSnapshot{std::move(snap), step_, ip, epoch,
                                 std::move(enriched.hostnames),
                                 std::move(enriched.usernames)});
    ++snapshot_probes_;
    if (held_.size() > 4) held_.erase(held_.begin());
  }

  void check_held_snapshots() {
    for (const HeldSnapshot& held : held_) {
      const std::string tag =
          "held snapshot (step " + std::to_string(held.captured_step) + ")";
      if (held.snap.epoch() != held.epoch) {
        violation("I4", tag + " epoch moved: " + std::to_string(held.epoch) +
                            " -> " + std::to_string(held.snap.epoch()));
      }
      EndpointView view;
      view.ip = held.ip;
      const EndpointView now = held.snap.enrich(std::move(view));
      if (now.hostnames != held.hostnames || now.usernames != held.usernames) {
        violation("I4", tag + " answer drifted under churn");
      }
    }
  }

  std::size_t entity() {
    return static_cast<std::size_t>(plan_.rng().uniform_int(0, kEntities - 1));
  }

  FuzzOptions options_;
  FaultPlan plan_;
  Simulator sim_;
  MessageBus bus_;
  EntityResolutionManager erm_;
  PolicyManager policy_;
  SensorSuite sensors_;
  ReferenceModel model_;
  PolicyCompilationPoint pcp_;
  DfiProxy proxy_;
  std::vector<std::unique_ptr<SwitchLink>> links_;
  std::unique_ptr<FaultChannel<DhcpLeaseEvent>> dhcp_;
  std::unique_ptr<FaultChannel<DnsRecordEvent>> dns_;
  std::unique_ptr<FaultChannel<SessionEvent>> siem_;
  std::unique_ptr<FaultChannel<BindingEvent>> flap_;

  std::vector<PolicyRuleId> inserted_;
  std::vector<HeldSnapshot> held_;
  std::uint64_t snapshot_probes_ = 0;
  std::vector<std::string> violations_;
  std::size_t step_ = 0;
  std::uint32_t next_xid_ = 100;
  std::uint64_t installs_seen_ = 0;
  std::uint64_t forwards_seen_ = 0;
  std::uint64_t severs_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t pool_jobs_checked_ = 0;
  std::uint64_t packet_in_bursts_ = 0;
  // socket_transport state. The rng is dedicated (never FaultPlan's) and
  // only drawn from when the flag is on, so pre-existing schedules keep
  // byte-identical traces.
  Rng socket_rng_{0};
  std::uint64_t socket_reads_ = 0;
  std::uint64_t socket_writes_ = 0;
  std::uint64_t socket_would_block_ = 0;
  std::uint64_t egress_hash_ = 1469598103934665603ull;  // FNV offset basis
};

}  // namespace

FuzzResult run_fuzz_schedule(const FuzzOptions& options) {
  FuzzResult result;
  FuzzWorld world(options);
  world.run();
  world.finish(result);
  return result;
}

std::string replay_instructions(const FuzzOptions& options) {
  std::ostringstream os;
  os << "To replay this schedule:\n"
     << "  DFI_FUZZ_SEED=" << options.seed
     << " ./build/tests/fuzz_invariants_test\n"
     << "  (or: ./build/tests/fuzz_invariants_test --seed=" << options.seed
     << ")\n"
     << "  schedule: " << describe(options) << "\n"
     << "Every fault decision is drawn from this seed; the failing "
        "FuzzResult.trace is byte-identical on replay.";
  return os.str();
}

}  // namespace dfi::test
