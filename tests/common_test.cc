// Unit tests for src/common: RNG, time, Result/Status, logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/frame_buffer_pool.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace dfi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, LognormalMatchesTargetMoments) {
  Rng rng(12);
  // Paper Table II binding-query parameters.
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal_from_moments(2.41, 0.97);
    EXPECT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, 2.41, 0.05);
  EXPECT_NEAR(sd, 0.97, 0.05);
}

TEST(Rng, ExponentialMeanApproximate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(items.begin(), items.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(items, shuffled);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(15);
  Rng forked = a.fork();
  EXPECT_NE(a.next_u64(), forked.next_u64());
}

TEST(Rng, ChanceExtremes) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(SimTime, ArithmeticAndComparison) {
  const SimTime t0{};
  const SimTime t1 = t0 + seconds(1.5);
  EXPECT_EQ(t1.us, 1500000);
  EXPECT_EQ((t1 - t0).to_ms(), 1500.0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(t1 - seconds(1.5), t0);
}

TEST(SimTime, ClockTimeAndFormat) {
  EXPECT_EQ(format_clock(clock_time(9, 30)), "09:30:00");
  EXPECT_EQ(format_clock(clock_time(0, 0)), "00:00:00");
  EXPECT_EQ(format_clock(clock_time(23, 59) + seconds(59)), "23:59:59");
}

TEST(SimTime, FormatDurationPicksUnits) {
  EXPECT_EQ(format_duration(microseconds(500)), "500us");
  EXPECT_EQ(format_duration(milliseconds(12.34)), "12.34ms");
  EXPECT_EQ(format_duration(seconds(2.5)), "2.50s");
}

TEST(SimTime, HoursMinutesComposition) {
  EXPECT_EQ((hours(1)).us, 3600000000LL);
  EXPECT_EQ((minutes(3)).us, 180000000LL);
  EXPECT_EQ(clock_time(10).us, (hours(10)).us);
}

TEST(Result, OkAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(7), 42);

  auto fail = Result<int>::Fail(ErrorCode::kNotFound, "missing");
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(fail.value_or(7), 7);
  EXPECT_FALSE(fail.status().ok());
}

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.to_string(), "OK");

  const Status failed = Status::Fail(ErrorCode::kOverloaded, "queue full");
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.to_string().find("overloaded"), std::string::npos);
}

TEST(Logging, RespectsLevelAndSink) {
  std::vector<std::string> lines;
  Logger::instance().set_sink(
      [&lines](LogLevel, const std::string& message) { lines.push_back(message); });
  Logger::instance().set_level(LogLevel::kWarn);
  DFI_INFO << "hidden";
  DFI_WARN << "visible " << 42;
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "visible 42");
  Logger::instance().set_level(LogLevel::kOff);
  DFI_ERROR << "also hidden";
  EXPECT_EQ(lines.size(), 1u);
  Logger::instance().set_level(LogLevel::kWarn);
}

TEST(Types, StrongTypeComparisons) {
  EXPECT_EQ(Dpid{1}, Dpid{1});
  EXPECT_LT(Dpid{1}, Dpid{2});
  EXPECT_NE(PortNo{1}, PortNo{2});
  EXPECT_EQ(to_string(kPortFlood), "port:FLOOD");
  EXPECT_EQ(to_string(Cookie{9}), "cookie:9");
}

TEST(FrameBufferPool, ReusesCapacityAfterRelease) {
  FrameBufferPool pool;
  auto first = pool.acquire();
  first.resize(1500);
  const std::uint8_t* slab = first.data();
  const std::size_t capacity = first.capacity();
  pool.release(std::move(first));

  auto second = pool.acquire();
  EXPECT_TRUE(second.empty());          // cleared...
  EXPECT_EQ(second.capacity(), capacity);  // ...but capacity survives
  EXPECT_EQ(second.data(), slab);       // same slab, no allocation
  pool.release(std::move(second));

  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.releases, 2u);
  EXPECT_EQ(stats.free_buffers, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(FrameBufferPool, AcquireCopyFillsBuffer) {
  FrameBufferPool pool;
  const std::uint8_t bytes[] = {1, 2, 3, 4};
  auto buffer = pool.acquire_copy(bytes, sizeof(bytes));
  EXPECT_EQ(buffer, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  pool.release(std::move(buffer));
  auto again = pool.acquire_copy(bytes, 2);
  EXPECT_EQ(again, (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(pool.stats().reuses, 1u);
}

TEST(FrameBufferPool, MaxFreeBoundsRetainedSlab) {
  FrameBufferPool pool(/*max_free=*/2);
  std::vector<std::vector<std::uint8_t>> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.in_use(), 5u);
  EXPECT_EQ(pool.stats().peak_in_use, 5u);
  for (auto& buffer : held) pool.release(std::move(buffer));
  EXPECT_EQ(pool.in_use(), 0u);
  // Releases past max_free simply free the buffer.
  EXPECT_EQ(pool.stats().free_buffers, 2u);
  EXPECT_EQ(pool.stats().releases, 5u);
}

}  // namespace
}  // namespace dfi
